//! Cache semantics through the daemon path, end to end on one warm root:
//!
//! 1. the first submission executes the sweep;
//! 2. resubmitting the identical plan is a pure cache hit — zero new
//!    simulations, zero new outcome files, byte-identical bundle (the
//!    repo's acceptance criterion, asserted here rather than by hand);
//! 3. a *restarted* daemon over the same root re-validates the store and
//!    still executes nothing;
//! 4. stamping every stored outcome with a wrong `RESULTS_VERSION` makes
//!    the next daemon treat the store as all-miss: everything re-executes,
//!    stale results are never served.

mod common;

use common::*;
use shift_serve::Server;

#[test]
fn warm_cache_serves_without_simulating_and_stale_versions_invalidate() {
    let root = temp_root("cache");
    let spec = test_spec(&["Tiny"]);
    let reference_plan = plan_of(&spec);
    let id = reference_plan.matrix().fingerprint().to_string();
    let planned = reference_plan.run_count();
    let sweep_dir = test_config(&root).sweep_dir(&id);
    let body = spec_body(&spec);

    // --- 1. Cold daemon: the sweep executes in full.
    let server = Server::start(test_config(&root), "127.0.0.1:0").expect("server starts");
    let addr = server.addr();
    let first = request(addr, "POST", "/v1/sweeps", Some(&body));
    assert_eq!(first.status, 200, "body: {}", first.body);
    assert_eq!(summary_u64(&first.body, "executed") as usize, planned);
    assert!(!summary_cached(&first.body));
    let files_after_first = outcome_files(&sweep_dir);
    assert_eq!(files_after_first.len(), planned);

    // --- 2. Identical resubmission: answered from the registry cache.
    let second = request(addr, "POST", "/v1/sweeps", Some(&body));
    assert_eq!(second.status, 200);
    assert!(
        summary_cached(&second.body),
        "resubmission was not a cache hit: {}",
        second.body
    );
    assert_eq!(
        summary_u64(&second.body, "executed") as usize,
        planned,
        "the summary still reports the original execution tally"
    );
    assert_eq!(
        outcome_files(&sweep_dir),
        files_after_first,
        "a cache hit must write no new outcome files"
    );

    // The served bundle is byte-identical to the single-process reference.
    let bundle = request(addr, "GET", &format!("/v1/sweeps/{id}/artifacts"), None);
    assert_eq!(bundle.status, 200);
    let reference = reference_plan.execute();
    assert_bundle_matches(&bundle.body, &reference);
    server.shutdown();

    // --- 3. A fresh daemon on the same root: the registry is empty but the
    // store is warm, so the sweep re-validates to zero executions.
    let server = Server::start(test_config(&root), "127.0.0.1:0").expect("restart");
    let addr = server.addr();
    let warm = request(addr, "POST", "/v1/sweeps", Some(&body));
    assert_eq!(warm.status, 200);
    assert!(
        !summary_cached(&warm.body),
        "a restarted daemon has no registry entry — this goes through the store"
    );
    assert_eq!(
        summary_u64(&warm.body, "executed"),
        0,
        "warm store: zero new simulations: {}",
        warm.body
    );
    assert_eq!(summary_u64(&warm.body, "reused") as usize, planned);
    assert_eq!(outcome_files(&sweep_dir), files_after_first);
    let bundle = request(addr, "GET", &format!("/v1/sweeps/{id}/artifacts"), None);
    assert_bundle_matches(&bundle.body, &reference);
    server.shutdown();

    // --- 4. RESULTS_VERSION invalidation through the daemon path: rewrite
    // every stored outcome to a wrong results version, restart, resubmit.
    // The store must treat them all as misses and re-execute, never serve.
    let version_field = format!("\"results\": {}", shift_sim::RESULTS_VERSION);
    let mut rewritten = 0;
    for name in &files_after_first {
        let path = sweep_dir.join(name);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains(&version_field), "no version stamp in {name}");
        std::fs::write(&path, text.replace(&version_field, "\"results\": 0")).unwrap();
        rewritten += 1;
    }
    assert_eq!(rewritten, planned);

    let server = Server::start(test_config(&root), "127.0.0.1:0").expect("restart");
    let addr = server.addr();
    let stale = request(addr, "POST", "/v1/sweeps", Some(&body));
    assert_eq!(stale.status, 200);
    assert_eq!(
        summary_u64(&stale.body, "executed") as usize,
        planned,
        "stale-version outcomes must be all-miss: {}",
        stale.body
    );
    assert_eq!(summary_u64(&stale.body, "reused"), 0);
    // Re-execution rewrote the store with current-version outcomes, and the
    // served bundle is the reference again — stale bytes never reached a
    // client.
    let bundle = request(addr, "GET", &format!("/v1/sweeps/{id}/artifacts"), None);
    assert_bundle_matches(&bundle.body, &reference);
    server.shutdown();

    assert_no_locks(&root);
    std::fs::remove_dir_all(&root).unwrap();
}
