//! Fault injection: a queue worker dies mid-sweep, the daemon inherits the
//! wreckage and still completes — byte-identically.
//!
//! The scenario reuses the PR 5 idiom: before the daemon ever starts, the
//! sweep directory is staged as a crashed drain would have left it — a
//! completed slice of outcomes (the dead worker's finished runs), a claim
//! lock whose timestamp is ancient (the run it died holding), and a
//! leftover temp file. The daemon's drain must treat all of that exactly
//! like the batch queue worker does: valid outcomes are cache hits, the
//! stale claim is reclaimed, and the served artifact bundle comes out
//! byte-identical to a single-process `reproduce` run that never crashed.

mod common;

use common::*;
use shift_serve::Server;
use shift_sim::store::lock_file_name;
use shift_sim::{Execution, ShardSpec};

#[test]
fn daemon_completes_a_sweep_abandoned_by_a_killed_worker() {
    let root = temp_root("fault");
    let spec = test_spec(&["Tiny"]);

    // The single-process reference: same plan, no daemon, no crash.
    let reference_plan = plan_of(&spec);
    let matrix_fingerprint = reference_plan.matrix().fingerprint();
    let planned = reference_plan.run_count();

    // Stage the crash debris in the directory the daemon will use for this
    // plan's fingerprint.
    let config = test_config(&root);
    let sweep_dir = config.sweep_dir(&matrix_fingerprint.to_string());
    std::fs::create_dir_all(&sweep_dir).unwrap();

    // 1. The dead worker finished a quarter of the sweep before dying.
    let staged = plan_of(&spec);
    let shard_executed = Execution::new(staged.matrix())
        .shard(ShardSpec::new(1, 4))
        .dir(&sweep_dir)
        .serial()
        .run()
        .unwrap()
        .report()
        .sources
        .executed;
    assert!(shard_executed > 0 && shard_executed < planned);

    // 2. It died *holding a claim* on a run it never finished: the lock's
    //    timestamp (1970) is stale under any TTL.
    let staged_matrix = staged.matrix();
    let victim = staged_matrix
        .canonical_order()
        .into_iter()
        .map(|slot| staged_matrix.key_ids()[slot])
        .find(|id| !sweep_dir.join(format!("run-{id}.json")).exists())
        .expect("an unfinished run exists");
    std::fs::write(
        sweep_dir.join(lock_file_name(victim)),
        format!(
            "{{\"schema\": 1, \"key_id\": \"{victim}\", \"worker\": \"dead-worker\", \
             \"claimed_unix\": 1000}}"
        ),
    )
    .unwrap();

    // 3. And it left a half-written temp file behind.
    std::fs::write(
        sweep_dir.join(".tmp-killed.json"),
        "{\"schema\": 1, \"trunc",
    )
    .unwrap();

    // Boot the daemon over the wreckage and submit the plan.
    let server = Server::start(config, "127.0.0.1:0").expect("server starts");
    let addr = server.addr();
    let response = request(addr, "POST", "/v1/sweeps", Some(&spec_body(&spec)));
    assert_eq!(response.status, 200, "body: {}", response.body);

    // The dead worker's finished runs were reused, the rest executed, and
    // the stale claim was reclaimed along the way.
    assert_eq!(summary_u64(&response.body, "planned") as usize, planned);
    assert_eq!(
        summary_u64(&response.body, "executed") as usize,
        planned - shard_executed,
        "only the crashed worker's unfinished runs re-execute"
    );
    assert_eq!(
        summary_u64(&response.body, "reused") as usize,
        shard_executed
    );
    assert!(
        summary_u64(&response.body, "reclaimed") >= 1,
        "the dead worker's stale claim was reclaimed: {}",
        response.body
    );

    // The served artifacts are byte-identical to the crash-free
    // single-process reproduction.
    let id = matrix_fingerprint.to_string();
    let bundle = request(addr, "GET", &format!("/v1/sweeps/{id}/artifacts"), None);
    assert_eq!(bundle.status, 200);
    let reference = reference_plan.execute();
    assert_bundle_matches(&bundle.body, &reference);

    let scoreboard = request(addr, "GET", &format!("/v1/sweeps/{id}/scoreboard"), None);
    assert_eq!(scoreboard.status, 200);
    assert_eq!(scoreboard.body, reference.scoreboard());

    // The reclaim shows up in the progress stream, and no lock or claim
    // debris survives the drain (the junk temp file is inert but the
    // protocol files must be gone).
    let events = request(addr, "GET", &format!("/v1/sweeps/{id}/events"), None);
    assert_eq!(events.status, 200);
    assert!(
        events.body.lines().any(|l| l.contains("\"reclaimed\"")),
        "no reclaim event in: {}",
        events.body
    );
    assert!(!sweep_dir.join(lock_file_name(victim)).exists());
    assert_no_locks(&root);

    server.shutdown();
    std::fs::remove_dir_all(&root).unwrap();
}
