//! Protocol-level tests: every malformed thing a client can throw at the
//! daemon returns a typed error — and none of it ever reaches the
//! scheduler (no job registered, no claim taken, queue idle).

mod common;

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use common::*;
use serde::{json, Value};
use shift_serve::Server;

fn assert_scheduler_idle(addr: std::net::SocketAddr, expected_jobs: u64) {
    let status = request(addr, "GET", "/v1/status", None);
    assert_eq!(status.status, 200);
    let doc = json::parse(&status.body).expect("status parses");
    assert_eq!(doc.get("jobs").and_then(Value::as_u64), Some(expected_jobs));
    assert_eq!(doc.get("queued").and_then(Value::as_u64), Some(0));
}

#[test]
fn bad_submissions_return_typed_errors_and_schedule_nothing() {
    let root = temp_root("protocol");
    let server = Server::start(test_config(&root), "127.0.0.1:0").expect("server starts");
    let addr = server.addr();

    // Malformed JSON body.
    let r = request(addr, "POST", "/v1/sweeps", Some("{\"cores\": 4, nope"));
    assert_eq!(r.status, 400);
    assert_eq!(error_code(&r.body), "bad_json");

    // Valid JSON, wrong shape.
    let r = request(addr, "POST", "/v1/sweeps", Some("[1, 2, 3]"));
    assert_eq!(r.status, 400);
    assert_eq!(error_code(&r.body), "bad_json");

    // Parseable plan that cannot be resolved: unknown workload.
    let mut spec = test_spec(&["No Such Workload"]);
    let r = request(addr, "POST", "/v1/sweeps", Some(&spec_body(&spec)));
    assert_eq!(r.status, 400);
    assert_eq!(error_code(&r.body), "bad_plan");

    // ...and too few cores.
    spec = test_spec(&["Tiny"]);
    spec.cores = 1;
    let r = request(addr, "POST", "/v1/sweeps", Some(&spec_body(&spec)));
    assert_eq!(r.status, 400);
    assert_eq!(error_code(&r.body), "bad_plan");

    // Unknown endpoints and ids.
    let r = request(addr, "GET", "/v2/everything", None);
    assert_eq!(r.status, 404);
    assert_eq!(error_code(&r.body), "not_found");
    let r = request(addr, "GET", "/v1/sweeps/0123456789abcdef", None);
    assert_eq!(r.status, 404);
    let r = request(addr, "GET", "/v1/sweeps/0123456789abcdef/nonsense", None);
    assert_eq!(r.status, 404);

    // Wrong methods on real endpoints.
    let r = request(addr, "DELETE", "/v1/sweeps", None);
    assert_eq!(r.status, 405);
    assert_eq!(error_code(&r.body), "method_not_allowed");
    let r = request(addr, "POST", "/v1/status", Some("{}"));
    assert_eq!(r.status, 405);

    // Oversized body: rejected on the Content-Length declaration alone.
    let limit = server.daemon().config().max_body;
    let huge = format!(
        "POST /v1/sweeps HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
        limit + 1
    );
    let r = raw_request(addr, huge.as_bytes());
    assert_eq!(r.status, 413);
    assert_eq!(error_code(&r.body), "payload_too_large");

    // Not HTTP at all.
    let r = raw_request(addr, b"EHLO mail.example.com\r\n\r\n");
    assert_eq!(r.status, 400);
    assert_eq!(error_code(&r.body), "bad_request");

    // Truncated body: the peer hangs up mid-request; the daemon just drops
    // the connection (nothing to answer) and stays healthy.
    {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(b"POST /v1/sweeps HTTP/1.1\r\nContent-Length: 500\r\n\r\n{\"cores\"")
            .expect("send truncated request");
        drop(stream); // disconnect before the declared 500 bytes arrive
    }

    // After all of that: zero jobs ever registered, queue empty, and the
    // daemon still answers.
    assert_scheduler_idle(addr, 0);
    assert_no_locks(&root);

    server.shutdown();
    std::fs::remove_dir_all(&root).unwrap();
}

/// The unix-socket listener speaks the same protocol as the TCP one.
#[cfg(unix)]
#[test]
fn unix_socket_listener_answers_the_same_api() {
    use std::io::Read;

    let root = temp_root("protocol-unix");
    let socket = std::env::temp_dir().join("shift-serve-test-protocol.sock");
    let server = shift_serve::Server::start_with_unix(
        test_config(&root),
        "127.0.0.1:0",
        Some(socket.clone()),
    )
    .expect("server starts");

    let mut stream = std::os::unix::net::UnixStream::connect(&socket).expect("unix connect");
    stream
        .write_all(b"GET /v1/status HTTP/1.1\r\nHost: local\r\n\r\n")
        .expect("send");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read");
    let response = parse_response(&raw);
    assert_eq!(response.status, 200);
    let doc = json::parse(&response.body).expect("status parses");
    assert_eq!(doc.get("jobs").and_then(Value::as_u64), Some(0));

    server.shutdown();
    let _ = std::fs::remove_file(&socket);
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn mid_stream_disconnect_abandons_only_that_reply() {
    let root = temp_root("protocol-disconnect");
    let server = Server::start(test_config(&root), "127.0.0.1:0").expect("server starts");
    let addr = server.addr();
    let spec = test_spec(&["Tiny"]);
    let id = plan_of(&spec).matrix().fingerprint().to_string();

    // Submit on a background thread (the POST blocks until completion).
    let submit = {
        let body = spec_body(&spec);
        std::thread::spawn(move || request(addr, "POST", "/v1/sweeps", Some(&body)))
    };

    // Subscribe to the progress stream, read a couple of lines, then hang
    // up mid-stream while the sweep is still running.
    {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(
            stream,
            "GET /v1/sweeps/{id}/events HTTP/1.1\r\nHost: x\r\n\r\n"
        )
        .expect("send");
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        // Headers, then at least one NDJSON event.
        let mut seen_event = false;
        for _ in 0..64 {
            line.clear();
            if reader.read_line(&mut line).unwrap_or(0) == 0 {
                break;
            }
            if line.starts_with('{') {
                seen_event = true;
                break;
            }
        }
        assert!(seen_event, "no event line before the disconnect");
        // reader (and its stream) dropped here: mid-stream disconnect.
    }

    // The sweep completes normally for the client that stayed.
    let response = submit.join().expect("submit thread");
    assert_eq!(response.status, 200, "body: {}", response.body);
    assert_eq!(
        summary_u64(&response.body, "executed"),
        summary_u64(&response.body, "planned")
    );

    // And the scheduler is idle with no orphaned claims: the disconnect
    // cost the daemon nothing but the one reply.
    assert_scheduler_idle(addr, 1);
    assert_no_locks(&root);

    // A late subscriber replays the full event log of the finished job.
    let events = request(addr, "GET", &format!("/v1/sweeps/{id}/events"), None);
    assert_eq!(events.status, 200);
    assert!(events.body.lines().any(|l| l.contains("\"complete\"")));

    server.shutdown();
    std::fs::remove_dir_all(&root).unwrap();
}
