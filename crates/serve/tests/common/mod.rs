//! Shared helpers for the serve integration tests: a tiny blocking HTTP
//! client, plan builders, and wire-bundle byte-identity assertions.
//!
//! Each integration test binary compiles its own copy, so not every helper
//! is used from every binary.
#![allow(dead_code)]

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;

use serde::{json, Value};
use shift_bench::reproduce::{PaperPlan, PaperReport, PlanSpec};
use shift_serve::ServeConfig;
use shift_trace::Scale;
use std::time::Duration;

/// A parsed response: status code plus the full body.
pub struct Response {
    pub status: u16,
    pub body: String,
}

/// Sends one request and reads the close-delimited response.
pub fn request(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> Response {
    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: localhost\r\n");
    if let Some(body) = body {
        head.push_str(&format!("Content-Length: {}\r\n", body.len()));
    }
    head.push_str("\r\n");
    let mut bytes = head.into_bytes();
    if let Some(body) = body {
        bytes.extend_from_slice(body.as_bytes());
    }
    raw_request(addr, &bytes)
}

/// Sends raw bytes (possibly malformed HTTP) and reads the response.
pub fn raw_request(addr: SocketAddr, bytes: &[u8]) -> Response {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(bytes).expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    parse_response(&raw)
}

/// Splits a raw HTTP/1.1 response into status and body.
pub fn parse_response(raw: &str) -> Response {
    let status: u16 = raw
        .strip_prefix("HTTP/1.1 ")
        .and_then(|rest| rest.split(' ').next())
        .and_then(|code| code.parse().ok())
        .unwrap_or_else(|| panic!("unparseable response: {raw:?}"));
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, body)| body.to_owned())
        .unwrap_or_default();
    Response { status, body }
}

/// The `error.code` field of an error body.
pub fn error_code(body: &str) -> String {
    let doc = json::parse(body).expect("error body parses");
    doc.get("error")
        .and_then(|e| e.get("code"))
        .and_then(Value::as_str)
        .unwrap_or_else(|| panic!("no error code in {body}"))
        .to_owned()
}

/// A fresh scratch root for one test.
pub fn temp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("shift-serve-test-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A daemon config tuned for tests: fast poll, 2 drain threads.
pub fn test_config(root: impl Into<PathBuf>) -> ServeConfig {
    let mut config = ServeConfig::new(root);
    config.threads = 2;
    config.poll = Duration::from_millis(10);
    config
}

/// A test-scale plan over the named catalog workloads.
pub fn test_spec(workloads: &[&str]) -> PlanSpec {
    PlanSpec {
        cores: 2,
        scale: Scale::Test,
        seed: 7,
        workloads: workloads.iter().map(|&w| w.to_owned()).collect(),
    }
}

/// The spec as a submission body.
pub fn spec_body(spec: &PlanSpec) -> String {
    json::to_string(spec)
}

/// Plans the spec locally (the single-process reference path).
pub fn plan_of(spec: &PlanSpec) -> PaperPlan {
    PaperPlan::plan(spec.resolve().expect("spec resolves"))
}

/// A summary field from a submission response.
pub fn summary_u64(body: &str, field: &str) -> u64 {
    let doc = json::parse(body).expect("summary parses");
    doc.get(field)
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("no {field} in {body}"))
}

/// The `cached` flag of a submission response.
pub fn summary_cached(body: &str) -> bool {
    let doc = json::parse(body).expect("summary parses");
    match doc.get("cached") {
        Some(Value::Bool(b)) => *b,
        other => panic!("no cached flag, got {other:?}"),
    }
}

/// Asserts the served wire bundle is byte-identical to a locally computed
/// [`PaperReport`]: same artifact order, and the embedded `json` / `csv` /
/// `markdown` strings match the local renderings exactly.
pub fn assert_bundle_matches(bundle_body: &str, reference: &PaperReport) {
    let doc = json::parse(bundle_body).expect("bundle parses");
    assert_eq!(
        doc.get("scoreboard").and_then(Value::as_str),
        Some(reference.scoreboard().as_str()),
        "scoreboard differs from the single-process reference"
    );
    let served = match doc.get("artifacts") {
        Some(Value::Seq(items)) => items,
        other => panic!("no artifact list, got {other:?}"),
    };
    assert_eq!(served.len(), reference.artifacts().len());
    for (wire, local) in served.iter().zip(reference.artifacts()) {
        let name = wire.get("name").and_then(Value::as_str).unwrap_or("?");
        assert_eq!(name, local.name(), "artifact order differs");
        assert_eq!(
            wire.get("json").and_then(Value::as_str),
            Some(local.to_json().as_str()),
            "{name}: served JSON differs from local bytes"
        );
        assert_eq!(
            wire.get("csv").and_then(Value::as_str),
            Some(local.table().to_csv().as_str()),
            "{name}: served CSV differs from local bytes"
        );
        assert_eq!(
            wire.get("markdown").and_then(Value::as_str),
            Some(local.to_markdown().as_str()),
            "{name}: served markdown differs from local bytes"
        );
    }
}

/// Outcome files currently in a sweep directory (claim locks and tmp junk
/// excluded), sorted.
pub fn outcome_files(dir: &std::path::Path) -> Vec<String> {
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .filter_map(|e| e.ok())
                .map(|e| e.file_name().to_string_lossy().into_owned())
                .filter(|n| n.starts_with("run-") && n.ends_with(".json"))
                .collect()
        })
        .unwrap_or_default();
    names.sort();
    names
}

/// Asserts no claim locks or reclaim/tmp debris anywhere under the root.
pub fn assert_no_locks(root: &std::path::Path) {
    let sweeps = root.join("sweeps");
    let Ok(entries) = std::fs::read_dir(&sweeps) else {
        return;
    };
    for entry in entries.filter_map(|e| e.ok()) {
        let Ok(files) = std::fs::read_dir(entry.path()) else {
            continue;
        };
        for file in files.filter_map(|e| e.ok()) {
            let name = file.file_name().to_string_lossy().into_owned();
            assert!(
                !name.starts_with("claim-") && !name.starts_with(".reclaim-"),
                "leftover claim debris {name} under {:?}",
                entry.path()
            );
        }
    }
}
