//! The serving layer's headline property, as a property test: for any mix
//! of concurrent clients submitting overlapping plans, every shared run
//! simulates exactly once, every response is byte-identical to a serial
//! single-process execution, and the store is left clean (no locks, no
//! temp files).
//!
//! The two candidate plans overlap by construction: plan B's workload list
//! is a superset of plan A's, and both include the same consolidation-mix
//! runs, so their matrices share keys without being identical. The
//! exactly-once assertion is on exact counts — the summed `executed`
//! tallies across distinct jobs must equal the size of the *union* of the
//! submitted plans' key sets.

mod common;

use std::collections::BTreeSet;
use std::sync::OnceLock;

use common::*;
use proptest::prelude::*;
use shift_bench::reproduce::{PaperReport, PlanSpec};
use shift_serve::Server;
use shift_sim::RunKeyId;

fn candidate_specs() -> [PlanSpec; 2] {
    [test_spec(&["Tiny"]), test_spec(&["Tiny", "OLTP DB2"])]
}

fn key_set(spec: &PlanSpec) -> BTreeSet<RunKeyId> {
    plan_of(spec).matrix().key_ids().iter().copied().collect()
}

/// Serial single-process references, computed once per test process.
fn reference(index: usize) -> &'static PaperReport {
    static REFS: [OnceLock<PaperReport>; 2] = [OnceLock::new(), OnceLock::new()];
    REFS[index].get_or_init(|| plan_of(&candidate_specs()[index]).execute())
}

#[test]
fn candidate_plans_overlap_without_being_identical() {
    let [a, b] = candidate_specs();
    let (keys_a, keys_b) = (key_set(&a), key_set(&b));
    assert!(
        keys_a.intersection(&keys_b).count() > 0,
        "plans must share runs for the dedup property to be non-trivial"
    );
    assert_ne!(keys_a, keys_b, "plans must be distinct fingerprints");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// N ∈ 1..=3 concurrent clients, each randomly assigned one of the two
    /// overlapping plans, against a cold daemon.
    #[test]
    fn concurrent_overlapping_submissions_simulate_each_shared_run_once(
        assignments in proptest::collection::vec(0usize..2, 1..4),
    ) {
        let tag = format!(
            "concurrent-{}",
            assignments.iter().map(ToString::to_string).collect::<String>()
        );
        let root = temp_root(&tag);
        let specs = candidate_specs();
        let server = Server::start(test_config(&root), "127.0.0.1:0").expect("server starts");
        let addr = server.addr();

        // Fire all clients at once; each POST blocks until its sweep is done.
        let responses: Vec<(usize, Response)> = std::thread::scope(|scope| {
            let joins: Vec<_> = assignments
                .iter()
                .map(|&which| {
                    let body = spec_body(&specs[which]);
                    scope.spawn(move || (which, request(addr, "POST", "/v1/sweeps", Some(&body))))
                })
                .collect();
            joins.into_iter().map(|j| j.join().expect("client thread")).collect()
        });

        // Exactly-once: across the distinct jobs these submissions created,
        // the executed tallies sum to the union of the submitted key sets —
        // no shared run simulated twice, none skipped.
        let distinct: BTreeSet<usize> = assignments.iter().copied().collect();
        let union: BTreeSet<RunKeyId> = distinct
            .iter()
            .flat_map(|&which| key_set(&specs[which]))
            .collect();
        let mut executed_by_job: std::collections::BTreeMap<String, u64> =
            std::collections::BTreeMap::new();
        for (_, response) in &responses {
            prop_assert_eq!(response.status, 200, "body: {}", &response.body);
            let doc = serde::json::parse(&response.body).expect("summary parses");
            let id = doc.get("id").and_then(serde::Value::as_str).expect("id").to_owned();
            executed_by_job.insert(id, summary_u64(&response.body, "executed"));
        }
        prop_assert_eq!(executed_by_job.len(), distinct.len(), "one job per distinct plan");
        let executed_total: u64 = executed_by_job.values().sum();
        prop_assert_eq!(
            executed_total as usize,
            union.len(),
            "every run in the union executes exactly once across all jobs"
        );

        // Every client's artifact bundle is byte-identical to a serial
        // single-process execution of its plan.
        for &which in &distinct {
            let id = plan_of(&specs[which]).matrix().fingerprint().to_string();
            let bundle = request(addr, "GET", &format!("/v1/sweeps/{id}/artifacts"), None);
            prop_assert_eq!(bundle.status, 200);
            assert_bundle_matches(&bundle.body, reference(which));
        }

        // No leftover locks or temp files anywhere under the root.
        assert_no_locks(&root);
        for entry in std::fs::read_dir(root.join("sweeps")).expect("sweeps dir") {
            let dir = entry.expect("entry").path();
            for file in std::fs::read_dir(&dir).expect("sweep dir") {
                let name = file.expect("entry").file_name().to_string_lossy().into_owned();
                prop_assert!(
                    name.starts_with("run-") && name.ends_with(".json"),
                    "leftover non-outcome file {} in {:?}", name, dir
                );
            }
        }

        server.shutdown();
        std::fs::remove_dir_all(&root).unwrap();
    }
}
