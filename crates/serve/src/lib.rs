//! `shift-serve`: the paper sweep as a resident query engine.
//!
//! The batch pipeline (`reproduce`) plans a whole-paper [`RunMatrix`] and
//! drains it once; this crate keeps that machinery resident. A daemon
//! accepts plan submissions over localhost HTTP (and, on unix, a unix
//! socket), schedules them onto the same queue-worker pool (the
//! [`shift_sim::Execution`] builder's observed queue mode), streams per-run
//! progress
//! as NDJSON, and serves finished figure/table bundles and scoreboards
//! straight from the durable outcome store — a repeat query for an
//! already-simulated configuration returns instantly without spawning a
//! single simulation.
//!
//! # Endpoints
//!
//! | Method | Path | Body / reply |
//! |---|---|---|
//! | `POST` | `/v1/sweeps` | plan JSON → blocks until done, replies summary |
//! | `GET` | `/v1/sweeps/<id>` | status summary snapshot |
//! | `GET` | `/v1/sweeps/<id>/events` | NDJSON progress stream (close-delimited) |
//! | `GET` | `/v1/sweeps/<id>/artifacts` | the full wire bundle (waits for completion) |
//! | `GET` | `/v1/sweeps/<id>/scoreboard` | the markdown scoreboard (waits) |
//! | `GET` | `/v1/status` | daemon status (jobs, queue depth, drain state) |
//! | `POST` | `/v1/shutdown` | drain, finish queued sweeps, stop listening |
//!
//! The submission body is a [`PlanSpec`](shift_bench::reproduce::PlanSpec):
//! `{"cores": 4, "scale": "Test", "seed": 7, "workloads": ["Tiny"]}` —
//! workloads by catalog name, empty list meaning the full paper suite.
//!
//! [`RunMatrix`]: shift_sim::RunMatrix

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod daemon;
pub mod http;
pub mod protocol;

use std::fmt;
use std::io::{self, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

pub use daemon::{Daemon, Job, JobStatus, ServeConfig, Submission};
pub use protocol::ApiError;

use daemon::JobState;
use http::{read_request, write_response, write_streaming_head, HttpError, Request};

/// How long a connection may sit silent before the daemon gives up on it.
const READ_TIMEOUT: Duration = Duration::from_secs(30);

struct ServerCtl {
    stop: AtomicBool,
    addr: SocketAddr,
    unix_path: Option<std::path::PathBuf>,
}

impl ServerCtl {
    /// Wakes every accept loop so it observes the stop flag.
    fn wake(&self) {
        let _ = TcpStream::connect(self.addr);
        #[cfg(unix)]
        if let Some(path) = &self.unix_path {
            let _ = std::os::unix::net::UnixStream::connect(path);
        }
        #[cfg(not(unix))]
        let _ = &self.unix_path;
    }
}

/// A running daemon bound to its listeners.
pub struct Server {
    daemon: Arc<Daemon>,
    ctl: Arc<ServerCtl>,
    accepters: Vec<JoinHandle<()>>,
}

impl fmt::Debug for Server {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.ctl.addr)
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Starts the daemon and binds the TCP listener (use port 0 for an
    /// ephemeral port; [`Server::addr`] reports the bound address).
    ///
    /// # Errors
    ///
    /// Propagates bind errors and [`Daemon::start`] filesystem errors.
    pub fn start(config: ServeConfig, listen: impl ToSocketAddrs) -> io::Result<Server> {
        Self::start_with_unix(config, listen, None)
    }

    /// [`Server::start`] plus, on unix, an optional unix-socket listener at
    /// the given path (an existing socket file there is replaced). On
    /// non-unix platforms passing a path is an error.
    ///
    /// # Errors
    ///
    /// Propagates bind errors on either listener.
    pub fn start_with_unix(
        config: ServeConfig,
        listen: impl ToSocketAddrs,
        unix_path: Option<std::path::PathBuf>,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(listen)?;
        let addr = listener.local_addr()?;
        #[cfg(unix)]
        let unix_listener = match &unix_path {
            Some(path) => {
                let _ = std::fs::remove_file(path);
                Some(std::os::unix::net::UnixListener::bind(path)?)
            }
            None => None,
        };
        #[cfg(not(unix))]
        if unix_path.is_some() {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix sockets are only available on unix platforms",
            ));
        }
        let daemon = Daemon::start(config)?;
        let ctl = Arc::new(ServerCtl {
            stop: AtomicBool::new(false),
            addr,
            unix_path,
        });

        let mut accepters = Vec::new();
        {
            let daemon = Arc::clone(&daemon);
            let ctl = Arc::clone(&ctl);
            accepters.push(std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if ctl.stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
                    let daemon = Arc::clone(&daemon);
                    let ctl = Arc::clone(&ctl);
                    std::thread::spawn(move || handle_connection(&daemon, &ctl, stream));
                }
            }));
        }
        #[cfg(unix)]
        if let Some(listener) = unix_listener {
            let daemon = Arc::clone(&daemon);
            let ctl = Arc::clone(&ctl);
            accepters.push(std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if ctl.stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
                    let daemon = Arc::clone(&daemon);
                    let ctl = Arc::clone(&ctl);
                    std::thread::spawn(move || handle_connection(&daemon, &ctl, stream));
                }
            }));
        }

        Ok(Server {
            daemon,
            ctl,
            accepters,
        })
    }

    /// The bound TCP address.
    pub fn addr(&self) -> SocketAddr {
        self.ctl.addr
    }

    /// The daemon behind the listeners (for in-process embedding/tests).
    pub fn daemon(&self) -> &Arc<Daemon> {
        &self.daemon
    }

    /// Blocks until the server has shut down (via `POST /v1/shutdown` or
    /// [`Server::shutdown`]): all queued sweeps finished, listeners closed.
    pub fn join(mut self) {
        for handle in self.accepters.drain(..) {
            let _ = handle.join();
        }
        self.daemon.drain_and_join();
    }

    /// Drains the scheduler, stops the listeners, and blocks until both
    /// are down — the programmatic twin of `POST /v1/shutdown`.
    pub fn shutdown(self) {
        self.daemon.drain();
        self.ctl.stop.store(true, Ordering::Relaxed);
        self.ctl.wake();
        self.join();
    }
}

fn error_response(stream: &mut dyn Write, err: &ApiError) {
    let _ = write_response(
        stream,
        err.status(),
        "application/json",
        err.body().as_bytes(),
    );
}

/// Serves one request on an established connection, then closes it. Write
/// errors are deliberately swallowed: a client hanging up mid-response
/// abandons only its own reply — the scheduler and the outcome store never
/// see the disconnect.
fn handle_connection<S: Read + Write>(daemon: &Arc<Daemon>, ctl: &Arc<ServerCtl>, mut stream: S) {
    let request = {
        let mut reader = BufReader::new(&mut stream);
        read_request(&mut reader, daemon.config().max_body)
    };
    let request = match request {
        Ok(request) => request,
        Err(HttpError::Disconnected) => return,
        Err(HttpError::Io(_)) => return,
        Err(HttpError::TooLarge { limit, .. }) => {
            error_response(&mut stream, &ApiError::PayloadTooLarge { limit });
            return;
        }
        Err(HttpError::Malformed(msg)) => {
            error_response(&mut stream, &ApiError::BadRequest(msg));
            return;
        }
    };
    route(daemon, ctl, &request, &mut stream);
}

fn route(daemon: &Arc<Daemon>, ctl: &Arc<ServerCtl>, request: &Request, stream: &mut dyn Write) {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/v1/sweeps") => submit_sweep(daemon, &request.body, stream),
        (_, "/v1/sweeps") => error_response(stream, &ApiError::MethodNotAllowed),
        ("GET", "/v1/status") => {
            let _ = write_response(
                stream,
                200,
                "application/json",
                daemon.status_json().as_bytes(),
            );
        }
        (_, "/v1/status") => error_response(stream, &ApiError::MethodNotAllowed),
        ("POST", "/v1/shutdown") => {
            daemon.drain();
            ctl.stop.store(true, Ordering::Relaxed);
            let _ = write_response(stream, 200, "application/json", b"{\"draining\": true}");
            ctl.wake();
        }
        (_, "/v1/shutdown") => error_response(stream, &ApiError::MethodNotAllowed),
        (method, path) if path.starts_with("/v1/sweeps/") => {
            let rest = &path["/v1/sweeps/".len()..];
            let (id, tail) = match rest.split_once('/') {
                Some((id, tail)) => (id, Some(tail)),
                None => (rest, None),
            };
            if method != "GET" {
                return error_response(stream, &ApiError::MethodNotAllowed);
            }
            let Some(job) = daemon.job(id) else {
                return error_response(stream, &ApiError::NotFound);
            };
            match tail {
                None => {
                    let _ = write_response(
                        stream,
                        200,
                        "application/json",
                        job.summary(false).as_bytes(),
                    );
                }
                Some("events") => stream_events(&job, stream),
                Some("artifacts") => serve_finished(&job, stream, |state| {
                    state.bundle.clone().map(|b| (b, "application/json"))
                }),
                Some("scoreboard") => serve_finished(&job, stream, |state| {
                    state.scoreboard.clone().map(|b| (b, "text/markdown"))
                }),
                Some(_) => error_response(stream, &ApiError::NotFound),
            }
        }
        _ => error_response(stream, &ApiError::NotFound),
    }
}

/// `POST /v1/sweeps`: register (or re-find) the job, block until it is
/// done, and answer with the summary — `"cached": true` marking replies
/// that required no scheduling at all.
fn submit_sweep(daemon: &Arc<Daemon>, body: &[u8], stream: &mut dyn Write) {
    let Ok(body) = std::str::from_utf8(body) else {
        return error_response(stream, &ApiError::BadJson("body is not UTF-8".to_owned()));
    };
    match daemon.submit(body) {
        Ok(submission) => {
            let status = submission.job.wait();
            let (code, body) = match status {
                JobStatus::Failed(msg) => {
                    let err = ApiError::Internal(msg);
                    (err.status(), err.body())
                }
                _ => (200, submission.job.summary(submission.cached)),
            };
            let _ = write_response(stream, code, "application/json", body.as_bytes());
        }
        Err(err) => error_response(stream, &err),
    }
}

/// `GET /v1/sweeps/<id>/events`: replay the job's NDJSON event log from
/// the start and keep streaming until the job finishes (close-delimited).
fn stream_events(job: &Arc<Job>, stream: &mut dyn Write) {
    if write_streaming_head(stream, 200, "application/x-ndjson").is_err() {
        return;
    }
    let mut cursor = 0usize;
    loop {
        let (events, finished) = job.wait_events(cursor);
        cursor += events.len();
        for line in &events {
            if stream
                .write_all(line.as_bytes())
                .and_then(|()| stream.write_all(b"\n"))
                .is_err()
            {
                // Mid-stream client disconnect: abandon only this reply.
                return;
            }
        }
        if stream.flush().is_err() {
            return;
        }
        if finished {
            return;
        }
    }
}

/// Serves a completion artifact (bundle or scoreboard), waiting for the
/// job to finish first; a failed job answers 500 with its error.
fn serve_finished(
    job: &Arc<Job>,
    stream: &mut dyn Write,
    pick: impl Fn(&JobState) -> Option<(Arc<String>, &'static str)>,
) {
    match job.wait() {
        JobStatus::Failed(msg) => error_response(stream, &ApiError::Internal(msg)),
        _ => match job.with_state(|state| pick(state)) {
            Some((body, content_type)) => {
                let _ = write_response(stream, 200, content_type, body.as_bytes());
            }
            None => error_response(
                stream,
                &ApiError::Internal("finished job has no cached artifact".to_owned()),
            ),
        },
    }
}
