//! A hand-rolled, deliberately minimal HTTP/1.1 layer.
//!
//! The build environment has no crate registry, so — in the `compat/` shim
//! spirit — this module implements exactly the protocol subset the daemon
//! needs and documents the contract:
//!
//! * one request per connection, answered with `Connection: close`;
//! * request bodies are `Content-Length`-delimited (no chunked encoding);
//! * response bodies are either `Content-Length`-delimited or, for the
//!   progress stream, delimited by connection close (legal in HTTP/1.1 for
//!   responses, and what lets the daemon stream NDJSON lines of unknown
//!   total length).
//!
//! Keeping the parser tiny is also what makes the protocol-level tests
//! meaningful: every error path (`malformed`, `truncated`, `oversized`) is
//! a few lines away from the test that exercises it.

use std::fmt;
use std::io::{self, BufRead, Write};

/// One parsed request: method, target path (query string split off), and
/// the raw body bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// The request method, uppercased by the client (`GET`, `POST`, ...).
    pub method: String,
    /// The path component of the request target (no query string).
    pub path: String,
    /// The raw body, exactly `Content-Length` bytes.
    pub body: Vec<u8>,
}

/// Why a request could not be read off the wire.
#[derive(Debug)]
pub enum HttpError {
    /// The request line or a header was not parseable HTTP/1.1.
    Malformed(String),
    /// The declared `Content-Length` exceeds the server's limit.
    TooLarge {
        /// The declared body length.
        declared: usize,
        /// The server's limit.
        limit: usize,
    },
    /// The peer disconnected (or timed out) before the full request
    /// arrived — e.g. a truncated body. There is nobody left to answer, so
    /// handlers drop the connection without a response.
    Disconnected,
    /// A transport-level read error other than a clean disconnect.
    Io(io::Error),
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Malformed(msg) => write!(f, "malformed request: {msg}"),
            HttpError::TooLarge { declared, limit } => {
                write!(f, "body of {declared} bytes exceeds the {limit}-byte limit")
            }
            HttpError::Disconnected => write!(f, "peer disconnected mid-request"),
            HttpError::Io(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl std::error::Error for HttpError {}

fn read_line(reader: &mut dyn BufRead) -> Result<String, HttpError> {
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) => Err(HttpError::Disconnected),
        Ok(_) => {
            while line.ends_with('\n') || line.ends_with('\r') {
                line.pop();
            }
            Ok(line)
        }
        Err(e) if e.kind() == io::ErrorKind::InvalidData => {
            Err(HttpError::Malformed("request is not UTF-8".to_owned()))
        }
        Err(e)
            if e.kind() == io::ErrorKind::UnexpectedEof
                || e.kind() == io::ErrorKind::ConnectionReset =>
        {
            Err(HttpError::Disconnected)
        }
        Err(e) => Err(HttpError::Io(e)),
    }
}

/// Reads one request off `reader`, enforcing `max_body` against the
/// declared `Content-Length` *before* reading the body (an oversized
/// declaration is rejected without buffering a byte of it).
///
/// # Errors
///
/// [`HttpError::Malformed`] for an unparseable request line or header,
/// [`HttpError::TooLarge`] for an over-limit body declaration,
/// [`HttpError::Disconnected`] when the peer hangs up mid-request (the
/// truncated-body case), and [`HttpError::Io`] for other transport errors.
pub fn read_request(reader: &mut dyn BufRead, max_body: usize) -> Result<Request, HttpError> {
    let request_line = read_line(reader)?;
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Err(HttpError::Malformed(format!(
                "bad request line {request_line:?}"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!("bad version {version:?}")));
    }

    let mut content_length = 0usize;
    loop {
        let line = read_line(reader)?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed(format!("bad header {line:?}")));
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| HttpError::Malformed(format!("bad Content-Length {value:?}")))?;
        }
    }
    if content_length > max_body {
        return Err(HttpError::TooLarge {
            declared: content_length,
            limit: max_body,
        });
    }

    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        match reader.read_exact(&mut body) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
                return Err(HttpError::Disconnected)
            }
            Err(e) => return Err(HttpError::Io(e)),
        }
    }

    let path = target.split(['?', '#']).next().unwrap_or("").to_owned();
    Ok(Request {
        method: method.to_owned(),
        path,
        body,
    })
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes a complete `Content-Length`-delimited response and flushes.
///
/// # Errors
///
/// Propagates transport write errors (a disconnected peer surfaces here;
/// handlers treat that as the client abandoning the request).
pub fn write_response(
    writer: &mut dyn Write,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> io::Result<()> {
    write!(
        writer,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        reason(status),
        body.len(),
    )?;
    writer.write_all(body)?;
    writer.flush()
}

/// Writes the head of a close-delimited streaming response (no
/// `Content-Length`); the caller then writes body chunks directly and the
/// body ends when the connection closes.
///
/// # Errors
///
/// Propagates transport write errors.
pub fn write_streaming_head(
    writer: &mut dyn Write,
    status: u16,
    content_type: &str,
) -> io::Result<()> {
    write!(
        writer,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nConnection: close\r\n\r\n",
        reason(status),
    )?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(bytes: &[u8], max_body: usize) -> Result<Request, HttpError> {
        read_request(&mut BufReader::new(bytes), max_body)
    }

    #[test]
    fn parses_a_post_with_body_and_strips_the_query_string() {
        let req = parse(
            b"POST /v1/sweeps?wait=1 HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd",
            64,
        )
        .expect("parse");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/sweeps");
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn get_without_content_length_has_an_empty_body() {
        let req = parse(b"GET /v1/status HTTP/1.1\r\n\r\n", 64).expect("parse");
        assert_eq!(req.method, "GET");
        assert_eq!(req.body, b"");
    }

    #[test]
    fn rejects_garbage_and_bad_headers_as_malformed() {
        assert!(matches!(
            parse(b"not http at all\r\n\r\n", 64),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse(b"GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n", 64),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse(b"GET /x HTTP/1.1\r\nContent-Length: banana\r\n\r\n", 64),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse(b"GET /x SPDY/9\r\n\r\n", 64),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn rejects_oversized_declarations_before_reading_the_body() {
        // The body bytes are absent entirely: the limit check must fire on
        // the declaration alone.
        let err = parse(b"POST /x HTTP/1.1\r\nContent-Length: 999\r\n\r\n", 64).unwrap_err();
        match err {
            HttpError::TooLarge { declared, limit } => {
                assert_eq!(declared, 999);
                assert_eq!(limit, 64);
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn truncated_body_is_a_disconnect() {
        let err = parse(b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc", 64).unwrap_err();
        assert!(matches!(err, HttpError::Disconnected));
        // As is a peer that hangs up before sending anything.
        assert!(matches!(parse(b"", 64), Err(HttpError::Disconnected)));
    }

    #[test]
    fn response_writer_emits_content_length_and_close() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "application/json", b"{}").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));

        let mut head = Vec::new();
        write_streaming_head(&mut head, 200, "application/x-ndjson").unwrap();
        let head = String::from_utf8(head).unwrap();
        assert!(
            !head.contains("Content-Length"),
            "stream is close-delimited"
        );
    }
}
