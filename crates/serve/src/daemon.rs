//! The resident scheduler: a job registry keyed by matrix fingerprint and
//! one scheduler thread draining submissions onto the queue-worker pool.
//!
//! # Exactly-once across overlapping submissions
//!
//! Every accepted plan becomes a [`Job`] keyed by its
//! [`MatrixFingerprint`](shift_sim::MatrixFingerprint); identical resubmissions collapse onto the same
//! job in the registry (a completed job answers instantly from its cached
//! wire bundle, without touching the store). *Distinct but overlapping*
//! plans are serialized through one scheduler thread, and each job probes
//! every earlier sweep's outcome directory
//! ([`RunStore::load_partial`](shift_sim::store::RunStore::load_partial)) before executing: runs shared with any
//! previous sweep are seeded as cache hits and only the delta is simulated.
//! Serial scheduling + cross-sweep reuse is what gives the serving layer
//! its headline property — across any set of concurrent submissions, each
//! distinct run key simulates exactly once.
//!
//! # Layout
//!
//! Outcomes live under `<root>/sweeps/<fingerprint>/`, one directory per
//! distinct plan, each internally identical to a `reproduce --outcomes`
//! directory — so the operator tooling from `docs/OPERATIONS.md` (strict
//! merges, stale-claim inspection) applies unchanged, and a daemon restart
//! over a warm root re-validates outcomes through the exact
//! `RESULTS_VERSION`-checking store path the batch pipeline uses.

use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use serde::{json, Serialize, Value};
use shift_bench::reproduce::{PaperPlan, PlanSpec};
use shift_report::wire_bundle_json;
use shift_sim::store::seed_outcomes;
use shift_sim::{
    CancelToken, Execution, ExecutionReport, QueueConfig, RunEvent, RunStore, SchedulePolicy,
};

/// Everything that parameterizes a daemon instance.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Root directory: outcome stores live under `<root>/sweeps/`.
    pub root: PathBuf,
    /// Worker threads per sweep drain.
    pub threads: usize,
    /// Queue poll interval (claim heartbeat cadence for long runs).
    pub poll: Duration,
    /// Maximum accepted request-body size in bytes.
    pub max_body: usize,
    /// Claim-ordering policy for every sweep drain; [`SchedulePolicy::CostOrdered`]
    /// makes the NDJSON `claimed` events carry cost/rank/rate fields that
    /// explain each decision.
    pub policy: SchedulePolicy,
}

impl ServeConfig {
    /// Defaults: 2 drain threads, 200 ms poll, 1 MiB body limit.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        ServeConfig {
            root: root.into(),
            threads: 2,
            poll: Duration::from_millis(200),
            max_body: 1 << 20,
            policy: SchedulePolicy::default(),
        }
    }

    /// The directory holding one sweep's outcome files.
    pub fn sweep_dir(&self, id: &str) -> PathBuf {
        self.root.join("sweeps").join(id)
    }
}

/// Lifecycle of a submitted sweep.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobStatus {
    /// Accepted, waiting for the scheduler.
    Queued,
    /// Currently draining on the worker pool.
    Running,
    /// Finished; bundle and scoreboard are cached.
    Complete,
    /// Aborted with an error message.
    Failed(String),
}

impl fmt::Display for JobStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobStatus::Queued => write!(f, "queued"),
            JobStatus::Running => write!(f, "running"),
            JobStatus::Complete => write!(f, "complete"),
            JobStatus::Failed(_) => write!(f, "failed"),
        }
    }
}

/// Mutable per-job state, guarded by the job's mutex.
#[derive(Debug)]
pub struct JobState {
    /// Where the job is in its lifecycle.
    pub status: JobStatus,
    /// Distinct runs the plan needs.
    pub planned: usize,
    /// The drain's [`ExecutionReport`], once the sweep has run: where every
    /// outcome came from (executed / reused / reclaimed) and how many queue
    /// passes the drain took.
    pub report: Option<ExecutionReport>,
    /// NDJSON progress events, in emission order.
    pub events: Vec<String>,
    /// The cached wire bundle (`shift_report::wire_bundle_json`).
    pub bundle: Option<Arc<String>>,
    /// The cached markdown scoreboard.
    pub scoreboard: Option<Arc<String>>,
}

/// One accepted sweep: the resolved plan plus its observable state.
#[derive(Debug)]
pub struct Job {
    /// The job id: the plan's matrix fingerprint (16 hex digits).
    pub id: String,
    /// The submission, as resolved.
    pub spec: PlanSpec,
    plan: Mutex<Option<PaperPlan>>,
    state: Mutex<JobState>,
    cond: Condvar,
}

impl Job {
    /// Runs `f` under the state lock.
    pub fn with_state<T>(&self, f: impl FnOnce(&JobState) -> T) -> T {
        f(&self.state.lock().expect("job state poisoned"))
    }

    /// Blocks until the job is [`JobStatus::Complete`] or
    /// [`JobStatus::Failed`], returning the final status.
    pub fn wait(&self) -> JobStatus {
        let mut state = self.state.lock().expect("job state poisoned");
        loop {
            match &state.status {
                JobStatus::Complete | JobStatus::Failed(_) => return state.status.clone(),
                _ => state = self.cond.wait(state).expect("job state poisoned"),
            }
        }
    }

    /// Blocks until either more events than `cursor` exist or the job
    /// reached a terminal status; returns the new events past `cursor` and
    /// whether the job is finished.
    pub fn wait_events(&self, cursor: usize) -> (Vec<String>, bool) {
        let mut state = self.state.lock().expect("job state poisoned");
        loop {
            let finished = matches!(state.status, JobStatus::Complete | JobStatus::Failed(_));
            if state.events.len() > cursor || finished {
                return (
                    state.events[cursor.min(state.events.len())..].to_vec(),
                    finished,
                );
            }
            state = self.cond.wait(state).expect("job state poisoned");
        }
    }

    fn push_event(&self, line: String) {
        let mut state = self.state.lock().expect("job state poisoned");
        state.events.push(line);
        self.cond.notify_all();
    }

    /// The status summary document served for this job.
    pub fn summary(&self, cached: bool) -> String {
        let state = self.state.lock().expect("job state poisoned");
        let sources = state.report.map(|r| r.sources).unwrap_or_default();
        let mut fields = vec![
            ("id".to_owned(), Value::Str(self.id.clone())),
            ("status".to_owned(), Value::Str(state.status.to_string())),
            ("planned".to_owned(), Value::UInt(state.planned as u64)),
            ("executed".to_owned(), Value::UInt(sources.executed as u64)),
            ("reused".to_owned(), Value::UInt(sources.reused as u64)),
            (
                "reclaimed".to_owned(),
                Value::UInt(sources.reclaimed as u64),
            ),
            ("cached".to_owned(), Value::Bool(cached)),
        ];
        if let Some(report) = &state.report {
            fields.push(("report".to_owned(), report.to_value()));
        }
        if let JobStatus::Failed(msg) = &state.status {
            fields.push(("error".to_owned(), Value::Str(msg.clone())));
        }
        json::to_string(&Value::Map(fields))
    }
}

/// What [`Daemon::submit`] decided about a submission.
#[derive(Debug)]
pub struct Submission {
    /// The (possibly pre-existing) job this submission maps to.
    pub job: Arc<Job>,
    /// `true` when an identical plan had already completed before this
    /// submission arrived — the response is a pure cache replay.
    pub cached: bool,
}

/// The resident scheduler: registry, submission queue, and drain state.
pub struct Daemon {
    config: ServeConfig,
    registry: Mutex<HashMap<String, Arc<Job>>>,
    queue: Mutex<Option<mpsc::Sender<Arc<Job>>>>,
    queued: AtomicUsize,
    busy: AtomicBool,
    draining: AtomicBool,
    cancel: CancelToken,
    scheduler: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl fmt::Debug for Daemon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Daemon")
            .field("root", &self.config.root)
            .field("draining", &self.draining.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Daemon {
    /// Creates the root layout and starts the scheduler thread.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors creating `<root>/sweeps`.
    pub fn start(config: ServeConfig) -> io::Result<Arc<Daemon>> {
        fs::create_dir_all(config.root.join("sweeps"))?;
        let (tx, rx) = mpsc::channel::<Arc<Job>>();
        let daemon = Arc::new(Daemon {
            config,
            registry: Mutex::new(HashMap::new()),
            queue: Mutex::new(Some(tx)),
            queued: AtomicUsize::new(0),
            busy: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            cancel: CancelToken::new(),
            scheduler: Mutex::new(None),
        });
        let worker = Arc::clone(&daemon);
        let handle = std::thread::spawn(move || {
            while let Ok(job) = rx.recv() {
                worker.queued.fetch_sub(1, Ordering::Relaxed);
                worker.busy.store(true, Ordering::Relaxed);
                let result = worker.run_job(&job);
                worker.busy.store(false, Ordering::Relaxed);
                let mut state = job.state.lock().expect("job state poisoned");
                state.status = match result {
                    Ok(()) => JobStatus::Complete,
                    Err(msg) => JobStatus::Failed(msg),
                };
                drop(state);
                job.cond.notify_all();
            }
        });
        *daemon.scheduler.lock().expect("scheduler slot poisoned") = Some(handle);
        Ok(daemon)
    }

    /// The daemon's configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// `true` once [`drain`](Daemon::drain) has been called.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Relaxed)
    }

    /// Parses, resolves, and registers a submission body.
    ///
    /// Identical plans (same matrix fingerprint) collapse onto one job; a
    /// draining daemon rejects plans that would need *new* scheduling but
    /// still answers ones that already completed.
    ///
    /// # Errors
    ///
    /// [`crate::protocol::ApiError::BadJson`] /
    /// [`BadPlan`](crate::protocol::ApiError::BadPlan) for unusable bodies,
    /// [`Draining`](crate::protocol::ApiError::Draining) when new work is
    /// refused.
    pub fn submit(&self, body: &str) -> Result<Submission, crate::protocol::ApiError> {
        use crate::protocol::ApiError;

        let spec: PlanSpec = json::from_str(body).map_err(|e| ApiError::BadJson(e.to_string()))?;
        let settings = spec
            .resolve()
            .map_err(|e| ApiError::BadPlan(e.to_string()))?;
        let plan = PaperPlan::plan(settings);
        let id = plan.matrix().fingerprint().to_string();

        let mut registry = self.registry.lock().expect("registry poisoned");
        if let Some(job) = registry.get(&id) {
            let cached = job.with_state(|s| s.status == JobStatus::Complete);
            return Ok(Submission {
                job: Arc::clone(job),
                cached,
            });
        }
        if self.is_draining() {
            return Err(ApiError::Draining);
        }
        let job = Arc::new(Job {
            id: id.clone(),
            spec,
            state: Mutex::new(JobState {
                status: JobStatus::Queued,
                planned: plan.run_count(),
                report: None,
                events: Vec::new(),
                bundle: None,
                scoreboard: None,
            }),
            plan: Mutex::new(Some(plan)),
            cond: Condvar::new(),
        });
        registry.insert(id, Arc::clone(&job));
        // Holding the registry lock across the send keeps submit/drain
        // atomic: a job is either registered *and* queued, or neither.
        let queue = self.queue.lock().expect("queue poisoned");
        match queue.as_ref() {
            Some(tx) => {
                self.queued.fetch_add(1, Ordering::Relaxed);
                tx.send(Arc::clone(&job)).expect("scheduler alive");
            }
            None => return Err(ApiError::Draining),
        }
        Ok(Submission { job, cached: false })
    }

    /// Looks up a job by its fingerprint id.
    pub fn job(&self, id: &str) -> Option<Arc<Job>> {
        self.registry
            .lock()
            .expect("registry poisoned")
            .get(id)
            .cloned()
    }

    /// The `/v1/status` document: job counts and drain state.
    pub fn status_json(&self) -> String {
        let jobs = self.registry.lock().expect("registry poisoned").len();
        json::to_string(&Value::Map(vec![
            ("jobs".to_owned(), Value::UInt(jobs as u64)),
            (
                "queued".to_owned(),
                Value::UInt(self.queued.load(Ordering::Relaxed) as u64),
            ),
            (
                "busy".to_owned(),
                Value::Bool(self.busy.load(Ordering::Relaxed)),
            ),
            ("draining".to_owned(), Value::Bool(self.is_draining())),
        ]))
    }

    /// Stops accepting new plans and lets already-queued jobs finish; the
    /// scheduler thread exits once the queue is empty. Idempotent.
    pub fn drain(&self) {
        self.draining.store(true, Ordering::Relaxed);
        // Dropping the sender ends the scheduler's recv loop after the
        // in-flight jobs drain.
        self.queue.lock().expect("queue poisoned").take();
    }

    /// [`drain`](Daemon::drain), then blocks until the scheduler thread has
    /// exited (every queued job reached a terminal state).
    pub fn drain_and_join(&self) {
        self.drain();
        if let Some(handle) = self
            .scheduler
            .lock()
            .expect("scheduler slot poisoned")
            .take()
        {
            let _ = handle.join();
        }
    }

    /// Existing sweep directories under the root, sorted for determinism.
    fn sweep_dirs(&self) -> io::Result<Vec<PathBuf>> {
        let mut dirs = Vec::new();
        for entry in fs::read_dir(self.config.root.join("sweeps"))? {
            let path = entry?.path();
            if path.is_dir() {
                dirs.push(path);
            }
        }
        dirs.sort();
        Ok(dirs)
    }

    /// Executes one job end to end; called only from the scheduler thread,
    /// which serializes all sweeps (the exactly-once argument).
    fn run_job(&self, job: &Job) -> Result<(), String> {
        {
            let mut state = job.state.lock().expect("job state poisoned");
            state.status = JobStatus::Running;
            job.cond.notify_all();
        }
        let plan = job
            .plan
            .lock()
            .expect("plan slot poisoned")
            .take()
            .expect("a job is scheduled exactly once");
        let dir = self.config.sweep_dir(&job.id);
        fs::create_dir_all(&dir).map_err(|e| e.to_string())?;

        // Cross-sweep reuse: probe every sweep directory (including our
        // own — a restart or a killed worker leaves partial outcomes there)
        // and seed the hits under this plan's fingerprint. Stale
        // RESULTS_VERSION outcomes are skipped by the probe, so they are
        // re-executed, never served.
        let probe = RunStore::new(self.sweep_dirs().map_err(|e| e.to_string())?);
        let partial = probe
            .load_partial(plan.matrix())
            .map_err(|e| e.to_string())?;
        let seeded = seed_outcomes(plan.matrix(), &partial, &dir).map_err(|e| e.to_string())?;
        job.push_event(json::to_string(&Value::Map(vec![
            ("event".to_owned(), Value::Str("seeded".to_owned())),
            ("reused".to_owned(), Value::UInt(partial.reused as u64)),
            ("written".to_owned(), Value::UInt(seeded as u64)),
        ])));

        // The scheduler decision log: `claimed` events carry the cost rank
        // and the worker's measured rate so the NDJSON stream explains *why*
        // each claim happened in that order.
        let observer = |event: RunEvent| {
            let mut fields = vec![(
                "event".to_owned(),
                Value::Str(
                    match event {
                        RunEvent::Claimed { .. } => "claimed",
                        RunEvent::Executed { .. } => "executed",
                        RunEvent::AlreadyDone { .. } => "already_done",
                        RunEvent::Reclaimed { .. } => "reclaimed",
                    }
                    .to_owned(),
                ),
            )];
            fields.push(("run".to_owned(), Value::Str(event.key_id().to_string())));
            if let RunEvent::Claimed {
                cost,
                rank,
                worker_rate,
                ..
            } = event
            {
                fields.push(("cost".to_owned(), Value::UInt(cost.units())));
                fields.push(("rank".to_owned(), Value::UInt(rank as u64)));
                if let Some(rate) = worker_rate {
                    fields.push(("worker_rate".to_owned(), Value::UInt(rate)));
                }
            }
            job.push_event(json::to_string(&Value::Map(fields)));
        };
        let mut queue_config = QueueConfig::new(format!("serve-{}", std::process::id()));
        queue_config.poll = self.config.poll;
        let output = Execution::new(plan.matrix())
            .queue(queue_config)
            .dir(&dir)
            .threads(self.config.threads)
            .policy(self.config.policy)
            .observer(&observer)
            .cancel(&self.cancel)
            .run()
            .map_err(|e| e.to_string())?;
        let report = *output.report();
        if !report.complete {
            return Err("drain cancelled before the sweep completed".to_owned());
        }

        let outcomes = RunStore::new([&dir])
            .load(plan.matrix())
            .map_err(|e| e.to_string())?;
        let planned = plan.run_count();
        let paper_report = plan.collect(&outcomes);
        let bundle = Arc::new(wire_bundle_json(paper_report.artifacts()));
        let scoreboard = Arc::new(paper_report.scoreboard());

        let mut state = job.state.lock().expect("job state poisoned");
        state.planned = planned;
        state.report = Some(report);
        state.bundle = Some(bundle);
        state.scoreboard = Some(scoreboard);
        drop(state);
        job.push_event(json::to_string(&Value::Map(vec![
            ("event".to_owned(), Value::Str("complete".to_owned())),
            (
                "executed".to_owned(),
                Value::UInt(report.sources.executed as u64),
            ),
        ])));
        Ok(())
    }
}
