//! Typed API errors and their wire encoding.
//!
//! Every failure a client can provoke maps to exactly one [`ApiError`]
//! variant with a stable machine-readable `code`, rendered as
//! `{"error": {"code": ..., "message": ...}}`. The protocol tests assert on
//! the codes, not the prose, so messages can improve without breaking
//! clients.

use serde::{json, Value};

/// Every error the HTTP surface can return.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ApiError {
    /// The submission body was not parseable JSON (or not a plan shape).
    BadJson(String),
    /// The plan parsed but cannot be resolved (unknown workload, too few
    /// cores).
    BadPlan(String),
    /// No such endpoint or sweep id.
    NotFound,
    /// The endpoint exists but not for this method.
    MethodNotAllowed,
    /// The declared body length exceeds the server limit.
    PayloadTooLarge {
        /// The server's body limit in bytes.
        limit: usize,
    },
    /// The request itself was not parseable HTTP.
    BadRequest(String),
    /// The daemon is draining and accepts no new work (cached answers are
    /// still served).
    Draining,
    /// The sweep failed on the server side.
    Internal(String),
}

impl ApiError {
    /// The HTTP status this error is answered with.
    pub fn status(&self) -> u16 {
        match self {
            ApiError::BadJson(_) | ApiError::BadPlan(_) | ApiError::BadRequest(_) => 400,
            ApiError::NotFound => 404,
            ApiError::MethodNotAllowed => 405,
            ApiError::PayloadTooLarge { .. } => 413,
            ApiError::Draining => 503,
            ApiError::Internal(_) => 500,
        }
    }

    /// The stable machine-readable error code.
    pub fn code(&self) -> &'static str {
        match self {
            ApiError::BadJson(_) => "bad_json",
            ApiError::BadPlan(_) => "bad_plan",
            ApiError::NotFound => "not_found",
            ApiError::MethodNotAllowed => "method_not_allowed",
            ApiError::PayloadTooLarge { .. } => "payload_too_large",
            ApiError::BadRequest(_) => "bad_request",
            ApiError::Draining => "draining",
            ApiError::Internal(_) => "internal",
        }
    }

    /// The human-readable message.
    pub fn message(&self) -> String {
        match self {
            ApiError::BadJson(msg) => format!("submission is not a valid plan JSON: {msg}"),
            ApiError::BadPlan(msg) => format!("plan cannot be resolved: {msg}"),
            ApiError::NotFound => "no such endpoint or sweep".to_owned(),
            ApiError::MethodNotAllowed => "endpoint does not support this method".to_owned(),
            ApiError::PayloadTooLarge { limit } => {
                format!("body exceeds the {limit}-byte limit")
            }
            ApiError::BadRequest(msg) => msg.clone(),
            ApiError::Draining => "daemon is draining; new sweeps are not accepted".to_owned(),
            ApiError::Internal(msg) => msg.clone(),
        }
    }

    /// The JSON body: `{"error": {"code": ..., "message": ...}}`.
    pub fn body(&self) -> String {
        let doc = Value::Map(vec![(
            "error".to_owned(),
            Value::Map(vec![
                ("code".to_owned(), Value::Str(self.code().to_owned())),
                ("message".to_owned(), Value::Str(self.message())),
            ]),
        )]);
        json::to_string(&doc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_has_a_stable_code_and_parseable_body() {
        let cases: Vec<(ApiError, u16, &str)> = vec![
            (ApiError::BadJson("x".into()), 400, "bad_json"),
            (ApiError::BadPlan("x".into()), 400, "bad_plan"),
            (ApiError::NotFound, 404, "not_found"),
            (ApiError::MethodNotAllowed, 405, "method_not_allowed"),
            (
                ApiError::PayloadTooLarge { limit: 9 },
                413,
                "payload_too_large",
            ),
            (ApiError::BadRequest("x".into()), 400, "bad_request"),
            (ApiError::Draining, 503, "draining"),
            (ApiError::Internal("x".into()), 500, "internal"),
        ];
        for (err, status, code) in cases {
            assert_eq!(err.status(), status);
            assert_eq!(err.code(), code);
            let doc = json::parse(&err.body()).expect("error body parses");
            assert_eq!(
                doc.get("error")
                    .and_then(|e| e.get("code"))
                    .and_then(Value::as_str),
                Some(code)
            );
        }
    }
}
