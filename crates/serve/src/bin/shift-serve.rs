//! The `shift-serve` daemon binary.
//!
//! ```text
//! shift-serve --root serve-root [--listen 127.0.0.1:7513] [--unix PATH]
//!             [--threads N] [--poll-ms MS]
//! ```
//!
//! Boots the resident sweep scheduler, prints the bound address, and runs
//! until `POST /v1/shutdown` drains it. See `docs/OPERATIONS.md` ("Serve
//! mode") for the endpoint reference and the drain procedure.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use shift_serve::{ServeConfig, Server};

struct Args {
    root: PathBuf,
    listen: String,
    unix: Option<PathBuf>,
    threads: Option<usize>,
    poll_ms: Option<u64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("serve-root"),
        listen: "127.0.0.1:7513".to_owned(),
        unix: None,
        threads: None,
        poll_ms: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--root" => args.root = PathBuf::from(value("--root")?),
            "--listen" => args.listen = value("--listen")?,
            "--unix" => args.unix = Some(PathBuf::from(value("--unix")?)),
            "--threads" => {
                args.threads = Some(
                    value("--threads")?
                        .parse()
                        .map_err(|e| format!("bad --threads: {e}"))?,
                )
            }
            "--poll-ms" => {
                args.poll_ms = Some(
                    value("--poll-ms")?
                        .parse()
                        .map_err(|e| format!("bad --poll-ms: {e}"))?,
                )
            }
            "--help" | "-h" => {
                return Err(
                    "usage: shift-serve --root DIR [--listen ADDR] [--unix PATH] \
                     [--threads N] [--poll-ms MS]"
                        .to_owned(),
                )
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let mut config = ServeConfig::new(&args.root);
    if let Some(threads) = args.threads {
        config.threads = threads.max(1);
    }
    if let Some(poll_ms) = args.poll_ms {
        config.poll = Duration::from_millis(poll_ms.max(1));
    }
    let server = match Server::start_with_unix(config, args.listen.as_str(), args.unix.clone()) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("shift-serve: failed to start on {}: {e}", args.listen);
            return ExitCode::FAILURE;
        }
    };
    println!(
        "shift-serve listening on http://{} (root: {})",
        server.addr(),
        args.root.display()
    );
    if let Some(path) = &args.unix {
        println!(
            "shift-serve also listening on unix socket {}",
            path.display()
        );
    }
    server.join();
    println!("shift-serve drained and shut down");
    ExitCode::SUCCESS
}
