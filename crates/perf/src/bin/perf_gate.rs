//! CI perf regression gate: `perf_gate <snapshot BENCH.json> <fresh BENCH.json>`.
//!
//! Exits non-zero when the fresh `shift_fetches_per_sec` drops more than the
//! headline tolerance (default 20%; override with `SHIFT_PERF_TOLERANCE`, a
//! fraction) below the committed snapshot, or when any gated hot-path
//! component median (`shift_perf::gate::GATED_COMPONENTS`) regresses beyond
//! the component tolerance (default 50%; `SHIFT_PERF_COMPONENT_TOLERANCE`).
//! Run after `perf --quick` in the perf-smoke job; attach the
//! `skip-perf-gate` label to a PR to skip the job on runners known to be
//! noisy.

use std::process::ExitCode;

use shift_perf::gate;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [snapshot_path, fresh_path] = args.as_slice() else {
        eprintln!("usage: perf_gate <snapshot BENCH.json> <fresh BENCH.json>");
        return ExitCode::FAILURE;
    };
    let read = |path: &String| {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
    };
    let (snapshot, fresh) = match read(snapshot_path).and_then(|s| Ok((s, read(fresh_path)?))) {
        Ok(pair) => pair,
        Err(message) => {
            eprintln!("perf gate error: {message}");
            return ExitCode::FAILURE;
        }
    };

    let headline = gate::evaluate(&snapshot, &fresh, gate::tolerance_from_env());
    let components =
        gate::evaluate_components(&snapshot, &fresh, gate::component_tolerance_from_env());
    match (headline, components) {
        (Ok(report), Ok(component_reports)) => {
            println!("{report}");
            for component in &component_reports {
                println!("{component}");
            }
            let failed: Vec<&str> = (!report.pass)
                .then_some("shift_fetches_per_sec")
                .into_iter()
                .chain(
                    component_reports
                        .iter()
                        .filter(|c| !c.pass)
                        .map(|c| c.id.as_str()),
                )
                .collect();
            if failed.is_empty() {
                ExitCode::SUCCESS
            } else {
                eprintln!(
                    "perf gate failed: {} regressed beyond tolerance vs {snapshot_path}; \
                     if this is runner noise, re-run or label the PR `skip-perf-gate`",
                    failed.join(", ")
                );
                ExitCode::FAILURE
            }
        }
        (Err(message), _) | (_, Err(message)) => {
            eprintln!("perf gate error: {message}");
            ExitCode::FAILURE
        }
    }
}
