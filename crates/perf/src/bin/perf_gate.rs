//! CI perf regression gate: `perf_gate <snapshot BENCH.json> <fresh BENCH.json>`.
//!
//! Exits non-zero when the fresh `shift_fetches_per_sec` drops more than the
//! tolerance (default 20%; override with `SHIFT_PERF_TOLERANCE`, a fraction)
//! below the committed snapshot. Run after `perf --quick` in the perf-smoke
//! job; attach the `skip-perf-gate` label to a PR to skip the job on runners
//! known to be noisy.

use std::process::ExitCode;

use shift_perf::gate;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [snapshot_path, fresh_path] = args.as_slice() else {
        eprintln!("usage: perf_gate <snapshot BENCH.json> <fresh BENCH.json>");
        return ExitCode::FAILURE;
    };
    let read = |path: &String| {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
    };
    let verdict = read(snapshot_path)
        .and_then(|snapshot| Ok((snapshot, read(fresh_path)?)))
        .and_then(|(snapshot, fresh)| {
            gate::evaluate(&snapshot, &fresh, gate::tolerance_from_env())
        });
    match verdict {
        Ok(report) => {
            println!("{report}");
            if report.pass {
                ExitCode::SUCCESS
            } else {
                eprintln!(
                    "perf gate failed: shift_fetches_per_sec regressed more than {:.0}% \
                     vs {snapshot_path}; if this is runner noise, re-run or label the PR \
                     `skip-perf-gate`",
                    report.tolerance * 100.0
                );
                ExitCode::FAILURE
            }
        }
        Err(message) => {
            eprintln!("perf gate error: {message}");
            ExitCode::FAILURE
        }
    }
}
