//! Runs the perf suite and publishes `BENCH.{json,csv,md}`.
//!
//! ```text
//! cargo run --release -p shift-perf --bin perf            # full suite
//! cargo run --release -p shift-perf --bin perf -- --quick # CI-sized
//! ```
//!
//! Artifacts land in `target/artifacts/` (`SHIFT_ARTIFACTS` overrides); see
//! `docs/PERFORMANCE.md` for how to read them.

use shift_perf::{artifact_dir, run_suite, to_artifact, SuiteMode};

fn main() {
    let mode = SuiteMode::from_env_and_args();
    println!(
        "shift-perf: running the {} suite",
        if mode == SuiteMode::Quick {
            "quick"
        } else {
            "full"
        }
    );
    let doc = run_suite(mode);

    println!();
    println!(
        "end-to-end (quickstart workload, 8 cores): baseline {:.0} fetches/s, SHIFT {:.0} fetches/s",
        doc.baseline_fetches_per_sec, doc.shift_fetches_per_sec
    );
    println!(
        "sweep: {:.2} Test-scale runs/s on {} thread(s)",
        doc.runs_per_sec, doc.threads
    );

    let artifact = to_artifact(&doc);
    let dir = artifact_dir();
    match artifact.write_to(&dir) {
        Ok(paths) => {
            for path in paths {
                println!("wrote {}", path.display());
            }
        }
        Err(e) => {
            eprintln!(
                "error: could not write BENCH artifacts to {}: {e}",
                dir.display()
            );
            std::process::exit(1);
        }
    }
}
