//! The `shift-perf` measurement subsystem.
//!
//! Wall-clock per simulated fetch is the binding constraint on how many
//! (workload × prefetcher × scale × seed) scenarios the reproduction can
//! sweep, so this crate gives every PR a recorded perf datapoint:
//!
//! * **Microbenchmarks** (via the upgraded `compat/criterion` shim: warm-up
//!   passes, batched timed iterations, median ns/iter) for the components on
//!   the per-fetch hot path — trace generation, history-buffer append/read,
//!   index-table lookup, LLC bank tag scan, tabulated NoC round trip, SHIFT
//!   and PIF lookup.
//! * **End-to-end engine stepping** on the quickstart workload (the same
//!   web-frontend configuration `examples/quickstart.rs` runs), measured in
//!   simulated fetches per second through [`shift_sim::Engine::step_rounds`],
//!   the batched stepping entry point.
//! * **Sweep throughput**: a small deduplicated [`shift_sim::RunMatrix`]
//!   executed end to end, in runs per second.
//!
//! The `perf` binary runs the whole suite and publishes
//! `target/artifacts/BENCH.{json,csv,md}` through [`shift_report::Artifact`]
//! (`SHIFT_ARTIFACTS` overrides the directory), so the numbers are
//! machine-diffable across PRs — CI uploads them from every build (quick
//! mode: `--quick` or `SHIFT_PERF_QUICK=1`). See `docs/PERFORMANCE.md` for
//! how to read the trajectory.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gate;

use criterion::{BenchReport, Criterion, Throughput};
use serde::Serialize;
use shift_cache::{CacheConfig, LlcConfig, NucaLlc, SetAssocCache};
use shift_core::{
    HistoryBuffer, IndexTable, InstructionPrefetcher, Pif, PifConfig, Shift, ShiftConfig,
    SpatialRegion,
};
use shift_noc::{Mesh, MeshConfig, RoundTripTable};
use shift_report::{Artifact, Table};
use shift_sim::matrix::default_threads;
use shift_sim::{CmpConfig, PrefetcherConfig, RunMatrix, SimOptions};
use shift_trace::{presets, CoreTraceGenerator, Scale, WorkloadSpec};
use shift_types::{AccessClass, BlockAddr, CoreId};

/// How large a suite to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SuiteMode {
    /// CI-sized: fewer samples and shorter stepping batches (~seconds).
    Quick,
    /// Full-sized: the numbers recorded in the `docs/PERFORMANCE.md`
    /// trajectory.
    Full,
}

impl SuiteMode {
    /// Reads the mode from the process arguments (`--quick`) and the
    /// `SHIFT_PERF_QUICK` environment variable (any non-empty value but `0`).
    pub fn from_env_and_args() -> Self {
        let arg_quick = std::env::args().any(|a| a == "--quick");
        let env_quick = std::env::var("SHIFT_PERF_QUICK").is_ok_and(|v| !v.is_empty() && v != "0");
        if arg_quick || env_quick {
            SuiteMode::Quick
        } else {
            SuiteMode::Full
        }
    }

    fn is_quick(self) -> bool {
        self == SuiteMode::Quick
    }
}

/// One measured component, in the `BENCH.json` document.
#[derive(Clone, Debug, Serialize)]
pub struct ComponentResult {
    /// Criterion group the measurement ran in.
    pub group: String,
    /// Benchmark name.
    pub name: String,
    /// Median nanoseconds per operation.
    pub ns_per_op: f64,
    /// Operations (or annotated elements) per second implied by the median.
    pub per_sec: f64,
}

impl ComponentResult {
    fn from_report(report: &BenchReport) -> Self {
        ComponentResult {
            group: report.group.clone(),
            name: report.name.clone(),
            ns_per_op: report.median_ns_per_iter,
            per_sec: report.per_second(),
        }
    }
}

/// The full suite result: the `data` tree of the `BENCH` artifact.
#[derive(Clone, Debug, Serialize)]
pub struct BenchDoc {
    /// Document schema tag, bumped when fields change meaning.
    pub schema: u32,
    /// `true` if the quick (CI-sized) suite produced these numbers.
    pub quick: bool,
    /// Worker threads the sweep measurement used (`SHIFT_THREADS` or the
    /// host's available parallelism).
    pub threads: usize,
    /// End-to-end simulated fetches per second, baseline (no prefetcher).
    pub baseline_fetches_per_sec: f64,
    /// End-to-end simulated fetches per second with virtualized SHIFT (the
    /// quickstart configuration; the headline throughput number).
    pub shift_fetches_per_sec: f64,
    /// Complete Test-scale simulations per second through `RunMatrix`.
    pub runs_per_sec: f64,
    /// Per-component medians.
    pub components: Vec<ComponentResult>,
}

/// The quickstart workload the end-to-end measurement steps — the same
/// configuration `examples/quickstart.rs` simulates.
pub fn quickstart_workload() -> WorkloadSpec {
    presets::web_frontend().scaled_footprint(0.25)
}

fn bench_trace_generation(c: &mut Criterion, mode: SuiteMode) {
    let mut group = c.benchmark_group("trace");
    group
        .sample_size(if mode.is_quick() { 5 } else { 10 })
        .warm_up_iterations(10_000)
        .measurement_iterations(if mode.is_quick() { 20_000 } else { 100_000 })
        .throughput(Throughput::Elements(1));
    let mut generator = CoreTraceGenerator::new(&quickstart_workload(), CoreId::new(0), 7);
    group.bench_function("next_event", |b| b.iter(|| generator.next_event()));
    group.finish();
}

fn bench_history_buffer(c: &mut Criterion, mode: SuiteMode) {
    let mut group = c.benchmark_group("history");
    group
        .sample_size(if mode.is_quick() { 5 } else { 10 })
        .warm_up_iterations(1_000)
        .measurement_iterations(if mode.is_quick() { 20_000 } else { 100_000 })
        .throughput(Throughput::Elements(1));

    let mut history = HistoryBuffer::new(32 * 1024);
    let mut trigger = 0u64;
    group.bench_function("append", |b| {
        b.iter(|| {
            trigger = trigger.wrapping_add(16);
            history.append(SpatialRegion::new(BlockAddr::new(trigger), 8))
        })
    });

    let mut ptr = 0u32;
    let mut window = Vec::with_capacity(8);
    group.bench_function("read_window5", |b| {
        b.iter(|| {
            window.clear();
            history.read_into(ptr, 5, &mut window);
            ptr = history.advance_ptr(ptr, 1);
            window.len()
        })
    });
    group.finish();
}

fn bench_index_table(c: &mut Criterion, mode: SuiteMode) {
    let mut group = c.benchmark_group("index");
    group
        .sample_size(if mode.is_quick() { 5 } else { 10 })
        .warm_up_iterations(1_000)
        .measurement_iterations(if mode.is_quick() { 20_000 } else { 100_000 })
        .throughput(Throughput::Elements(1));

    // The paper's PIF_32K design point: an 8 K-entry per-core index table,
    // fully populated so every lookup probes a live open-addressed slot and
    // splices the LRU list (the hot path of every L1-I miss).
    const ENTRIES: u64 = 8 * 1024;
    let mut table = IndexTable::new(ENTRIES as usize);
    for i in 0..ENTRIES {
        table.update(BlockAddr::new(i * 3), i as u32);
    }
    let mut key = 0u64;
    group.bench_function("lookup_hit", |b| {
        b.iter(|| {
            key += 1;
            if key == ENTRIES {
                key = 0;
            }
            table.lookup(BlockAddr::new(key * 3))
        })
    });
    group.finish();
}

fn bench_bank_scan(c: &mut Criterion, mode: SuiteMode) {
    let mut group = c.benchmark_group("scan");
    group
        .sample_size(if mode.is_quick() { 5 } else { 10 })
        .warm_up_iterations(1_000)
        .measurement_iterations(if mode.is_quick() { 20_000 } else { 100_000 })
        .throughput(Throughput::Elements(1));

    // One LLC bank's worth of sets at the paper's 16-way associativity, fully
    // resident, so every access scans a full 16-tag set — the packed-array
    // scan the SoA layout (and the optional `simd` feature) accelerates.
    const SETS: u64 = 512;
    const WAYS: u64 = 16;
    let mut bank: SetAssocCache<()> = SetAssocCache::new(CacheConfig::new(
        (SETS * WAYS) as usize * 64,
        WAYS as usize,
        64,
        10,
    ));
    for way in 0..WAYS {
        for set in 0..SETS {
            bank.fill(BlockAddr::new(way * SETS + set), ());
        }
    }
    let mut i = 0u64;
    group.bench_function("bank_tag_scan", |b| {
        b.iter(|| {
            i = i.wrapping_add(1);
            let block = i.wrapping_mul(0x9E37_79B9_7F4A_7C15) % (SETS * WAYS);
            bank.access(BlockAddr::new(block)).is_hit()
        })
    });
    group.finish();
}

/// Builds a SHIFT instance whose generator core has recorded a long stream,
/// plus the warmed LLC it virtualizes into.
fn warmed_shift() -> (Shift, NucaLlc) {
    let mut llc = NucaLlc::new(LlcConfig::micro13(16));
    let config = ShiftConfig::virtualized_micro13(CoreId::new(0), BlockAddr::new(0x7000_0000));
    let mut shift = Shift::new(config, 16);
    let mut out = Vec::new();
    for rep in 0..200u64 {
        for step in 0..64u64 {
            let block = BlockAddr::new(0x1000 + step * 3 + (rep % 2));
            llc.access(block, AccessClass::Demand);
            shift.on_retire(CoreId::new(0), block, &mut llc, &mut out);
            out.clear();
        }
    }
    (shift, llc)
}

fn bench_prefetcher_lookup(c: &mut Criterion, mode: SuiteMode) {
    let mut group = c.benchmark_group("lookup");
    group
        .sample_size(if mode.is_quick() { 5 } else { 10 })
        .warm_up_iterations(100)
        .measurement_iterations(if mode.is_quick() { 2_000 } else { 10_000 })
        .throughput(Throughput::Elements(1));

    let (mut shift, mut llc) = warmed_shift();
    let mut out = Vec::new();
    group.bench_function("shift_on_access_miss", |b| {
        b.iter(|| {
            out.clear();
            shift.on_access(
                CoreId::new(7),
                BlockAddr::new(0x1000),
                false,
                &mut llc,
                &mut out,
            );
            out.len()
        })
    });

    let mut pif = Pif::new(PifConfig::pif_32k(), 1);
    let mut pif_llc = NucaLlc::new(LlcConfig::micro13(1));
    for rep in 0..200u64 {
        for step in 0..64u64 {
            let block = BlockAddr::new(0x1000 + step * 3 + (rep % 2));
            pif.on_retire(CoreId::new(0), block, &mut pif_llc, &mut out);
            out.clear();
        }
    }
    group.bench_function("pif_on_access_miss", |b| {
        b.iter(|| {
            out.clear();
            pif.on_access(
                CoreId::new(0),
                BlockAddr::new(0x1000),
                false,
                &mut pif_llc,
                &mut out,
            );
            out.len()
        })
    });
    group.finish();
}

fn bench_noc(c: &mut Criterion, mode: SuiteMode) {
    let mut group = c.benchmark_group("noc");
    group
        .sample_size(if mode.is_quick() { 5 } else { 10 })
        .warm_up_iterations(1_000)
        .measurement_iterations(if mode.is_quick() { 20_000 } else { 100_000 })
        .throughput(Throughput::Elements(1));

    // The engine's LLC access pattern: an 8 B request out, a 64 B block
    // back, on the paper's 4×4 mesh — one tabulated round trip per
    // iteration, cycling through every (core tile, bank tile) pair so the
    // table row is not pinned in L1.
    let config = MeshConfig::micro13();
    let table = RoundTripTable::new(&config, 8, 64);
    let tiles = config.tiles();
    let mut mesh = Mesh::new(config);
    let mut i = 0usize;
    group.bench_function("round_trip", |b| {
        b.iter(|| {
            i = i.wrapping_add(1);
            let from = i % tiles;
            let to = (i / tiles) % tiles;
            mesh.record_round_trip(&table, from, to, AccessClass::Demand)
        })
    });
    group.finish();
}

/// Rounds each timed engine sample steps (per core).
fn engine_rounds(mode: SuiteMode) -> usize {
    if mode.is_quick() {
        1_000
    } else {
        5_000
    }
}

fn bench_engine(c: &mut Criterion, mode: SuiteMode) {
    let cores = 8u16;
    let rounds = engine_rounds(mode);
    let mut group = c.benchmark_group("engine");
    group
        .sample_size(if mode.is_quick() { 5 } else { 10 })
        .warm_up_iterations(1)
        .measurement_iterations(1)
        .throughput(Throughput::Elements(rounds as u64 * cores as u64));

    for prefetcher in [
        PrefetcherConfig::None,
        PrefetcherConfig::next_line(),
        PrefetcherConfig::shift_virtualized(),
    ] {
        let label = prefetcher.label();
        let config = CmpConfig::micro13(cores, prefetcher);
        let options = SimOptions::new(Scale::Demo, 1);
        let sim = shift_sim::Simulation::standalone(config, quickstart_workload(), options);
        let mut engine = sim.engine();
        // Reach steady state before sampling: warmed caches and history.
        engine.step_rounds(if mode.is_quick() { 5_000 } else { 20_000 });
        group.bench_function(&format!("step_{label}"), |b| {
            b.iter(|| engine.step_rounds(rounds))
        });
    }
    group.finish();
}

fn bench_matrix(c: &mut Criterion, mode: SuiteMode) {
    let mut matrix = RunMatrix::new();
    let workload = presets::tiny();
    for prefetcher in [
        PrefetcherConfig::None,
        PrefetcherConfig::next_line(),
        PrefetcherConfig::shift_virtualized(),
    ] {
        matrix.standalone(&workload, prefetcher, 4, Scale::Test, 7);
    }
    let runs = matrix.len() as u64;
    let mut group = c.benchmark_group("matrix");
    group
        .sample_size(if mode.is_quick() { 2 } else { 5 })
        .warm_up_iterations(if mode.is_quick() { 0 } else { 1 })
        .measurement_iterations(1)
        .throughput(Throughput::Elements(runs));
    group.bench_function("execute_test_scale", |b| b.iter(|| matrix.execute().len()));
    group.finish();
}

/// Runs the whole suite and assembles the `BENCH` document.
pub fn run_suite(mode: SuiteMode) -> BenchDoc {
    let mut criterion = Criterion::default();
    bench_trace_generation(&mut criterion, mode);
    bench_history_buffer(&mut criterion, mode);
    bench_index_table(&mut criterion, mode);
    bench_bank_scan(&mut criterion, mode);
    bench_prefetcher_lookup(&mut criterion, mode);
    bench_noc(&mut criterion, mode);
    bench_engine(&mut criterion, mode);
    bench_matrix(&mut criterion, mode);

    let reports = criterion.take_reports();
    let find = |group: &str, name: &str| -> f64 {
        reports
            .iter()
            .find(|r| r.group == group && r.name == name)
            .map(BenchReport::per_second)
            .unwrap_or(0.0)
    };
    BenchDoc {
        schema: 1,
        quick: mode.is_quick(),
        threads: default_threads(),
        baseline_fetches_per_sec: find("engine", "step_Baseline"),
        shift_fetches_per_sec: find("engine", "step_SHIFT"),
        runs_per_sec: find("matrix", "execute_test_scale"),
        components: reports.iter().map(ComponentResult::from_report).collect(),
    }
}

/// Renders the document as the `BENCH` artifact (JSON + CSV + markdown).
pub fn to_artifact(doc: &BenchDoc) -> Artifact {
    let mut table = Table::new(["group", "name", "ns_per_op", "per_sec"]);
    for component in &doc.components {
        table.push_row([
            component.group.as_str(),
            component.name.as_str(),
            &format!("{:.1}", component.ns_per_op),
            &format!("{:.0}", component.per_sec),
        ]);
    }
    table.push_row([
        "end_to_end",
        "baseline_fetches_per_sec",
        "",
        &format!("{:.0}", doc.baseline_fetches_per_sec),
    ]);
    table.push_row([
        "end_to_end",
        "shift_fetches_per_sec",
        "",
        &format!("{:.0}", doc.shift_fetches_per_sec),
    ]);
    table.push_row([
        "end_to_end",
        "runs_per_sec",
        "",
        &format!("{:.2}", doc.runs_per_sec),
    ]);
    Artifact::new("BENCH", "Simulator throughput benchmark", doc, table)
}

/// The artifact output directory: `SHIFT_ARTIFACTS` or `target/artifacts`.
pub fn artifact_dir() -> std::path::PathBuf {
    std::env::var_os("SHIFT_ARTIFACTS")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::Path::new("target").join("artifacts"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_suite_produces_nonzero_headline_numbers() {
        let doc = run_suite(SuiteMode::Quick);
        assert!(doc.quick);
        assert!(doc.threads >= 1);
        assert!(doc.baseline_fetches_per_sec > 0.0);
        assert!(doc.shift_fetches_per_sec > 0.0);
        assert!(doc.runs_per_sec > 0.0);
        assert!(doc.components.len() >= 9);
        for (group, name) in gate::GATED_COMPONENTS {
            assert!(
                doc.components
                    .iter()
                    .any(|c| c.group == *group && c.name == *name),
                "suite did not measure gated component {group}/{name}"
            );
        }
        assert!(doc.components.iter().all(|c| c.ns_per_op >= 0.0));
    }

    #[test]
    fn artifact_renders_all_formats() {
        let doc = BenchDoc {
            schema: 1,
            quick: true,
            threads: 4,
            baseline_fetches_per_sec: 2e6,
            shift_fetches_per_sec: 1.5e6,
            runs_per_sec: 10.0,
            components: vec![ComponentResult {
                group: "trace".into(),
                name: "next_event".into(),
                ns_per_op: 55.0,
                per_sec: 1.8e7,
            }],
        };
        let artifact = to_artifact(&doc);
        assert_eq!(artifact.name(), "BENCH");
        let json = artifact.to_json();
        assert!(json.contains("\"shift_fetches_per_sec\""));
        assert!(json.contains("\"components\""));
        let md = artifact.to_markdown();
        assert!(md.contains("ns_per_op"));
    }

    #[test]
    fn mode_detection_follows_env_variable() {
        // The test binary is never invoked with `--quick`, so the env
        // variable alone decides. No other test in this binary reads it.
        std::env::remove_var("SHIFT_PERF_QUICK");
        assert_eq!(SuiteMode::from_env_and_args(), SuiteMode::Full);
        std::env::set_var("SHIFT_PERF_QUICK", "0");
        assert_eq!(SuiteMode::from_env_and_args(), SuiteMode::Full);
        std::env::set_var("SHIFT_PERF_QUICK", "1");
        assert_eq!(SuiteMode::from_env_and_args(), SuiteMode::Quick);
        std::env::remove_var("SHIFT_PERF_QUICK");
    }
}
