//! The perf regression gate: compares a freshly measured `BENCH.json`
//! against a committed snapshot and fails CI when the headline throughput
//! drops beyond a tolerance.
//!
//! The gated metric is `data.shift_fetches_per_sec` — end-to-end simulated
//! fetches per second with virtualized SHIFT, the number every optimization
//! PR moves. The tolerance default (20%) is deliberately loose: shared CI
//! runners are noisy, and the gate's job is to catch real regressions
//! (2× slowdowns from an accidental allocation in the hot loop), not to
//! flake on scheduler jitter. Override with the `SHIFT_PERF_TOLERANCE`
//! environment variable (a fraction, e.g. `0.1`), and skip the CI job
//! entirely with the `skip-perf-gate` PR label when a runner is known-bad.

use std::fmt;

use serde::json;

/// Default allowed drop: 20% below the snapshot.
pub const DEFAULT_TOLERANCE: f64 = 0.20;

/// The verdict of one gate evaluation.
#[derive(Clone, Debug, PartialEq)]
pub struct GateReport {
    /// Snapshot (committed) fetches/sec.
    pub snapshot: f64,
    /// Freshly measured fetches/sec.
    pub fresh: f64,
    /// Allowed fractional drop.
    pub tolerance: f64,
    /// `fresh / snapshot`.
    pub ratio: f64,
    /// `true` if the fresh number is within tolerance.
    pub pass: bool,
}

impl fmt::Display for GateReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shift_fetches_per_sec: fresh {:.0} vs snapshot {:.0} ({:+.1}%), tolerance -{:.0}% => {}",
            self.fresh,
            self.snapshot,
            (self.ratio - 1.0) * 100.0,
            self.tolerance * 100.0,
            if self.pass { "PASS" } else { "FAIL" }
        )
    }
}

/// Extracts `data.shift_fetches_per_sec` from a `BENCH.json` artifact
/// document.
///
/// # Errors
///
/// Returns a message naming what is missing when the document is not a
/// BENCH artifact (bad JSON, no `data` tree, missing or non-positive
/// metric).
pub fn shift_fetches_per_sec(bench_json: &str) -> Result<f64, String> {
    let doc = json::parse(bench_json).map_err(|e| format!("BENCH.json does not parse: {e}"))?;
    let value = doc
        .get("data")
        .ok_or("BENCH.json has no `data` tree (not an artifact document?)")?
        .get("shift_fetches_per_sec")
        .ok_or("BENCH.json data has no `shift_fetches_per_sec`")?
        .as_f64()
        .ok_or("`shift_fetches_per_sec` is not a number")?;
    if value > 0.0 {
        Ok(value)
    } else {
        Err(format!("`shift_fetches_per_sec` is non-positive ({value})"))
    }
}

/// Evaluates the gate: does `fresh_json`'s headline throughput stay within
/// `tolerance` of `snapshot_json`'s?
///
/// # Errors
///
/// Propagates extraction failures from either document and rejects
/// nonsensical tolerances (outside `[0, 1)`).
pub fn evaluate(
    snapshot_json: &str,
    fresh_json: &str,
    tolerance: f64,
) -> Result<GateReport, String> {
    if !(0.0..1.0).contains(&tolerance) {
        return Err(format!(
            "tolerance must be a fraction in [0, 1), got {tolerance}"
        ));
    }
    let snapshot = shift_fetches_per_sec(snapshot_json).map_err(|e| format!("snapshot: {e}"))?;
    let fresh = shift_fetches_per_sec(fresh_json).map_err(|e| format!("fresh: {e}"))?;
    let ratio = fresh / snapshot;
    Ok(GateReport {
        snapshot,
        fresh,
        tolerance,
        ratio,
        pass: ratio >= 1.0 - tolerance,
    })
}

/// Reads the tolerance from `SHIFT_PERF_TOLERANCE`, defaulting to
/// [`DEFAULT_TOLERANCE`]; invalid values fall back to the default with a
/// warning on stderr.
pub fn tolerance_from_env() -> f64 {
    match std::env::var("SHIFT_PERF_TOLERANCE") {
        Err(_) => DEFAULT_TOLERANCE,
        Ok(raw) => match raw.trim().parse::<f64>() {
            Ok(t) if (0.0..1.0).contains(&t) => t,
            _ => {
                eprintln!(
                    "ignoring invalid SHIFT_PERF_TOLERANCE `{raw}` (want a fraction in [0, 1)); \
                     using {DEFAULT_TOLERANCE}"
                );
                DEFAULT_TOLERANCE
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_doc(fetches_per_sec: f64) -> String {
        format!(
            "{{\"name\": \"BENCH\", \"data\": {{\"schema\": 1, \
             \"shift_fetches_per_sec\": {fetches_per_sec}, \"components\": []}}}}"
        )
    }

    #[test]
    fn within_tolerance_passes() {
        let report = evaluate(&bench_doc(1_000_000.0), &bench_doc(850_000.0), 0.20).unwrap();
        assert!(report.pass);
        assert!((report.ratio - 0.85).abs() < 1e-12);
        assert!(report.to_string().contains("PASS"));
    }

    #[test]
    fn regression_beyond_tolerance_fails() {
        let report = evaluate(&bench_doc(1_000_000.0), &bench_doc(750_000.0), 0.20).unwrap();
        assert!(!report.pass);
        assert!(report.to_string().contains("FAIL"));
    }

    #[test]
    fn improvements_always_pass() {
        let report = evaluate(&bench_doc(1_000_000.0), &bench_doc(3_000_000.0), 0.0).unwrap();
        assert!(report.pass);
    }

    #[test]
    fn boundary_is_inclusive() {
        // Exactly at the limit passes: ratio == 1 - tolerance.
        let report = evaluate(&bench_doc(1_000_000.0), &bench_doc(800_000.0), 0.20).unwrap();
        assert!(report.pass, "{report}");
    }

    #[test]
    fn malformed_documents_are_named() {
        assert!(evaluate("nope", &bench_doc(1.0), 0.2)
            .unwrap_err()
            .contains("snapshot"));
        assert!(evaluate(&bench_doc(1.0), "{}", 0.2)
            .unwrap_err()
            .contains("fresh"));
        assert!(shift_fetches_per_sec("{\"data\": {}}").is_err());
        assert!(shift_fetches_per_sec(&bench_doc(0.0)).is_err());
        assert!(evaluate(&bench_doc(1.0), &bench_doc(1.0), 1.5).is_err());
    }

    #[test]
    fn committed_snapshot_parses() {
        // The gate must always be able to read the snapshot this repository
        // ships; if the BENCH schema changes, this test fails before CI does.
        let snapshot = include_str!("../../../docs/bench/BENCH_PR3.json");
        let fetches = shift_fetches_per_sec(snapshot).expect("snapshot readable");
        assert!(fetches > 100_000.0, "implausible snapshot: {fetches}");
    }
}
