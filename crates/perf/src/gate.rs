//! The perf regression gate: compares a freshly measured `BENCH.json`
//! against a committed snapshot and fails CI when the headline throughput
//! drops beyond a tolerance.
//!
//! The headline gated metric is `data.shift_fetches_per_sec` — end-to-end
//! simulated fetches per second with virtualized SHIFT, the number every
//! optimization PR moves. The gate additionally checks the hot-path
//! component medians listed in [`GATED_COMPONENTS`] (PIF lookup, index-table
//! lookup, LLC bank tag scan, tabulated NoC round trip, NextLine engine
//! stepping) so a regression localized to one data structure cannot hide
//! inside end-to-end noise. The headline tolerance
//! default (20%) is deliberately loose: shared CI runners are noisy, and the
//! gate's job is to catch real regressions (2× slowdowns from an accidental
//! allocation in the hot loop), not to flake on scheduler jitter; component
//! medians are noisier still, so their default is 50%. Override with the
//! `SHIFT_PERF_TOLERANCE` / `SHIFT_PERF_COMPONENT_TOLERANCE` environment
//! variables (fractions, e.g. `0.1`), and skip the CI job entirely with the
//! `skip-perf-gate` PR label when a runner is known-bad.

use std::fmt;

use serde::json;
use serde::Value;

/// Default allowed drop: 20% below the snapshot.
pub const DEFAULT_TOLERANCE: f64 = 0.20;

/// Default allowed component-median drop: 50% below the snapshot.
/// Nanosecond-scale microbenchmarks on shared runners jitter far more than
/// the second-scale end-to-end measurement.
pub const DEFAULT_COMPONENT_TOLERANCE: f64 = 0.50;

/// The `(group, name)` component medians the gate checks, beyond the
/// headline throughput: the per-fetch hot-path data structures this
/// repository's optimization PRs target.
pub const GATED_COMPONENTS: &[(&str, &str)] = &[
    ("lookup", "pif_on_access_miss"),
    ("index", "lookup_hit"),
    ("scan", "bank_tag_scan"),
    ("noc", "round_trip"),
    ("engine", "step_NextLine"),
];

/// The verdict of one gate evaluation.
#[derive(Clone, Debug, PartialEq)]
pub struct GateReport {
    /// Snapshot (committed) fetches/sec.
    pub snapshot: f64,
    /// Freshly measured fetches/sec.
    pub fresh: f64,
    /// Allowed fractional drop.
    pub tolerance: f64,
    /// `fresh / snapshot`.
    pub ratio: f64,
    /// `true` if the fresh number is within tolerance.
    pub pass: bool,
}

impl fmt::Display for GateReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shift_fetches_per_sec: fresh {:.0} vs snapshot {:.0} ({:+.1}%), tolerance -{:.0}% => {}",
            self.fresh,
            self.snapshot,
            (self.ratio - 1.0) * 100.0,
            self.tolerance * 100.0,
            if self.pass { "PASS" } else { "FAIL" }
        )
    }
}

/// Extracts `data.shift_fetches_per_sec` from a `BENCH.json` artifact
/// document.
///
/// # Errors
///
/// Returns a message naming what is missing when the document is not a
/// BENCH artifact (bad JSON, no `data` tree, missing or non-positive
/// metric).
pub fn shift_fetches_per_sec(bench_json: &str) -> Result<f64, String> {
    let doc = json::parse(bench_json).map_err(|e| format!("BENCH.json does not parse: {e}"))?;
    let value = doc
        .get("data")
        .ok_or("BENCH.json has no `data` tree (not an artifact document?)")?
        .get("shift_fetches_per_sec")
        .ok_or("BENCH.json data has no `shift_fetches_per_sec`")?
        .as_f64()
        .ok_or("`shift_fetches_per_sec` is not a number")?;
    if value > 0.0 {
        Ok(value)
    } else {
        Err(format!("`shift_fetches_per_sec` is non-positive ({value})"))
    }
}

/// Evaluates the gate: does `fresh_json`'s headline throughput stay within
/// `tolerance` of `snapshot_json`'s?
///
/// # Errors
///
/// Propagates extraction failures from either document and rejects
/// nonsensical tolerances (outside `[0, 1)`).
pub fn evaluate(
    snapshot_json: &str,
    fresh_json: &str,
    tolerance: f64,
) -> Result<GateReport, String> {
    if !(0.0..1.0).contains(&tolerance) {
        return Err(format!(
            "tolerance must be a fraction in [0, 1), got {tolerance}"
        ));
    }
    let snapshot = shift_fetches_per_sec(snapshot_json).map_err(|e| format!("snapshot: {e}"))?;
    let fresh = shift_fetches_per_sec(fresh_json).map_err(|e| format!("fresh: {e}"))?;
    let ratio = fresh / snapshot;
    Ok(GateReport {
        snapshot,
        fresh,
        tolerance,
        ratio,
        pass: ratio >= 1.0 - tolerance,
    })
}

/// The verdict for one gated component median.
///
/// Components are compared on `per_sec` rather than `ns_per_op`: for the
/// micro groups the two are reciprocal, but the `engine` rows time a whole
/// `step_rounds` batch whose size differs between the quick and full
/// suites — only the normalized fetches/sec is comparable across them.
#[derive(Clone, Debug, PartialEq)]
pub struct ComponentReport {
    /// Component id, `group/name`.
    pub id: String,
    /// Snapshot (committed) median ops/sec.
    pub snapshot_per_sec: f64,
    /// Freshly measured median ops/sec.
    pub fresh_per_sec: f64,
    /// Allowed fractional throughput drop.
    pub tolerance: f64,
    /// `fresh_per_sec / snapshot_per_sec` — same orientation as
    /// [`GateReport::ratio`] (1.0 = unchanged, below 1.0 = slower).
    pub ratio: f64,
    /// `true` if the fresh median is within tolerance.
    pub pass: bool,
}

impl fmt::Display for ComponentReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: fresh {:.0} /s vs snapshot {:.0} /s ({:+.1}%), tolerance -{:.0}% => {}",
            self.id,
            self.fresh_per_sec,
            self.snapshot_per_sec,
            (self.ratio - 1.0) * 100.0,
            self.tolerance * 100.0,
            if self.pass { "PASS" } else { "FAIL" }
        )
    }
}

/// Extracts the `per_sec` median of component `group`/`name` from a
/// `BENCH.json` artifact document.
///
/// # Errors
///
/// Returns a message naming the component when the document has no `data`
/// tree, no `components` array, or no entry with that group and name (or a
/// non-positive median).
pub fn component_per_sec(bench_json: &str, group: &str, name: &str) -> Result<f64, String> {
    let doc = json::parse(bench_json).map_err(|e| format!("BENCH.json does not parse: {e}"))?;
    let Some(Value::Seq(components)) = doc
        .get("data")
        .ok_or("BENCH.json has no `data` tree (not an artifact document?)")?
        .get("components")
    else {
        return Err("BENCH.json data has no `components` array".to_owned());
    };
    let entry = components
        .iter()
        .find(|c| {
            c.get("group").and_then(Value::as_str) == Some(group)
                && c.get("name").and_then(Value::as_str) == Some(name)
        })
        .ok_or_else(|| format!("BENCH.json has no component `{group}/{name}`"))?;
    let per_sec = entry
        .get("per_sec")
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("component `{group}/{name}` has no numeric `per_sec`"))?;
    if per_sec > 0.0 {
        Ok(per_sec)
    } else {
        Err(format!(
            "component `{group}/{name}` median is non-positive ({per_sec})"
        ))
    }
}

/// Evaluates every [`GATED_COMPONENTS`] median of `fresh_json` against
/// `snapshot_json`.
///
/// # Errors
///
/// Propagates extraction failures from either document (a gated component
/// missing from the committed snapshot is a configuration error, not a pass)
/// and rejects tolerances outside `[0, 1)`.
pub fn evaluate_components(
    snapshot_json: &str,
    fresh_json: &str,
    tolerance: f64,
) -> Result<Vec<ComponentReport>, String> {
    if !(0.0..1.0).contains(&tolerance) {
        return Err(format!(
            "tolerance must be a fraction in [0, 1), got {tolerance}"
        ));
    }
    GATED_COMPONENTS
        .iter()
        .map(|&(group, name)| {
            let snapshot_per_sec = component_per_sec(snapshot_json, group, name)
                .map_err(|e| format!("snapshot: {e}"))?;
            let fresh_per_sec =
                component_per_sec(fresh_json, group, name).map_err(|e| format!("fresh: {e}"))?;
            let ratio = fresh_per_sec / snapshot_per_sec;
            Ok(ComponentReport {
                id: format!("{group}/{name}"),
                snapshot_per_sec,
                fresh_per_sec,
                tolerance,
                ratio,
                pass: ratio >= 1.0 - tolerance,
            })
        })
        .collect()
}

/// Reads the component tolerance from `SHIFT_PERF_COMPONENT_TOLERANCE`,
/// defaulting to [`DEFAULT_COMPONENT_TOLERANCE`]; invalid values fall back
/// to the default with a warning on stderr.
pub fn component_tolerance_from_env() -> f64 {
    match std::env::var("SHIFT_PERF_COMPONENT_TOLERANCE") {
        Err(_) => DEFAULT_COMPONENT_TOLERANCE,
        Ok(raw) => match raw.trim().parse::<f64>() {
            Ok(t) if (0.0..1.0).contains(&t) => t,
            _ => {
                eprintln!(
                    "ignoring invalid SHIFT_PERF_COMPONENT_TOLERANCE `{raw}` (want a fraction \
                     in [0, 1)); using {DEFAULT_COMPONENT_TOLERANCE}"
                );
                DEFAULT_COMPONENT_TOLERANCE
            }
        },
    }
}

/// Reads the tolerance from `SHIFT_PERF_TOLERANCE`, defaulting to
/// [`DEFAULT_TOLERANCE`]; invalid values fall back to the default with a
/// warning on stderr.
pub fn tolerance_from_env() -> f64 {
    match std::env::var("SHIFT_PERF_TOLERANCE") {
        Err(_) => DEFAULT_TOLERANCE,
        Ok(raw) => match raw.trim().parse::<f64>() {
            Ok(t) if (0.0..1.0).contains(&t) => t,
            _ => {
                eprintln!(
                    "ignoring invalid SHIFT_PERF_TOLERANCE `{raw}` (want a fraction in [0, 1)); \
                     using {DEFAULT_TOLERANCE}"
                );
                DEFAULT_TOLERANCE
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_doc(fetches_per_sec: f64) -> String {
        bench_doc_with_components(fetches_per_sec, 20_000_000.0)
    }

    fn bench_doc_with_components(fetches_per_sec: f64, component_per_sec: f64) -> String {
        let components: Vec<String> = GATED_COMPONENTS
            .iter()
            .map(|(group, name)| {
                format!(
                    "{{\"group\": \"{group}\", \"name\": \"{name}\", \
                     \"ns_per_op\": 1.0, \"per_sec\": {component_per_sec}}}"
                )
            })
            .collect();
        format!(
            "{{\"name\": \"BENCH\", \"data\": {{\"schema\": 1, \
             \"shift_fetches_per_sec\": {fetches_per_sec}, \
             \"components\": [{}]}}}}",
            components.join(", ")
        )
    }

    #[test]
    fn within_tolerance_passes() {
        let report = evaluate(&bench_doc(1_000_000.0), &bench_doc(850_000.0), 0.20).unwrap();
        assert!(report.pass);
        assert!((report.ratio - 0.85).abs() < 1e-12);
        assert!(report.to_string().contains("PASS"));
    }

    #[test]
    fn regression_beyond_tolerance_fails() {
        let report = evaluate(&bench_doc(1_000_000.0), &bench_doc(750_000.0), 0.20).unwrap();
        assert!(!report.pass);
        assert!(report.to_string().contains("FAIL"));
    }

    #[test]
    fn improvements_always_pass() {
        let report = evaluate(&bench_doc(1_000_000.0), &bench_doc(3_000_000.0), 0.0).unwrap();
        assert!(report.pass);
    }

    #[test]
    fn boundary_is_inclusive() {
        // Exactly at the limit passes: ratio == 1 - tolerance.
        let report = evaluate(&bench_doc(1_000_000.0), &bench_doc(800_000.0), 0.20).unwrap();
        assert!(report.pass, "{report}");
    }

    #[test]
    fn malformed_documents_are_named() {
        assert!(evaluate("nope", &bench_doc(1.0), 0.2)
            .unwrap_err()
            .contains("snapshot"));
        assert!(evaluate(&bench_doc(1.0), "{}", 0.2)
            .unwrap_err()
            .contains("fresh"));
        assert!(shift_fetches_per_sec("{\"data\": {}}").is_err());
        assert!(shift_fetches_per_sec(&bench_doc(0.0)).is_err());
        assert!(evaluate(&bench_doc(1.0), &bench_doc(1.0), 1.5).is_err());
    }

    #[test]
    fn component_within_tolerance_passes() {
        let snapshot = bench_doc_with_components(1e6, 20e6);
        let fresh = bench_doc_with_components(1e6, 14e6); // 1.4× slower
        let reports = evaluate_components(&snapshot, &fresh, 0.50).unwrap();
        assert_eq!(reports.len(), GATED_COMPONENTS.len());
        assert!(reports.iter().all(|r| r.pass), "{reports:?}");
        assert!(reports[0].to_string().contains("PASS"));
    }

    #[test]
    fn component_regression_beyond_tolerance_fails() {
        let snapshot = bench_doc_with_components(1e6, 20e6);
        let fresh = bench_doc_with_components(1e6, 5e6); // 4× slower
        let reports = evaluate_components(&snapshot, &fresh, 0.50).unwrap();
        assert!(reports.iter().all(|r| !r.pass), "{reports:?}");
        assert!(reports[0].to_string().contains("FAIL"));
    }

    #[test]
    fn component_missing_from_snapshot_is_an_error() {
        // A gated component absent from the committed snapshot must error,
        // not silently pass — it means the snapshot predates the gate list.
        let old = "{\"name\": \"BENCH\", \"data\": {\"schema\": 1, \
                   \"shift_fetches_per_sec\": 1.0, \"components\": []}}";
        let fresh = bench_doc(1.0);
        let err = evaluate_components(old, &fresh, 0.5).unwrap_err();
        assert!(err.contains("snapshot"), "{err}");
        assert!(err.contains("no component"), "{err}");
    }

    #[test]
    fn committed_snapshot_parses() {
        // The gate must always be able to read the snapshot this repository
        // ships; if the BENCH schema changes, this test fails before CI does.
        let snapshot = include_str!("../../../docs/bench/BENCH_PR9.json");
        let fetches = shift_fetches_per_sec(snapshot).expect("snapshot readable");
        assert!(fetches > 100_000.0, "implausible snapshot: {fetches}");
        for &(group, name) in GATED_COMPONENTS {
            let per_sec =
                component_per_sec(snapshot, group, name).expect("gated component in snapshot");
            assert!(
                per_sec > 0.0,
                "implausible {group}/{name} median: {per_sec}"
            );
        }
    }
}
