//! Property tests for the prefetcher building blocks.

use proptest::prelude::*;
use shift_core::sab::SabConfig;
use shift_core::{
    HistoryBuffer, IndexTable, SpatialRegion, SpatialRegionCompactor, StreamAddressBufferSet,
};
use shift_types::BlockAddr;

proptest! {
    /// Replaying a recorded stream predicts exactly blocks that were recorded:
    /// SAB coverage is sound with respect to the history contents.
    #[test]
    fn sab_only_covers_recorded_blocks(
        raw_blocks in proptest::collection::vec(0u64..4_096, 16..300),
        probe in 0u64..4_096,
    ) {
        let mut compactor = SpatialRegionCompactor::new(8);
        let mut history = HistoryBuffer::new(1024);
        let mut index = IndexTable::new(1024);
        let mut recorded = std::collections::HashSet::new();
        for &b in &raw_blocks {
            recorded.insert(BlockAddr::new(b));
            if let Some(r) = compactor.observe(BlockAddr::new(b)) {
                let ptr = history.append(r);
                index.update(r.trigger(), ptr);
            }
        }
        if let Some(r) = compactor.flush() {
            let ptr = history.append(r);
            index.update(r.trigger(), ptr);
        }

        let mut sabs = StreamAddressBufferSet::new(SabConfig::micro13());
        if let Some(ptr) = index.lookup(BlockAddr::new(raw_blocks[0])) {
            let mut read = |p: u32, n: usize, buf: &mut Vec<_>| {
                history.read_into(p, n, buf);
                history.advance_ptr(p, buf.len() as u32)
            };
            sabs.allocate(ptr, &mut read, &mut Vec::new());
        }
        let block = BlockAddr::new(probe);
        if sabs.covers(block) {
            prop_assert!(recorded.contains(&block),
                "SAB predicts {block} which was never recorded");
        }
    }

    /// The index table always returns the most recent pointer stored for a
    /// trigger that is still resident.
    #[test]
    fn index_returns_most_recent_pointer(
        updates in proptest::collection::vec((0u64..64, 0u32..10_000), 1..200),
    ) {
        let mut index = IndexTable::new(1024); // large enough: no evictions
        let mut latest = std::collections::HashMap::new();
        for &(trigger, ptr) in &updates {
            index.update(BlockAddr::new(trigger), ptr);
            latest.insert(trigger, ptr);
        }
        for (&trigger, &ptr) in &latest {
            prop_assert_eq!(index.peek(BlockAddr::new(trigger)), Some(ptr));
        }
    }

    /// Region records are insensitive to intra-region access order: the set of
    /// encoded blocks equals the set of observed in-region blocks.
    #[test]
    fn region_encoding_is_order_insensitive(
        offsets in proptest::collection::vec(0u64..8, 1..20),
    ) {
        let trigger = BlockAddr::new(1_000);
        let mut region = SpatialRegion::new(trigger, 8);
        let mut expected = std::collections::BTreeSet::new();
        expected.insert(trigger);
        for &off in &offsets {
            prop_assert!(region.try_record(trigger.offset(off)));
            expected.insert(trigger.offset(off));
        }
        let encoded: std::collections::BTreeSet<BlockAddr> = region.blocks().collect();
        prop_assert_eq!(encoded, expected);
    }
}
