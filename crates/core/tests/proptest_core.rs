//! Differential property tests for the core data structures.
//!
//! The array-backed [`IndexTable`] replaced a `HashMap` + `BTreeMap`
//! recency-stamp LRU. This test keeps that earlier structure alive as an
//! executable reference model and drives both with random operation
//! sequences: every lookup and peek must agree, and after any sequence both
//! must hold exactly the same entries.

use std::collections::{BTreeMap, HashMap};

use proptest::prelude::*;
use shift_core::IndexTable;
use shift_types::BlockAddr;

/// Reference model: a bounded LRU map built from a recency-stamp `BTreeMap`.
///
/// Stamps come from a shared logical clock, refresh on `update` and on
/// `lookup` hits, and eviction removes the minimum stamp — the semantics the
/// intrusive-list `IndexTable` claims to preserve.
struct ModelIndex {
    capacity: usize,
    clock: u64,
    by_key: HashMap<u64, (u32, u64)>,
    by_stamp: BTreeMap<u64, u64>,
}

impl ModelIndex {
    fn new(capacity: usize) -> Self {
        ModelIndex {
            capacity,
            clock: 0,
            by_key: HashMap::new(),
            by_stamp: BTreeMap::new(),
        }
    }

    fn update(&mut self, key: u64, ptr: u32) {
        self.clock += 1;
        if let Some((stored, stamp)) = self.by_key.get_mut(&key) {
            *stored = ptr;
            self.by_stamp.remove(stamp);
            *stamp = self.clock;
            self.by_stamp.insert(self.clock, key);
            return;
        }
        if self.by_key.len() == self.capacity {
            let (&victim_stamp, &victim) = self.by_stamp.iter().next().expect("full model");
            self.by_stamp.remove(&victim_stamp);
            self.by_key.remove(&victim);
        }
        self.by_key.insert(key, (ptr, self.clock));
        self.by_stamp.insert(self.clock, key);
    }

    fn lookup(&mut self, key: u64) -> Option<u32> {
        self.clock += 1;
        let (ptr, stamp) = self.by_key.get_mut(&key)?;
        self.by_stamp.remove(stamp);
        *stamp = self.clock;
        self.by_stamp.insert(self.clock, key);
        Some(*ptr)
    }

    fn peek(&self, key: u64) -> Option<u32> {
        self.by_key.get(&key).map(|&(ptr, _)| ptr)
    }
}

proptest! {
    /// The open-addressed + intrusive-LRU `IndexTable` is observationally
    /// identical to the recency-stamp map model under any interleaving of
    /// updates, lookups, and peeks — including identical eviction victims,
    /// which a single diverging `lookup(evicted) == Some(_)` would expose.
    #[test]
    fn index_table_matches_recency_stamp_model(
        capacity in 1usize..24,
        ops in proptest::collection::vec((0u8..3, 0u64..48, 0u32..1_000), 1..400),
    ) {
        let mut table = IndexTable::new(capacity);
        let mut model = ModelIndex::new(capacity);
        for &(op, key, ptr) in &ops {
            let block = BlockAddr::new(key);
            match op {
                0 => {
                    table.update(block, ptr);
                    model.update(key, ptr);
                }
                1 => prop_assert_eq!(table.lookup(block), model.lookup(key)),
                _ => prop_assert_eq!(table.peek(block), model.peek(key)),
            }
            prop_assert_eq!(table.len(), model.by_key.len());
            prop_assert!(table.len() <= capacity);
        }
        // Final membership over the whole key domain must agree exactly.
        for key in 0..48u64 {
            prop_assert_eq!(table.peek(BlockAddr::new(key)), model.peek(key));
        }
    }
}
