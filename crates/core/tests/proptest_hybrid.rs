//! Differential property tests for the hybrid composition layer.
//!
//! The composition semantics of `shift_core::hybrid` are locked by identity,
//! candidate-for-candidate over arbitrary access/retire streams:
//!
//! * `FallbackPrefetcher(A, Null)` ≡ `A` — a null secondary never fires, and
//!   wrapping must not perturb the primary's candidates or state.
//! * `FallbackPrefetcher(Null, B)` ≡ `B` — a null primary is always silent,
//!   so the secondary serves every invocation exactly as it would standalone.
//! * `ConfidenceGatedPrefetcher(P, threshold = 0)` ≡ `P` — an always-open
//!   gate is transparent.

use proptest::prelude::*;
use shift_cache::{LlcConfig, NucaLlc};
use shift_core::hybrid::{ConfidenceGatedPrefetcher, FallbackPrefetcher, GateConfig};
use shift_core::{
    InstructionPrefetcher, NextLinePrefetcher, NullPrefetcher, Pif, PifConfig, PrefetchCandidate,
};
use shift_types::{BlockAddr, CoreId};

const CORES: u16 = 2;

/// One event of a synthetic access/retire stream.
#[derive(Clone, Copy, Debug)]
struct Event {
    core: CoreId,
    block: BlockAddr,
    hit: bool,
    retire: bool,
}

/// Raw event tuples as generated: `(core, block, hit, retire)`.
type RawEvent = (u16, u64, bool, bool);

/// Strategy for an arbitrary stream of access/retire events over a small
/// block range (small enough that streams recur and the stateful designs
/// actually produce candidates).
fn streams() -> impl Strategy<Value = Vec<RawEvent>> {
    proptest::collection::vec(
        (0u16..CORES, 0u64..512, any::<bool>(), any::<bool>()),
        1..400,
    )
}

/// Decodes the generated tuples into typed events.
fn events(raw: &[RawEvent]) -> Vec<Event> {
    raw.iter()
        .map(|&(core, block, hit, retire)| Event {
            core: CoreId::new(core),
            block: BlockAddr::new(block),
            hit,
            retire,
        })
        .collect()
}

/// Drives `reference` and `wrapped` with the identical event stream and
/// asserts their appended candidates match call-for-call.
fn assert_identical<R: InstructionPrefetcher, W: InstructionPrefetcher>(
    reference: &mut R,
    wrapped: &mut W,
    events: &[Event],
) {
    let mut llc_ref = NucaLlc::new(LlcConfig::micro13(CORES as usize));
    let mut llc_wrap = NucaLlc::new(LlcConfig::micro13(CORES as usize));
    let mut out_ref: Vec<PrefetchCandidate> = Vec::new();
    let mut out_wrap: Vec<PrefetchCandidate> = Vec::new();
    for (i, e) in events.iter().enumerate() {
        out_ref.clear();
        out_wrap.clear();
        if e.retire {
            reference.on_retire(e.core, e.block, &mut llc_ref, &mut out_ref);
            wrapped.on_retire(e.core, e.block, &mut llc_wrap, &mut out_wrap);
        } else {
            reference.on_access(e.core, e.block, e.hit, &mut llc_ref, &mut out_ref);
            wrapped.on_access(e.core, e.block, e.hit, &mut llc_wrap, &mut out_wrap);
        }
        prop_assert_eq!(
            &out_ref,
            &out_wrap,
            "candidates diverged at event {} ({:?})",
            i,
            e
        );
        // Coverage must agree too — it feeds the prediction-only study.
        prop_assert_eq!(
            reference.covers(e.core, e.block),
            wrapped.covers(e.core, e.block),
            "covers() diverged at event {}",
            i
        );
    }
}

proptest! {
    /// `FallbackPrefetcher(A, Null)`: the null secondary never produces
    /// candidates, so the pair is candidate-for-candidate the primary.
    #[test]
    fn fallback_with_null_secondary_is_identity(raw in streams()) {
        let mut reference = Pif::new(PifConfig::pif_2k(), CORES);
        let mut wrapped = FallbackPrefetcher::new(
            Pif::new(PifConfig::pif_2k(), CORES),
            NullPrefetcher::new(),
        );
        assert_identical(&mut reference, &mut wrapped, &events(&raw));
    }

    /// `FallbackPrefetcher(Null, B)`: the null primary is always silent, so
    /// the secondary fires on every invocation exactly as standalone.
    #[test]
    fn fallback_with_null_primary_is_identity(raw in streams()) {
        let mut reference = NextLinePrefetcher::new(2, CORES);
        let mut wrapped = FallbackPrefetcher::new(
            NullPrefetcher::new(),
            NextLinePrefetcher::new(2, CORES),
        );
        assert_identical(&mut reference, &mut wrapped, &events(&raw));
    }

    /// Same identity with a stateful secondary: the secondary observes the
    /// full stream (not just primary-silent calls), so its state — and hence
    /// its candidates — match the standalone design.
    #[test]
    fn fallback_with_null_primary_is_identity_for_stateful_secondary(raw in streams()) {
        let mut reference = Pif::new(PifConfig::pif_2k(), CORES);
        let mut wrapped = FallbackPrefetcher::new(
            NullPrefetcher::new(),
            Pif::new(PifConfig::pif_2k(), CORES),
        );
        assert_identical(&mut reference, &mut wrapped, &events(&raw));
    }

    /// A confidence gate with threshold 0 is transparent: u32 confidence can
    /// never sit below 0, so every candidate passes.
    #[test]
    fn gate_at_threshold_zero_is_identity(raw in streams()) {
        let mut reference = Pif::new(PifConfig::pif_2k(), CORES);
        let mut wrapped = ConfidenceGatedPrefetcher::new(
            Pif::new(PifConfig::pif_2k(), CORES),
            GateConfig::transparent(),
            CORES,
        );
        assert_identical(&mut reference, &mut wrapped, &events(&raw));
    }

    /// The transparent-gate identity also holds for the next-line design
    /// (whose candidates come from on_access rather than stream replay).
    #[test]
    fn gate_at_threshold_zero_is_identity_for_next_line(raw in streams()) {
        let mut reference = NextLinePrefetcher::new(1, CORES);
        let mut wrapped = ConfidenceGatedPrefetcher::new(
            NextLinePrefetcher::new(1, CORES),
            GateConfig::transparent(),
            CORES,
        );
        assert_identical(&mut reference, &mut wrapped, &events(&raw));
    }
}
