//! The circular history buffer of spatial region records.
//!
//! The history buffer is logically a circular log (Global History Buffer
//! style \[Nesbit & Smith\]): new records are appended at the write pointer,
//! which wraps around when it reaches the end, overwriting the oldest
//! records. Replay reads a window of consecutive records starting from a
//! pointer obtained from the index table.

use serde::{Deserialize, Serialize};

use crate::region::SpatialRegion;

/// A circular buffer of [`SpatialRegion`] records.
///
/// # Examples
///
/// ```
/// use shift_core::{HistoryBuffer, SpatialRegion};
/// use shift_types::BlockAddr;
///
/// let mut history = HistoryBuffer::new(4);
/// let ptr = history.append(SpatialRegion::new(BlockAddr::new(10), 8));
/// history.append(SpatialRegion::new(BlockAddr::new(20), 8));
/// let window = history.read(ptr, 2);
/// assert_eq!(window.len(), 2);
/// assert_eq!(window[0].trigger(), BlockAddr::new(10));
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HistoryBuffer {
    entries: Vec<Option<SpatialRegion>>,
    write_ptr: u32,
    total_appends: u64,
    /// `capacity - 1` when the capacity is a power of two (it is for every
    /// paper design point), so pointer wrapping on the replay hot path is an
    /// AND instead of a modulo.
    wrap_mask: Option<u32>,
}

impl HistoryBuffer {
    /// Creates a history buffer holding up to `capacity` records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or exceeds `u32::MAX`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "history buffer needs at least one entry");
        assert!(
            capacity <= u32::MAX as usize,
            "capacity exceeds pointer width"
        );
        HistoryBuffer {
            entries: vec![None; capacity],
            write_ptr: 0,
            total_appends: 0,
            wrap_mask: (capacity as u32)
                .is_power_of_two()
                .then(|| capacity as u32 - 1),
        }
    }

    #[inline]
    fn wrap(&self, ptr: u32) -> u32 {
        match self.wrap_mask {
            Some(mask) => ptr & mask,
            None => ptr % self.entries.len() as u32,
        }
    }

    /// Capacity in records.
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Number of records currently stored (saturates at the capacity).
    pub fn len(&self) -> usize {
        if self.total_appends >= self.entries.len() as u64 {
            self.entries.len()
        } else {
            self.total_appends as usize
        }
    }

    /// Returns `true` if no record has been appended yet.
    pub fn is_empty(&self) -> bool {
        self.total_appends == 0
    }

    /// Total number of records ever appended (including overwritten ones).
    pub fn total_appends(&self) -> u64 {
        self.total_appends
    }

    /// Current write pointer (the slot the *next* record will occupy).
    pub fn write_ptr(&self) -> u32 {
        self.write_ptr
    }

    /// Appends a record, returning the pointer (slot index) where it was
    /// stored. The write pointer then advances, wrapping at the capacity.
    #[inline]
    pub fn append(&mut self, record: SpatialRegion) -> u32 {
        let slot = self.write_ptr;
        self.entries[slot as usize] = Some(record);
        self.write_ptr = self.wrap(self.write_ptr + 1);
        self.total_appends += 1;
        slot
    }

    /// Reads the record at `ptr`, if one has been written there.
    pub fn get(&self, ptr: u32) -> Option<SpatialRegion> {
        self.entries.get(ptr as usize).copied().flatten()
    }

    /// Reads up to `count` consecutive records starting at `ptr` (wrapping
    /// around the end of the buffer), skipping slots that were never written.
    /// Reading never passes the write pointer more than once around, so the
    /// window length is also bounded by the buffer length.
    pub fn read(&self, ptr: u32, count: usize) -> Vec<SpatialRegion> {
        let mut out = Vec::with_capacity(count.min(self.len()));
        self.read_into(ptr, count, &mut out);
        out
    }

    /// Allocation-free variant of [`read`](Self::read): appends the window's
    /// records to `out` instead of returning a fresh vector. This is the call
    /// the replay hot path uses — the stream address buffers hand it a reused
    /// scratch buffer, so steady-state replay performs no heap allocation.
    #[inline]
    pub fn read_into(&self, ptr: u32, count: usize, out: &mut Vec<SpatialRegion>) {
        let count = count.min(self.len());
        for i in 0..count as u32 {
            let slot = self.wrap(ptr + i);
            if let Some(rec) = self.entries[slot as usize] {
                out.push(rec);
            }
        }
    }

    /// Advances a pointer by `n` slots, wrapping at the capacity.
    #[inline]
    pub fn advance_ptr(&self, ptr: u32, n: u32) -> u32 {
        self.wrap(ptr + n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shift_types::BlockAddr;

    fn rec(trigger: u64) -> SpatialRegion {
        SpatialRegion::new(BlockAddr::new(trigger), 8)
    }

    #[test]
    fn append_returns_consecutive_slots_then_wraps() {
        let mut h = HistoryBuffer::new(3);
        assert_eq!(h.append(rec(1)), 0);
        assert_eq!(h.append(rec(2)), 1);
        assert_eq!(h.append(rec(3)), 2);
        assert_eq!(h.append(rec(4)), 0, "write pointer wraps");
        assert_eq!(h.len(), 3);
        assert_eq!(h.total_appends(), 4);
        // Slot 0 now holds the newest record; the oldest was overwritten.
        assert_eq!(h.get(0).unwrap().trigger(), BlockAddr::new(4));
    }

    #[test]
    fn read_window_wraps_around() {
        let mut h = HistoryBuffer::new(4);
        for i in 0..4 {
            h.append(rec(i));
        }
        let window = h.read(2, 3);
        let triggers: Vec<u64> = window.iter().map(|r| r.trigger().get()).collect();
        assert_eq!(triggers, vec![2, 3, 0]);
    }

    #[test]
    fn read_skips_unwritten_slots() {
        let mut h = HistoryBuffer::new(8);
        h.append(rec(10));
        h.append(rec(11));
        let window = h.read(0, 5);
        assert_eq!(window.len(), 2, "only written slots are returned");
    }

    #[test]
    fn empty_buffer_reads_nothing() {
        let h = HistoryBuffer::new(16);
        assert!(h.is_empty());
        assert!(h.read(3, 4).is_empty());
        assert_eq!(h.get(3), None);
        assert_eq!(h.len(), 0);
    }

    #[test]
    fn read_into_appends_without_clearing() {
        let mut h = HistoryBuffer::new(4);
        for i in 0..4 {
            h.append(rec(i));
        }
        let mut out = vec![rec(99)];
        h.read_into(2, 3, &mut out);
        let triggers: Vec<u64> = out.iter().map(|r| r.trigger().get()).collect();
        assert_eq!(triggers, vec![99, 2, 3, 0]);
        assert_eq!(h.read(2, 3), &out[1..], "read is read_into on a fresh vec");
    }

    #[test]
    fn advance_ptr_wraps() {
        let h = HistoryBuffer::new(10);
        assert_eq!(h.advance_ptr(7, 5), 2);
        assert_eq!(h.advance_ptr(0, 10), 0);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_rejected() {
        let _ = HistoryBuffer::new(0);
    }
}
