//! The next-line (sequential) prefetcher.
//!
//! The ubiquitous baseline design: on every instruction-cache access to block
//! `B`, prefetch the following `degree` blocks. It captures sequential
//! fall-through misses but none of the misses caused by control-flow
//! discontinuities, which is why the paper measures only ≈35 % miss coverage
//! and ≈9 % speedup for it.

use serde::{Deserialize, Serialize};
use shift_cache::NucaLlc;
use shift_types::{BlockAddr, CoreId};

use crate::prefetcher::{InstructionPrefetcher, PrefetchCandidate, PrefetcherKind};
use crate::storage::StorageCost;

/// A per-core next-line prefetcher of configurable degree.
///
/// # Examples
///
/// ```
/// use shift_core::{InstructionPrefetcher, NextLinePrefetcher};
/// use shift_cache::{LlcConfig, NucaLlc};
/// use shift_types::{BlockAddr, CoreId};
///
/// let mut llc = NucaLlc::new(LlcConfig::micro13(1));
/// let mut nl = NextLinePrefetcher::new(1, 1);
/// let mut out = Vec::new();
/// nl.on_access(CoreId::new(0), BlockAddr::new(100), false, &mut llc, &mut out);
/// assert_eq!(out[0].block, BlockAddr::new(101));
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NextLinePrefetcher {
    degree: u64,
    last_access: Vec<Option<BlockAddr>>,
}

impl NextLinePrefetcher {
    /// Creates a next-line prefetcher of the given `degree` (how many
    /// sequential blocks are prefetched per access) for `cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `degree` or `cores` is zero.
    pub fn new(degree: u64, cores: u16) -> Self {
        assert!(degree > 0, "prefetch degree must be positive");
        assert!(cores > 0, "need at least one core");
        NextLinePrefetcher {
            degree,
            last_access: vec![None; cores as usize],
        }
    }

    /// The configured prefetch degree.
    pub fn degree(&self) -> u64 {
        self.degree
    }
}

impl InstructionPrefetcher for NextLinePrefetcher {
    fn name(&self) -> &str {
        "NextLine"
    }

    fn kind(&self) -> PrefetcherKind {
        PrefetcherKind::NextLine
    }

    fn on_access(
        &mut self,
        core: CoreId,
        block: BlockAddr,
        _hit: bool,
        _llc: &mut NucaLlc,
        out: &mut Vec<PrefetchCandidate>,
    ) {
        self.last_access[core.index()] = Some(block);
        for i in 1..=self.degree {
            out.push(PrefetchCandidate::immediate(block.offset(i)));
        }
    }

    fn on_retire(
        &mut self,
        _core: CoreId,
        _block: BlockAddr,
        _llc: &mut NucaLlc,
        _out: &mut Vec<PrefetchCandidate>,
    ) {
    }

    fn covers(&self, core: CoreId, block: BlockAddr) -> bool {
        match self.last_access[core.index()] {
            Some(last) => match block.offset_from(last) {
                Some(delta) => delta >= 1 && delta <= self.degree,
                None => false,
            },
            None => false,
        }
    }

    fn storage(&self, _cores: u16) -> StorageCost {
        // One block-address register per core; negligible, counted as zero as
        // the paper does.
        StorageCost::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shift_cache::LlcConfig;

    fn llc() -> NucaLlc {
        NucaLlc::new(LlcConfig::micro13(1))
    }

    #[test]
    fn prefetches_following_blocks_on_every_access() {
        let mut llc = llc();
        let mut nl = NextLinePrefetcher::new(2, 2);
        let mut out = Vec::new();
        nl.on_access(CoreId::new(1), BlockAddr::new(50), true, &mut llc, &mut out);
        let blocks: Vec<_> = out.iter().map(|c| c.block).collect();
        assert_eq!(blocks, vec![BlockAddr::new(51), BlockAddr::new(52)]);
        assert!(out.iter().all(|c| c.ready_delay == 0));
    }

    #[test]
    fn covers_only_the_sequential_successors_of_the_last_access() {
        let mut llc = llc();
        let mut nl = NextLinePrefetcher::new(1, 1);
        let core = CoreId::new(0);
        assert!(!nl.covers(core, BlockAddr::new(11)));
        let mut out = Vec::new();
        nl.on_access(core, BlockAddr::new(10), false, &mut llc, &mut out);
        assert!(nl.covers(core, BlockAddr::new(11)));
        assert!(!nl.covers(core, BlockAddr::new(12)));
        assert!(!nl.covers(core, BlockAddr::new(10)));
        assert!(!nl.covers(core, BlockAddr::new(9)));
    }

    #[test]
    fn per_core_state_is_independent() {
        let mut llc = llc();
        let mut nl = NextLinePrefetcher::new(1, 2);
        let mut out = Vec::new();
        nl.on_access(
            CoreId::new(0),
            BlockAddr::new(10),
            false,
            &mut llc,
            &mut out,
        );
        assert!(nl.covers(CoreId::new(0), BlockAddr::new(11)));
        assert!(!nl.covers(CoreId::new(1), BlockAddr::new(11)));
    }

    #[test]
    fn no_storage_cost() {
        let nl = NextLinePrefetcher::new(1, 16);
        assert_eq!(nl.storage(16).total_bytes(16), 0);
        assert_eq!(nl.kind(), PrefetcherKind::NextLine);
    }

    #[test]
    #[should_panic(expected = "degree must be positive")]
    fn zero_degree_rejected() {
        let _ = NextLinePrefetcher::new(0, 1);
    }
}
