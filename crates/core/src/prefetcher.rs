//! The common instruction-prefetcher interface.

use std::fmt;

use serde::{Deserialize, Serialize};
use shift_cache::NucaLlc;
use shift_types::{BlockAddr, CoreId};

use crate::storage::StorageCost;

/// A prefetch request produced by a prefetcher.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PrefetchCandidate {
    /// The instruction block to prefetch.
    pub block: BlockAddr,
    /// Extra cycles before the prefetch can even be issued — for virtualized
    /// SHIFT this is the latency of fetching the history-buffer block from
    /// the LLC before the stream can be replayed.
    pub ready_delay: u64,
}

impl PrefetchCandidate {
    /// A candidate that can be issued immediately.
    pub fn immediate(block: BlockAddr) -> Self {
        PrefetchCandidate {
            block,
            ready_delay: 0,
        }
    }

    /// A candidate that becomes issuable after `delay` cycles.
    pub fn delayed(block: BlockAddr, delay: u64) -> Self {
        PrefetchCandidate {
            block,
            ready_delay: delay,
        }
    }
}

/// Coarse classification of the prefetcher designs the paper evaluates —
/// plus the composed designs of the [`hybrid`](crate::hybrid) lab; used for
/// labelling results.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PrefetcherKind {
    /// No instruction prefetching (the baseline).
    None,
    /// Next-line prefetcher.
    NextLine,
    /// Proactive Instruction Fetch with per-core history.
    Pif,
    /// Shared History Instruction Fetch.
    Shift,
    /// Primary design with a secondary fallback
    /// ([`FallbackPrefetcher`](crate::hybrid::FallbackPrefetcher)).
    Fallback,
    /// Confidence-gated wrapper
    /// ([`ConfidenceGatedPrefetcher`](crate::hybrid::ConfidenceGatedPrefetcher)).
    Gated,
    /// Per-core adaptive selection
    /// ([`AdaptivePrefetcher`](crate::hybrid::AdaptivePrefetcher)).
    Adaptive,
    /// Design behind a bandwidth-throttled history port
    /// ([`ThrottledPrefetcher`](crate::hybrid::ThrottledPrefetcher)).
    Throttled,
}

impl PrefetcherKind {
    /// Every kind, in declaration order — the exhaustive list the string
    /// round-trip tests iterate so a new variant cannot be added without a
    /// matching [`fmt::Display`] / [`std::str::FromStr`] pair.
    pub const ALL: [PrefetcherKind; 8] = [
        PrefetcherKind::None,
        PrefetcherKind::NextLine,
        PrefetcherKind::Pif,
        PrefetcherKind::Shift,
        PrefetcherKind::Fallback,
        PrefetcherKind::Gated,
        PrefetcherKind::Adaptive,
        PrefetcherKind::Throttled,
    ];

    /// The stable display name (`"baseline"`, `"SHIFT"`, …); what
    /// [`fmt::Display`] prints and [`std::str::FromStr`] parses.
    pub fn as_str(&self) -> &'static str {
        match self {
            PrefetcherKind::None => "baseline",
            PrefetcherKind::NextLine => "next-line",
            PrefetcherKind::Pif => "PIF",
            PrefetcherKind::Shift => "SHIFT",
            PrefetcherKind::Fallback => "fallback",
            PrefetcherKind::Gated => "gated",
            PrefetcherKind::Adaptive => "adaptive",
            PrefetcherKind::Throttled => "throttled",
        }
    }
}

impl fmt::Display for PrefetcherKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Error returned when a string names no [`PrefetcherKind`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnknownKind(pub String);

impl fmt::Display for UnknownKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown prefetcher kind {:?}; known: ", self.0)?;
        for (i, kind) in PrefetcherKind::ALL.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            f.write_str(kind.as_str())?;
        }
        Ok(())
    }
}

impl std::error::Error for UnknownKind {}

impl std::str::FromStr for PrefetcherKind {
    type Err = UnknownKind;

    /// Parses exactly the names [`fmt::Display`] produces (case-insensitive),
    /// so CLI/env/plan parsing cannot drift from the display names.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        PrefetcherKind::ALL
            .into_iter()
            .find(|kind| kind.as_str().eq_ignore_ascii_case(s))
            .ok_or_else(|| UnknownKind(s.to_owned()))
    }
}

/// Interface every instruction prefetcher implements.
///
/// A single prefetcher object manages the state of *all* cores of the CMP (or
/// of one workload, under consolidation); per-core structures are kept
/// internally and selected by the [`CoreId`] arguments. The shared LLC is
/// passed in because virtualized SHIFT stores its history and index there;
/// other designs simply ignore it.
pub trait InstructionPrefetcher {
    /// Short human-readable name for reports (e.g. `"PIF_32K"`).
    fn name(&self) -> &str;

    /// Which design family this prefetcher belongs to.
    fn kind(&self) -> PrefetcherKind;

    /// Called for every L1-I access with its hit/miss outcome, *before* the
    /// miss (if any) is sent to the LLC. Prefetch candidates are appended to
    /// `out`.
    fn on_access(
        &mut self,
        core: CoreId,
        block: BlockAddr,
        hit: bool,
        llc: &mut NucaLlc,
        out: &mut Vec<PrefetchCandidate>,
    );

    /// Called for every retired instruction-block visit (the retire-order
    /// stream the history is built from). Prefetch candidates produced by
    /// stream advancement are appended to `out`.
    fn on_retire(
        &mut self,
        core: CoreId,
        block: BlockAddr,
        llc: &mut NucaLlc,
        out: &mut Vec<PrefetchCandidate>,
    );

    /// Returns `true` if the prefetcher currently predicts `block` for
    /// `core` — i.e. the block is part of an actively replayed stream. Used
    /// by the prediction-only study of Figure 6.
    fn covers(&self, core: CoreId, block: BlockAddr) -> bool;

    /// Storage cost of this design for a CMP with `cores` cores.
    fn storage(&self, cores: u16) -> StorageCost;
}

/// The no-prefetching baseline.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NullPrefetcher;

impl NullPrefetcher {
    /// Creates the baseline prefetcher.
    pub fn new() -> Self {
        NullPrefetcher
    }
}

impl InstructionPrefetcher for NullPrefetcher {
    fn name(&self) -> &str {
        "baseline"
    }

    fn kind(&self) -> PrefetcherKind {
        PrefetcherKind::None
    }

    fn on_access(
        &mut self,
        _core: CoreId,
        _block: BlockAddr,
        _hit: bool,
        _llc: &mut NucaLlc,
        _out: &mut Vec<PrefetchCandidate>,
    ) {
    }

    fn on_retire(
        &mut self,
        _core: CoreId,
        _block: BlockAddr,
        _llc: &mut NucaLlc,
        _out: &mut Vec<PrefetchCandidate>,
    ) {
    }

    fn covers(&self, _core: CoreId, _block: BlockAddr) -> bool {
        false
    }

    fn storage(&self, _cores: u16) -> StorageCost {
        StorageCost::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shift_cache::LlcConfig;

    #[test]
    fn null_prefetcher_never_prefetches_and_costs_nothing() {
        let mut llc = NucaLlc::new(LlcConfig::micro13(1));
        let mut p = NullPrefetcher::new();
        let mut out = Vec::new();
        p.on_access(CoreId::new(0), BlockAddr::new(1), false, &mut llc, &mut out);
        p.on_retire(CoreId::new(0), BlockAddr::new(1), &mut llc, &mut out);
        assert!(out.is_empty());
        assert!(!p.covers(CoreId::new(0), BlockAddr::new(1)));
        assert_eq!(p.storage(16).total_bytes(16), 0);
        assert_eq!(p.kind(), PrefetcherKind::None);
    }

    #[test]
    fn candidate_constructors() {
        let a = PrefetchCandidate::immediate(BlockAddr::new(4));
        assert_eq!(a.ready_delay, 0);
        let b = PrefetchCandidate::delayed(BlockAddr::new(4), 11);
        assert_eq!(b.ready_delay, 11);
        assert_eq!(a.block, b.block);
    }

    #[test]
    fn kind_display_names() {
        assert_eq!(PrefetcherKind::Shift.to_string(), "SHIFT");
        assert_eq!(PrefetcherKind::Pif.to_string(), "PIF");
        assert_eq!(PrefetcherKind::NextLine.to_string(), "next-line");
        assert_eq!(PrefetcherKind::None.to_string(), "baseline");
        assert_eq!(PrefetcherKind::Fallback.to_string(), "fallback");
        assert_eq!(PrefetcherKind::Gated.to_string(), "gated");
        assert_eq!(PrefetcherKind::Adaptive.to_string(), "adaptive");
        assert_eq!(PrefetcherKind::Throttled.to_string(), "throttled");
    }

    #[test]
    fn every_kind_round_trips_through_its_display_name() {
        // Exhaustive over ALL: FromStr must invert Display for every kind,
        // old and new, and ALL must actually be exhaustive.
        for kind in PrefetcherKind::ALL {
            let name = kind.to_string();
            assert_eq!(name.parse::<PrefetcherKind>(), Ok(kind), "{name}");
            // Case-insensitive, as env/CLI input tends to arrive lowercased.
            assert_eq!(name.to_uppercase().parse::<PrefetcherKind>(), Ok(kind));
            assert_eq!(name.to_lowercase().parse::<PrefetcherKind>(), Ok(kind));
        }
        let names: std::collections::HashSet<&str> =
            PrefetcherKind::ALL.iter().map(|k| k.as_str()).collect();
        assert_eq!(
            names.len(),
            PrefetcherKind::ALL.len(),
            "names must be distinct"
        );
    }

    #[test]
    fn unknown_kind_parse_fails_with_the_known_list() {
        let err = "no-such-design".parse::<PrefetcherKind>().unwrap_err();
        assert_eq!(err, UnknownKind("no-such-design".to_owned()));
        let msg = err.to_string();
        assert!(msg.contains("no-such-design"));
        assert!(msg.contains("SHIFT") && msg.contains("fallback"));
    }
}
