//! Proactive Instruction Fetch (PIF) — the per-core-history baseline.
//!
//! PIF \[Ferdman, Kaynak, Falsafi, MICRO-44 2011\] is the state-of-the-art
//! stream prefetcher SHIFT is compared against. Every core records its own
//! retire-order instruction-cache access stream as spatial region records in
//! a private history buffer with a private index table, and replays it with
//! private stream address buffers. The paper evaluates two design points:
//! `PIF_32K` (32 K records + 8 K index entries per core, 213 KB/core) and the
//! equal-aggregate-storage `PIF_2K` (2 K records + 512 index entries per
//! core).

use serde::{Deserialize, Serialize};
use shift_cache::NucaLlc;
use shift_types::{BlockAddr, CoreId};

use crate::history::HistoryBuffer;
use crate::index::IndexTable;
use crate::prefetcher::{InstructionPrefetcher, PrefetchCandidate, PrefetcherKind};
use crate::region::{SpatialRegion, SpatialRegionCompactor};
use crate::sab::{SabConfig, StreamAddressBufferSet};
use crate::storage::{self, StorageCost};

/// Configuration of a PIF instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PifConfig {
    /// History-buffer capacity in spatial region records, per core.
    pub history_records: usize,
    /// Index-table capacity in entries, per core.
    pub index_entries: usize,
    /// Spatial region size in blocks.
    pub region_blocks: u8,
    /// Stream address buffer configuration.
    pub sab: SabConfig,
}

impl PifConfig {
    /// The paper's PIF_32K design point: 32 K records and 8 K index entries
    /// per core (≈213 KB/core), 8-block regions.
    pub fn pif_32k() -> Self {
        PifConfig {
            history_records: 32 * 1024,
            index_entries: 8 * 1024,
            region_blocks: 8,
            sab: SabConfig::micro13(),
        }
    }

    /// The equal-storage PIF_2K design point: 2 K records and 512 index
    /// entries per core.
    pub fn pif_2k() -> Self {
        PifConfig {
            history_records: 2 * 1024,
            index_entries: 512,
            region_blocks: 8,
            sab: SabConfig::micro13(),
        }
    }

    /// A design point with an arbitrary per-core history size, keeping the
    /// paper's 4:1 history-to-index ratio; used for the Figure 6 sweep.
    pub fn with_history_records(records: usize) -> Self {
        PifConfig {
            history_records: records.max(16),
            index_entries: (records / 4).max(8),
            region_blocks: 8,
            sab: SabConfig::micro13(),
        }
    }

    /// Human-readable design point name (`PIF_32K`, `PIF_2K`, …).
    pub fn design_name(&self) -> String {
        if self.history_records.is_multiple_of(1024) {
            format!("PIF_{}K", self.history_records / 1024)
        } else {
            format!("PIF_{}", self.history_records)
        }
    }
}

#[derive(Debug, Serialize, Deserialize)]
struct PifCore {
    compactor: SpatialRegionCompactor,
    history: HistoryBuffer,
    index: IndexTable,
    sabs: StreamAddressBufferSet,
    /// Reused candidate-block buffer for SAB replay (cleared per call).
    scratch_blocks: Vec<BlockAddr>,
}

impl PifCore {
    fn new(config: &PifConfig) -> Self {
        PifCore {
            compactor: SpatialRegionCompactor::new(config.region_blocks),
            history: HistoryBuffer::new(config.history_records),
            index: IndexTable::new(config.index_entries),
            sabs: StreamAddressBufferSet::new(config.sab),
            scratch_blocks: Vec::new(),
        }
    }
}

/// The PIF prefetcher: one private history, index, and SAB set per core.
#[derive(Debug, Serialize, Deserialize)]
pub struct Pif {
    config: PifConfig,
    name: String,
    cores: Vec<PifCore>,
}

impl Pif {
    /// Creates a PIF instance covering `cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn new(config: PifConfig, cores: u16) -> Self {
        assert!(cores > 0, "need at least one core");
        Pif {
            name: config.design_name(),
            cores: (0..cores).map(|_| PifCore::new(&config)).collect(),
            config,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &PifConfig {
        &self.config
    }

    /// Records observed so far by one core's history (for tests/inspection).
    pub fn history_appends(&self, core: CoreId) -> u64 {
        self.cores[core.index()].history.total_appends()
    }
}

fn read_and_advance(
    history: &HistoryBuffer,
    ptr: u32,
    n: usize,
    buf: &mut Vec<SpatialRegion>,
) -> u32 {
    history.read_into(ptr, n, buf);
    history.advance_ptr(ptr, buf.len() as u32)
}

impl InstructionPrefetcher for Pif {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> PrefetcherKind {
        PrefetcherKind::Pif
    }

    fn on_access(
        &mut self,
        core: CoreId,
        block: BlockAddr,
        hit: bool,
        _llc: &mut NucaLlc,
        out: &mut Vec<PrefetchCandidate>,
    ) {
        if hit {
            return;
        }
        let state = &mut self.cores[core.index()];
        let PifCore {
            history,
            index,
            sabs,
            scratch_blocks,
            ..
        } = state;
        if let Some(ptr) = index.lookup(block) {
            scratch_blocks.clear();
            sabs.allocate(
                ptr,
                &mut |p, n, buf| read_and_advance(history, p, n, buf),
                scratch_blocks,
            );
            out.extend(
                scratch_blocks
                    .iter()
                    .map(|&b| PrefetchCandidate::immediate(b)),
            );
        }
    }

    fn on_retire(
        &mut self,
        core: CoreId,
        block: BlockAddr,
        _llc: &mut NucaLlc,
        out: &mut Vec<PrefetchCandidate>,
    ) {
        let state = &mut self.cores[core.index()];
        let PifCore {
            compactor,
            history,
            index,
            sabs,
            scratch_blocks,
        } = state;

        // Replay: advance any stream this retirement falls into.
        scratch_blocks.clear();
        sabs.on_retire(
            block,
            &mut |p, n, buf| read_and_advance(history, p, n, buf),
            scratch_blocks,
        );
        out.extend(
            scratch_blocks
                .iter()
                .map(|&b| PrefetchCandidate::immediate(b)),
        );

        // Record: fold the retire stream into spatial region records.
        if let Some(record) = compactor.observe(block) {
            let ptr = history.append(record);
            index.update(record.trigger(), ptr);
        }
    }

    fn covers(&self, core: CoreId, block: BlockAddr) -> bool {
        self.cores[core.index()].sabs.covers(block)
    }

    fn storage(&self, _cores: u16) -> StorageCost {
        let record_bits = SpatialRegion::storage_bits(self.config.region_blocks);
        let pointer_bits = storage::pointer_bits(self.config.history_records);
        StorageCost {
            per_core_bytes: storage::history_bytes(self.config.history_records, record_bits)
                + storage::index_bytes(self.config.index_entries, pointer_bits),
            shared_bytes: 0,
            llc_data_bytes: 0,
            llc_tag_bytes: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shift_cache::LlcConfig;

    fn llc() -> NucaLlc {
        NucaLlc::new(LlcConfig::micro13(1))
    }

    fn drive_retires(pif: &mut Pif, core: CoreId, llc: &mut NucaLlc, blocks: &[u64]) {
        let mut out = Vec::new();
        for &b in blocks {
            pif.on_retire(core, BlockAddr::new(b), llc, &mut out);
        }
    }

    #[test]
    fn recorded_stream_is_replayed_on_miss() {
        let mut llc = llc();
        let mut pif = Pif::new(PifConfig::pif_32k(), 1);
        let core = CoreId::new(0);
        // A recurring stream with discontinuities: 100,101,102 → 240,241 → 500.
        let stream = [100, 101, 102, 240, 241, 500, 900, 901];
        for _ in 0..3 {
            drive_retires(&mut pif, core, &mut llc, &stream);
        }
        let mut out = Vec::new();
        pif.on_access(core, BlockAddr::new(100), false, &mut llc, &mut out);
        let blocks: Vec<u64> = out.iter().map(|c| c.block.get()).collect();
        assert!(blocks.contains(&100));
        assert!(blocks.contains(&101));
        assert!(
            blocks.contains(&240),
            "discontinuous target must be predicted: {blocks:?}"
        );
        assert!(pif.covers(core, BlockAddr::new(241)));
    }

    #[test]
    fn hits_do_not_trigger_replay() {
        let mut llc = llc();
        let mut pif = Pif::new(PifConfig::pif_2k(), 1);
        let core = CoreId::new(0);
        drive_retires(&mut pif, core, &mut llc, &[10, 20, 30, 10, 20, 30]);
        let mut out = Vec::new();
        pif.on_access(core, BlockAddr::new(10), true, &mut llc, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn cores_have_private_histories() {
        let mut llc = llc();
        let mut pif = Pif::new(PifConfig::pif_32k(), 2);
        drive_retires(
            &mut pif,
            CoreId::new(0),
            &mut llc,
            &[1, 2, 3, 50, 51, 1, 2, 3, 50],
        );
        // Core 1 never retired anything, so a miss on core 1 finds no stream.
        let mut out = Vec::new();
        pif.on_access(CoreId::new(1), BlockAddr::new(1), false, &mut llc, &mut out);
        assert!(out.is_empty());
        assert!(pif.history_appends(CoreId::new(0)) > 0);
        assert_eq!(pif.history_appends(CoreId::new(1)), 0);
    }

    #[test]
    fn storage_cost_matches_paper_numbers() {
        let pif32 = Pif::new(PifConfig::pif_32k(), 16);
        let per_core = pif32.storage(16).per_core_bytes;
        // 164 KB history + 49 KB index ≈ 213 KB per core.
        assert_eq!(per_core / 1024, 213);
        // PIF_2K: 2 K × 41 bits ≈ 10 KB history + 512 × 49 bits ≈ 3 KB index.
        let pif2 = Pif::new(PifConfig::pif_2k(), 16);
        assert!(pif2.storage(16).per_core_bytes < 16 * 1024);
    }

    #[test]
    fn design_names() {
        assert_eq!(PifConfig::pif_32k().design_name(), "PIF_32K");
        assert_eq!(PifConfig::pif_2k().design_name(), "PIF_2K");
        assert_eq!(
            PifConfig::with_history_records(4096).design_name(),
            "PIF_4K"
        );
    }

    #[test]
    fn with_history_records_keeps_ratio() {
        let cfg = PifConfig::with_history_records(16 * 1024);
        assert_eq!(cfg.history_records, 16 * 1024);
        assert_eq!(cfg.index_entries, 4 * 1024);
    }
}
