//! The index table: trigger block address → most recent history position.
//!
//! The index table provides the fast lookup that turns an instruction-cache
//! miss into a pointer at which replay should start. PIF keeps a private,
//! bounded index table per core (8 K entries for the paper's PIF_32K design
//! point); dedicated-storage SHIFT keeps one shared bounded table, and
//! virtualized SHIFT replaces the table entirely with pointer bits appended to
//! LLC tags (modelled in [`crate::shift`], not here).
//!
//! # Layout
//!
//! The table is a fixed-capacity, open-addressed hash table over packed
//! parallel arrays plus an intrusive doubly-linked LRU list threaded through
//! `u32` slot indices. All storage is allocated once in [`IndexTable::new`];
//! `update` and `lookup` never allocate. Recency is move-to-front on both
//! `update` and `lookup` hits, and eviction takes the list tail — the same
//! eviction order as a recency-stamp map that refreshes on update and hit and
//! evicts the minimum stamp (covered by the differential proptest in
//! `tests/proptest_core.rs`).

use serde::{Deserialize, Serialize};
use shift_types::BlockAddr;

/// Sentinel slot index marking "no slot" in the LRU list and bucket array.
const NIL: u32 = u32::MAX;

/// A bounded, LRU-evicting map from trigger block address to history pointer.
///
/// # Examples
///
/// ```
/// use shift_core::IndexTable;
/// use shift_types::BlockAddr;
///
/// let mut index = IndexTable::new(2);
/// index.update(BlockAddr::new(1), 10);
/// index.update(BlockAddr::new(2), 11);
/// index.update(BlockAddr::new(3), 12); // evicts the LRU entry (block 1)
/// assert_eq!(index.lookup(BlockAddr::new(1)), None);
/// assert_eq!(index.lookup(BlockAddr::new(3)), Some(12));
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct IndexTable {
    capacity: usize,
    /// Open-addressed bucket array of slot indices (`NIL` = empty), sized to a
    /// power of two at least twice `capacity` so linear probes stay short.
    buckets: Vec<u32>,
    /// Bit shift applied to the multiplicative hash to produce a bucket index.
    hash_shift: u32,
    /// Packed per-slot state; slots `0..len` are live.
    keys: Vec<u64>,
    ptrs: Vec<u32>,
    /// Intrusive LRU list: `prev` points toward the MRU head, `next` toward
    /// the LRU tail.
    prev: Vec<u32>,
    next: Vec<u32>,
    head: u32,
    tail: u32,
    len: usize,
    lookups: u64,
    hits: u64,
}

impl IndexTable {
    /// Creates an index table with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "index table needs at least one entry");
        assert!(
            capacity < NIL as usize,
            "index table capacity must fit in a u32 slot index"
        );
        let bucket_count = (capacity * 2).next_power_of_two();
        IndexTable {
            capacity,
            buckets: vec![NIL; bucket_count],
            hash_shift: 64 - bucket_count.trailing_zeros(),
            keys: Vec::with_capacity(capacity),
            ptrs: Vec::with_capacity(capacity),
            prev: Vec::with_capacity(capacity),
            next: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            len: 0,
            lookups: 0,
            hits: 0,
        }
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of lookups performed.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Number of lookups that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Fibonacci multiplicative hash of a block number into a bucket index.
    #[inline(always)]
    fn bucket_of(&self, key: u64) -> usize {
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> self.hash_shift) as usize
    }

    /// Probes for `key`, returning `(bucket, slot)` — `slot == NIL` means the
    /// key is absent and `bucket` is the empty bucket where it would insert.
    #[inline(always)]
    fn probe(&self, key: u64) -> (usize, u32) {
        let mask = self.buckets.len() - 1;
        let mut b = self.bucket_of(key);
        loop {
            let slot = self.buckets[b];
            if slot == NIL || self.keys[slot as usize] == key {
                return (b, slot);
            }
            b = (b + 1) & mask;
        }
    }

    /// Unlinks `slot` from the LRU list.
    #[inline(always)]
    fn unlink(&mut self, slot: u32) {
        let (p, n) = (self.prev[slot as usize], self.next[slot as usize]);
        if p == NIL {
            self.head = n;
        } else {
            self.next[p as usize] = n;
        }
        if n == NIL {
            self.tail = p;
        } else {
            self.prev[n as usize] = p;
        }
    }

    /// Links `slot` at the MRU head of the list.
    #[inline(always)]
    fn link_front(&mut self, slot: u32) {
        self.prev[slot as usize] = NIL;
        self.next[slot as usize] = self.head;
        if self.head != NIL {
            self.prev[self.head as usize] = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    /// Moves an already-linked `slot` to the MRU head.
    #[inline(always)]
    fn touch(&mut self, slot: u32) {
        if self.head != slot {
            self.unlink(slot);
            self.link_front(slot);
        }
    }

    /// Removes `key` from the bucket array using backward-shift deletion so
    /// probe chains stay tombstone-free. Entry slots are untouched; only the
    /// `u32` indices in the bucket array move.
    fn bucket_remove(&mut self, key: u64) {
        let mask = self.buckets.len() - 1;
        let (mut hole, _) = self.probe(key);
        let mut b = (hole + 1) & mask;
        self.buckets[hole] = NIL;
        loop {
            let slot = self.buckets[b];
            if slot == NIL {
                return;
            }
            let home = self.bucket_of(self.keys[slot as usize]);
            // `slot` can fill the hole iff its home bucket is outside the
            // cyclic range (hole, b], i.e. the probe from `home` would have
            // reached `hole` before `b`.
            let wrapped_home = b.wrapping_sub(home) & mask;
            let wrapped_hole = b.wrapping_sub(hole) & mask;
            if wrapped_home >= wrapped_hole {
                self.buckets[hole] = slot;
                self.buckets[b] = NIL;
                hole = b;
            }
            b = (b + 1) & mask;
        }
    }

    /// Inserts or updates the pointer for `trigger`, evicting the
    /// least-recently-used entry if the table is full.
    #[inline]
    pub fn update(&mut self, trigger: BlockAddr, ptr: u32) {
        let key = trigger.get();
        let (bucket, slot) = self.probe(key);
        if slot != NIL {
            self.ptrs[slot as usize] = ptr;
            self.touch(slot);
            return;
        }
        if self.len < self.capacity {
            let slot = self.len as u32;
            self.keys.push(key);
            self.ptrs.push(ptr);
            self.prev.push(NIL);
            self.next.push(NIL);
            self.len += 1;
            self.buckets[bucket] = slot;
            self.link_front(slot);
        } else {
            let victim = self.tail;
            self.unlink(victim);
            self.bucket_remove(self.keys[victim as usize]);
            self.keys[victim as usize] = key;
            self.ptrs[victim as usize] = ptr;
            // Re-probe: the backward shift may have moved indices into the
            // bucket the original probe found empty.
            let (bucket, _) = self.probe(key);
            self.buckets[bucket] = victim;
            self.link_front(victim);
        }
    }

    /// Looks up the most recent history pointer for `trigger`, refreshing its
    /// recency on a hit.
    #[inline]
    pub fn lookup(&mut self, trigger: BlockAddr) -> Option<u32> {
        self.lookups += 1;
        let (_, slot) = self.probe(trigger.get());
        if slot == NIL {
            return None;
        }
        self.hits += 1;
        self.touch(slot);
        Some(self.ptrs[slot as usize])
    }

    /// Looks up without updating recency or statistics.
    pub fn peek(&self, trigger: BlockAddr) -> Option<u32> {
        let (_, slot) = self.probe(trigger.get());
        if slot == NIL {
            None
        } else {
            Some(self.ptrs[slot as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_then_lookup_round_trips() {
        let mut idx = IndexTable::new(16);
        idx.update(BlockAddr::new(42), 7);
        assert_eq!(idx.lookup(BlockAddr::new(42)), Some(7));
        assert_eq!(idx.peek(BlockAddr::new(42)), Some(7));
        assert_eq!(idx.lookup(BlockAddr::new(43)), None);
        assert_eq!(idx.lookups(), 2);
        assert_eq!(idx.hits(), 1);
    }

    #[test]
    fn update_overwrites_existing_pointer() {
        let mut idx = IndexTable::new(4);
        idx.update(BlockAddr::new(1), 10);
        idx.update(BlockAddr::new(1), 20);
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.peek(BlockAddr::new(1)), Some(20));
    }

    #[test]
    fn capacity_is_enforced_with_lru_eviction() {
        let mut idx = IndexTable::new(3);
        for i in 0..3u64 {
            idx.update(BlockAddr::new(i), i as u32);
        }
        // Touch block 0 so block 1 becomes LRU.
        assert!(idx.lookup(BlockAddr::new(0)).is_some());
        idx.update(BlockAddr::new(99), 99);
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.peek(BlockAddr::new(1)), None, "LRU entry evicted");
        assert!(idx.peek(BlockAddr::new(0)).is_some());
        assert!(idx.peek(BlockAddr::new(99)).is_some());
    }

    #[test]
    fn heavy_use_never_exceeds_capacity() {
        let mut idx = IndexTable::new(64);
        for i in 0..10_000u64 {
            idx.update(BlockAddr::new(i % 977), (i % 4096) as u32);
            idx.lookup(BlockAddr::new((i * 7) % 977));
        }
        assert!(idx.len() <= 64);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_rejected() {
        let _ = IndexTable::new(0);
    }

    #[test]
    fn eviction_churn_keeps_probe_chains_consistent() {
        // Force heavy eviction through a small table with colliding keys so
        // the backward-shift deletion path is exercised, then verify every
        // resident key still resolves.
        let mut idx = IndexTable::new(8);
        for i in 0..4_000u64 {
            idx.update(BlockAddr::new(i.wrapping_mul(0x1000)), i as u32);
        }
        // The 8 most recent inserts must all be present and correct.
        for i in 3_992..4_000u64 {
            assert_eq!(
                idx.peek(BlockAddr::new(i.wrapping_mul(0x1000))),
                Some(i as u32),
                "key inserted at i={i} lost"
            );
        }
        assert_eq!(idx.len(), 8);
    }

    #[test]
    fn hot_paths_do_not_allocate_after_construction() {
        let mut idx = IndexTable::new(256);
        // Fill to capacity first (growth phase uses the pre-reserved Vecs).
        for i in 0..256u64 {
            idx.update(BlockAddr::new(i), i as u32);
        }
        let caps = (
            idx.buckets.capacity(),
            idx.keys.capacity(),
            idx.ptrs.capacity(),
            idx.prev.capacity(),
            idx.next.capacity(),
        );
        for i in 0..50_000u64 {
            idx.update(BlockAddr::new(i % 1021), (i % 4096) as u32);
            idx.lookup(BlockAddr::new((i * 13) % 1021));
        }
        assert_eq!(
            caps,
            (
                idx.buckets.capacity(),
                idx.keys.capacity(),
                idx.ptrs.capacity(),
                idx.prev.capacity(),
                idx.next.capacity(),
            ),
            "IndexTable hot paths must not reallocate"
        );
    }
}
