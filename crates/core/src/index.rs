//! The index table: trigger block address → most recent history position.
//!
//! The index table provides the fast lookup that turns an instruction-cache
//! miss into a pointer at which replay should start. PIF keeps a private,
//! bounded index table per core (8 K entries for the paper's PIF_32K design
//! point); dedicated-storage SHIFT keeps one shared bounded table, and
//! virtualized SHIFT replaces the table entirely with pointer bits appended to
//! LLC tags (modelled in [`crate::shift`], not here).

use std::collections::{BTreeMap, HashMap};

use serde::{Deserialize, Serialize};
use shift_types::BlockAddr;

/// A bounded, LRU-evicting map from trigger block address to history pointer.
///
/// # Examples
///
/// ```
/// use shift_core::IndexTable;
/// use shift_types::BlockAddr;
///
/// let mut index = IndexTable::new(2);
/// index.update(BlockAddr::new(1), 10);
/// index.update(BlockAddr::new(2), 11);
/// index.update(BlockAddr::new(3), 12); // evicts the LRU entry (block 1)
/// assert_eq!(index.lookup(BlockAddr::new(1)), None);
/// assert_eq!(index.lookup(BlockAddr::new(3)), Some(12));
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct IndexTable {
    capacity: usize,
    entries: HashMap<BlockAddr, IndexEntry>,
    lru: BTreeMap<u64, BlockAddr>,
    clock: u64,
    lookups: u64,
    hits: u64,
}

#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
struct IndexEntry {
    ptr: u32,
    stamp: u64,
}

impl IndexTable {
    /// Creates an index table with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "index table needs at least one entry");
        IndexTable {
            capacity,
            entries: HashMap::with_capacity(capacity.min(1 << 20)),
            lru: BTreeMap::new(),
            clock: 0,
            lookups: 0,
            hits: 0,
        }
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of lookups performed.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Number of lookups that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Inserts or updates the pointer for `trigger`, evicting the
    /// least-recently-used entry if the table is full.
    #[inline]
    pub fn update(&mut self, trigger: BlockAddr, ptr: u32) {
        self.clock += 1;
        let stamp = self.clock;
        if let Some(entry) = self.entries.get_mut(&trigger) {
            self.lru.remove(&entry.stamp);
            entry.ptr = ptr;
            entry.stamp = stamp;
            self.lru.insert(stamp, trigger);
            return;
        }
        if self.entries.len() >= self.capacity {
            if let Some((&oldest_stamp, &victim)) = self.lru.iter().next() {
                self.lru.remove(&oldest_stamp);
                self.entries.remove(&victim);
            }
        }
        self.entries.insert(trigger, IndexEntry { ptr, stamp });
        self.lru.insert(stamp, trigger);
    }

    /// Looks up the most recent history pointer for `trigger`, refreshing its
    /// recency on a hit.
    #[inline]
    pub fn lookup(&mut self, trigger: BlockAddr) -> Option<u32> {
        self.lookups += 1;
        self.clock += 1;
        let stamp = self.clock;
        if let Some(entry) = self.entries.get_mut(&trigger) {
            self.hits += 1;
            self.lru.remove(&entry.stamp);
            entry.stamp = stamp;
            self.lru.insert(stamp, trigger);
            Some(entry.ptr)
        } else {
            None
        }
    }

    /// Looks up without updating recency or statistics.
    pub fn peek(&self, trigger: BlockAddr) -> Option<u32> {
        self.entries.get(&trigger).map(|e| e.ptr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_then_lookup_round_trips() {
        let mut idx = IndexTable::new(16);
        idx.update(BlockAddr::new(42), 7);
        assert_eq!(idx.lookup(BlockAddr::new(42)), Some(7));
        assert_eq!(idx.peek(BlockAddr::new(42)), Some(7));
        assert_eq!(idx.lookup(BlockAddr::new(43)), None);
        assert_eq!(idx.lookups(), 2);
        assert_eq!(idx.hits(), 1);
    }

    #[test]
    fn update_overwrites_existing_pointer() {
        let mut idx = IndexTable::new(4);
        idx.update(BlockAddr::new(1), 10);
        idx.update(BlockAddr::new(1), 20);
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.peek(BlockAddr::new(1)), Some(20));
    }

    #[test]
    fn capacity_is_enforced_with_lru_eviction() {
        let mut idx = IndexTable::new(3);
        for i in 0..3u64 {
            idx.update(BlockAddr::new(i), i as u32);
        }
        // Touch block 0 so block 1 becomes LRU.
        assert!(idx.lookup(BlockAddr::new(0)).is_some());
        idx.update(BlockAddr::new(99), 99);
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.peek(BlockAddr::new(1)), None, "LRU entry evicted");
        assert!(idx.peek(BlockAddr::new(0)).is_some());
        assert!(idx.peek(BlockAddr::new(99)).is_some());
    }

    #[test]
    fn heavy_use_never_exceeds_capacity() {
        let mut idx = IndexTable::new(64);
        for i in 0..10_000u64 {
            idx.update(BlockAddr::new(i % 977), (i % 4096) as u32);
            idx.lookup(BlockAddr::new((i * 7) % 977));
        }
        assert!(idx.len() <= 64);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_rejected() {
        let _ = IndexTable::new(0);
    }
}
