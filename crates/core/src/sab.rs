//! Stream address buffers: the per-core replay engines.
//!
//! Each core owns a small set of stream address buffers (four in the paper's
//! design). A buffer holds a queue of spatial region records read from the
//! history buffer (up to twelve) and runs ahead of the core: when an
//! instruction-cache miss starts a new stream, the buffer is filled with a
//! lookahead window of records (five in the paper); as the core retires
//! instructions that fall into buffered regions, the stream advances and
//! further records are read. Prefetch requests are issued for the blocks
//! encoded by newly read records.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};
use shift_types::BlockAddr;

use crate::region::SpatialRegion;

/// Configuration of a stream address buffer set.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SabConfig {
    /// Number of concurrent streams per core (4 in the paper).
    pub streams: usize,
    /// Maximum region records held per stream (12 in the paper).
    pub capacity_regions: usize,
    /// Number of records read ahead of the stream position (5 in the paper).
    pub lookahead: usize,
}

impl SabConfig {
    /// The paper's configuration: 4 streams × 12 records, lookahead 5.
    pub fn micro13() -> Self {
        SabConfig {
            streams: 4,
            capacity_regions: 12,
            lookahead: 5,
        }
    }
}

impl Default for SabConfig {
    fn default() -> Self {
        Self::micro13()
    }
}

/// A single stream address buffer.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct StreamAddressBuffer {
    regions: VecDeque<SpatialRegion>,
    next_ptr: u32,
    last_use: u64,
    valid: bool,
    /// Coarse presence filter over the buffered regions' accessed blocks
    /// (bit `b & 63` set for every buffered block `b`). Bits are only added
    /// on push and cleared on reset, so the filter is a *superset* of the
    /// buffered blocks: a filter miss proves the block is absent and skips
    /// the region scan, while a stale bit merely costs the scan the code
    /// always performed — match results are unchanged either way.
    filter: u64,
}

impl StreamAddressBuffer {
    /// Returns `true` if the buffer holds an active stream.
    pub fn is_valid(&self) -> bool {
        self.valid
    }

    /// The buffered region records, oldest first.
    pub fn regions(&self) -> impl Iterator<Item = &SpatialRegion> {
        self.regions.iter()
    }

    /// History pointer of the next record to read when the stream advances.
    pub fn next_ptr(&self) -> u32 {
        self.next_ptr
    }

    /// Returns the index of the buffered region whose *recorded accesses*
    /// include `block`, if any.
    #[inline]
    fn match_index(&self, block: BlockAddr) -> Option<usize> {
        if self.filter & Self::filter_bit(block) == 0 {
            return None;
        }
        self.regions.iter().position(|r| r.contains_access(block))
    }

    #[inline]
    fn filter_bit(block: BlockAddr) -> u64 {
        1u64 << (block.get() & 63)
    }

    fn reset(&mut self, next_ptr: u32, now: u64) {
        self.regions.clear();
        self.next_ptr = next_ptr;
        self.last_use = now;
        self.valid = true;
        self.filter = 0;
    }

    fn push_record(&mut self, record: SpatialRegion, capacity: usize) {
        if self.regions.len() >= capacity {
            self.regions.pop_front();
        }
        for block in record.blocks() {
            self.filter |= Self::filter_bit(block);
        }
        self.regions.push_back(record);
    }
}

/// Callback that reads up to `count` history records starting at `ptr` into
/// the provided scratch buffer (already cleared by the caller) and returns the
/// advanced pointer. The caller performs the read (possibly via the LLC);
/// filling a reused buffer instead of returning a fresh `Vec` keeps
/// steady-state replay free of heap allocation.
pub type HistoryReader<'a> = dyn FnMut(u32, usize, &mut Vec<SpatialRegion>) -> u32 + 'a;

/// A set of stream address buffers for one core.
///
/// # Examples
///
/// ```
/// use shift_core::{HistoryBuffer, SpatialRegion, StreamAddressBufferSet};
/// use shift_core::sab::SabConfig;
/// use shift_types::BlockAddr;
///
/// let mut history = HistoryBuffer::new(64);
/// let ptr = history.append(SpatialRegion::new(BlockAddr::new(100), 8));
/// history.append(SpatialRegion::new(BlockAddr::new(200), 8));
///
/// let mut sabs = StreamAddressBufferSet::new(SabConfig::micro13());
/// let mut candidates = Vec::new();
/// sabs.allocate(
///     ptr,
///     &mut |p, n, buf| {
///         history.read_into(p, n, buf);
///         history.advance_ptr(p, buf.len() as u32)
///     },
///     &mut candidates,
/// );
/// assert!(candidates.contains(&BlockAddr::new(100)));
/// assert!(sabs.covers(BlockAddr::new(200)));
/// ```
#[derive(Debug, Serialize, Deserialize)]
pub struct StreamAddressBufferSet {
    config: SabConfig,
    streams: Vec<StreamAddressBuffer>,
    clock: u64,
    streams_allocated: u64,
    advances: u64,
    /// Reused window for records handed back by the [`HistoryReader`].
    scratch_records: Vec<SpatialRegion>,
}

impl StreamAddressBufferSet {
    /// Creates an empty set.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero streams, capacity, or lookahead.
    pub fn new(config: SabConfig) -> Self {
        assert!(config.streams > 0, "need at least one stream buffer");
        assert!(
            config.capacity_regions > 0,
            "stream capacity must be positive"
        );
        assert!(config.lookahead > 0, "lookahead must be positive");
        StreamAddressBufferSet {
            config,
            streams: (0..config.streams)
                .map(|_| StreamAddressBuffer::default())
                .collect(),
            clock: 0,
            streams_allocated: 0,
            advances: 0,
            scratch_records: Vec::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SabConfig {
        &self.config
    }

    /// Number of streams allocated so far.
    pub fn streams_allocated(&self) -> u64 {
        self.streams_allocated
    }

    /// Number of stream advancements (retired blocks that matched a stream).
    pub fn advances(&self) -> u64 {
        self.advances
    }

    /// Returns `true` if `block` is among the recorded accesses of any
    /// buffered region — i.e. the prefetcher "predicts" this block. Used both
    /// by replay and by the paper's prediction-only study (Figure 6).
    #[inline]
    pub fn covers(&self, block: BlockAddr) -> bool {
        self.streams
            .iter()
            .filter(|s| s.valid)
            .any(|s| s.match_index(block).is_some())
    }

    /// Allocates a new stream starting at history pointer `start_ptr`,
    /// reading an initial lookahead window through `read_history`. The least
    /// recently used stream is evicted. The prefetch candidate blocks encoded
    /// by the records read are appended to `out`.
    pub fn allocate(
        &mut self,
        start_ptr: u32,
        read_history: &mut HistoryReader<'_>,
        out: &mut Vec<BlockAddr>,
    ) {
        self.clock += 1;
        self.streams_allocated += 1;
        let now = self.clock;
        let victim = self
            .streams
            .iter()
            .enumerate()
            .min_by_key(|(_, s)| if s.valid { s.last_use } else { 0 })
            .map(|(i, _)| i)
            .expect("at least one stream");
        let mut records = std::mem::take(&mut self.scratch_records);
        records.clear();
        let next_ptr = read_history(start_ptr, self.config.lookahead, &mut records);
        let stream = &mut self.streams[victim];
        stream.reset(next_ptr, now);
        for &record in &records {
            out.extend(record.blocks());
            stream.push_record(record, self.config.capacity_regions);
        }
        self.scratch_records = records;
    }

    /// Observes a retired block. If it falls within a buffered region of some
    /// stream, the stream advances: enough new records are read to keep the
    /// lookahead window ahead of the match point. The prefetch candidates
    /// encoded by the newly read records are appended to `out`.
    pub fn on_retire(
        &mut self,
        block: BlockAddr,
        read_history: &mut HistoryReader<'_>,
        out: &mut Vec<BlockAddr>,
    ) {
        self.clock += 1;
        let now = self.clock;
        let capacity = self.config.capacity_regions;
        let lookahead = self.config.lookahead;

        let matched = self
            .streams
            .iter()
            .enumerate()
            .filter(|(_, s)| s.valid)
            .find_map(|(i, s)| s.match_index(block).map(|pos| (i, pos)));

        let Some((stream_idx, pos)) = matched else {
            return;
        };
        self.advances += 1;
        let stream = &mut self.streams[stream_idx];
        stream.last_use = now;

        // Keep `lookahead` records buffered beyond the match position.
        let ahead = stream.regions.len().saturating_sub(pos + 1);
        let needed = lookahead.saturating_sub(ahead);
        if needed == 0 {
            return;
        }
        let mut records = std::mem::take(&mut self.scratch_records);
        records.clear();
        let next_ptr = read_history(stream.next_ptr, needed, &mut records);
        let stream = &mut self.streams[stream_idx];
        stream.next_ptr = next_ptr;
        for &record in &records {
            out.extend(record.blocks());
            stream.push_record(record, capacity);
        }
        self.scratch_records = records;
    }

    /// Invalidates all streams (e.g. on a context switch in sensitivity
    /// studies).
    pub fn clear(&mut self) {
        for s in &mut self.streams {
            s.valid = false;
            s.regions.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::HistoryBuffer;

    fn region(trigger: u64, extra: &[u64]) -> SpatialRegion {
        let mut r = SpatialRegion::new(BlockAddr::new(trigger), 8);
        for &off in extra {
            assert!(r.try_record(BlockAddr::new(trigger + off)));
        }
        r
    }

    fn history_with(records: &[SpatialRegion]) -> HistoryBuffer {
        let mut h = HistoryBuffer::new(64);
        for &r in records {
            h.append(r);
        }
        h
    }

    fn reader(
        history: &HistoryBuffer,
    ) -> impl FnMut(u32, usize, &mut Vec<SpatialRegion>) -> u32 + '_ {
        move |ptr, n, buf| {
            history.read_into(ptr, n, buf);
            history.advance_ptr(ptr, buf.len() as u32)
        }
    }

    #[test]
    fn allocate_reads_lookahead_window_and_reports_blocks() {
        let records = vec![
            region(100, &[2, 3]),
            region(200, &[1]),
            region(300, &[]),
            region(400, &[]),
            region(500, &[]),
            region(600, &[]),
            region(700, &[]),
        ];
        let history = history_with(&records);
        let mut sabs = StreamAddressBufferSet::new(SabConfig::micro13());
        let mut rd = reader(&history);
        let mut candidates = Vec::new();
        sabs.allocate(0, &mut rd, &mut candidates);
        // Lookahead of 5 records: triggers 100..500 plus recorded extras.
        assert!(candidates.contains(&BlockAddr::new(100)));
        assert!(candidates.contains(&BlockAddr::new(102)));
        assert!(candidates.contains(&BlockAddr::new(500)));
        assert!(!candidates.contains(&BlockAddr::new(600)));
        assert!(sabs.covers(BlockAddr::new(201)));
        assert!(!sabs.covers(BlockAddr::new(601)));
        assert_eq!(sabs.streams_allocated(), 1);
    }

    #[test]
    fn retire_within_stream_advances_and_reads_more() {
        let records: Vec<_> = (0..10).map(|i| region(1000 + i * 16, &[1])).collect();
        let history = history_with(&records);
        let mut sabs = StreamAddressBufferSet::new(SabConfig {
            streams: 2,
            capacity_regions: 6,
            lookahead: 3,
        });
        let mut rd = reader(&history);
        sabs.allocate(0, &mut rd, &mut Vec::new());
        // Retiring a block of the second record keeps the window 3 ahead,
        // pulling in new records and producing their blocks as candidates.
        let mut rd = reader(&history);
        let mut new = Vec::new();
        sabs.on_retire(BlockAddr::new(1000 + 16), &mut rd, &mut new);
        assert!(!new.is_empty());
        assert!(
            new.contains(&BlockAddr::new(1000 + 3 * 16))
                || new.contains(&BlockAddr::new(1000 + 4 * 16))
        );
        assert_eq!(sabs.advances(), 1);
    }

    #[test]
    fn retire_outside_any_stream_is_a_no_op() {
        let records = vec![region(10, &[]), region(20, &[])];
        let history = history_with(&records);
        let mut sabs = StreamAddressBufferSet::new(SabConfig::micro13());
        let mut rd = reader(&history);
        sabs.allocate(0, &mut rd, &mut Vec::new());
        let mut rd = reader(&history);
        let mut out = Vec::new();
        sabs.on_retire(BlockAddr::new(999), &mut rd, &mut out);
        assert!(out.is_empty());
        assert_eq!(sabs.advances(), 0);
    }

    #[test]
    fn lru_stream_is_evicted_when_all_are_busy() {
        let records: Vec<_> = (0..30).map(|i| region(10_000 + i * 100, &[])).collect();
        let history = history_with(&records);
        let mut sabs = StreamAddressBufferSet::new(SabConfig {
            streams: 2,
            capacity_regions: 4,
            lookahead: 2,
        });
        // Allocate three streams; the first should be gone afterwards.
        for start in [0u32, 10, 20] {
            let mut rd = reader(&history);
            sabs.allocate(start, &mut rd, &mut Vec::new());
        }
        assert!(
            !sabs.covers(BlockAddr::new(10_000)),
            "oldest stream evicted"
        );
        assert!(sabs.covers(BlockAddr::new(10_000 + 20 * 100)));
    }

    #[test]
    fn stream_capacity_is_bounded() {
        let records: Vec<_> = (0..40).map(|i| region(5_000 + i * 50, &[])).collect();
        let history = history_with(&records);
        let mut sabs = StreamAddressBufferSet::new(SabConfig {
            streams: 1,
            capacity_regions: 4,
            lookahead: 4,
        });
        let mut rd = reader(&history);
        sabs.allocate(0, &mut rd, &mut Vec::new());
        // Walk the stream for a while; the buffer must keep at most 4 regions.
        for i in 0..30u64 {
            let mut rd = reader(&history);
            sabs.on_retire(BlockAddr::new(5_000 + i * 50), &mut rd, &mut Vec::new());
        }
        let buffered: usize = sabs.streams.iter().map(|s| s.regions.len()).sum();
        assert!(buffered <= 4, "buffered {buffered} regions, capacity 4");
    }

    #[test]
    fn clear_invalidates_all_streams() {
        let records = vec![region(1, &[]), region(2, &[])];
        let history = history_with(&records);
        let mut sabs = StreamAddressBufferSet::new(SabConfig::micro13());
        let mut rd = reader(&history);
        sabs.allocate(0, &mut rd, &mut Vec::new());
        assert!(sabs.covers(BlockAddr::new(1)));
        sabs.clear();
        assert!(!sabs.covers(BlockAddr::new(1)));
    }

    #[test]
    #[should_panic(expected = "lookahead must be positive")]
    fn zero_lookahead_rejected() {
        let _ = StreamAddressBufferSet::new(SabConfig {
            streams: 1,
            capacity_regions: 1,
            lookahead: 0,
        });
    }
}
