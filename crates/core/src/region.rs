//! Spatial region records and the compactor that produces them.
//!
//! To keep the history compact, the history generator does not log every
//! retired block address individually. Instead it collapses the retire-order
//! stream into *spatial region records*: a trigger block address plus a bit
//! vector marking which of the following blocks in the same region were also
//! accessed before control flow left the region (§4.1, Figure 4a). The paper
//! uses regions of eight blocks (trigger + 7 bit positions).

use serde::{Deserialize, Serialize};
use shift_types::BlockAddr;

/// Default spatial region size (in blocks) used throughout the paper.
pub const DEFAULT_REGION_BLOCKS: u8 = 8;

/// A spatial region record: the trigger block plus a bit vector over the
/// following `region_blocks - 1` blocks.
///
/// # Examples
///
/// ```
/// use shift_core::SpatialRegion;
/// use shift_types::BlockAddr;
///
/// let mut region = SpatialRegion::new(BlockAddr::new(0x100), 8);
/// assert!(region.try_record(BlockAddr::new(0x102)));
/// assert!(!region.try_record(BlockAddr::new(0x200))); // outside the region
/// let blocks: Vec<_> = region.blocks().collect();
/// assert_eq!(blocks, vec![BlockAddr::new(0x100), BlockAddr::new(0x102)]);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SpatialRegion {
    trigger: BlockAddr,
    bits: u64,
    region_blocks: u8,
}

impl SpatialRegion {
    /// Creates a region record anchored at `trigger` spanning `region_blocks`
    /// consecutive blocks (the trigger plus `region_blocks - 1` following).
    ///
    /// # Panics
    ///
    /// Panics if `region_blocks` is not in `2..=64`.
    pub fn new(trigger: BlockAddr, region_blocks: u8) -> Self {
        assert!(
            (2..=64).contains(&region_blocks),
            "region size must be between 2 and 64 blocks"
        );
        SpatialRegion {
            trigger,
            bits: 0,
            region_blocks,
        }
    }

    /// The trigger (first-accessed) block of the region.
    pub fn trigger(&self) -> BlockAddr {
        self.trigger
    }

    /// The region size in blocks.
    pub fn region_blocks(&self) -> u8 {
        self.region_blocks
    }

    /// The raw bit vector (bit `i` set means block `trigger + i + 1` was
    /// accessed).
    pub fn bit_vector(&self) -> u64 {
        self.bits
    }

    /// Returns `true` if `block` falls inside this region's address range.
    pub fn contains_address(&self, block: BlockAddr) -> bool {
        match block.offset_from(self.trigger) {
            Some(off) => off < self.region_blocks as u64,
            None => false,
        }
    }

    /// Returns `true` if `block` was recorded as accessed (the trigger always
    /// counts as accessed).
    pub fn contains_access(&self, block: BlockAddr) -> bool {
        match block.offset_from(self.trigger) {
            Some(0) => true,
            Some(off) if off < self.region_blocks as u64 => self.bits & (1 << (off - 1)) != 0,
            _ => false,
        }
    }

    /// Records an access to `block` if it falls inside the region, returning
    /// whether it did.
    pub fn try_record(&mut self, block: BlockAddr) -> bool {
        match block.offset_from(self.trigger) {
            Some(0) => true,
            Some(off) if off < self.region_blocks as u64 => {
                self.bits |= 1 << (off - 1);
                true
            }
            _ => false,
        }
    }

    /// Iterates over the accessed blocks encoded by the record (trigger first,
    /// then the set bit positions in ascending address order).
    ///
    /// The bit vector is walked with a `trailing_zeros` bit scan, so the
    /// iteration cost is proportional to the number of *accessed* blocks
    /// rather than the region size — this iterator runs on the replay hot
    /// path for every record a stream buffer reads. The iterator reports an
    /// exact size so `Vec::extend` reserves in one step.
    pub fn blocks(&self) -> impl ExactSizeIterator<Item = BlockAddr> + '_ {
        BlockIter {
            trigger: self.trigger,
            emit_trigger: true,
            bits: self.bits,
        }
    }

    /// Number of accessed blocks encoded (including the trigger).
    pub fn accessed_blocks(&self) -> u32 {
        1 + self.bits.count_ones()
    }

    /// Number of storage bits one record occupies: a block address plus
    /// `region_blocks - 1` bit-vector bits (41 bits for the paper's 8-block
    /// regions and 34-bit block addresses).
    pub fn storage_bits(region_blocks: u8) -> u32 {
        BlockAddr::STORAGE_BITS + (region_blocks as u32 - 1)
    }
}

/// Iterator behind [`SpatialRegion::blocks`]: the trigger, then each set bit
/// of the access vector in ascending order via a bit scan.
struct BlockIter {
    trigger: BlockAddr,
    emit_trigger: bool,
    bits: u64,
}

impl Iterator for BlockIter {
    type Item = BlockAddr;

    #[inline]
    fn next(&mut self) -> Option<BlockAddr> {
        if self.emit_trigger {
            self.emit_trigger = false;
            return Some(self.trigger);
        }
        if self.bits == 0 {
            return None;
        }
        let off = self.bits.trailing_zeros() as u64 + 1;
        self.bits &= self.bits - 1;
        Some(self.trigger.offset(off))
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.emit_trigger as usize + self.bits.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for BlockIter {}

/// Folds a retire-order block stream into spatial region records.
///
/// A record is emitted whenever the stream leaves the current region; the
/// record describes the region that was just left.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SpatialRegionCompactor {
    region_blocks: u8,
    current: Option<SpatialRegion>,
}

impl SpatialRegionCompactor {
    /// Creates a compactor producing regions of `region_blocks` blocks.
    pub fn new(region_blocks: u8) -> Self {
        SpatialRegionCompactor {
            region_blocks,
            current: None,
        }
    }

    /// The configured region size.
    pub fn region_blocks(&self) -> u8 {
        self.region_blocks
    }

    /// Observes one retired block. Returns the completed record when the
    /// stream leaves the previous region.
    pub fn observe(&mut self, block: BlockAddr) -> Option<SpatialRegion> {
        if let Some(region) = self.current.as_mut() {
            if region.try_record(block) {
                return None;
            }
        }
        let finished = self.current.take();
        self.current = Some(SpatialRegion::new(block, self.region_blocks));
        finished
    }

    /// The record currently being accumulated, if any.
    pub fn current(&self) -> Option<&SpatialRegion> {
        self.current.as_ref()
    }

    /// Flushes and returns the in-progress record, if any.
    pub fn flush(&mut self) -> Option<SpatialRegion> {
        self.current.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_bits_match_paper_figure4_example() {
        // Figure 4(a): access stream A, A+2, A+3, B → record (A, 0110) with a
        // 5-block region in the figure. Reproduce with the figure's region
        // size.
        let mut compactor = SpatialRegionCompactor::new(5);
        let a = BlockAddr::new(0x1000);
        let b = BlockAddr::new(0x2000);
        assert_eq!(compactor.observe(a), None);
        assert_eq!(compactor.observe(a.offset(2)), None);
        assert_eq!(compactor.observe(a.offset(3)), None);
        let record = compactor.observe(b).expect("leaving region emits record");
        assert_eq!(record.trigger(), a);
        // Bits: offset1→0, offset2→1, offset3→1, offset4→0  = 0b0110.
        assert_eq!(record.bit_vector(), 0b0110);
        let blocks: Vec<_> = record.blocks().collect();
        assert_eq!(blocks, vec![a, a.offset(2), a.offset(3)]);
        assert_eq!(record.accessed_blocks(), 3);
    }

    #[test]
    fn storage_bits_match_paper() {
        // 34-bit block address + 7-bit vector = 41 bits per record.
        assert_eq!(SpatialRegion::storage_bits(8), 41);
    }

    #[test]
    fn blocks_behind_trigger_start_a_new_region() {
        let mut compactor = SpatialRegionCompactor::new(8);
        let a = BlockAddr::new(100);
        compactor.observe(a);
        // An access to a *lower* address is outside the region (regions only
        // extend forward from the trigger).
        let emitted = compactor.observe(BlockAddr::new(99));
        assert!(emitted.is_some());
        assert_eq!(compactor.current().unwrap().trigger(), BlockAddr::new(99));
    }

    #[test]
    fn contains_access_vs_contains_address() {
        let mut region = SpatialRegion::new(BlockAddr::new(10), 8);
        region.try_record(BlockAddr::new(12));
        assert!(region.contains_address(BlockAddr::new(15)));
        assert!(!region.contains_access(BlockAddr::new(15)));
        assert!(region.contains_access(BlockAddr::new(12)));
        assert!(region.contains_access(BlockAddr::new(10)));
        assert!(!region.contains_address(BlockAddr::new(18)));
        assert!(!region.contains_address(BlockAddr::new(9)));
    }

    #[test]
    fn revisiting_the_trigger_does_not_emit() {
        let mut compactor = SpatialRegionCompactor::new(8);
        let a = BlockAddr::new(50);
        compactor.observe(a);
        compactor.observe(a.offset(1));
        assert_eq!(
            compactor.observe(a),
            None,
            "trigger revisit stays in region"
        );
    }

    #[test]
    fn flush_returns_pending_record() {
        let mut compactor = SpatialRegionCompactor::new(8);
        assert!(compactor.flush().is_none());
        compactor.observe(BlockAddr::new(7));
        let flushed = compactor.flush().expect("pending record");
        assert_eq!(flushed.trigger(), BlockAddr::new(7));
        assert!(compactor.current().is_none());
    }

    #[test]
    fn full_region_encodes_all_blocks() {
        let mut region = SpatialRegion::new(BlockAddr::new(0), 8);
        for i in 1..8 {
            region.try_record(BlockAddr::new(i));
        }
        assert_eq!(region.accessed_blocks(), 8);
        assert_eq!(region.blocks().count(), 8);
        assert_eq!(region.bit_vector(), 0x7f);
    }

    #[test]
    #[should_panic(expected = "between 2 and 64")]
    fn degenerate_region_size_rejected() {
        let _ = SpatialRegion::new(BlockAddr::new(0), 1);
    }
}
