//! SHIFT: the shared history instruction fetch prefetcher.
//!
//! SHIFT keeps a *single* instruction stream history per workload. One
//! designated core — the history generator — records its retire-order
//! instruction-cache access stream as spatial region records; every core
//! running the workload replays that shared history through its own small set
//! of stream address buffers (§4.1).
//!
//! Three variants are modelled, selected by [`ShiftMode`]:
//!
//! * **Dedicated** — the baseline design of §4.1: the shared history buffer
//!   and index table live in dedicated SRAM next to the LLC. Setting
//!   `zero_latency` gives the idealized ZeroLat-SHIFT configuration the paper
//!   uses to isolate prediction quality from history-access latency.
//! * **Virtualized** — the design of §4.2: history records are packed twelve
//!   to a 64-byte block into a reserved, non-evictable LLC region, the index
//!   table becomes a 15-bit pointer appended to every LLC tag, the history
//!   generator batches records in a cache-block buffer (CBB) before flushing
//!   them to the LLC, and every history read/write and index update becomes
//!   LLC traffic with LLC latency.

use serde::{Deserialize, Serialize};
use shift_cache::NucaLlc;
use shift_types::{AccessClass, BlockAddr, CoreId};

use crate::history::HistoryBuffer;
use crate::index::IndexTable;
use crate::prefetcher::{InstructionPrefetcher, PrefetchCandidate, PrefetcherKind};
use crate::region::{SpatialRegion, SpatialRegionCompactor};
use crate::sab::{SabConfig, StreamAddressBufferSet};
use crate::storage::{self, StorageCost};

/// How the shared history is stored.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ShiftMode {
    /// Dedicated SRAM for the shared history buffer and index table (§4.1).
    Dedicated {
        /// If `true`, history accesses are free (the paper's ZeroLat-SHIFT).
        zero_latency: bool,
    },
    /// History embedded in the LLC, index embedded in the LLC tag array
    /// (§4.2). This is the design the paper calls simply "SHIFT".
    Virtualized,
}

/// Configuration of a SHIFT instance (one per workload).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ShiftConfig {
    /// Shared history buffer capacity in spatial region records (32 K in the
    /// paper).
    pub history_records: usize,
    /// Index-table entries for the dedicated-storage variant.
    pub index_entries: usize,
    /// Spatial region size in blocks (8 in the paper).
    pub region_blocks: u8,
    /// Per-core stream address buffer configuration.
    pub sab: SabConfig,
    /// Storage mode.
    pub mode: ShiftMode,
    /// The core that generates the shared history.
    pub generator_core: CoreId,
    /// First block of the reserved LLC address window holding the virtualized
    /// history buffer (HBBase in the paper).
    pub history_base: BlockAddr,
    /// Spatial region records per 64-byte LLC block (12 in the paper:
    /// ⌊512 bits / 41 bits⌋).
    pub records_per_llc_block: usize,
    /// Average NoC round-trip latency (cycles) added to history-buffer reads
    /// in the virtualized design; the simulator sets this from its mesh model.
    pub noc_round_trip: u64,
    /// Total LLC tags, used to cost the embedded index table (128 K for the
    /// paper's 8 MB LLC).
    pub llc_capacity_blocks: usize,
}

impl ShiftConfig {
    /// The paper's virtualized SHIFT design: 32 K shared records embedded in
    /// the LLC, 8-block regions, paper SAB parameters.
    pub fn virtualized_micro13(generator_core: CoreId, history_base: BlockAddr) -> Self {
        ShiftConfig {
            history_records: 32 * 1024,
            index_entries: 32 * 1024,
            region_blocks: 8,
            sab: SabConfig::micro13(),
            mode: ShiftMode::Virtualized,
            generator_core,
            history_base,
            records_per_llc_block: 12,
            noc_round_trip: 12,
            llc_capacity_blocks: 8 * 1024 * 1024 / 64,
        }
    }

    /// The dedicated-storage baseline design of §4.1.
    pub fn dedicated_micro13(generator_core: CoreId) -> Self {
        ShiftConfig {
            mode: ShiftMode::Dedicated {
                zero_latency: false,
            },
            ..Self::virtualized_micro13(generator_core, BlockAddr::new(0))
        }
    }

    /// The idealized zero-latency configuration (ZeroLat-SHIFT).
    pub fn zero_latency_micro13(generator_core: CoreId) -> Self {
        ShiftConfig {
            mode: ShiftMode::Dedicated { zero_latency: true },
            ..Self::virtualized_micro13(generator_core, BlockAddr::new(0))
        }
    }

    /// Number of LLC blocks the virtualized history buffer occupies
    /// (2 731 for the paper's 32 K records at 12 records per block).
    pub fn history_llc_blocks(&self) -> u64 {
        (self.history_records as u64).div_ceil(self.records_per_llc_block as u64)
    }

    /// Human-readable design name used in reports.
    pub fn design_name(&self) -> &'static str {
        match self.mode {
            ShiftMode::Virtualized => "SHIFT",
            ShiftMode::Dedicated { zero_latency: true } => "ZeroLat-SHIFT",
            ShiftMode::Dedicated {
                zero_latency: false,
            } => "SHIFT-dedicated",
        }
    }
}

/// The SHIFT prefetcher.
///
/// One instance serves all cores that run a given workload; under workload
/// consolidation the simulator creates one instance per workload, each with
/// its own generator core and its own reserved LLC history window.
#[derive(Debug, Serialize, Deserialize)]
pub struct Shift {
    config: ShiftConfig,
    compactor: SpatialRegionCompactor,
    history: HistoryBuffer,
    index: IndexTable,
    cbb_records: usize,
    sabs: Vec<StreamAddressBufferSet>,
    llc_installed: bool,
    records_written: u64,
    history_block_reads: u64,
    history_block_writes: u64,
    index_updates: u64,
    /// Reused candidate-block buffer for SAB replay (cleared per call).
    scratch_blocks: Vec<BlockAddr>,
}

impl Shift {
    /// Creates a SHIFT instance for a CMP with `cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero or the generator core is out of range.
    pub fn new(config: ShiftConfig, cores: u16) -> Self {
        assert!(cores > 0, "need at least one core");
        assert!(
            config.generator_core.index() < cores as usize,
            "generator core outside the CMP"
        );
        assert!(
            config.records_per_llc_block > 0,
            "records per block must be positive"
        );
        Shift {
            compactor: SpatialRegionCompactor::new(config.region_blocks),
            history: HistoryBuffer::new(config.history_records),
            index: IndexTable::new(config.index_entries),
            cbb_records: 0,
            sabs: (0..cores)
                .map(|_| StreamAddressBufferSet::new(config.sab))
                .collect(),
            llc_installed: false,
            records_written: 0,
            history_block_reads: 0,
            history_block_writes: 0,
            index_updates: 0,
            scratch_blocks: Vec::new(),
            config,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &ShiftConfig {
        &self.config
    }

    /// The core generating the shared history.
    pub fn generator_core(&self) -> CoreId {
        self.config.generator_core
    }

    /// Total spatial region records written to the shared history.
    pub fn records_written(&self) -> u64 {
        self.records_written
    }

    /// History-buffer cache blocks read from the LLC (virtualized mode).
    pub fn history_block_reads(&self) -> u64 {
        self.history_block_reads
    }

    /// History-buffer cache blocks written to the LLC (virtualized mode).
    pub fn history_block_writes(&self) -> u64 {
        self.history_block_writes
    }

    /// Index-pointer updates issued to the LLC tag array (virtualized mode)
    /// or to the dedicated index table.
    pub fn index_updates(&self) -> u64 {
        self.index_updates
    }

    /// Reserves the virtualized history window in the LLC. Called lazily on
    /// first use; exposed for explicit installation by the simulator.
    pub fn install(&mut self, llc: &mut NucaLlc) {
        if self.llc_installed || !matches!(self.config.mode, ShiftMode::Virtualized) {
            return;
        }
        llc.reserve_history_region(self.config.history_base, self.config.history_llc_blocks());
        self.llc_installed = true;
    }

    fn is_virtualized(&self) -> bool {
        matches!(self.config.mode, ShiftMode::Virtualized)
    }

    /// LLC block holding history record slot `ptr`.
    fn history_block_of(&self, ptr: u32) -> BlockAddr {
        self.config
            .history_base
            .offset(ptr as u64 / self.config.records_per_llc_block as u64)
    }

    /// Performs the LLC reads needed to fetch the history records in
    /// `[ptr, ptr + count)` and returns the access latency to charge.
    fn read_history_blocks(&mut self, llc: &mut NucaLlc, ptr: u32, count: usize) -> u64 {
        if !self.is_virtualized() || count == 0 {
            return 0;
        }
        let mut max_latency = 0;
        let mut last_block = None;
        for i in 0..count as u32 {
            let slot = self.history.advance_ptr(ptr, i);
            let block = self.history_block_of(slot);
            if last_block == Some(block) {
                continue;
            }
            last_block = Some(block);
            let outcome = llc.access(block, AccessClass::HistoryRead);
            self.history_block_reads += 1;
            max_latency = max_latency.max(outcome.latency);
        }
        max_latency + self.config.noc_round_trip
    }

    fn record(&mut self, block: BlockAddr, llc: &mut NucaLlc) {
        let Some(record) = self.compactor.observe(block) else {
            return;
        };
        let ptr = self.history.append(record);
        self.records_written += 1;
        self.index_updates += 1;
        if self.is_virtualized() {
            // Index update request to the LLC tag array for the trigger block.
            llc.update_index_ptr(record.trigger(), ptr);
            // Accumulate records in the cache-block buffer; flush a full block.
            self.cbb_records += 1;
            if self.cbb_records >= self.config.records_per_llc_block {
                let hb_block = self.history_block_of(ptr);
                llc.access(hb_block, AccessClass::HistoryWrite);
                self.history_block_writes += 1;
                self.cbb_records = 0;
            }
        } else {
            self.index.update(record.trigger(), ptr);
        }
    }

    fn lookup_index(&mut self, block: BlockAddr, llc: &NucaLlc) -> Option<u32> {
        if self.is_virtualized() {
            // The pointer travels with the demand response for the missing
            // block; it is only available while the block's tag is LLC
            // resident.
            llc.index_ptr(block)
        } else {
            self.index.lookup(block)
        }
    }
}

impl InstructionPrefetcher for Shift {
    fn name(&self) -> &str {
        self.config.design_name()
    }

    fn kind(&self) -> PrefetcherKind {
        PrefetcherKind::Shift
    }

    fn on_access(
        &mut self,
        core: CoreId,
        block: BlockAddr,
        hit: bool,
        llc: &mut NucaLlc,
        out: &mut Vec<PrefetchCandidate>,
    ) {
        if hit {
            return;
        }
        self.install(llc);
        let Some(ptr) = self.lookup_index(block, llc) else {
            return;
        };
        // Fetch the history block(s) covering the lookahead window, then
        // allocate a stream.
        let lookahead = self.config.sab.lookahead;
        let delay = self.read_history_blocks(llc, ptr, lookahead);
        let history = &self.history;
        let blocks = &mut self.scratch_blocks;
        blocks.clear();
        self.sabs[core.index()].allocate(
            ptr,
            &mut |p, n, buf| {
                history.read_into(p, n, buf);
                history.advance_ptr(p, buf.len() as u32)
            },
            blocks,
        );
        out.extend(blocks.iter().map(|&b| PrefetchCandidate::delayed(b, delay)));
    }

    fn on_retire(
        &mut self,
        core: CoreId,
        block: BlockAddr,
        llc: &mut NucaLlc,
        out: &mut Vec<PrefetchCandidate>,
    ) {
        self.install(llc);

        // Replay: advance this core's streams. We first compute which records
        // would be read so the virtualized LLC traffic can be charged.
        let lookahead = self.config.sab.lookahead;
        let history = &self.history;
        let blocks = &mut self.scratch_blocks;
        blocks.clear();
        let mut read_span: Option<(u32, usize)> = None;
        self.sabs[core.index()].on_retire(
            block,
            &mut |p, n, buf| {
                history.read_into(p, n, buf);
                read_span = Some((p, buf.len()));
                history.advance_ptr(p, buf.len() as u32)
            },
            blocks,
        );
        let delay = match read_span {
            Some((ptr, count)) => self.read_history_blocks(llc, ptr, count.min(lookahead)),
            None => 0,
        };
        out.extend(
            self.scratch_blocks
                .iter()
                .map(|&b| PrefetchCandidate::delayed(b, delay)),
        );

        // Record: only the history generator core writes the shared history.
        if core == self.config.generator_core {
            self.record(block, llc);
        }
    }

    fn covers(&self, core: CoreId, block: BlockAddr) -> bool {
        self.sabs[core.index()].covers(block)
    }

    fn storage(&self, _cores: u16) -> StorageCost {
        let record_bits = SpatialRegion::storage_bits(self.config.region_blocks);
        let pointer_bits = storage::pointer_bits(self.config.history_records);
        // Per-core control logic: the stream address buffers (4 × 12 records).
        let sab_bits = (self.config.sab.streams * self.config.sab.capacity_regions) as u64
            * record_bits as u64;
        let per_core_bytes = sab_bits.div_ceil(8);
        match self.config.mode {
            ShiftMode::Dedicated { .. } => StorageCost {
                per_core_bytes,
                shared_bytes: storage::history_bytes(self.config.history_records, record_bits)
                    + storage::index_bytes(self.config.index_entries, pointer_bits),
                llc_data_bytes: 0,
                llc_tag_bytes: 0,
            },
            ShiftMode::Virtualized => StorageCost {
                per_core_bytes,
                shared_bytes: 0,
                llc_data_bytes: self.config.history_llc_blocks() * 64,
                llc_tag_bytes: (self.config.llc_capacity_blocks as u64 * pointer_bits as u64)
                    .div_ceil(8),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shift_cache::LlcConfig;

    fn llc16() -> NucaLlc {
        NucaLlc::new(LlcConfig::micro13(16))
    }

    fn virt_config() -> ShiftConfig {
        // Place the history window far away from the instruction blocks used
        // in the tests.
        ShiftConfig::virtualized_micro13(CoreId::new(0), BlockAddr::new(0x10_0000))
    }

    fn drive_retires(shift: &mut Shift, core: CoreId, llc: &mut NucaLlc, blocks: &[u64]) {
        let mut out = Vec::new();
        for &b in blocks {
            shift.on_retire(core, BlockAddr::new(b), llc, &mut out);
        }
    }

    /// The stream used throughout: three discontinuous fragments.
    const STREAM: [u64; 9] = [100, 101, 102, 240, 241, 500, 501, 502, 900];

    fn warm_llc_with_stream(llc: &mut NucaLlc) {
        for &b in &STREAM {
            llc.access(BlockAddr::new(b), AccessClass::Demand);
        }
    }

    #[test]
    fn non_generator_cores_replay_the_generator_history() {
        let mut llc = llc16();
        warm_llc_with_stream(&mut llc);
        let mut shift = Shift::new(virt_config(), 16);
        // Core 0 (the generator) records the stream a few times.
        for _ in 0..3 {
            drive_retires(&mut shift, CoreId::new(0), &mut llc, &STREAM);
        }
        // Core 7 misses on the stream head and should replay the shared
        // history even though it never recorded anything.
        let mut out = Vec::new();
        shift.on_access(
            CoreId::new(7),
            BlockAddr::new(100),
            false,
            &mut llc,
            &mut out,
        );
        let blocks: Vec<u64> = out.iter().map(|c| c.block.get()).collect();
        assert!(blocks.contains(&101), "prefetches: {blocks:?}");
        assert!(
            blocks.contains(&240),
            "discontinuity must be predicted: {blocks:?}"
        );
        assert!(shift.covers(CoreId::new(7), BlockAddr::new(241)));
    }

    #[test]
    fn non_generator_cores_do_not_write_history() {
        let mut llc = llc16();
        let mut shift = Shift::new(virt_config(), 4);
        drive_retires(&mut shift, CoreId::new(2), &mut llc, &STREAM);
        drive_retires(&mut shift, CoreId::new(3), &mut llc, &STREAM);
        assert_eq!(shift.records_written(), 0);
        drive_retires(&mut shift, CoreId::new(0), &mut llc, &STREAM);
        assert!(shift.records_written() > 0);
    }

    #[test]
    fn virtualized_history_reads_generate_llc_traffic_and_delay() {
        let mut llc = llc16();
        warm_llc_with_stream(&mut llc);
        let mut shift = Shift::new(virt_config(), 2);
        for _ in 0..4 {
            drive_retires(&mut shift, CoreId::new(0), &mut llc, &STREAM);
        }
        let before = llc.traffic().count(AccessClass::HistoryRead);
        let mut out = Vec::new();
        shift.on_access(
            CoreId::new(1),
            BlockAddr::new(100),
            false,
            &mut llc,
            &mut out,
        );
        assert!(!out.is_empty());
        assert!(llc.traffic().count(AccessClass::HistoryRead) > before);
        assert!(
            out.iter().all(|c| c.ready_delay > 0),
            "history read latency must delay replay"
        );
    }

    #[test]
    fn zero_latency_variant_has_no_delay_and_no_llc_traffic() {
        let mut llc = llc16();
        let mut shift = Shift::new(ShiftConfig::zero_latency_micro13(CoreId::new(0)), 2);
        for _ in 0..4 {
            drive_retires(&mut shift, CoreId::new(0), &mut llc, &STREAM);
        }
        let mut out = Vec::new();
        shift.on_access(
            CoreId::new(1),
            BlockAddr::new(100),
            false,
            &mut llc,
            &mut out,
        );
        assert!(!out.is_empty());
        assert!(out.iter().all(|c| c.ready_delay == 0));
        assert_eq!(llc.traffic().count(AccessClass::HistoryRead), 0);
        assert_eq!(llc.traffic().count(AccessClass::IndexUpdate), 0);
    }

    #[test]
    fn generator_recording_emits_index_updates_and_history_writes() {
        let mut llc = llc16();
        warm_llc_with_stream(&mut llc);
        let mut shift = Shift::new(virt_config(), 1);
        // Long stream: enough records to fill the CBB (12 records per block).
        let mut blocks = Vec::new();
        for rep in 0..40u64 {
            for &b in &STREAM {
                blocks.push(b + (rep % 2) * 10_000);
            }
        }
        drive_retires(&mut shift, CoreId::new(0), &mut llc, &blocks);
        assert!(shift.index_updates() > 0);
        assert!(llc.traffic().count(AccessClass::IndexUpdate) > 0);
        assert!(
            llc.traffic().count(AccessClass::HistoryWrite) > 0,
            "CBB flushes must reach the LLC"
        );
        assert_eq!(
            shift.history_block_writes(),
            llc.traffic().count(AccessClass::HistoryWrite)
        );
    }

    #[test]
    fn history_window_is_reserved_in_llc() {
        let mut llc = llc16();
        let cfg = virt_config();
        let mut shift = Shift::new(cfg, 1);
        shift.install(&mut llc);
        assert_eq!(llc.pinned_blocks(), cfg.history_llc_blocks());
        // 32 K records at 12 per block = 2 731 blocks ≈ 171 KB, as in §4.2.
        assert_eq!(cfg.history_llc_blocks(), 2731);
        assert_eq!(cfg.history_llc_blocks() * 64 / 1024, 170); // 170.7 KB
    }

    #[test]
    fn storage_cost_matches_paper() {
        let shift = Shift::new(virt_config(), 16);
        let cost = shift.storage(16);
        // Embedded index: 128 K tags × 15 bits = 240 KB.
        assert_eq!(cost.llc_tag_bytes / 1024, 240);
        // History occupies ~171 KB of existing LLC capacity.
        assert_eq!(cost.llc_data_bytes / 1024, 170);
        // Dedicated per-core cost is tiny (stream address buffers only).
        assert!(cost.per_core_bytes < 1024);

        let dedicated = Shift::new(ShiftConfig::dedicated_micro13(CoreId::new(0)), 16);
        let dcost = dedicated.storage(16);
        assert!(dcost.shared_bytes > 200 * 1024);
        assert_eq!(dcost.llc_tag_bytes, 0);
    }

    #[test]
    fn design_names() {
        assert_eq!(virt_config().design_name(), "SHIFT");
        assert_eq!(
            ShiftConfig::zero_latency_micro13(CoreId::new(0)).design_name(),
            "ZeroLat-SHIFT"
        );
        assert_eq!(
            ShiftConfig::dedicated_micro13(CoreId::new(0)).design_name(),
            "SHIFT-dedicated"
        );
    }

    #[test]
    #[should_panic(expected = "generator core outside")]
    fn generator_core_must_be_in_range() {
        let _ = Shift::new(
            ShiftConfig::virtualized_micro13(CoreId::new(5), BlockAddr::new(0)),
            4,
        );
    }
}
