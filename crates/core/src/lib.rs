//! SHIFT and baseline instruction prefetchers — the paper's contribution.
//!
//! This crate implements the complete prefetcher family the paper evaluates:
//!
//! * [`NextLinePrefetcher`] — the ubiquitous sequential prefetcher, the
//!   paper's low-cost baseline (≈35 % miss coverage).
//! * [`Pif`] — Proactive Instruction Fetch \[Ferdman et al., MICRO-44\], the
//!   state-of-the-art per-core stream prefetcher SHIFT is compared against.
//!   Both the paper's design points are expressible: `PIF_32K` (32 K-record
//!   history + 8 K-entry index per core) and the equal-storage `PIF_2K`.
//! * [`Shift`] — the paper's proposal: a *single shared* instruction history
//!   written by one history-generator core and replayed by every core running
//!   the workload, with three variants: a dedicated-storage baseline (§4.1),
//!   an idealized zero-latency variant, and the virtualized design (§4.2)
//!   that embeds the history buffer in LLC data blocks and the index table in
//!   LLC tags.
//! * [`hybrid`] — composed designs beyond the paper: fallback pairs,
//!   confidence gating, per-core adaptive selection, and a
//!   bandwidth-throttled history port, all generic wrappers over the designs
//!   above.
//!
//! The shared building blocks mirror the hardware structures of the paper:
//! [`SpatialRegion`] records (trigger block + bit vector over eight blocks),
//! the [`SpatialRegionCompactor`] that folds the retire-order access stream
//! into records, the circular [`HistoryBuffer`], the [`IndexTable`], and the
//! per-core [`StreamAddressBufferSet`] that replays streams and issues
//! prefetch requests.
//!
//! # Example: recording and replaying a stream
//!
//! ```
//! use shift_core::{Pif, PifConfig, InstructionPrefetcher};
//! use shift_cache::{LlcConfig, NucaLlc};
//! use shift_types::{BlockAddr, CoreId};
//!
//! let mut llc = NucaLlc::new(LlcConfig::micro13(1));
//! let mut pif = Pif::new(PifConfig::pif_32k(), 1);
//! let core = CoreId::new(0);
//! let stream: Vec<u64> = vec![100, 101, 102, 240, 241, 500, 100, 101, 102, 240];
//!
//! // First pass: record.
//! let mut out = Vec::new();
//! for &b in &stream {
//!     pif.on_retire(core, BlockAddr::new(b), &mut llc, &mut out);
//! }
//! // Second pass: a miss on the stream head triggers replay.
//! out.clear();
//! pif.on_access(core, BlockAddr::new(100), false, &mut llc, &mut out);
//! assert!(!out.is_empty(), "replay should produce prefetch candidates");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod history;
pub mod hybrid;
pub mod index;
pub mod next_line;
pub mod pif;
pub mod prefetcher;
pub mod region;
pub mod sab;
pub mod shift;
pub mod storage;

pub use history::HistoryBuffer;
pub use hybrid::{
    AdaptConfig, AdaptivePrefetcher, ConfidenceGatedPrefetcher, FallbackPrefetcher, GateConfig,
    HistoryPortConfig, Selection, ThrottledPrefetcher,
};
pub use index::IndexTable;
pub use next_line::NextLinePrefetcher;
pub use pif::{Pif, PifConfig};
pub use prefetcher::{InstructionPrefetcher, NullPrefetcher, PrefetchCandidate, PrefetcherKind};
pub use region::{SpatialRegion, SpatialRegionCompactor};
pub use sab::{StreamAddressBuffer, StreamAddressBufferSet};
pub use shift::{Shift, ShiftConfig, ShiftMode};
pub use storage::StorageCost;
