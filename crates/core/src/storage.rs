//! Storage cost accounting for the prefetcher designs.
//!
//! §5.1 of the paper costs the designs as follows (8-block regions, 34-bit
//! block addresses, 15-bit history pointers):
//!
//! * **PIF (per core)** — a 32 K-record history buffer at 41 bits per record
//!   (164 KB) plus an 8 K-entry index table at 49 bits per entry (49 KB),
//!   213 KB per core in total, about 0.9 mm² at 40 nm.
//! * **SHIFT (virtualized)** — no dedicated storage: 32 K records packed
//!   twelve to a 64-byte LLC block occupy 2 731 LLC lines (171 KB of existing
//!   LLC capacity), and the embedded index table adds 15 bits to each of the
//!   128 K LLC tags (240 KB of new tag-array storage).

use serde::{Deserialize, Serialize};

/// Storage requirements of one prefetcher configuration.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct StorageCost {
    /// Dedicated SRAM required next to *each* core, in bytes.
    pub per_core_bytes: u64,
    /// Dedicated SRAM shared by all cores (dedicated-storage SHIFT), in bytes.
    pub shared_bytes: u64,
    /// Existing LLC data capacity occupied by virtualized history, in bytes.
    pub llc_data_bytes: u64,
    /// New storage added to the LLC tag array (embedded index pointers), in
    /// bytes.
    pub llc_tag_bytes: u64,
}

impl StorageCost {
    /// A prefetcher with no storage at all (the null and next-line designs).
    pub fn none() -> Self {
        StorageCost::default()
    }

    /// Total *new* SRAM the design adds to the chip for `cores` cores:
    /// per-core structures, shared dedicated structures, and tag-array
    /// extensions. LLC data capacity that the history borrows is not new
    /// storage and is excluded (its performance effect is modelled in the
    /// simulator instead).
    pub fn added_sram_bytes(&self, cores: u16) -> u64 {
        self.per_core_bytes * cores as u64 + self.shared_bytes + self.llc_tag_bytes
    }

    /// Total storage footprint including borrowed LLC capacity, for `cores`
    /// cores.
    pub fn total_bytes(&self, cores: u16) -> u64 {
        self.added_sram_bytes(cores) + self.llc_data_bytes
    }

    /// Convenience: kibibytes of added SRAM.
    pub fn added_sram_kib(&self, cores: u16) -> f64 {
        self.added_sram_bytes(cores) as f64 / 1024.0
    }

    /// Component-wise sum of two costs — the storage of a composed design
    /// (e.g. a [`hybrid`](crate::hybrid) fallback pair) is the sum of its
    /// parts, since both structures are physically present.
    #[must_use]
    pub fn plus(self, other: StorageCost) -> StorageCost {
        StorageCost {
            per_core_bytes: self.per_core_bytes + other.per_core_bytes,
            shared_bytes: self.shared_bytes + other.shared_bytes,
            llc_data_bytes: self.llc_data_bytes + other.llc_data_bytes,
            llc_tag_bytes: self.llc_tag_bytes + other.llc_tag_bytes,
        }
    }
}

/// Bytes occupied by `records` history records of `bits_per_record` bits.
pub fn history_bytes(records: usize, bits_per_record: u32) -> u64 {
    (records as u64 * bits_per_record as u64).div_ceil(8)
}

/// Bytes occupied by `entries` index-table entries, each holding a block
/// address (34 bits) and a history pointer.
pub fn index_bytes(entries: usize, pointer_bits: u32) -> u64 {
    let entry_bits = shift_types::BlockAddr::STORAGE_BITS + pointer_bits;
    (entries as u64 * entry_bits as u64).div_ceil(8)
}

/// Number of history pointer bits needed to address `records` records.
pub fn pointer_bits(records: usize) -> u32 {
    (records.max(2) as u64 - 1).ilog2() + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pif_history_cost_matches_paper() {
        // 32 K records × 41 bits = 164 KB.
        let bytes = history_bytes(32 * 1024, 41);
        assert_eq!(bytes / 1024, 164);
    }

    #[test]
    fn pif_index_cost_matches_paper() {
        // 8 K entries × 49 bits (34-bit tag + 15-bit pointer) = 49 KB.
        let bytes = index_bytes(8 * 1024, 15);
        assert_eq!(bytes / 1024, 49);
    }

    #[test]
    fn pointer_bits_for_32k_history_is_15() {
        assert_eq!(pointer_bits(32 * 1024), 15);
        assert_eq!(pointer_bits(2 * 1024), 11);
        assert_eq!(pointer_bits(2), 1);
    }

    #[test]
    fn added_sram_sums_per_core_and_shared_parts() {
        let cost = StorageCost {
            per_core_bytes: 1000,
            shared_bytes: 500,
            llc_data_bytes: 200,
            llc_tag_bytes: 300,
        };
        assert_eq!(cost.added_sram_bytes(4), 4 * 1000 + 500 + 300);
        assert_eq!(cost.total_bytes(4), 4 * 1000 + 500 + 300 + 200);
        assert!(cost.added_sram_kib(4) > 4.0);
    }

    #[test]
    fn none_has_zero_cost() {
        assert_eq!(StorageCost::none().total_bytes(16), 0);
    }

    #[test]
    fn plus_sums_component_wise() {
        let a = StorageCost {
            per_core_bytes: 1,
            shared_bytes: 2,
            llc_data_bytes: 3,
            llc_tag_bytes: 4,
        };
        let b = StorageCost {
            per_core_bytes: 10,
            shared_bytes: 20,
            llc_data_bytes: 30,
            llc_tag_bytes: 40,
        };
        let sum = a.plus(b);
        assert_eq!(sum.per_core_bytes, 11);
        assert_eq!(sum.shared_bytes, 22);
        assert_eq!(sum.llc_data_bytes, 33);
        assert_eq!(sum.llc_tag_bytes, 44);
        assert_eq!(a.plus(StorageCost::none()), a);
    }
}
