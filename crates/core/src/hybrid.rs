//! Composed ("hybrid") prefetcher designs — beyond the paper.
//!
//! The paper evaluates SHIFT, PIF, and next-line in isolation; this module
//! provides the composition layer ROADMAP item 4 calls for, so the designs
//! the paper could not evaluate run through the same simulator and
//! scoreboard machinery:
//!
//! * [`FallbackPrefetcher`] — a primary design backed by a secondary that
//!   fires only on fetches where the primary produced no candidates
//!   (e.g. SHIFT with a next-line fallback for unindexed sequential runs).
//! * [`ConfidenceGatedPrefetcher`] — wraps any design and suppresses its
//!   candidates while a per-core stream-confidence counter sits below a
//!   threshold, trading coverage for discard traffic.
//! * [`AdaptivePrefetcher`] — per-core dynamic selection: every core observes
//!   its own miss rate over a warm-up window and then commits to one of two
//!   wrapped designs.
//! * [`ThrottledPrefetcher`] — models a bandwidth-limited shared history
//!   port: prefetch candidates beyond a per-window budget are dropped, the
//!   degradation-under-contention scenario of the `hybrid_shootout`
//!   experiment.
//!
//! All four wrappers are generic over the wrapped
//! [`InstructionPrefetcher`] type(s), so the simulation engine can
//! monomorphize its stepping loop per composition exactly as it does for the
//! base designs — no dynamic dispatch on the hot path.
//!
//! Composition semantics are locked by differential property tests
//! (`tests/proptest_hybrid.rs`): `FallbackPrefetcher(A, Null)` is
//! candidate-for-candidate identical to `A`, `FallbackPrefetcher(Null, B)`
//! to `B`, and a confidence gate with threshold 0 to its un-gated inner
//! design.
//!
//! # Example: SHIFT-style stream design with a next-line fallback
//!
//! ```
//! use shift_core::hybrid::FallbackPrefetcher;
//! use shift_core::{InstructionPrefetcher, NextLinePrefetcher, Pif, PifConfig};
//! use shift_cache::{LlcConfig, NucaLlc};
//! use shift_types::{BlockAddr, CoreId};
//!
//! let mut llc = NucaLlc::new(LlcConfig::micro13(1));
//! let mut hybrid = FallbackPrefetcher::new(
//!     Pif::new(PifConfig::pif_32k(), 1),
//!     NextLinePrefetcher::new(1, 1),
//! );
//! // The PIF history is cold, so the next-line fallback serves the access.
//! let mut out = Vec::new();
//! hybrid.on_access(CoreId::new(0), BlockAddr::new(100), false, &mut llc, &mut out);
//! assert_eq!(out[0].block, BlockAddr::new(101));
//! assert!(hybrid.name().starts_with("PIF_32K+"));
//! ```

use serde::{Deserialize, Serialize};
use shift_cache::NucaLlc;
use shift_types::{BlockAddr, CoreId};

use crate::prefetcher::{InstructionPrefetcher, PrefetchCandidate, PrefetcherKind};
use crate::storage::StorageCost;

/// A primary prefetcher with a secondary fallback.
///
/// Both designs observe the full access and retire streams (their internal
/// state is identical to standalone operation), but the secondary's
/// candidates are issued only on hook invocations where the primary produced
/// none — the secondary covers the primary's blind spots without competing
/// for prefetch bandwidth when the primary has a stream to replay.
#[derive(Debug, Serialize, Deserialize)]
pub struct FallbackPrefetcher<P, S> {
    name: String,
    primary: P,
    secondary: S,
    primary_candidates: u64,
    secondary_candidates: u64,
    suppressed_candidates: u64,
}

impl<P: InstructionPrefetcher, S: InstructionPrefetcher> FallbackPrefetcher<P, S> {
    /// Composes `primary` with a `secondary` fallback.
    pub fn new(primary: P, secondary: S) -> Self {
        FallbackPrefetcher {
            name: format!("{}+{}", primary.name(), secondary.name()),
            primary,
            secondary,
            primary_candidates: 0,
            secondary_candidates: 0,
            suppressed_candidates: 0,
        }
    }

    /// The wrapped primary design.
    pub fn primary(&self) -> &P {
        &self.primary
    }

    /// The wrapped secondary design.
    pub fn secondary(&self) -> &S {
        &self.secondary
    }

    /// Candidates issued by the primary design.
    pub fn primary_candidates(&self) -> u64 {
        self.primary_candidates
    }

    /// Candidates issued by the secondary on primary-silent invocations.
    pub fn secondary_candidates(&self) -> u64 {
        self.secondary_candidates
    }

    /// Secondary candidates suppressed because the primary fired.
    pub fn suppressed_candidates(&self) -> u64 {
        self.suppressed_candidates
    }

    /// Runs the secondary hook appending into `out`, then keeps or discards
    /// its candidates depending on whether the primary produced any.
    fn gate_secondary(
        &mut self,
        out: &mut Vec<PrefetchCandidate>,
        primary_fired: bool,
        mark: usize,
    ) {
        let produced = (out.len() - mark) as u64;
        if primary_fired {
            self.suppressed_candidates += produced;
            out.truncate(mark);
        } else {
            self.secondary_candidates += produced;
        }
    }
}

impl<P: InstructionPrefetcher, S: InstructionPrefetcher> InstructionPrefetcher
    for FallbackPrefetcher<P, S>
{
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> PrefetcherKind {
        PrefetcherKind::Fallback
    }

    fn on_access(
        &mut self,
        core: CoreId,
        block: BlockAddr,
        hit: bool,
        llc: &mut NucaLlc,
        out: &mut Vec<PrefetchCandidate>,
    ) {
        let before = out.len();
        self.primary.on_access(core, block, hit, llc, out);
        let primary_fired = out.len() > before;
        self.primary_candidates += (out.len() - before) as u64;
        let mark = out.len();
        self.secondary.on_access(core, block, hit, llc, out);
        self.gate_secondary(out, primary_fired, mark);
    }

    fn on_retire(
        &mut self,
        core: CoreId,
        block: BlockAddr,
        llc: &mut NucaLlc,
        out: &mut Vec<PrefetchCandidate>,
    ) {
        let before = out.len();
        self.primary.on_retire(core, block, llc, out);
        let primary_fired = out.len() > before;
        self.primary_candidates += (out.len() - before) as u64;
        let mark = out.len();
        self.secondary.on_retire(core, block, llc, out);
        self.gate_secondary(out, primary_fired, mark);
    }

    fn covers(&self, core: CoreId, block: BlockAddr) -> bool {
        self.primary.covers(core, block) || self.secondary.covers(core, block)
    }

    fn storage(&self, cores: u16) -> StorageCost {
        self.primary
            .storage(cores)
            .plus(self.secondary.storage(cores))
    }
}

/// Parameters of a per-core stream-confidence gate.
///
/// The counter saturates at `max`; a miss the wrapped design *would have*
/// covered increments it, a miss it would not decrements it, and candidates
/// issue only while the counter is at least `threshold`. Threshold 0 makes
/// the gate transparent (every counter value passes).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GateConfig {
    /// Minimum confidence at which candidates pass the gate.
    pub threshold: u32,
    /// Saturation ceiling of the confidence counter.
    pub max: u32,
    /// Confidence each core starts with.
    pub initial: u32,
}

impl GateConfig {
    /// The default gate: 3-bit counter starting at the midpoint, open from
    /// confidence 2 upward.
    pub fn default_gate() -> Self {
        GateConfig {
            threshold: 2,
            max: 7,
            initial: 4,
        }
    }

    /// A gate with threshold 0 — provably transparent (the differential
    /// property tests lock it candidate-for-candidate identical to the
    /// un-gated design).
    pub fn transparent() -> Self {
        GateConfig {
            threshold: 0,
            ..Self::default_gate()
        }
    }
}

/// Wraps a prefetcher and suppresses its candidates while the issuing core's
/// stream-confidence counter is below the gate threshold.
///
/// Confidence tracks how well the wrapped design's active streams predict
/// the core's actual misses: on every L1-I miss the wrapper asks
/// [`covers`](InstructionPrefetcher::covers) *before* the design reacts, and
/// counts a hit as evidence for (increment) or against (decrement) the
/// replayed streams. Cores whose streams are stale stop issuing prefetches
/// — and stop paying discard traffic — until confidence recovers.
#[derive(Debug, Serialize, Deserialize)]
pub struct ConfidenceGatedPrefetcher<P> {
    name: String,
    inner: P,
    gate: GateConfig,
    confidence: Vec<u32>,
    passed_candidates: u64,
    suppressed_candidates: u64,
}

impl<P: InstructionPrefetcher> ConfidenceGatedPrefetcher<P> {
    /// Gates `inner` with the given configuration for a CMP with `cores`
    /// cores.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero or the gate's `threshold`/`initial` exceed
    /// its `max`.
    pub fn new(inner: P, gate: GateConfig, cores: u16) -> Self {
        assert!(cores > 0, "need at least one core");
        assert!(
            gate.threshold <= gate.max,
            "gate threshold above saturation"
        );
        assert!(gate.initial <= gate.max, "gate initial above saturation");
        ConfidenceGatedPrefetcher {
            name: format!("Gated-{}", inner.name()),
            inner,
            gate,
            confidence: vec![gate.initial; cores as usize],
            passed_candidates: 0,
            suppressed_candidates: 0,
        }
    }

    /// The wrapped design.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// The gate configuration.
    pub fn gate(&self) -> GateConfig {
        self.gate
    }

    /// Current confidence of `core`'s gate.
    pub fn confidence(&self, core: CoreId) -> u32 {
        self.confidence[core.index()]
    }

    /// Candidates that passed the gate.
    pub fn passed_candidates(&self) -> u64 {
        self.passed_candidates
    }

    /// Candidates suppressed by the gate.
    pub fn suppressed_candidates(&self) -> u64 {
        self.suppressed_candidates
    }

    fn apply_gate(&mut self, core: CoreId, out: &mut Vec<PrefetchCandidate>, mark: usize) {
        let produced = (out.len() - mark) as u64;
        if self.confidence[core.index()] < self.gate.threshold {
            self.suppressed_candidates += produced;
            out.truncate(mark);
        } else {
            self.passed_candidates += produced;
        }
    }
}

impl<P: InstructionPrefetcher> InstructionPrefetcher for ConfidenceGatedPrefetcher<P> {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> PrefetcherKind {
        PrefetcherKind::Gated
    }

    fn on_access(
        &mut self,
        core: CoreId,
        block: BlockAddr,
        hit: bool,
        llc: &mut NucaLlc,
        out: &mut Vec<PrefetchCandidate>,
    ) {
        if !hit {
            // Query coverage before the inner design reacts to the miss, so
            // the counter scores the streams as they stood when the miss hit.
            let covered = self.inner.covers(core, block);
            let c = &mut self.confidence[core.index()];
            if covered {
                *c = (*c + 1).min(self.gate.max);
            } else {
                *c = c.saturating_sub(1);
            }
        }
        let mark = out.len();
        self.inner.on_access(core, block, hit, llc, out);
        self.apply_gate(core, out, mark);
    }

    fn on_retire(
        &mut self,
        core: CoreId,
        block: BlockAddr,
        llc: &mut NucaLlc,
        out: &mut Vec<PrefetchCandidate>,
    ) {
        let mark = out.len();
        self.inner.on_retire(core, block, llc, out);
        self.apply_gate(core, out, mark);
    }

    fn covers(&self, core: CoreId, block: BlockAddr) -> bool {
        // Prediction (the Figure 6 methodology) is unaffected by the issue
        // gate: the streams still predict the block either way.
        self.inner.covers(core, block)
    }

    fn storage(&self, cores: u16) -> StorageCost {
        // The per-core confidence counter is a handful of bits; like the
        // next-line last-access register, the paper's costing counts such
        // control state as zero.
        self.inner.storage(cores)
    }
}

/// Parameters of per-core adaptive design selection.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct AdaptConfig {
    /// L1-I accesses each core observes before committing to a design.
    pub warmup_accesses: u64,
    /// Observed miss rate at or above which the core selects the second
    /// (aggressive) design; below it the first (conservative) design.
    pub miss_rate_threshold: f64,
}

impl AdaptConfig {
    /// The default adaptation window: 4 K observed accesses, 5 % miss rate.
    pub fn default_adapt() -> Self {
        AdaptConfig {
            warmup_accesses: 4096,
            miss_rate_threshold: 0.05,
        }
    }
}

/// Which design a core has committed to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Selection {
    /// Still observing the warm-up window (the conservative design issues).
    Warming,
    /// Committed to the first (conservative) design.
    Low,
    /// Committed to the second (aggressive) design.
    High,
}

/// Per-core dynamic selection between two wrapped designs.
///
/// Every core counts its own L1-I misses over the first
/// [`warmup_accesses`](AdaptConfig::warmup_accesses) accesses it performs,
/// then commits: a miss rate below the threshold selects the conservative
/// `low` design (cheap sequential misses dominate), at or above it the
/// aggressive `high` design (discontinuity-heavy streams need history
/// replay). Both designs observe the full event stream throughout — exactly
/// as both structures would in hardware — so the non-selected design stays
/// warm; only its candidates are discarded. During warm-up the `low` design
/// issues.
#[derive(Debug, Serialize, Deserialize)]
pub struct AdaptivePrefetcher<A, B> {
    name: String,
    low: A,
    high: B,
    adapt: AdaptConfig,
    accesses: Vec<u64>,
    misses: Vec<u64>,
    selected: Vec<Selection>,
}

impl<A: InstructionPrefetcher, B: InstructionPrefetcher> AdaptivePrefetcher<A, B> {
    /// Composes the conservative `low` and aggressive `high` designs for a
    /// CMP with `cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `cores` or `adapt.warmup_accesses` is zero, or the miss-rate
    /// threshold is outside `[0, 1]`.
    pub fn new(low: A, high: B, adapt: AdaptConfig, cores: u16) -> Self {
        assert!(cores > 0, "need at least one core");
        assert!(adapt.warmup_accesses > 0, "warm-up window must be positive");
        assert!(
            (0.0..=1.0).contains(&adapt.miss_rate_threshold),
            "miss-rate threshold must be in [0, 1]"
        );
        AdaptivePrefetcher {
            name: format!("Adaptive({}/{})", low.name(), high.name()),
            low,
            high,
            adapt,
            accesses: vec![0; cores as usize],
            misses: vec![0; cores as usize],
            selected: vec![Selection::Warming; cores as usize],
        }
    }

    /// The conservative design.
    pub fn low(&self) -> &A {
        &self.low
    }

    /// The aggressive design.
    pub fn high(&self) -> &B {
        &self.high
    }

    /// What `core` has committed to so far.
    pub fn selection(&self, core: CoreId) -> Selection {
        self.selected[core.index()]
    }

    /// Miss rate `core` observed during (or so far into) its warm-up window.
    pub fn observed_miss_rate(&self, core: CoreId) -> f64 {
        let idx = core.index();
        if self.accesses[idx] == 0 {
            0.0
        } else {
            self.misses[idx] as f64 / self.accesses[idx] as f64
        }
    }

    fn use_low(&self, core: CoreId) -> bool {
        !matches!(self.selected[core.index()], Selection::High)
    }
}

impl<A: InstructionPrefetcher, B: InstructionPrefetcher> InstructionPrefetcher
    for AdaptivePrefetcher<A, B>
{
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> PrefetcherKind {
        PrefetcherKind::Adaptive
    }

    fn on_access(
        &mut self,
        core: CoreId,
        block: BlockAddr,
        hit: bool,
        llc: &mut NucaLlc,
        out: &mut Vec<PrefetchCandidate>,
    ) {
        let idx = core.index();
        if self.selected[idx] == Selection::Warming {
            self.accesses[idx] += 1;
            if !hit {
                self.misses[idx] += 1;
            }
            if self.accesses[idx] >= self.adapt.warmup_accesses {
                let rate = self.misses[idx] as f64 / self.accesses[idx] as f64;
                self.selected[idx] = if rate >= self.adapt.miss_rate_threshold {
                    Selection::High
                } else {
                    Selection::Low
                };
            }
        }
        let use_low = self.use_low(core);
        let mark = out.len();
        self.low.on_access(core, block, hit, llc, out);
        if !use_low {
            out.truncate(mark);
        }
        let mark = out.len();
        self.high.on_access(core, block, hit, llc, out);
        if use_low {
            out.truncate(mark);
        }
    }

    fn on_retire(
        &mut self,
        core: CoreId,
        block: BlockAddr,
        llc: &mut NucaLlc,
        out: &mut Vec<PrefetchCandidate>,
    ) {
        let use_low = self.use_low(core);
        let mark = out.len();
        self.low.on_retire(core, block, llc, out);
        if !use_low {
            out.truncate(mark);
        }
        let mark = out.len();
        self.high.on_retire(core, block, llc, out);
        if use_low {
            out.truncate(mark);
        }
    }

    fn covers(&self, core: CoreId, block: BlockAddr) -> bool {
        if self.use_low(core) {
            self.low.covers(core, block)
        } else {
            self.high.covers(core, block)
        }
    }

    fn storage(&self, cores: u16) -> StorageCost {
        // Both structures exist in hardware regardless of which one a core
        // selected; the per-core counters are control bits, costed as zero.
        self.low.storage(cores).plus(self.high.storage(cores))
    }
}

/// Bandwidth of a shared history port, as a candidate budget per window of
/// L1-I accesses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct HistoryPortConfig {
    /// Prefetch candidates the port can deliver per window.
    pub candidates_per_window: u32,
    /// Window length in L1-I accesses (across all cores — the port is
    /// shared, which is exactly what makes it a contention model).
    pub window_accesses: u32,
}

impl HistoryPortConfig {
    /// A port delivering `candidates_per_window` candidates per 64-access
    /// window — the bandwidth axis of the degradation-under-contention sweep.
    pub fn per_64_accesses(candidates_per_window: u32) -> Self {
        HistoryPortConfig {
            candidates_per_window,
            window_accesses: 64,
        }
    }
}

/// Wraps a prefetcher behind a bandwidth-throttled shared history port.
///
/// The port grants a fixed candidate budget per window of L1-I accesses
/// (counted across all cores); candidates produced beyond the budget are
/// dropped, modelling replay requests a saturated history port cannot
/// serve. Shrinking the budget degrades coverage monotonically — the
/// degradation-under-contention scenario of the `hybrid_shootout`
/// experiment.
#[derive(Debug, Serialize, Deserialize)]
pub struct ThrottledPrefetcher<P> {
    name: String,
    inner: P,
    port: HistoryPortConfig,
    window_accesses_seen: u32,
    window_budget_left: u32,
    issued_candidates: u64,
    dropped_candidates: u64,
}

impl<P: InstructionPrefetcher> ThrottledPrefetcher<P> {
    /// Throttles `inner` behind the given history port.
    ///
    /// # Panics
    ///
    /// Panics if the port window is zero accesses long.
    pub fn new(inner: P, port: HistoryPortConfig) -> Self {
        assert!(port.window_accesses > 0, "port window must be positive");
        ThrottledPrefetcher {
            name: format!("{}@bw{}", inner.name(), port.candidates_per_window),
            inner,
            port,
            window_accesses_seen: 0,
            window_budget_left: port.candidates_per_window,
            issued_candidates: 0,
            dropped_candidates: 0,
        }
    }

    /// The wrapped design.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// The port configuration.
    pub fn port(&self) -> HistoryPortConfig {
        self.port
    }

    /// Candidates the port delivered.
    pub fn issued_candidates(&self) -> u64 {
        self.issued_candidates
    }

    /// Candidates dropped because the window budget was exhausted.
    pub fn dropped_candidates(&self) -> u64 {
        self.dropped_candidates
    }

    fn throttle(&mut self, out: &mut Vec<PrefetchCandidate>, mark: usize) {
        let produced = out.len() - mark;
        let keep = (self.window_budget_left as usize).min(produced);
        self.window_budget_left -= keep as u32;
        self.issued_candidates += keep as u64;
        self.dropped_candidates += (produced - keep) as u64;
        out.truncate(mark + keep);
    }
}

impl<P: InstructionPrefetcher> InstructionPrefetcher for ThrottledPrefetcher<P> {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> PrefetcherKind {
        PrefetcherKind::Throttled
    }

    fn on_access(
        &mut self,
        core: CoreId,
        block: BlockAddr,
        hit: bool,
        llc: &mut NucaLlc,
        out: &mut Vec<PrefetchCandidate>,
    ) {
        // The window advances on accesses; the budget refills when a new
        // window begins.
        if self.window_accesses_seen >= self.port.window_accesses {
            self.window_accesses_seen = 0;
            self.window_budget_left = self.port.candidates_per_window;
        }
        self.window_accesses_seen += 1;
        let mark = out.len();
        self.inner.on_access(core, block, hit, llc, out);
        self.throttle(out, mark);
    }

    fn on_retire(
        &mut self,
        core: CoreId,
        block: BlockAddr,
        llc: &mut NucaLlc,
        out: &mut Vec<PrefetchCandidate>,
    ) {
        let mark = out.len();
        self.inner.on_retire(core, block, llc, out);
        self.throttle(out, mark);
    }

    fn covers(&self, core: CoreId, block: BlockAddr) -> bool {
        // Prediction quality is a property of the streams, not the port.
        self.inner.covers(core, block)
    }

    fn storage(&self, cores: u16) -> StorageCost {
        self.inner.storage(cores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::next_line::NextLinePrefetcher;
    use crate::pif::{Pif, PifConfig};
    use crate::prefetcher::NullPrefetcher;
    use shift_cache::LlcConfig;

    fn llc() -> NucaLlc {
        NucaLlc::new(LlcConfig::micro13(4))
    }

    const CORE: CoreId = CoreId::new(0);

    /// Drives the PIF history hot enough that a miss on block 100 replays.
    fn warm_pif(pif: &mut Pif, llc: &mut NucaLlc) {
        let stream: Vec<u64> = vec![100, 101, 102, 240, 241, 500, 100, 101, 102, 240];
        let mut out = Vec::new();
        for _ in 0..2 {
            for &b in &stream {
                pif.on_retire(CORE, BlockAddr::new(b), llc, &mut out);
            }
        }
    }

    #[test]
    fn fallback_suppresses_secondary_when_primary_fires() {
        let mut llc = llc();
        let mut pif = Pif::new(PifConfig::pif_32k(), 1);
        warm_pif(&mut pif, &mut llc);
        let mut hybrid = FallbackPrefetcher::new(pif, NextLinePrefetcher::new(1, 1));

        // Cold stream head: PIF has a stream for block 100, so the fallback
        // must emit PIF's candidates only (no next-line 101 duplicate from
        // the secondary path — the blocks come from the stream).
        let mut out = Vec::new();
        hybrid.on_access(CORE, BlockAddr::new(100), false, &mut llc, &mut out);
        assert!(!out.is_empty());
        assert!(hybrid.primary_candidates() > 0);
        assert_eq!(hybrid.secondary_candidates(), 0);
        assert!(hybrid.suppressed_candidates() > 0);

        // A block PIF never recorded: the primary is silent, the next-line
        // fallback fires.
        out.clear();
        hybrid.on_access(CORE, BlockAddr::new(9_000), false, &mut llc, &mut out);
        assert_eq!(out.last().unwrap().block, BlockAddr::new(9_001));
        assert!(hybrid.secondary_candidates() > 0);
    }

    #[test]
    fn fallback_name_kind_storage_and_covers_compose() {
        let llc_cfg = llc();
        drop(llc_cfg);
        let mut llc = llc();
        let pif = Pif::new(PifConfig::pif_32k(), 2);
        let pif_storage = pif.storage(2);
        let mut hybrid = FallbackPrefetcher::new(pif, NextLinePrefetcher::new(1, 2));
        assert_eq!(hybrid.name(), "PIF_32K+NextLine");
        assert_eq!(hybrid.kind(), PrefetcherKind::Fallback);
        // Next-line costs nothing, so the pair costs exactly PIF.
        assert_eq!(hybrid.storage(2), pif_storage);

        // covers() is the union: after an access, the next-line side covers
        // the successor even though PIF has no streams.
        let mut out = Vec::new();
        hybrid.on_access(
            CoreId::new(1),
            BlockAddr::new(50),
            false,
            &mut llc,
            &mut out,
        );
        assert!(hybrid.covers(CoreId::new(1), BlockAddr::new(51)));
    }

    #[test]
    fn gate_suppresses_until_confidence_recovers() {
        let mut llc = llc();
        let gate = GateConfig {
            threshold: 4,
            max: 7,
            initial: 0,
        };
        let mut gated = ConfidenceGatedPrefetcher::new(NextLinePrefetcher::new(1, 1), gate, 1);
        assert_eq!(gated.confidence(CORE), 0);

        // Sequential misses: each miss is covered by the previous access's
        // next-line window, so confidence climbs 0 → 4 over four misses
        // (the first miss has no prior access and decrements nothing: the
        // counter is already at the floor).
        let mut out = Vec::new();
        for b in 100..104u64 {
            out.clear();
            gated.on_access(CORE, BlockAddr::new(b), false, &mut llc, &mut out);
        }
        // Below threshold for the first misses: everything suppressed.
        assert!(gated.suppressed_candidates() > 0);
        assert_eq!(gated.passed_candidates(), 0);

        // One more sequential miss reaches threshold 4: candidates pass.
        out.clear();
        gated.on_access(CORE, BlockAddr::new(104), false, &mut llc, &mut out);
        assert_eq!(out[0].block, BlockAddr::new(105));
        assert!(gated.passed_candidates() > 0);

        // A burst of random (uncovered) misses drains confidence and closes
        // the gate again.
        for b in [9_000u64, 20_000, 31_000, 42_000, 53_000] {
            out.clear();
            gated.on_access(CORE, BlockAddr::new(b), false, &mut llc, &mut out);
        }
        assert!(out.is_empty(), "gate must close after uncovered misses");
    }

    #[test]
    fn gate_metadata_and_bounds() {
        let gated = ConfidenceGatedPrefetcher::new(
            NextLinePrefetcher::new(1, 2),
            GateConfig::default_gate(),
            2,
        );
        assert_eq!(gated.name(), "Gated-NextLine");
        assert_eq!(gated.kind(), PrefetcherKind::Gated);
        assert_eq!(gated.gate(), GateConfig::default_gate());
        assert_eq!(gated.storage(2), StorageCost::none());
        assert_eq!(
            GateConfig::transparent().threshold,
            0,
            "transparent gate must have threshold 0"
        );
    }

    #[test]
    #[should_panic(expected = "threshold above saturation")]
    fn gate_threshold_above_max_rejected() {
        let bad = GateConfig {
            threshold: 9,
            max: 7,
            initial: 0,
        };
        let _ = ConfidenceGatedPrefetcher::new(NullPrefetcher::new(), bad, 1);
    }

    #[test]
    fn adaptive_commits_per_core_on_observed_miss_rate() {
        let mut llc = llc();
        let adapt = AdaptConfig {
            warmup_accesses: 8,
            miss_rate_threshold: 0.5,
        };
        let mut adaptive = AdaptivePrefetcher::new(
            NextLinePrefetcher::new(1, 2),
            NextLinePrefetcher::new(4, 2),
            adapt,
            2,
        );
        assert_eq!(adaptive.name(), "Adaptive(NextLine/NextLine)");
        assert_eq!(adaptive.kind(), PrefetcherKind::Adaptive);
        assert_eq!(adaptive.selection(CORE), Selection::Warming);

        let mut out = Vec::new();
        // Core 0: all hits → low miss rate → commits to the low design
        // (degree 1).
        for b in 0..8u64 {
            out.clear();
            adaptive.on_access(CORE, BlockAddr::new(b), true, &mut llc, &mut out);
        }
        assert_eq!(adaptive.selection(CORE), Selection::Low);
        assert_eq!(adaptive.observed_miss_rate(CORE), 0.0);
        out.clear();
        adaptive.on_access(CORE, BlockAddr::new(100), true, &mut llc, &mut out);
        assert_eq!(out.len(), 1, "low design has degree 1");

        // Core 1: all misses → commits to the high design (degree 4).
        let core1 = CoreId::new(1);
        for b in 0..8u64 {
            out.clear();
            adaptive.on_access(core1, BlockAddr::new(b), false, &mut llc, &mut out);
        }
        assert_eq!(adaptive.selection(core1), Selection::High);
        assert_eq!(adaptive.observed_miss_rate(core1), 1.0);
        out.clear();
        adaptive.on_access(core1, BlockAddr::new(100), false, &mut llc, &mut out);
        assert_eq!(out.len(), 4, "high design has degree 4");
        // Core 0's commitment is unaffected by core 1's.
        assert_eq!(adaptive.selection(CORE), Selection::Low);
    }

    #[test]
    fn throttle_drops_candidates_beyond_the_window_budget() {
        let mut llc = llc();
        let port = HistoryPortConfig {
            candidates_per_window: 2,
            window_accesses: 4,
        };
        let mut throttled = ThrottledPrefetcher::new(NextLinePrefetcher::new(1, 1), port);
        assert_eq!(throttled.name(), "NextLine@bw2");
        assert_eq!(throttled.kind(), PrefetcherKind::Throttled);

        let mut out = Vec::new();
        let mut kept = 0usize;
        for b in 0..4u64 {
            out.clear();
            throttled.on_access(CORE, BlockAddr::new(b * 100), false, &mut llc, &mut out);
            kept += out.len();
        }
        // Four accesses each produced one candidate; the 2-candidate budget
        // kept exactly two.
        assert_eq!(kept, 2);
        assert_eq!(throttled.issued_candidates(), 2);
        assert_eq!(throttled.dropped_candidates(), 2);

        // The next window refills the budget.
        out.clear();
        throttled.on_access(CORE, BlockAddr::new(9_000), false, &mut llc, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(throttled.issued_candidates(), 3);
    }

    #[test]
    fn wider_port_keeps_weakly_more_candidates() {
        // The monotonicity the degradation scenario relies on, at the unit
        // level: on an identical stream, a wider port never keeps fewer
        // candidates.
        let stream: Vec<u64> = (0..64).map(|i| i * 100).collect();
        let mut issued = Vec::new();
        for bw in [1u32, 2, 4, 8, 16] {
            let mut llc = llc();
            let mut throttled = ThrottledPrefetcher::new(
                NextLinePrefetcher::new(2, 1),
                HistoryPortConfig::per_64_accesses(bw),
            );
            let mut out = Vec::new();
            for &b in &stream {
                out.clear();
                throttled.on_access(CORE, BlockAddr::new(b), false, &mut llc, &mut out);
            }
            issued.push(throttled.issued_candidates());
        }
        assert!(
            issued.windows(2).all(|w| w[0] <= w[1]),
            "issued candidates must be monotone in bandwidth: {issued:?}"
        );
    }
}
