//! Beyond the paper: the hybrid-prefetcher shootout (composed designs vs the
//! standalone suite, plus coverage degradation under a throttled history
//! port).

use shift_bench::artifacts::{hybrid_lab_artifact, publish};
use shift_bench::{banner, cores_from_env, scale_from_env, workloads_from_env, HARNESS_SEED};
use shift_sim::experiments::hybrid_shootout;

fn main() {
    let scale = scale_from_env();
    let cores = cores_from_env();
    let workloads = workloads_from_env();
    banner(
        "Hybrid shootout (beyond the paper)",
        scale,
        cores,
        &workloads,
    );
    let result = hybrid_shootout(&workloads, cores, scale, HARNESS_SEED);
    println!("{result}");
    println!(
        "(checks: some hybrid beats SHIFT coverage at <= storage; throttling degrades coverage monotonically)"
    );
    publish(&hybrid_lab_artifact(&result));
}
