//! Table I: system and application parameters.

use shift_bench::artifacts::{publish, table1_artifact};
use shift_bench::{banner, cores_from_env, scale_from_env, workloads_from_env};
use shift_sim::{CmpConfig, PrefetcherConfig};

fn main() {
    let scale = scale_from_env();
    let cores = cores_from_env();
    let workloads = workloads_from_env();
    banner(
        "Table I (system and application parameters)",
        scale,
        cores,
        &workloads,
    );

    let cfg = CmpConfig::micro13(cores, PrefetcherConfig::shift_virtualized());
    println!(
        "Processing nodes : {} x {} @ 2 GHz",
        cfg.cores, cfg.core_kind
    );
    println!(
        "L1-I cache       : {} KB, {}-way, {} B blocks, {}-cycle load-to-use",
        cfg.l1i.capacity_bytes / 1024,
        cfg.l1i.ways,
        cfg.l1i.block_bytes,
        cfg.l1i.hit_latency
    );
    println!(
        "L1-D cache       : {} KB, {}-way, {} B blocks, {}-cycle load-to-use",
        cfg.l1d.capacity_bytes / 1024,
        cfg.l1d.ways,
        cfg.l1d.block_bytes,
        cfg.l1d.hit_latency
    );
    println!(
        "L2 NUCA LLC      : {} MB total ({} KB/core), {}-way, {} banks, {}-cycle bank hit",
        cfg.llc.total_bytes / (1024 * 1024),
        cfg.llc.total_bytes / 1024 / cores as usize,
        cfg.llc.ways,
        cfg.llc.banks,
        cfg.llc.hit_latency
    );
    println!(
        "Main memory      : {} cycles ({} ns at 2 GHz)",
        cfg.llc.memory_latency,
        cfg.llc.memory_latency / 2
    );
    println!(
        "Interconnect     : {}x{} 2D mesh, {} cycles/hop",
        cfg.mesh.cols, cfg.mesh.rows, cfg.mesh.hop_latency
    );
    println!();
    println!("Workloads (synthetic equivalents of Table I):");
    for w in &workloads {
        println!(
            "  {:<18} ~{:>6.1} KB instruction footprint, {} request types, {} calls/request",
            w.name,
            w.expected_footprint_blocks() * 64.0 / 1024.0,
            w.request_types,
            w.calls_per_request
        );
    }
    publish(&table1_artifact(cores, &workloads));
}
