//! §5.1: storage cost table (PIF_2K, PIF_32K, SHIFT).

use shift_bench::artifacts::{publish, table_storage_artifact};
use shift_bench::{banner, cores_from_env, scale_from_env, workloads_from_env};
use shift_sim::experiments::storage_table;

fn main() {
    let scale = scale_from_env();
    let cores = cores_from_env();
    let workloads = workloads_from_env();
    banner("§5.1 (storage cost)", scale, cores, &workloads);
    let result = storage_table(cores, cores as usize * 512 * 1024 / 64);
    println!("{result}");
    if let Some(ratio) = result.sram_ratio("PIF_32K", "SHIFT") {
        println!("PIF_32K / SHIFT added-SRAM ratio: {ratio:.1}x (paper: ~14x)");
    }
    publish(&table_storage_artifact(&result));
}
