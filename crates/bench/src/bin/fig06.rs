//! Figure 6: miss coverage vs. aggregate history size, SHIFT vs. PIF.

use shift_bench::{banner, cores_from_env, scale_from_env, workloads_from_env, HARNESS_SEED};
use shift_sim::experiments::coverage_vs_history;

fn main() {
    let scale = scale_from_env();
    let cores = cores_from_env();
    let workloads = workloads_from_env();
    banner(
        "Figure 6 (coverage vs. aggregate history size)",
        scale,
        cores,
        &workloads,
    );
    let sizes: Vec<Option<usize>> = vec![
        Some(1 << 10),
        Some(2 << 10),
        Some(4 << 10),
        Some(8 << 10),
        Some(16 << 10),
        Some(32 << 10),
        Some(64 << 10),
        Some(128 << 10),
        Some(256 << 10),
        Some(512 << 10),
        None,
    ];
    let result = coverage_vs_history(&workloads, &sizes, cores, scale, HARNESS_SEED);
    println!("{result}");
    println!("(paper: SHIFT above PIF at every aggregate size; both rise monotonically)");
}
