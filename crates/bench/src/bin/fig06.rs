//! Figure 6: miss coverage vs. aggregate history size, SHIFT vs. PIF.

use shift_bench::artifacts::{fig06_artifact, figure6_sizes, publish};
use shift_bench::{banner, cores_from_env, scale_from_env, workloads_from_env, HARNESS_SEED};
use shift_sim::experiments::coverage_vs_history;

fn main() {
    let scale = scale_from_env();
    let cores = cores_from_env();
    let workloads = workloads_from_env();
    banner(
        "Figure 6 (coverage vs. aggregate history size)",
        scale,
        cores,
        &workloads,
    );
    let result = coverage_vs_history(&workloads, &figure6_sizes(), cores, scale, HARNESS_SEED);
    println!("{result}");
    println!("(paper: SHIFT above PIF at every aggregate size; both rise monotonically)");
    publish(&fig06_artifact(&result));
}
