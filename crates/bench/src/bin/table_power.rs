//! §5.7: power overhead of SHIFT's history and index activity.

use shift_bench::artifacts::{publish, table_power_artifact};
use shift_bench::{banner, cores_from_env, scale_from_env, workloads_from_env, HARNESS_SEED};
use shift_sim::experiments::power_overhead;

fn main() {
    let scale = scale_from_env();
    let cores = cores_from_env();
    let workloads = workloads_from_env();
    banner("§5.7 (power overhead)", scale, cores, &workloads);
    let result = power_overhead(&workloads, cores, scale, HARNESS_SEED);
    println!("{result}");
    println!("(paper: < 150 mW total for a 16-core CMP)");
    publish(&table_power_artifact(&result));
}
