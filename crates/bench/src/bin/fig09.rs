//! Figure 9: LLC traffic overhead of SHIFT.

use shift_bench::artifacts::{fig09_artifact, publish};
use shift_bench::{banner, cores_from_env, scale_from_env, workloads_from_env, HARNESS_SEED};
use shift_sim::experiments::llc_traffic;

fn main() {
    let scale = scale_from_env();
    let cores = cores_from_env();
    let workloads = workloads_from_env();
    banner("Figure 9 (LLC traffic overhead)", scale, cores, &workloads);
    let result = llc_traffic(&workloads, cores, scale, HARNESS_SEED);
    println!("{result}");
    println!("(paper: history reads+writes ~6%, discards ~7%, index updates ~2.5% of baseline)");
    publish(&fig09_artifact(&result));
}
