//! Figure 10: speedup under workload consolidation.

use shift_bench::artifacts::{fig10_artifact, publish};
use shift_bench::{banner, cores_from_env, scale_from_env, HARNESS_SEED};
use shift_sim::experiments::consolidation;
use shift_sim::PrefetcherConfig;
use shift_trace::presets;

fn main() {
    let scale = scale_from_env();
    let cores = cores_from_env();
    let workloads = presets::consolidation_suite();
    banner(
        "Figure 10 (workload consolidation)",
        scale,
        cores,
        &workloads,
    );
    let result = consolidation(
        &workloads,
        &PrefetcherConfig::figure8_suite(),
        cores,
        scale,
        HARNESS_SEED,
    );
    println!("{result}");
    println!("(paper: SHIFT ~1.22, ZeroLat-SHIFT ~1.25, SHIFT ≈ 95% of PIF_32K's benefit)");
    publish(&fig10_artifact(&result));
}
