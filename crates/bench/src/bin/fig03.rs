//! Figure 3: instruction cache accesses within common temporal streams.

use shift_bench::artifacts::{fig03_artifact, publish};
use shift_bench::{banner, cores_from_env, scale_from_env, workloads_from_env, HARNESS_SEED};
use shift_sim::experiments::commonality;

fn main() {
    let scale = scale_from_env();
    let cores = cores_from_env();
    let workloads = workloads_from_env();
    banner(
        "Figure 3 (cross-core stream commonality)",
        scale,
        cores,
        &workloads,
    );
    let result = commonality(&workloads, cores, scale, HARNESS_SEED);
    println!("{result}");
    println!("(paper: >90% on average, up to 96%)");
    publish(&fig03_artifact(&result));
}
