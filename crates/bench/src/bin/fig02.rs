//! Figure 2: PIF performance vs. area for the three core types.

use shift_bench::artifacts::{fig02_artifact, publish};
use shift_bench::{banner, cores_from_env, scale_from_env, workloads_from_env, HARNESS_SEED};
use shift_sim::experiments::performance_density;
use shift_sim::PrefetcherConfig;

fn main() {
    let scale = scale_from_env();
    let cores = cores_from_env();
    let workloads = workloads_from_env();
    banner(
        "Figure 2 (PIF performance density by core type)",
        scale,
        cores,
        &workloads,
    );
    let result = performance_density(
        &workloads,
        &[PrefetcherConfig::pif_32k()],
        cores,
        scale,
        HARNESS_SEED,
    );
    println!("{result}");
    println!("(PD > 1 lies in the paper's shaded gain region; < 1 is the loss region)");
    publish(&fig02_artifact(&result));
}
