//! Reproduces every figure and table of the paper — in one process, as one
//! stage of a sharded multi-machine sweep, or as one worker of an elastic
//! work queue — optionally reusing outcomes cached by earlier runs.
//!
//! All experiments are planned into a single deduplicated `RunMatrix`
//! (shared baselines simulate once for the whole paper). What happens next
//! depends on the mode:
//!
//! * **Default** — execute in-process and write per-figure artifacts under
//!   `target/artifacts/` (override with `SHIFT_ARTIFACTS`), ending with the
//!   paper-reference scoreboard.
//! * **`--shard K/N --outcomes DIR`** — execute only shard `K` of `N`
//!   (a deterministic slice of the matrix), persisting each completed run as
//!   a keyed JSON outcome file under `DIR`. Already-present outcomes are
//!   skipped, so a killed shard resumes where it stopped. No artifacts are
//!   written; ship `DIR` to the merge host instead.
//! * **`--queue --outcomes DIR`** — run one *work-queue worker*: claim the
//!   next unowned run via an atomic lock file in `DIR` (which must be shared
//!   by all workers — NFS mount, shared volume, one multi-process host),
//!   simulate it, repeat until the whole matrix has outcomes. Heterogeneous
//!   hosts drain one queue at their own pace; a killed worker's claims go
//!   stale after `SHIFT_QUEUE_TTL` seconds (default 3600) and are reclaimed.
//!   The worker only returns success once the sweep is complete.
//!   `--policy cost-ordered` drains biggest-runs-first weighted by the
//!   worker's measured throughput (see `docs/PERFORMANCE.md`), and
//!   `--decision-log FILE` appends one NDJSON line per claim — with the
//!   run's estimated cost, its rank in the schedule, and the worker's
//!   fetch rate — plus a final `drained` line carrying the makespan.
//! * **`--merge DIR...`** — load outcome files from one or more shard/queue
//!   directories, verify they cover this exact sweep, and derive all
//!   artifacts + scoreboard. Byte-identical to the default mode's output.
//! * **`--outcomes DIR`** alone — execute the full sweep (shard `1/1`) with
//!   durable outcomes in `DIR`, then merge from it: a crash-resumable
//!   single-host run.
//!
//! **`--reuse OLD_DIR...`** composes with all execution modes (not with
//! `--merge`): outcomes in the old directories whose keys still exist in
//! the current plan — even if they were executed for a *different* sweep —
//! are reused instead of re-simulated, so only the delta of the new plan
//! executes. With `--outcomes DIR`, reusable outcomes are first *seeded*
//! into `DIR` under the current plan's fingerprint; without it, the delta
//! executes in memory.
//!
//! All modes read the sweep settings from `SHIFT_SCALE` / `SHIFT_CORES` /
//! `SHIFT_WORKLOADS`; shard, queue, and merge hosts must agree on them (the
//! outcome files carry the planned matrix's fingerprint, so a mismatch is
//! rejected rather than silently merged). See `docs/SWEEP.md` for the
//! pipeline guide and `docs/OPERATIONS.md` for the operator runbook.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Mutex;
use std::time::Instant;

use shift_bench::artifacts::artifacts_dir;
use shift_bench::reproduce::{PaperPlan, PaperReport, ReproduceSettings};
use shift_bench::{banner, cores_from_env, scale_from_env, workloads_from_env};
use shift_sim::shard::seed_shard_outcomes;
use shift_sim::store::seed_outcomes;
use shift_sim::{
    Execution, PartialLoad, QueueConfig, RunEvent, RunStore, SchedulePolicy, ShardSpec,
};

/// What the command line asked for.
enum Mode {
    /// Print usage and exit successfully.
    Help,
    /// In-process plan → execute → collect.
    Local,
    /// Execute one shard into an outcome directory.
    Shard(ShardSpec, PathBuf),
    /// Run one work-queue worker against a shared outcome directory.
    Queue(PathBuf),
    /// Execute everything into an outcome directory, then merge from it.
    LocalDurable(PathBuf),
    /// Merge outcome directories and collect.
    Merge(Vec<PathBuf>),
}

const USAGE: &str = "\
usage: reproduce [--shard K/N --outcomes DIR | --queue --outcomes DIR |
                  --outcomes DIR | --merge DIR...] [--reuse OLD_DIR...]
                 [--policy canonical|cost-ordered] [--decision-log FILE]
  (no flags)                   plan, execute in-process, write artifacts + scoreboard
  --shard K/N --outcomes DIR   execute shard K of N into DIR (resumable)
  --queue --outcomes DIR       one elastic queue worker over shared DIR; returns
                               once the whole sweep has outcomes (SHIFT_QUEUE_TTL
                               seconds until a dead worker's claims are reclaimed)
  --outcomes DIR               full durable run: execute 1/1 into DIR, then merge
  --merge DIR...               merge shard outcome dirs, write artifacts + scoreboard
  --reuse OLD_DIR...           reuse cached outcomes whose keys are still planned
                               (any mode but --merge); only the delta executes
  --policy POLICY              claim order: canonical (default) or cost-ordered
                               (biggest runs first, weighted by worker throughput)
  --decision-log FILE          (--queue only) append one NDJSON line per claim
                               with cost / rank / worker rate, and a final
                               `drained` line with the worker's makespan
";

/// Everything parsed from the command line besides the mode itself.
struct Options {
    reuse: Vec<PathBuf>,
    policy: Option<SchedulePolicy>,
    decision_log: Option<PathBuf>,
}

fn parse_args() -> Result<(Mode, Options), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut shard: Option<ShardSpec> = None;
    let mut queue = false;
    let mut outcomes: Option<PathBuf> = None;
    let mut merge: Vec<PathBuf> = Vec::new();
    let mut reuse: Vec<PathBuf> = Vec::new();
    let mut policy: Option<SchedulePolicy> = None;
    let mut decision_log: Option<PathBuf> = None;
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--shard" => {
                let spec = iter.next().ok_or("--shard needs a K/N argument")?;
                shard = Some(ShardSpec::parse(spec)?);
            }
            "--queue" => queue = true,
            "--outcomes" => {
                let dir = iter.next().ok_or("--outcomes needs a directory")?;
                outcomes = Some(PathBuf::from(dir));
            }
            "--policy" => {
                let name = iter.next().ok_or("--policy needs canonical|cost-ordered")?;
                policy = Some(name.parse::<SchedulePolicy>()?);
            }
            "--decision-log" => {
                let path = iter.next().ok_or("--decision-log needs a file path")?;
                decision_log = Some(PathBuf::from(path));
            }
            "--merge" | "--reuse" => {
                let list = if arg == "--merge" {
                    &mut merge
                } else {
                    &mut reuse
                };
                while let Some(dir) = iter.peek() {
                    if dir.starts_with("--") {
                        break;
                    }
                    list.push(PathBuf::from(iter.next().expect("peeked")));
                }
                if list.is_empty() {
                    return Err(format!("{arg} needs at least one directory"));
                }
            }
            "--help" | "-h" => {
                return Ok((
                    Mode::Help,
                    Options {
                        reuse: Vec::new(),
                        policy: None,
                        decision_log: None,
                    },
                ))
            }
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    if !merge.is_empty() && !reuse.is_empty() {
        return Err(
            "--reuse cannot be combined with --merge (a merge never executes; \
                    point --reuse at an execution mode instead)"
                .into(),
        );
    }
    if decision_log.is_some() && !queue {
        return Err("--decision-log only applies to --queue workers".into());
    }
    let mode = match (shard, queue, outcomes, merge.is_empty()) {
        (None, false, None, true) => Mode::Local,
        (Some(spec), false, Some(dir), true) => Mode::Shard(spec, dir),
        (None, true, Some(dir), true) => Mode::Queue(dir),
        (None, false, Some(dir), true) => Mode::LocalDurable(dir),
        (None, false, None, false) => Mode::Merge(merge),
        (Some(_), true, _, _) => return Err("--shard and --queue are mutually exclusive".into()),
        (_, true, None, _) => return Err("--queue requires --outcomes DIR".into()),
        (Some(_), _, None, _) => return Err("--shard requires --outcomes DIR".into()),
        _ => return Err("--merge cannot be combined with --shard/--queue/--outcomes".into()),
    };
    Ok((
        mode,
        Options {
            reuse,
            policy,
            decision_log,
        },
    ))
}

fn main() -> ExitCode {
    let (mode, options) = match parse_args() {
        Ok((Mode::Help, _)) => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let reuse = options.reuse;

    let scale = scale_from_env();
    let cores = cores_from_env();
    let workloads = workloads_from_env();
    banner(
        "reproduce (all figures and tables)",
        scale,
        cores,
        &workloads,
    );

    let plan = PaperPlan::plan(ReproduceSettings::from_env());
    println!(
        "planned {} distinct simulations for the whole paper ({} avoided by cross-figure \
         dedup); matrix fingerprint {}",
        plan.run_count(),
        plan.saved_by_dedup(),
        plan.matrix().fingerprint(),
    );
    println!();

    // Probe the reuse cache up front; every mode below composes with it.
    let partial: Option<PartialLoad> = (!reuse.is_empty()).then(|| {
        let partial = RunStore::new(reuse.iter().cloned())
            .load_partial(plan.matrix())
            .unwrap_or_else(|e| panic!("probing --reuse directories failed: {e}"));
        println!(
            "reuse: {} of {} planned runs answered by cached outcomes ({} scanned, \
             {} foreign keys skipped, {} malformed files ignored)",
            partial.reused,
            plan.run_count(),
            partial.scanned,
            partial.skipped_foreign,
            partial.skipped_malformed.len(),
        );
        for path in &partial.skipped_malformed {
            eprintln!(
                "warning: ignored malformed cached outcome {}",
                path.display()
            );
        }
        partial
    });
    // Durable modes persist the reused outcomes under the *current* plan's
    // fingerprint first, so shard resume / queue claims / the strict merge
    // see them as already-completed runs. A K/N shard seeds only the slice
    // it owns: the N shard directories must stay disjoint or their merge
    // would trip the duplicate check.
    let seed = |dir: &PathBuf, spec: ShardSpec| {
        if let Some(partial) = &partial {
            let written = if spec.is_full() {
                seed_outcomes(plan.matrix(), partial, dir)
            } else {
                seed_shard_outcomes(plan.matrix(), partial, dir, spec)
            }
            .unwrap_or_else(|e| panic!("seeding {} from --reuse failed: {e}", dir.display()));
            println!("seeded {written} reused outcomes into {}", dir.display());
        }
    };

    match mode {
        Mode::Help => unreachable!("handled before planning"),
        Mode::Local => {
            let report = match partial {
                None => {
                    let mut execution = Execution::new(plan.matrix());
                    if let Some(policy) = options.policy {
                        execution = execution.policy(policy);
                    }
                    let outcomes = execution
                        .run()
                        .unwrap_or_else(|e| panic!("in-process execution failed: {e}"))
                        .into_outcomes();
                    plan.collect(&outcomes)
                }
                Some(partial) => {
                    let output = Execution::new(plan.matrix())
                        .reuse(partial)
                        .run()
                        .unwrap_or_else(|e| panic!("incremental execution failed: {e}"));
                    println!(
                        "incremental run: {} reused, {} executed",
                        output.report().sources.reused,
                        output.report().sources.executed
                    );
                    plan.collect(&output.into_outcomes())
                }
            };
            write_report(&report);
        }
        Mode::Shard(spec, dir) => {
            seed(&dir, spec);
            let report = *Execution::new(plan.matrix())
                .shard(spec)
                .dir(&dir)
                .run()
                .unwrap_or_else(|e| panic!("shard {spec} failed: {e}"))
                .report();
            println!(
                "shard {spec}: {} of {} runs executed, {} resumed, under {}",
                report.sources.executed,
                report.planned,
                report.sources.reused,
                dir.display()
            );
            println!(
                "merge with: reproduce --merge {} <other shard dirs...>",
                dir.display()
            );
        }
        Mode::Queue(dir) => {
            seed(&dir, ShardSpec::full());
            let mut config = QueueConfig::from_env();
            if let Some(policy) = options.policy {
                config.policy = policy;
            }
            let worker = config.worker.clone();
            let policy = config.policy;
            println!(
                "queue worker {} draining {} (claim TTL {}s, {} order)",
                worker,
                dir.display(),
                config.lock_ttl.as_secs(),
                policy
            );
            let log = options.decision_log.as_ref().map(|path| {
                let file = File::create(path).unwrap_or_else(|e| {
                    panic!("cannot open --decision-log {}: {e}", path.display())
                });
                Mutex::new(BufWriter::new(file))
            });
            let start = Instant::now();
            let observer = |event: RunEvent| {
                let Some(log) = &log else { return };
                if let RunEvent::Claimed {
                    key_id,
                    cost,
                    rank,
                    worker_rate,
                } = event
                {
                    let rate = worker_rate
                        .map(|r| r.to_string())
                        .unwrap_or_else(|| "null".to_owned());
                    let mut log = log.lock().expect("decision log poisoned");
                    writeln!(
                        log,
                        "{{\"event\":\"claimed\",\"run\":\"{key_id}\",\"worker\":\"{worker}\",\
                         \"policy\":\"{policy}\",\"cost\":{cost_units},\"rank\":{rank},\
                         \"worker_rate\":{rate},\"t_ms\":{t}}}",
                        cost_units = cost.units(),
                        t = start.elapsed().as_millis(),
                    )
                    .expect("decision log write");
                }
            };
            let report = *Execution::new(plan.matrix())
                .queue(config)
                .dir(&dir)
                .observer(&observer)
                .run()
                .unwrap_or_else(|e| panic!("queue worker failed: {e}"))
                .report();
            if let Some(log) = &log {
                let mut log = log.lock().expect("decision log poisoned");
                writeln!(
                    log,
                    "{{\"event\":\"drained\",\"worker\":\"{worker}\",\"policy\":\"{policy}\",\
                     \"executed\":{executed},\"reclaimed\":{reclaimed},\"passes\":{passes},\
                     \"makespan_ms\":{makespan}}}",
                    executed = report.sources.executed,
                    reclaimed = report.sources.reclaimed,
                    passes = report.passes,
                    makespan = start.elapsed().as_millis(),
                )
                .expect("decision log write");
                log.flush().expect("decision log flush");
            }
            println!(
                "queue drained: this worker executed {} of {} runs ({} stale claims \
                 reclaimed, {} passes); sweep complete",
                report.sources.executed, report.planned, report.sources.reclaimed, report.passes
            );
            println!("merge with: reproduce --merge {}", dir.display());
        }
        Mode::LocalDurable(dir) => {
            seed(&dir, ShardSpec::full());
            let report = *Execution::new(plan.matrix())
                .shard(ShardSpec::full())
                .dir(&dir)
                .run()
                .unwrap_or_else(|e| panic!("durable execution failed: {e}"))
                .report();
            println!(
                "durable run: {} executed, {} resumed, under {}",
                report.sources.executed,
                report.sources.reused,
                dir.display()
            );
            merge_and_report(plan, vec![dir]);
        }
        Mode::Merge(dirs) => merge_and_report(plan, dirs),
    }
    ExitCode::SUCCESS
}

/// Merges the planned matrix's outcomes from `dirs` and writes every
/// artifact plus the scoreboard.
fn merge_and_report(plan: PaperPlan, dirs: Vec<PathBuf>) {
    let outcomes = RunStore::new(dirs.iter().cloned())
        .load(plan.matrix())
        .unwrap_or_else(|e| panic!("merge failed: {e}"));
    println!(
        "merged {} run outcomes from {} director{}",
        outcomes.len(),
        dirs.len(),
        if dirs.len() == 1 { "y" } else { "ies" }
    );
    let report = plan.collect(&outcomes);
    write_report(&report);
}

/// Writes every artifact of `report` plus the scoreboard.
fn write_report(report: &PaperReport) {
    let dir = artifacts_dir();
    let paths = report
        .write_to(&dir)
        .unwrap_or_else(|e| panic!("failed to write artifacts under {}: {e}", dir.display()));
    println!(
        "wrote {} artifact files ({} figures/tables x json+csv+md) under {}",
        paths.len(),
        report.artifacts().len(),
        dir.display()
    );
    for artifact in report.artifacts() {
        println!("  {:<13} {}", artifact.name(), artifact.title());
    }
    println!();
    println!("{}", report.scoreboard());
}
