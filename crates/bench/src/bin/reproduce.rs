//! Reproduces every figure and table of the paper — in one process, as one
//! stage of a sharded multi-machine sweep, or as one worker of an elastic
//! work queue — optionally reusing outcomes cached by earlier runs.
//!
//! All experiments are planned into a single deduplicated `RunMatrix`
//! (shared baselines simulate once for the whole paper). What happens next
//! depends on the mode:
//!
//! * **Default** — execute in-process and write per-figure artifacts under
//!   `target/artifacts/` (override with `SHIFT_ARTIFACTS`), ending with the
//!   paper-reference scoreboard.
//! * **`--shard K/N --outcomes DIR`** — execute only shard `K` of `N`
//!   (a deterministic slice of the matrix), persisting each completed run as
//!   a keyed JSON outcome file under `DIR`. Already-present outcomes are
//!   skipped, so a killed shard resumes where it stopped. No artifacts are
//!   written; ship `DIR` to the merge host instead.
//! * **`--queue --outcomes DIR`** — run one *work-queue worker*: claim the
//!   next unowned run via an atomic lock file in `DIR` (which must be shared
//!   by all workers — NFS mount, shared volume, one multi-process host),
//!   simulate it, repeat until the whole matrix has outcomes. Heterogeneous
//!   hosts drain one queue at their own pace; a killed worker's claims go
//!   stale after `SHIFT_QUEUE_TTL` seconds (default 3600) and are reclaimed.
//!   The worker only returns success once the sweep is complete.
//! * **`--merge DIR...`** — load outcome files from one or more shard/queue
//!   directories, verify they cover this exact sweep, and derive all
//!   artifacts + scoreboard. Byte-identical to the default mode's output.
//! * **`--outcomes DIR`** alone — execute the full sweep (shard `1/1`) with
//!   durable outcomes in `DIR`, then merge from it: a crash-resumable
//!   single-host run.
//!
//! **`--reuse OLD_DIR...`** composes with all execution modes (not with
//! `--merge`): outcomes in the old directories whose keys still exist in
//! the current plan — even if they were executed for a *different* sweep —
//! are reused instead of re-simulated, so only the delta of the new plan
//! executes. With `--outcomes DIR`, reusable outcomes are first *seeded*
//! into `DIR` under the current plan's fingerprint; without it, the delta
//! executes in memory.
//!
//! All modes read the sweep settings from `SHIFT_SCALE` / `SHIFT_CORES` /
//! `SHIFT_WORKLOADS`; shard, queue, and merge hosts must agree on them (the
//! outcome files carry the planned matrix's fingerprint, so a mismatch is
//! rejected rather than silently merged). See `docs/SWEEP.md` for the
//! pipeline guide and `docs/OPERATIONS.md` for the operator runbook.

use std::path::PathBuf;
use std::process::ExitCode;

use shift_bench::artifacts::artifacts_dir;
use shift_bench::reproduce::{PaperPlan, PaperReport, ReproduceSettings};
use shift_bench::{banner, cores_from_env, scale_from_env, workloads_from_env};
use shift_sim::shard::{execute_delta, execute_queue, execute_shard, seed_shard_outcomes};
use shift_sim::store::seed_outcomes;
use shift_sim::{PartialLoad, QueueConfig, RunStore, ShardSpec};

/// What the command line asked for.
enum Mode {
    /// Print usage and exit successfully.
    Help,
    /// In-process plan → execute → collect.
    Local,
    /// Execute one shard into an outcome directory.
    Shard(ShardSpec, PathBuf),
    /// Run one work-queue worker against a shared outcome directory.
    Queue(PathBuf),
    /// Execute everything into an outcome directory, then merge from it.
    LocalDurable(PathBuf),
    /// Merge outcome directories and collect.
    Merge(Vec<PathBuf>),
}

const USAGE: &str = "\
usage: reproduce [--shard K/N --outcomes DIR | --queue --outcomes DIR |
                  --outcomes DIR | --merge DIR...] [--reuse OLD_DIR...]
  (no flags)                   plan, execute in-process, write artifacts + scoreboard
  --shard K/N --outcomes DIR   execute shard K of N into DIR (resumable)
  --queue --outcomes DIR       one elastic queue worker over shared DIR; returns
                               once the whole sweep has outcomes (SHIFT_QUEUE_TTL
                               seconds until a dead worker's claims are reclaimed)
  --outcomes DIR               full durable run: execute 1/1 into DIR, then merge
  --merge DIR...               merge shard outcome dirs, write artifacts + scoreboard
  --reuse OLD_DIR...           reuse cached outcomes whose keys are still planned
                               (any mode but --merge); only the delta executes
";

fn parse_args() -> Result<(Mode, Vec<PathBuf>), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut shard: Option<ShardSpec> = None;
    let mut queue = false;
    let mut outcomes: Option<PathBuf> = None;
    let mut merge: Vec<PathBuf> = Vec::new();
    let mut reuse: Vec<PathBuf> = Vec::new();
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--shard" => {
                let spec = iter.next().ok_or("--shard needs a K/N argument")?;
                shard = Some(ShardSpec::parse(spec)?);
            }
            "--queue" => queue = true,
            "--outcomes" => {
                let dir = iter.next().ok_or("--outcomes needs a directory")?;
                outcomes = Some(PathBuf::from(dir));
            }
            "--merge" | "--reuse" => {
                let list = if arg == "--merge" {
                    &mut merge
                } else {
                    &mut reuse
                };
                while let Some(dir) = iter.peek() {
                    if dir.starts_with("--") {
                        break;
                    }
                    list.push(PathBuf::from(iter.next().expect("peeked")));
                }
                if list.is_empty() {
                    return Err(format!("{arg} needs at least one directory"));
                }
            }
            "--help" | "-h" => return Ok((Mode::Help, Vec::new())),
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    if !merge.is_empty() && !reuse.is_empty() {
        return Err(
            "--reuse cannot be combined with --merge (a merge never executes; \
                    point --reuse at an execution mode instead)"
                .into(),
        );
    }
    let mode = match (shard, queue, outcomes, merge.is_empty()) {
        (None, false, None, true) => Mode::Local,
        (Some(spec), false, Some(dir), true) => Mode::Shard(spec, dir),
        (None, true, Some(dir), true) => Mode::Queue(dir),
        (None, false, Some(dir), true) => Mode::LocalDurable(dir),
        (None, false, None, false) => Mode::Merge(merge),
        (Some(_), true, _, _) => return Err("--shard and --queue are mutually exclusive".into()),
        (_, true, None, _) => return Err("--queue requires --outcomes DIR".into()),
        (Some(_), _, None, _) => return Err("--shard requires --outcomes DIR".into()),
        _ => return Err("--merge cannot be combined with --shard/--queue/--outcomes".into()),
    };
    Ok((mode, reuse))
}

fn main() -> ExitCode {
    let (mode, reuse) = match parse_args() {
        Ok((Mode::Help, _)) => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };

    let scale = scale_from_env();
    let cores = cores_from_env();
    let workloads = workloads_from_env();
    banner(
        "reproduce (all figures and tables)",
        scale,
        cores,
        &workloads,
    );

    let plan = PaperPlan::plan(ReproduceSettings::from_env());
    println!(
        "planned {} distinct simulations for the whole paper ({} avoided by cross-figure \
         dedup); matrix fingerprint {}",
        plan.run_count(),
        plan.saved_by_dedup(),
        plan.matrix().fingerprint(),
    );
    println!();

    // Probe the reuse cache up front; every mode below composes with it.
    let partial: Option<PartialLoad> = (!reuse.is_empty()).then(|| {
        let partial = RunStore::new(reuse.iter().cloned())
            .load_partial(plan.matrix())
            .unwrap_or_else(|e| panic!("probing --reuse directories failed: {e}"));
        println!(
            "reuse: {} of {} planned runs answered by cached outcomes ({} scanned, \
             {} foreign keys skipped, {} malformed files ignored)",
            partial.reused,
            plan.run_count(),
            partial.scanned,
            partial.skipped_foreign,
            partial.skipped_malformed.len(),
        );
        for path in &partial.skipped_malformed {
            eprintln!(
                "warning: ignored malformed cached outcome {}",
                path.display()
            );
        }
        partial
    });
    // Durable modes persist the reused outcomes under the *current* plan's
    // fingerprint first, so shard resume / queue claims / the strict merge
    // see them as already-completed runs. A K/N shard seeds only the slice
    // it owns: the N shard directories must stay disjoint or their merge
    // would trip the duplicate check.
    let seed = |dir: &PathBuf, spec: ShardSpec| {
        if let Some(partial) = &partial {
            let written = if spec.is_full() {
                seed_outcomes(plan.matrix(), partial, dir)
            } else {
                seed_shard_outcomes(plan.matrix(), partial, dir, spec)
            }
            .unwrap_or_else(|e| panic!("seeding {} from --reuse failed: {e}", dir.display()));
            println!("seeded {written} reused outcomes into {}", dir.display());
        }
    };

    match mode {
        Mode::Help => unreachable!("handled before planning"),
        Mode::Local => {
            let report = match partial {
                None => plan.execute(),
                Some(partial) => {
                    let delta = execute_delta(plan.matrix(), partial);
                    println!(
                        "incremental run: {} reused, {} executed",
                        delta.reused, delta.executed
                    );
                    plan.collect(&delta.outcomes)
                }
            };
            write_report(&report);
        }
        Mode::Shard(spec, dir) => {
            seed(&dir, spec);
            let report = execute_shard(plan.matrix(), spec, &dir)
                .unwrap_or_else(|e| panic!("shard {spec} failed: {e}"));
            println!(
                "shard {spec}: {} of {} runs executed, {} resumed, under {}",
                report.executed,
                report.planned,
                report.resumed,
                dir.display()
            );
            println!(
                "merge with: reproduce --merge {} <other shard dirs...>",
                dir.display()
            );
        }
        Mode::Queue(dir) => {
            seed(&dir, ShardSpec::full());
            let config = QueueConfig::from_env();
            println!(
                "queue worker {} draining {} (claim TTL {}s)",
                config.worker,
                dir.display(),
                config.lock_ttl.as_secs()
            );
            let report = execute_queue(plan.matrix(), &dir, &config)
                .unwrap_or_else(|e| panic!("queue worker failed: {e}"));
            println!(
                "queue drained: this worker executed {} of {} runs ({} stale claims \
                 reclaimed, {} passes); sweep complete",
                report.executed, report.planned, report.reclaimed, report.passes
            );
            println!("merge with: reproduce --merge {}", dir.display());
        }
        Mode::LocalDurable(dir) => {
            seed(&dir, ShardSpec::full());
            let report = execute_shard(plan.matrix(), ShardSpec::full(), &dir)
                .unwrap_or_else(|e| panic!("durable execution failed: {e}"));
            println!(
                "durable run: {} executed, {} resumed, under {}",
                report.executed,
                report.resumed,
                dir.display()
            );
            merge_and_report(plan, vec![dir]);
        }
        Mode::Merge(dirs) => merge_and_report(plan, dirs),
    }
    ExitCode::SUCCESS
}

/// Merges the planned matrix's outcomes from `dirs` and writes every
/// artifact plus the scoreboard.
fn merge_and_report(plan: PaperPlan, dirs: Vec<PathBuf>) {
    let outcomes = RunStore::new(dirs.iter().cloned())
        .load(plan.matrix())
        .unwrap_or_else(|e| panic!("merge failed: {e}"));
    println!(
        "merged {} run outcomes from {} director{}",
        outcomes.len(),
        dirs.len(),
        if dirs.len() == 1 { "y" } else { "ies" }
    );
    let report = plan.collect(&outcomes);
    write_report(&report);
}

/// Writes every artifact of `report` plus the scoreboard.
fn write_report(report: &PaperReport) {
    let dir = artifacts_dir();
    let paths = report
        .write_to(&dir)
        .unwrap_or_else(|e| panic!("failed to write artifacts under {}: {e}", dir.display()));
    println!(
        "wrote {} artifact files ({} figures/tables x json+csv+md) under {}",
        paths.len(),
        report.artifacts().len(),
        dir.display()
    );
    for artifact in report.artifacts() {
        println!("  {:<13} {}", artifact.name(), artifact.title());
    }
    println!();
    println!("{}", report.scoreboard());
}
