//! Reproduces every figure and table of the paper — in one process, or as
//! one stage of a sharded multi-machine sweep.
//!
//! All experiments are planned into a single deduplicated `RunMatrix`
//! (shared baselines simulate once for the whole paper). What happens next
//! depends on the mode:
//!
//! * **Default** — execute in-process and write per-figure artifacts under
//!   `target/artifacts/` (override with `SHIFT_ARTIFACTS`), ending with the
//!   paper-reference scoreboard.
//! * **`--shard K/N --outcomes DIR`** — execute only shard `K` of `N`
//!   (a deterministic slice of the matrix), persisting each completed run as
//!   a keyed JSON outcome file under `DIR`. Already-present outcomes are
//!   skipped, so a killed shard resumes where it stopped. No artifacts are
//!   written; ship `DIR` to the merge host instead.
//! * **`--merge DIR...`** — load outcome files from one or more shard
//!   directories, verify they cover this exact sweep, and derive all
//!   artifacts + scoreboard. Byte-identical to the default mode's output.
//! * **`--outcomes DIR`** alone — execute the full sweep (shard `1/1`) with
//!   durable outcomes in `DIR`, then merge from it: a crash-resumable
//!   single-host run.
//!
//! All modes read the sweep settings from `SHIFT_SCALE` / `SHIFT_CORES` /
//! `SHIFT_WORKLOADS`; shard and merge hosts must agree on them (the outcome
//! files carry the planned matrix's fingerprint, so a mismatch is rejected
//! rather than silently merged). See `docs/SWEEP.md` for the full guide.

use std::path::PathBuf;
use std::process::ExitCode;

use shift_bench::artifacts::artifacts_dir;
use shift_bench::reproduce::{PaperPlan, ReproduceSettings};
use shift_bench::{banner, cores_from_env, scale_from_env, workloads_from_env};
use shift_sim::shard::execute_shard;
use shift_sim::{RunStore, ShardSpec};

/// What the command line asked for.
enum Mode {
    /// Print usage and exit successfully.
    Help,
    /// In-process plan → execute → collect.
    Local,
    /// Execute one shard into an outcome directory.
    Shard(ShardSpec, PathBuf),
    /// Execute everything into an outcome directory, then merge from it.
    LocalDurable(PathBuf),
    /// Merge outcome directories and collect.
    Merge(Vec<PathBuf>),
}

const USAGE: &str = "\
usage: reproduce [--shard K/N --outcomes DIR | --outcomes DIR | --merge DIR...]
  (no flags)                   plan, execute in-process, write artifacts + scoreboard
  --shard K/N --outcomes DIR   execute shard K of N into DIR (resumable)
  --outcomes DIR               full durable run: execute 1/1 into DIR, then merge
  --merge DIR...               merge shard outcome dirs, write artifacts + scoreboard
";

fn parse_args() -> Result<Mode, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut shard: Option<ShardSpec> = None;
    let mut outcomes: Option<PathBuf> = None;
    let mut merge: Vec<PathBuf> = Vec::new();
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--shard" => {
                let spec = iter.next().ok_or("--shard needs a K/N argument")?;
                shard = Some(ShardSpec::parse(spec)?);
            }
            "--outcomes" => {
                let dir = iter.next().ok_or("--outcomes needs a directory")?;
                outcomes = Some(PathBuf::from(dir));
            }
            "--merge" => {
                while let Some(dir) = iter.peek() {
                    if dir.starts_with("--") {
                        break;
                    }
                    merge.push(PathBuf::from(iter.next().expect("peeked")));
                }
                if merge.is_empty() {
                    return Err("--merge needs at least one directory".into());
                }
            }
            "--help" | "-h" => return Ok(Mode::Help),
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    match (shard, outcomes, merge.is_empty()) {
        (None, None, true) => Ok(Mode::Local),
        (Some(spec), Some(dir), true) => Ok(Mode::Shard(spec, dir)),
        (None, Some(dir), true) => Ok(Mode::LocalDurable(dir)),
        (None, None, false) => Ok(Mode::Merge(merge)),
        (Some(_), None, _) => Err("--shard requires --outcomes DIR".into()),
        _ => Err("--merge cannot be combined with --shard/--outcomes".into()),
    }
}

fn main() -> ExitCode {
    let mode = match parse_args() {
        Ok(Mode::Help) => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Ok(mode) => mode,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };

    let scale = scale_from_env();
    let cores = cores_from_env();
    let workloads = workloads_from_env();
    banner(
        "reproduce (all figures and tables)",
        scale,
        cores,
        &workloads,
    );

    let plan = PaperPlan::plan(ReproduceSettings::from_env());
    println!(
        "planned {} distinct simulations for the whole paper ({} avoided by cross-figure \
         dedup); matrix fingerprint {}",
        plan.run_count(),
        plan.saved_by_dedup(),
        plan.matrix().fingerprint(),
    );
    println!();

    match mode {
        Mode::Help => unreachable!("handled before planning"),
        Mode::Local => collect_and_report(plan, None),
        Mode::Shard(spec, dir) => {
            let report = execute_shard(plan.matrix(), spec, &dir)
                .unwrap_or_else(|e| panic!("shard {spec} failed: {e}"));
            println!(
                "shard {spec}: {} of {} runs executed, {} resumed, under {}",
                report.executed,
                report.planned,
                report.resumed,
                dir.display()
            );
            println!(
                "merge with: reproduce --merge {} <other shard dirs...>",
                dir.display()
            );
        }
        Mode::LocalDurable(dir) => {
            let report = execute_shard(plan.matrix(), ShardSpec::full(), &dir)
                .unwrap_or_else(|e| panic!("durable execution failed: {e}"));
            println!(
                "durable run: {} executed, {} resumed, under {}",
                report.executed,
                report.resumed,
                dir.display()
            );
            collect_and_report(plan, Some(vec![dir]));
        }
        Mode::Merge(dirs) => collect_and_report(plan, Some(dirs)),
    }
    ExitCode::SUCCESS
}

/// Executes (or merges) the planned matrix and writes every artifact plus
/// the scoreboard.
fn collect_and_report(plan: PaperPlan, merge_dirs: Option<Vec<PathBuf>>) {
    let report = match merge_dirs {
        None => plan.execute(),
        Some(dirs) => {
            let outcomes = RunStore::new(dirs.iter().cloned())
                .load(plan.matrix())
                .unwrap_or_else(|e| panic!("merge failed: {e}"));
            println!(
                "merged {} run outcomes from {} director{}",
                outcomes.len(),
                dirs.len(),
                if dirs.len() == 1 { "y" } else { "ies" }
            );
            plan.collect(&outcomes)
        }
    };
    let dir = artifacts_dir();
    let paths = report
        .write_to(&dir)
        .unwrap_or_else(|e| panic!("failed to write artifacts under {}: {e}", dir.display()));
    println!(
        "wrote {} artifact files ({} figures/tables x json+csv+md) under {}",
        paths.len(),
        report.artifacts().len(),
        dir.display()
    );
    for artifact in report.artifacts() {
        println!("  {:<13} {}", artifact.name(), artifact.title());
    }
    println!();
    println!("{}", report.scoreboard());
}
