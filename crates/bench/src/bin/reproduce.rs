//! Reproduces every figure and table of the paper in one run.
//!
//! All experiments are planned into a single deduplicated `RunMatrix` (shared
//! baselines simulate once for the whole paper), executed in parallel, and
//! fanned out to per-figure artifacts under `target/artifacts/` (override
//! with `SHIFT_ARTIFACTS`), ending with the paper-reference scoreboard.

use shift_bench::artifacts::artifacts_dir;
use shift_bench::reproduce::{PaperPlan, ReproduceSettings};
use shift_bench::{banner, cores_from_env, scale_from_env, workloads_from_env};

fn main() {
    let scale = scale_from_env();
    let cores = cores_from_env();
    let workloads = workloads_from_env();
    banner(
        "reproduce (all figures and tables)",
        scale,
        cores,
        &workloads,
    );

    let plan = PaperPlan::plan(ReproduceSettings::from_env());
    println!(
        "planned {} distinct simulations for the whole paper ({} avoided by cross-figure dedup)",
        plan.run_count(),
        plan.saved_by_dedup()
    );
    println!();

    let report = plan.execute();
    let dir = artifacts_dir();
    let paths = report
        .write_to(&dir)
        .unwrap_or_else(|e| panic!("failed to write artifacts under {}: {e}", dir.display()));
    println!(
        "wrote {} artifact files ({} figures/tables x json+csv+md) under {}",
        paths.len(),
        report.artifacts().len(),
        dir.display()
    );
    for artifact in report.artifacts() {
        println!("  {:<13} {}", artifact.name(), artifact.title());
    }
    println!();
    println!("{}", report.scoreboard());
}
