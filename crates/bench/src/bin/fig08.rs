//! Figure 8: speedup comparison (NextLine, PIF_2K, PIF_32K, ZeroLat-SHIFT, SHIFT).

use shift_bench::artifacts::{fig08_artifact, publish};
use shift_bench::{banner, cores_from_env, scale_from_env, workloads_from_env, HARNESS_SEED};
use shift_sim::experiments::speedup_comparison;

fn main() {
    let scale = scale_from_env();
    let cores = cores_from_env();
    let workloads = workloads_from_env();
    banner("Figure 8 (speedup comparison)", scale, cores, &workloads);
    let result = speedup_comparison(&workloads, cores, scale, HARNESS_SEED);
    println!("{result}");
    println!("(paper geomeans: NextLine 1.09, PIF_2K ~1.10, PIF_32K 1.21, ZeroLat-SHIFT 1.20, SHIFT 1.19)");
    publish(&fig08_artifact(&result));
}
