//! Figure 7: misses covered / uncovered / overpredicted per workload.

use shift_bench::artifacts::{fig07_artifact, publish};
use shift_bench::{banner, cores_from_env, scale_from_env, workloads_from_env, HARNESS_SEED};
use shift_sim::experiments::coverage_breakdown;

fn main() {
    let scale = scale_from_env();
    let cores = cores_from_env();
    let workloads = workloads_from_env();
    banner("Figure 7 (coverage breakdown)", scale, cores, &workloads);
    let result = coverage_breakdown(&workloads, cores, scale, HARNESS_SEED);
    println!("{result}");
    println!(
        "averages: PIF_2K {:.1}%  PIF_32K {:.1}%  SHIFT {:.1}%   (paper: 53% / 92% / 81%)",
        result.average_coverage("PIF_2K") * 100.0,
        result.average_coverage("PIF_32K") * 100.0,
        result.average_coverage("SHIFT") * 100.0
    );
    publish(&fig07_artifact(&result));
}
