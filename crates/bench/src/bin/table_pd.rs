//! §5.6: performance density of SHIFT vs. PIF_32K and PIF_2K per core type.

use shift_bench::artifacts::{publish, table_pd_artifact};
use shift_bench::{banner, cores_from_env, scale_from_env, workloads_from_env, HARNESS_SEED};
use shift_cpu::CoreKind;
use shift_sim::experiments::performance_density;
use shift_sim::PrefetcherConfig;

fn main() {
    let scale = scale_from_env();
    let cores = cores_from_env();
    let workloads = workloads_from_env();
    banner("§5.6 (performance density)", scale, cores, &workloads);
    let result = performance_density(
        &workloads,
        &[
            PrefetcherConfig::pif_2k(),
            PrefetcherConfig::pif_32k(),
            PrefetcherConfig::shift_virtualized(),
        ],
        cores,
        scale,
        HARNESS_SEED,
    );
    println!("{result}");
    for kind in CoreKind::ALL {
        if let Some(improvement) = result.pd_improvement(kind, "SHIFT", "PIF_32K") {
            println!(
                "{kind}: SHIFT improves PD over PIF_32K by {:.1}%",
                (improvement - 1.0) * 100.0
            );
        }
    }
    println!("(paper: +2% Fat-OoO, +16% Lean-OoO, +59% Lean-IO)");
    publish(&table_pd_artifact(&result));
}
