//! Figure 1: speedup as a function of instruction cache misses eliminated.

use shift_bench::artifacts::{fig01_artifact, figure1_fractions, publish};
use shift_bench::{banner, cores_from_env, scale_from_env, workloads_from_env, HARNESS_SEED};
use shift_sim::experiments::probabilistic_elimination;

fn main() {
    let scale = scale_from_env();
    let cores = cores_from_env();
    let workloads = workloads_from_env();
    banner(
        "Figure 1 (speedup vs. misses eliminated)",
        scale,
        cores,
        &workloads,
    );
    let result =
        probabilistic_elimination(&workloads, &figure1_fractions(), cores, scale, HARNESS_SEED);
    println!("{result}");
    println!(
        "perfect-I$ geometric-mean speedup: {:.3} (paper: ~1.31)",
        result.perfect_cache_speedup()
    );
    publish(&fig01_artifact(&result));
}
