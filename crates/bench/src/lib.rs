//! Shared helpers for the benchmark harness that regenerates every table and
//! figure of the SHIFT paper.
//!
//! Each figure/table has a binary (`fig01` … `fig10`, `table1`,
//! `table_storage`, `table_pd`, `table_power`) that runs the corresponding
//! experiment driver from [`shift_sim::experiments`] and prints the same
//! rows/series the paper reports. The Criterion benches in `benches/` measure
//! the cost of the core prefetcher operations and of each experiment at a
//! reduced scale.
//!
//! Binaries accept their scale from the `SHIFT_SCALE` environment variable
//! (`test`, `demo`, or `paper`; default `demo`), the core count from
//! `SHIFT_CORES` (default 16), and the workload subset from `SHIFT_WORKLOADS`
//! (a comma-separated list of case-insensitive substrings of workload names;
//! default: the full Table I suite).
//!
//! Every experiment driver declares its sweep as a
//! [`shift_sim::RunMatrix`], so the simulations behind a figure run in
//! parallel across the host's cores; set `SHIFT_THREADS` to pin the worker
//! count (e.g. `SHIFT_THREADS=1` for a serial reference run — results are
//! bit-identical at any thread count).
//!
//! Beyond printing, every binary publishes its figure as a machine-readable
//! artifact (JSON + CSV + markdown with a paper-reference block) under
//! `target/artifacts/` (override with `SHIFT_ARTIFACTS`) via the builders in
//! [`artifacts`]. The `reproduce` binary regenerates the *whole* paper in
//! one go: [`reproduce::PaperPlan`] merges all experiments into a single
//! deduplicated [`shift_sim::RunMatrix`], so runs shared between figures —
//! baselines above all — simulate exactly once. Sweeps that outgrow one
//! process use its `--shard K/N`, `--queue` (elastic work-queue workers
//! over a shared outcome directory; `SHIFT_QUEUE_TTL` seconds until a dead
//! worker's claims are reclaimed, default 3600), `--reuse OLD_DIR`
//! (incremental re-execution of only a changed plan's delta), and
//! `--merge` modes — see `docs/SWEEP.md` and `docs/OPERATIONS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifacts;
pub mod reproduce;

use shift_sim::matrix::default_threads;
use shift_trace::{presets, Scale, WorkloadSpec};

/// Seed used by all harness binaries so results are reproducible.
pub const HARNESS_SEED: u64 = 0x5417_2013;

/// Reads the experiment scale from `SHIFT_SCALE` (default [`Scale::Demo`]).
pub fn scale_from_env() -> Scale {
    match std::env::var("SHIFT_SCALE")
        .unwrap_or_default()
        .to_lowercase()
        .as_str()
    {
        "test" => Scale::Test,
        "paper" => Scale::Paper,
        "demo" | "" => Scale::Demo,
        other => {
            eprintln!("unknown SHIFT_SCALE `{other}`, using demo");
            Scale::Demo
        }
    }
}

/// Reads the simulated core count from `SHIFT_CORES` (default 16).
pub fn cores_from_env() -> u16 {
    std::env::var("SHIFT_CORES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&c| c > 0)
        .unwrap_or(16)
}

/// Reads the workload subset from `SHIFT_WORKLOADS` (default: full suite).
///
/// The variable is a comma-separated list of case-insensitive substrings
/// matched against workload names, e.g. `SHIFT_WORKLOADS=oltp,web`.
pub fn workloads_from_env() -> Vec<WorkloadSpec> {
    let suite = presets::paper_suite();
    match std::env::var("SHIFT_WORKLOADS") {
        Err(_) => suite,
        Ok(filter) if filter.trim().is_empty() => suite,
        Ok(filter) => {
            let needles: Vec<String> = filter
                .split(',')
                .map(|s| s.trim().to_lowercase())
                .filter(|s| !s.is_empty())
                .collect();
            let selected: Vec<WorkloadSpec> = suite
                .into_iter()
                .filter(|w| {
                    let name = w.name.to_lowercase();
                    needles.iter().any(|n| name.contains(n))
                })
                .collect();
            if selected.is_empty() {
                eprintln!("SHIFT_WORKLOADS matched nothing; using the full suite");
                presets::paper_suite()
            } else {
                selected
            }
        }
    }
}

/// Prints a standard harness banner naming the experiment and its settings.
pub fn banner(experiment: &str, scale: Scale, cores: u16, workloads: &[WorkloadSpec]) {
    println!("=== SHIFT reproduction harness: {experiment} ===");
    println!(
        "scale: {scale:?}, cores: {cores}, sweep threads: {}, workloads: {}",
        default_threads(),
        workloads
            .iter()
            .map(|w| w.name.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_env_gives_full_suite_and_16_cores() {
        // The test environment does not set the variables.
        if std::env::var("SHIFT_WORKLOADS").is_err() {
            assert_eq!(workloads_from_env().len(), 7);
        }
        if std::env::var("SHIFT_CORES").is_err() {
            assert_eq!(cores_from_env(), 16);
        }
    }

    #[test]
    fn seed_is_stable() {
        assert_eq!(HARNESS_SEED, 0x5417_2013);
    }
}
