//! Per-figure artifact builders: each experiment result becomes an
//! [`Artifact`] — JSON result tree, CSV/markdown table, and the paper's
//! reference values with pass/warn tolerance checks.
//!
//! The builders are shared by the per-figure binaries (`fig01` … `table_pd`)
//! and the all-in-one `reproduce` driver, so a figure's artifact is identical
//! no matter which path produced it. Reference tolerances are deliberately
//! generous: the synthetic Table I workloads reproduce the paper's *trends*,
//! not its hardware-measured decimals, so a deviation warns in the scoreboard
//! rather than failing the run.

use std::path::PathBuf;

use shift_cpu::CoreKind;
use shift_report::{Artifact, Check, Reference, Table};
use shift_sim::experiments::{
    CommonalityResult, ConsolidationResult, CoverageBreakdownResult, EliminationResult,
    HistorySweepResult, HybridShootoutResult, LlcTrafficResult, PerformanceDensityResult,
    PowerOverheadResult, SpeedupComparisonResult, StorageTableResult,
};
use shift_sim::{CmpConfig, PrefetcherConfig};
use shift_trace::WorkloadSpec;

/// Directory the figure artifacts are written to: the `SHIFT_ARTIFACTS`
/// environment variable if set, otherwise `target/artifacts`.
pub fn artifacts_dir() -> PathBuf {
    std::env::var("SHIFT_ARTIFACTS")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("target").join("artifacts"))
}

/// Writes an artifact's JSON + CSV + markdown under [`artifacts_dir`] and
/// prints where they went; every figure binary calls this after printing its
/// rows. A write failure warns instead of panicking so a read-only checkout
/// still prints the figure.
pub fn publish(artifact: &Artifact) {
    let dir = artifacts_dir();
    match artifact.write_to(&dir) {
        Ok(_) => println!(
            "artifact: {}/{}.{{json,csv,md}}",
            dir.display(),
            artifact.name()
        ),
        Err(e) => eprintln!(
            "warning: could not write artifact `{}` under {}: {e}",
            artifact.name(),
            dir.display()
        ),
    }
}

/// The Figure 1 x-axis: elimination fractions 0.0, 0.1, …, 1.0.
pub fn figure1_fractions() -> Vec<f64> {
    (0..=10).map(|i| i as f64 / 10.0).collect()
}

/// The Figure 6 x-axis: aggregate history sizes 1K … 512K records plus an
/// unbounded ("inf") point.
pub fn figure6_sizes() -> Vec<Option<usize>> {
    let mut sizes: Vec<Option<usize>> = (0..10).map(|i| Some(1 << (10 + i))).collect();
    sizes.push(None);
    sizes
}

fn pct(x: f64) -> String {
    format!("{:.1}", x * 100.0)
}

/// Figure 1: speedup vs. fraction of instruction misses eliminated.
pub fn fig01_artifact(result: &EliminationResult) -> Artifact {
    let mut headers = vec!["workload".to_owned()];
    if let Some(first) = result.series.first() {
        headers.extend(
            first
                .points
                .iter()
                .map(|(frac, _)| format!("{:.0}%", frac * 100.0)),
        );
    }
    let mut table = Table::new(headers);
    for series in &result.series {
        let mut row = vec![series.workload.clone()];
        row.extend(series.points.iter().map(|(_, s)| format!("{s:.3}")));
        table.push_row(row);
    }
    let mut geomean_row = vec!["Geo. Mean".to_owned()];
    geomean_row.extend(result.geomean.iter().map(|(_, s)| format!("{s:.3}")));
    table.push_row(geomean_row);

    Artifact::new(
        "fig01",
        "Figure 1: speedup vs. instruction cache misses eliminated",
        result,
        table,
    )
    .with_reference(Reference::new(
        "perfect-I$ geomean speedup",
        result.perfect_cache_speedup(),
        Check::near(1.31, 0.25),
    ))
}

fn pd_table(result: &PerformanceDensityResult) -> Table {
    let mut table = Table::new(["core", "prefetcher", "speedup", "rel_area", "pd_ratio"]);
    for point in &result.points {
        table.push_row([
            point.core_kind.to_string(),
            point.prefetcher.clone(),
            format!("{:.3}", point.speedup),
            format!("{:.3}", point.relative_area),
            format!("{:.3}", point.pd_ratio()),
        ]);
    }
    table
}

/// Figure 2: PIF in the relative-performance / relative-area plane per core
/// type.
pub fn fig02_artifact(result: &PerformanceDensityResult) -> Artifact {
    let mut artifact = Artifact::new(
        "fig02",
        "Figure 2: PIF performance density by core type",
        result,
        pd_table(result),
    );
    if let Some(point) = result.point(CoreKind::LeanIO, "PIF_32K") {
        // The paper's motivating claim: against a lean in-order core, PIF's
        // per-core storage lands in the performance-density *loss* region.
        artifact = artifact.with_reference(Reference::new(
            "PIF_32K PD ratio, Lean-IO (loss region)",
            point.pd_ratio(),
            Check::at_most(1.0),
        ));
    }
    if let (Some(io), Some(fat)) = (
        result.point(CoreKind::LeanIO, "PIF_32K"),
        result.point(CoreKind::FatOoO, "PIF_32K"),
    ) {
        artifact = artifact.with_reference(Reference::new(
            "PIF_32K area penalty, Lean-IO minus Fat-OoO",
            io.relative_area - fat.relative_area,
            Check::at_least(0.0),
        ));
    }
    artifact
}

/// Figure 3: fraction of instruction cache accesses within common temporal
/// streams.
pub fn fig03_artifact(result: &CommonalityResult) -> Artifact {
    let mut table = Table::new(["workload", "common_pct"]);
    for row in &result.rows {
        table.push_row([row.workload.clone(), pct(row.common_fraction)]);
    }
    table.push_row(["Average".to_owned(), pct(result.mean())]);
    Artifact::new(
        "fig03",
        "Figure 3: instruction cache accesses within common temporal streams",
        result,
        table,
    )
    .with_reference(Reference::new(
        "average cross-core commonality",
        result.mean(),
        Check::at_least(0.90),
    ))
}

/// Figure 6: miss coverage vs. aggregate history size, SHIFT vs. PIF.
pub fn fig06_artifact(result: &HistorySweepResult) -> Artifact {
    let mut table = Table::new(["aggregate_records", "shift_pct", "pif_pct"]);
    for point in &result.points {
        let label = match point.aggregate_records {
            Some(n) if n % 1024 == 0 => format!("{}K", n / 1024),
            Some(n) => n.to_string(),
            None => "inf".to_owned(),
        };
        table.push_row([label, pct(point.shift_coverage), pct(point.pif_coverage)]);
    }
    let min_margin = result
        .points
        .iter()
        .map(|p| p.shift_coverage - p.pif_coverage)
        .fold(f64::INFINITY, f64::min);
    let growth = match (result.points.first(), result.points.last()) {
        (Some(first), Some(last)) => last.shift_coverage - first.shift_coverage,
        _ => 0.0,
    };
    Artifact::new(
        "fig06",
        "Figure 6: L1-I miss coverage vs. aggregate history size",
        result,
        table,
    )
    .with_reference(Reference::new(
        "min SHIFT-over-PIF coverage margin",
        min_margin,
        Check::at_least(-0.02),
    ))
    .with_reference(Reference::new(
        "SHIFT coverage growth, smallest to largest history",
        growth,
        Check::at_least(0.0),
    ))
}

/// Figure 7: misses covered / uncovered / overpredicted per workload.
pub fn fig07_artifact(result: &CoverageBreakdownResult) -> Artifact {
    let mut table = Table::new([
        "workload",
        "prefetcher",
        "covered_pct",
        "uncovered_pct",
        "overpredicted_pct",
    ]);
    for row in &result.rows {
        for cell in &row.cells {
            table.push_row([
                row.workload.clone(),
                cell.prefetcher.clone(),
                pct(cell.coverage.coverage()),
                pct(1.0 - cell.coverage.coverage()),
                pct(cell.coverage.overprediction()),
            ]);
        }
    }
    let mut artifact = Artifact::new(
        "fig07",
        "Figure 7: L1-I misses covered / uncovered / overpredicted",
        result,
        table,
    );
    for (label, paper) in [("PIF_2K", 0.53), ("PIF_32K", 0.92), ("SHIFT", 0.81)] {
        artifact = artifact.with_reference(Reference::new(
            format!("average coverage, {label}"),
            result.average_coverage(label),
            Check::near(paper, 0.30),
        ));
    }
    artifact
}

/// Figure 8: speedups of the five prefetcher configurations over the
/// no-prefetch baseline.
pub fn fig08_artifact(result: &SpeedupComparisonResult) -> Artifact {
    let mut headers = vec!["workload".to_owned()];
    headers.extend(result.geomean.iter().map(|(label, _)| label.clone()));
    let mut table = Table::new(headers);
    for row in &result.rows {
        let mut cells = vec![row.workload.clone()];
        cells.extend(row.speedups.iter().map(|(_, s)| format!("{s:.3}")));
        table.push_row(cells);
    }
    let mut geomean_row = vec!["Geo. Mean".to_owned()];
    geomean_row.extend(result.geomean.iter().map(|(_, s)| format!("{s:.3}")));
    table.push_row(geomean_row);

    let mut artifact = Artifact::new(
        "fig08",
        "Figure 8: speedup over the no-prefetch baseline",
        result,
        table,
    );
    for (label, paper) in [
        ("NextLine", 1.09),
        ("PIF_2K", 1.10),
        ("PIF_32K", 1.21),
        ("ZeroLat-SHIFT", 1.20),
        ("SHIFT", 1.19),
    ] {
        if let Some(actual) = result.geomean_of(label) {
            artifact = artifact.with_reference(Reference::new(
                format!("geomean speedup, {label}"),
                actual,
                Check::near(paper, 0.15),
            ));
        }
    }
    artifact
}

/// Figure 9: extra LLC traffic introduced by SHIFT.
pub fn fig09_artifact(result: &LlcTrafficResult) -> Artifact {
    let mut table = Table::new([
        "workload",
        "log_read_pct",
        "log_write_pct",
        "discard_pct",
        "index_update_pct",
    ]);
    for (workload, row) in &result.rows {
        table.push_row([
            workload.clone(),
            pct(row.log_read),
            pct(row.log_write),
            pct(row.discard),
            pct(row.index_update),
        ]);
    }
    table.push_row([
        "Average".to_owned(),
        pct(result.average(|r| r.log_read)),
        pct(result.average(|r| r.log_write)),
        pct(result.average(|r| r.discard)),
        pct(result.average(|r| r.index_update)),
    ]);
    Artifact::new(
        "fig09",
        "Figure 9: LLC traffic increase over baseline",
        result,
        table,
    )
    .with_reference(Reference::new(
        "average history read+write traffic fraction",
        result.average(|r| r.log_read + r.log_write),
        Check::near(0.06, 1.5),
    ))
    .with_reference(Reference::new(
        "average discarded-prefetch traffic fraction",
        result.average(|r| r.discard),
        Check::near(0.07, 1.5),
    ))
    .with_reference(Reference::new(
        "average data-array traffic overhead (modest)",
        result.average(|r| r.total_data_overhead()),
        Check::at_most(0.40),
    ))
}

/// Figure 10: speedup under workload consolidation.
pub fn fig10_artifact(result: &ConsolidationResult) -> Artifact {
    let mut table = Table::new(["prefetcher", "speedup"]);
    for (label, speedup) in &result.speedups {
        table.push_row([label.clone(), format!("{speedup:.3}")]);
    }
    let mut artifact = Artifact::new(
        "fig10",
        format!(
            "Figure 10: speedup under consolidation ({})",
            result.workloads.join(" + ")
        ),
        result,
        table,
    );
    for (label, paper) in [("SHIFT", 1.22), ("ZeroLat-SHIFT", 1.25)] {
        if let Some(actual) = result.speedup_of(label) {
            artifact = artifact.with_reference(Reference::new(
                format!("consolidated speedup, {label}"),
                actual,
                Check::near(paper, 0.15),
            ));
        }
    }
    artifact
}

/// Table I: system and application parameters actually used by the runs.
pub fn table1_artifact(cores: u16, workloads: &[WorkloadSpec]) -> Artifact {
    let cfg = CmpConfig::micro13(cores, PrefetcherConfig::shift_virtualized());
    let mut table = Table::new(["parameter", "value"]);
    table.push_row([
        "Processing nodes".to_owned(),
        format!("{} x {} @ 2 GHz", cfg.cores, cfg.core_kind),
    ]);
    table.push_row([
        "L1-I cache".to_owned(),
        format!(
            "{} KB, {}-way, {} B blocks, {}-cycle load-to-use",
            cfg.l1i.capacity_bytes / 1024,
            cfg.l1i.ways,
            cfg.l1i.block_bytes,
            cfg.l1i.hit_latency
        ),
    ]);
    table.push_row([
        "L1-D cache".to_owned(),
        format!(
            "{} KB, {}-way, {} B blocks, {}-cycle load-to-use",
            cfg.l1d.capacity_bytes / 1024,
            cfg.l1d.ways,
            cfg.l1d.block_bytes,
            cfg.l1d.hit_latency
        ),
    ]);
    table.push_row([
        "L2 NUCA LLC".to_owned(),
        format!(
            "{} MB total, {}-way, {} banks, {}-cycle bank hit",
            cfg.llc.total_bytes / (1024 * 1024),
            cfg.llc.ways,
            cfg.llc.banks,
            cfg.llc.hit_latency
        ),
    ]);
    table.push_row([
        "Main memory".to_owned(),
        format!("{} cycles", cfg.llc.memory_latency),
    ]);
    table.push_row([
        "Interconnect".to_owned(),
        format!(
            "{}x{} 2D mesh, {} cycles/hop",
            cfg.mesh.cols, cfg.mesh.rows, cfg.mesh.hop_latency
        ),
    ]);
    for workload in workloads {
        table.push_row([
            format!("Workload: {}", workload.name),
            format!(
                "~{:.1} KB instruction footprint, {} request types, {} calls/request",
                workload.expected_footprint_blocks() * 64.0 / 1024.0,
                workload.request_types,
                workload.calls_per_request
            ),
        ]);
    }
    Artifact::new(
        "table1",
        "Table I: system and application parameters",
        &cfg,
        table,
    )
}

/// Beyond the paper: the hybrid-prefetcher shootout — composed designs next
/// to the paper's standalone suite, plus coverage degradation under a
/// throttled history port.
pub fn hybrid_lab_artifact(result: &HybridShootoutResult) -> Artifact {
    let mut table = Table::new([
        "design",
        "hybrid",
        "coverage_pct",
        "overpred_pct",
        "discard_pct",
        "speedup",
        "added_sram_kib",
    ]);
    for row in &result.rows {
        table.push_row([
            row.label.clone(),
            if row.hybrid { "yes" } else { "no" }.to_owned(),
            pct(row.coverage),
            pct(row.overprediction),
            pct(row.discard_ratio),
            format!("{:.3}", row.speedup),
            format!("{:.1}", row.storage_kib),
        ]);
    }
    for point in &result.degradation {
        table.push_row([
            format!("SHIFT@bw{}", point.candidates_per_window),
            "yes".to_owned(),
            pct(point.coverage),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
        ]);
    }
    Artifact::new(
        "hybrid_lab",
        "Beyond the paper: hybrid designs vs the standalone suite",
        result,
        table,
    )
    .with_reference(Reference::new(
        "hybrid designs in the shootout",
        result.hybrid_rows().count() as f64,
        Check::at_least(3.0),
    ))
    .with_reference(Reference::new(
        "best hybrid coverage win over SHIFT at equal-or-lower storage",
        result.best_hybrid_coverage_win(),
        Check::at_least(0.0),
    ))
    .with_reference(Reference::new(
        "hybrid degradation monotonicity violations",
        result.degradation_monotonicity_violations() as f64,
        Check::at_most(0.0),
    ))
    .with_reference(Reference::new(
        "hybrid coverage lost, widest to narrowest history port",
        result.degradation_span(),
        Check::at_least(0.0),
    ))
}

/// §5.6: performance density of SHIFT vs. PIF per core type.
pub fn table_pd_artifact(result: &PerformanceDensityResult) -> Artifact {
    let mut artifact = Artifact::new(
        "table_pd",
        "§5.6: performance density by core type",
        result,
        pd_table(result),
    );
    for (kind, paper) in [
        (CoreKind::FatOoO, 1.02),
        (CoreKind::LeanOoO, 1.16),
        (CoreKind::LeanIO, 1.59),
    ] {
        if let Some(improvement) = result.pd_improvement(kind, "SHIFT", "PIF_32K") {
            artifact = artifact.with_reference(Reference::new(
                format!("SHIFT/PIF_32K PD improvement, {kind}"),
                improvement,
                Check::near(paper, 0.25),
            ));
        }
    }
    artifact
}

/// §5.7: power overhead of SHIFT's history and index activity.
pub fn table_power_artifact(result: &PowerOverheadResult) -> Artifact {
    let mut table = Table::new([
        "workload",
        "llc_data_mw",
        "llc_tag_mw",
        "noc_mw",
        "total_mw",
    ]);
    for (workload, row) in &result.rows {
        table.push_row([
            workload.clone(),
            format!("{:.2}", row.breakdown.llc_data_mw),
            format!("{:.2}", row.breakdown.llc_tag_mw),
            format!("{:.2}", row.breakdown.noc_mw),
            format!("{:.2}", row.breakdown.total_mw()),
        ]);
    }
    Artifact::new("table_power", "§5.7: SHIFT power overhead", result, table).with_reference(
        Reference::new(
            "worst-case total overhead (mW)",
            result.max_total_mw(),
            Check::at_most(150.0),
        ),
    )
}

/// §5.1: storage cost of each prefetcher design.
pub fn table_storage_artifact(result: &StorageTableResult) -> Artifact {
    let mut table = Table::new([
        "design",
        "per_core_kib",
        "llc_data_kib",
        "llc_tag_kib",
        "added_kib",
        "area_mm2",
    ]);
    for row in &result.rows {
        table.push_row([
            row.design.clone(),
            format!("{:.1}", row.storage.per_core_bytes as f64 / 1024.0),
            format!("{:.1}", row.storage.llc_data_bytes as f64 / 1024.0),
            format!("{:.1}", row.storage.llc_tag_bytes as f64 / 1024.0),
            format!("{:.1}", row.added_sram_kib),
            format!("{:.2}", row.added_area_mm2),
        ]);
    }
    let mut artifact = Artifact::new(
        "table_storage",
        format!("§5.1: storage cost for a {}-core CMP", result.cores),
        result,
        table,
    );
    if let Some(ratio) = result.sram_ratio("PIF_32K", "SHIFT") {
        artifact = artifact.with_reference(Reference::new(
            "PIF_32K / SHIFT added-SRAM ratio",
            ratio,
            Check::near(14.0, 0.30),
        ));
    }
    if let Some(pif32) = result.row("PIF_32K") {
        artifact = artifact.with_reference(Reference::new(
            "PIF_32K per-core storage (KiB)",
            pif32.storage.per_core_bytes as f64 / 1024.0,
            Check::near(213.0, 0.05),
        ));
    }
    artifact
}

#[cfg(test)]
mod tests {
    use super::*;
    use shift_sim::experiments;
    use shift_trace::{presets, Scale};

    #[test]
    fn figure1_axes_match_the_paper() {
        let fractions = figure1_fractions();
        assert_eq!(fractions.len(), 11);
        assert_eq!(fractions[0], 0.0);
        assert_eq!(fractions[10], 1.0);
        let sizes = figure6_sizes();
        assert_eq!(sizes.len(), 11);
        assert_eq!(sizes[0], Some(1024));
        assert_eq!(sizes[9], Some(512 * 1024));
        assert_eq!(sizes[10], None);
    }

    #[test]
    fn storage_artifact_references_pass_at_paper_parameters() {
        let result = experiments::storage_table(16, 8 * 1024 * 1024 / 64);
        let artifact = table_storage_artifact(&result);
        assert_eq!(artifact.name(), "table_storage");
        assert_eq!(artifact.references().len(), 2);
        for reference in artifact.references() {
            assert_eq!(
                reference.verdict(),
                shift_report::Verdict::Pass,
                "{} should reproduce exactly (pure arithmetic)",
                reference.metric
            );
        }
        assert!(artifact.table().rows().len() == 3);
    }

    #[test]
    fn fig10_artifact_carries_reference_block() {
        let workloads = vec![
            presets::tiny().with_region_index(0),
            presets::tiny().with_region_index(1),
        ];
        let result = experiments::consolidation(
            &workloads,
            &[shift_sim::PrefetcherConfig::shift_virtualized()],
            4,
            Scale::Test,
            23,
        );
        let artifact = fig10_artifact(&result);
        assert_eq!(artifact.references().len(), 1);
        let json = artifact.to_json();
        assert!(json.contains("\"reference\""));
        assert!(json.contains("consolidated speedup, SHIFT"));
    }

    #[test]
    fn hybrid_lab_artifact_carries_at_least_three_hybrid_references() {
        let result = experiments::hybrid_shootout(&[presets::tiny()], 4, Scale::Test, 0x60_1DEA);
        let artifact = hybrid_lab_artifact(&result);
        assert_eq!(artifact.name(), "hybrid_lab");
        // The scoreboard renders one row per reference: the hybrid lab must
        // contribute at least three.
        assert!(artifact.references().len() >= 3);
        let hybrid_metric_rows = artifact
            .references()
            .iter()
            .filter(|r| r.metric.contains("hybrid"))
            .count();
        assert!(hybrid_metric_rows >= 3, "{hybrid_metric_rows} hybrid rows");
        // Design rows + one row per degradation point.
        assert_eq!(
            artifact.table().rows().len(),
            result.rows.len() + result.degradation.len()
        );
        for reference in artifact.references() {
            assert_eq!(
                reference.verdict(),
                shift_report::Verdict::Pass,
                "{} should pass at test scale",
                reference.metric
            );
        }
    }

    #[test]
    fn table1_artifact_lists_system_and_workload_rows() {
        let artifact = table1_artifact(16, &presets::paper_suite());
        // 6 system parameter rows + 7 workload rows.
        assert_eq!(artifact.table().rows().len(), 13);
        assert!(artifact.references().is_empty());
    }
}
