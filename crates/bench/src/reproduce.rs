//! The all-in-one reproduction driver: every figure and table of the paper
//! planned into **one** [`RunMatrix`], executed once, and fanned back out to
//! per-figure artifacts plus a reference scoreboard.
//!
//! Planning the whole evaluation into a single matrix is what makes the
//! reproduction cheap: runs shared between figures deduplicate by key, so
//! the no-prefetch baselines (used by Figures 1, 2, 8 and §5.6), the
//! PIF/SHIFT runs shared by Figures 7, 8, 9 and §5.7, and the PIF_32K column
//! shared by Figure 2 and §5.6 all simulate exactly once for the whole
//! paper instead of once per figure. [`PaperPlan::saved_by_dedup`] reports
//! how many simulations the sharing avoided.
//!
//! The Figure 3 commonality study is not made of [`Simulation`] runs (it
//! measures raw trace streams), so it fans out through the same worker pool
//! separately, and the §5.1 storage table and Table I are pure arithmetic.
//!
//! The plan and the artifact derivation are deliberately split
//! ([`PaperPlan::plan`] / [`PaperPlan::collect`]): between them the planned
//! matrix can execute in-process ([`PaperPlan::execute`]), as `K/N` shards
//! on many machines, as an elastic work-queue drain by any number of
//! heterogeneous hosts sharing one outcome directory, or incrementally on
//! top of a cache of an earlier sweep's outcomes — with the directories
//! merged back through a [`shift_sim::RunStore`]. The `reproduce` binary's
//! `--shard` / `--queue` / `--outcomes` / `--reuse` / `--merge` flags drive
//! exactly that, and the merged scoreboard is byte-identical to the
//! single-process one (locked by the `sharded_reproduce` and
//! `queue_reproduce` integration tests).
//!
//! [`Simulation`]: shift_sim::Simulation

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};
use shift_report::{scoreboard, Artifact};
use shift_sim::experiments::{
    commonality, storage_table, ConsolidationPlan, CoverageBreakdownPlan, EliminationPlan,
    HistorySweepPlan, HybridShootoutPlan, LlcTrafficPlan, PerformanceDensityPlan,
    PowerOverheadPlan, SpeedupComparisonPlan,
};
use shift_sim::{CmpConfig, Execution, PrefetcherConfig, RunMatrix};
use shift_trace::{presets, Scale, WorkloadSpec};

use crate::artifacts::{
    fig01_artifact, fig02_artifact, fig03_artifact, fig06_artifact, fig07_artifact, fig08_artifact,
    fig09_artifact, fig10_artifact, figure1_fractions, figure6_sizes, hybrid_lab_artifact,
    table1_artifact, table_pd_artifact, table_power_artifact, table_storage_artifact,
};
use crate::{cores_from_env, scale_from_env, workloads_from_env, HARNESS_SEED};

/// Everything that parameterizes a whole-paper reproduction run.
#[derive(Clone, Debug)]
pub struct ReproduceSettings {
    /// Simulated core count (16 in the paper).
    pub cores: u16,
    /// Trace length per core.
    pub scale: Scale,
    /// Seed for all runs.
    pub seed: u64,
    /// The standalone workload suite (Figures 1–9, §5.6, §5.7).
    pub workloads: Vec<WorkloadSpec>,
}

impl ReproduceSettings {
    /// Settings from the harness environment variables (`SHIFT_SCALE`,
    /// `SHIFT_CORES`, `SHIFT_WORKLOADS`) with the fixed harness seed.
    pub fn from_env() -> Self {
        ReproduceSettings {
            cores: cores_from_env(),
            scale: scale_from_env(),
            seed: HARNESS_SEED,
            workloads: workloads_from_env(),
        }
    }

    /// Explicit settings (used by tests at reduced scale).
    pub fn new(cores: u16, scale: Scale, seed: u64, workloads: Vec<WorkloadSpec>) -> Self {
        assert!(cores >= 2, "the commonality study needs at least 2 cores");
        assert!(!workloads.is_empty(), "need at least one workload");
        ReproduceSettings {
            cores,
            scale,
            seed,
            workloads,
        }
    }
}

/// A wire-serializable sweep submission: [`ReproduceSettings`] with the
/// workloads referenced *by preset name* instead of by their full parameter
/// blocks, so a client can submit a plan as a small JSON document and the
/// server resolves it against the same catalog `reproduce` itself uses.
///
/// Naming (rather than inlining) the workload parameters is a correctness
/// feature for the serving path: two clients asking for "OLTP DB2" always
/// resolve to byte-identical [`WorkloadSpec`]s, so their planned matrices
/// share [`RunKeyId`](shift_sim::RunKeyId)s and the outcome cache
/// deduplicates across submissions.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PlanSpec {
    /// Simulated core count (16 in the paper; at least 2).
    pub cores: u16,
    /// Trace length per core.
    pub scale: Scale,
    /// Seed for all runs.
    pub seed: u64,
    /// Preset workload names (case-insensitive; empty means the full paper
    /// suite). See [`PlanSpec::catalog`].
    pub workloads: Vec<String>,
}

/// Why a [`PlanSpec`] could not be resolved into [`ReproduceSettings`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlanError {
    /// Fewer than two cores (the commonality study needs at least 2).
    TooFewCores {
        /// The rejected core count.
        cores: u16,
    },
    /// A workload name matched nothing in the catalog.
    UnknownWorkload {
        /// The unmatched name as submitted.
        name: String,
        /// Every name the catalog does know, for the error message.
        known: Vec<String>,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::TooFewCores { cores } => {
                write!(f, "plan needs at least 2 cores, got {cores}")
            }
            PlanError::UnknownWorkload { name, known } => {
                write!(f, "unknown workload {name:?}; known: {}", known.join(", "))
            }
        }
    }
}

impl std::error::Error for PlanError {}

impl PlanSpec {
    /// The names a submission may reference: the paper suite plus the
    /// test-scale `Tiny` workload (so smoke submissions stay cheap).
    pub fn catalog() -> Vec<WorkloadSpec> {
        let mut suite = presets::paper_suite();
        suite.push(presets::tiny());
        suite
    }

    /// A spec naming the given settings' workloads (the inverse of
    /// [`resolve`](PlanSpec::resolve) for catalog workloads).
    pub fn from_settings(settings: &ReproduceSettings) -> Self {
        PlanSpec {
            cores: settings.cores,
            scale: settings.scale,
            seed: settings.seed,
            workloads: settings.workloads.iter().map(|w| w.name.clone()).collect(),
        }
    }

    /// Resolves the named workloads against the catalog into full
    /// [`ReproduceSettings`]. Matching is case-insensitive but otherwise
    /// exact; an empty workload list selects the whole paper suite.
    ///
    /// # Errors
    ///
    /// [`PlanError::TooFewCores`] if `cores < 2`;
    /// [`PlanError::UnknownWorkload`] naming the first unmatched workload.
    pub fn resolve(&self) -> Result<ReproduceSettings, PlanError> {
        if self.cores < 2 {
            return Err(PlanError::TooFewCores { cores: self.cores });
        }
        let catalog = Self::catalog();
        let workloads = if self.workloads.is_empty() {
            presets::paper_suite()
        } else {
            self.workloads
                .iter()
                .map(|name| {
                    catalog
                        .iter()
                        .find(|w| w.name.eq_ignore_ascii_case(name))
                        .cloned()
                        .ok_or_else(|| PlanError::UnknownWorkload {
                            name: name.clone(),
                            known: catalog.iter().map(|w| w.name.clone()).collect(),
                        })
                })
                .collect::<Result<Vec<_>, _>>()?
        };
        Ok(ReproduceSettings::new(
            self.cores, self.scale, self.seed, workloads,
        ))
    }
}

/// The planned whole-paper evaluation: one deduplicated [`RunMatrix`] plus
/// each figure's handles into it.
#[derive(Debug)]
pub struct PaperPlan {
    settings: ReproduceSettings,
    matrix: RunMatrix,
    naive_runs: usize,
    fig01: EliminationPlan,
    fig02: PerformanceDensityPlan,
    fig06: HistorySweepPlan,
    fig07: CoverageBreakdownPlan,
    fig08: SpeedupComparisonPlan,
    fig09: LlcTrafficPlan,
    fig10: ConsolidationPlan,
    table_pd: PerformanceDensityPlan,
    table_power: PowerOverheadPlan,
    hybrid: HybridShootoutPlan,
}

impl PaperPlan {
    /// Plans all ten experiments into one matrix.
    pub fn plan(settings: ReproduceSettings) -> Self {
        assert!(
            settings.cores >= 2,
            "the commonality study needs at least 2 cores"
        );
        let ReproduceSettings {
            cores,
            scale,
            seed,
            ref workloads,
        } = settings;
        let mut matrix = RunMatrix::new();
        let mut naive_runs = 0usize;

        let fig01 = Self::plan_both(&mut matrix, &mut naive_runs, |m| {
            EliminationPlan::plan(m, workloads, &figure1_fractions(), cores, scale, seed)
        });
        let fig02 = Self::plan_both(&mut matrix, &mut naive_runs, |m| {
            PerformanceDensityPlan::plan(
                m,
                workloads,
                &[PrefetcherConfig::pif_32k()],
                cores,
                scale,
                seed,
            )
        });
        let fig06 = Self::plan_both(&mut matrix, &mut naive_runs, |m| {
            HistorySweepPlan::plan(m, workloads, &figure6_sizes(), cores, scale, seed)
        });

        // The PIF_2K / PIF_32K / SHIFT trio is shared verbatim by Figure 7
        // and the §5.6 performance-density table, so its runs collapse in
        // the merged matrix.
        let pif_vs_shift = [
            PrefetcherConfig::pif_2k(),
            PrefetcherConfig::pif_32k(),
            PrefetcherConfig::shift_virtualized(),
        ];
        let fig07 = Self::plan_both(&mut matrix, &mut naive_runs, |m| {
            CoverageBreakdownPlan::plan(m, workloads, &pif_vs_shift, cores, scale, seed)
        });
        let fig08 = Self::plan_both(&mut matrix, &mut naive_runs, |m| {
            SpeedupComparisonPlan::plan(
                m,
                workloads,
                &PrefetcherConfig::figure8_suite(),
                cores,
                scale,
                seed,
            )
        });
        let fig09 = Self::plan_both(&mut matrix, &mut naive_runs, |m| {
            LlcTrafficPlan::plan(m, workloads, cores, scale, seed)
        });

        let consolidation_mix = Self::consolidation_mix(&settings);
        let fig10 = Self::plan_both(&mut matrix, &mut naive_runs, |m| {
            ConsolidationPlan::plan(
                m,
                &consolidation_mix,
                &PrefetcherConfig::figure8_suite(),
                cores,
                scale,
                seed,
            )
        });

        let table_pd = Self::plan_both(&mut matrix, &mut naive_runs, |m| {
            PerformanceDensityPlan::plan(m, workloads, &pif_vs_shift, cores, scale, seed)
        });
        let table_power = Self::plan_both(&mut matrix, &mut naive_runs, |m| {
            PowerOverheadPlan::plan(m, workloads, cores, scale, seed)
        });

        // Beyond the paper: the hybrid shootout. Its baselines and its
        // NextLine/PIF_32K/SHIFT comparison columns are figure 7/8/9 runs,
        // so only the hybrid designs and the throttled sweep add keys.
        let hybrid = Self::plan_both(&mut matrix, &mut naive_runs, |m| {
            HybridShootoutPlan::plan(m, workloads, cores, scale, seed)
        });

        PaperPlan {
            settings,
            matrix,
            naive_runs,
            fig01,
            fig02,
            fig06,
            fig07,
            fig08,
            fig09,
            fig10,
            table_pd,
            table_power,
            hybrid,
        }
    }

    /// The consolidation mix: the paper's four-workload §5.5 suite when the
    /// core count divides by four, otherwise the largest prefix of the suite
    /// that divides the core count evenly (keeps reduced-scale and odd
    /// core-count runs valid — `ConsolidationSpec::even_split` requires it).
    fn consolidation_mix(settings: &ReproduceSettings) -> Vec<WorkloadSpec> {
        let suite = presets::consolidation_suite();
        let cores = settings.cores as usize;
        let mut n = suite.len().min(cores);
        while n > 1 && !cores.is_multiple_of(n) {
            n -= 1;
        }
        suite.into_iter().take(n).collect()
    }

    /// Plans one figure twice from the same closure: once into a scratch
    /// matrix (whose size accumulates into `naive_runs`, the without-sharing
    /// total) and once into the merged matrix. Using a single closure for
    /// both keeps the dedup accounting incapable of drifting from the real
    /// plan.
    fn plan_both<P>(
        matrix: &mut RunMatrix,
        naive_runs: &mut usize,
        plan: impl Fn(&mut RunMatrix) -> P,
    ) -> P {
        let mut scratch = RunMatrix::new();
        let _ = plan(&mut scratch);
        *naive_runs += scratch.len();
        plan(matrix)
    }

    /// Number of distinct simulations the whole paper needs (after
    /// cross-figure deduplication).
    pub fn run_count(&self) -> usize {
        self.matrix.len()
    }

    /// Number of simulations avoided by cross-figure sharing: the sum of
    /// each figure's standalone matrix size minus the merged matrix size.
    pub fn saved_by_dedup(&self) -> usize {
        self.naive_runs - self.matrix.len()
    }

    /// The merged matrix (exposed for tests asserting the key count).
    pub fn matrix(&self) -> &RunMatrix {
        &self.matrix
    }

    /// Executes the matrix (plus the commonality study) in-process and
    /// derives every artifact: the trivial single-host path through the
    /// plan / execute / merge pipeline.
    pub fn execute(self) -> PaperReport {
        let outcomes = Execution::new(&self.matrix)
            .run()
            .expect("in-memory execution is infallible")
            .into_outcomes();
        self.collect(&outcomes)
    }

    /// Derives every artifact from already-executed outcomes — in-process
    /// ones or a [`RunStore`](shift_sim::RunStore) merge of shard
    /// directories; the collect phases cannot tell the difference.
    ///
    /// The commonality study (Figure 3) measures raw trace streams rather
    /// than simulations, and the §5.1/Table I entries are pure arithmetic,
    /// so all three recompute locally on whichever host merges.
    ///
    /// # Panics
    ///
    /// Panics if `outcomes` were executed from a different matrix than this
    /// plan's (the [`RunHandle`](shift_sim::RunHandle) invariant).
    pub fn collect(self, outcomes: &shift_sim::RunOutcomes) -> PaperReport {
        let settings = &self.settings;
        let fig03_result = commonality(
            &settings.workloads,
            settings.cores,
            settings.scale,
            settings.seed,
        );
        let storage_result = storage_table(
            settings.cores,
            CmpConfig::micro13(settings.cores, PrefetcherConfig::None)
                .llc
                .capacity_blocks(),
        );

        let artifacts = vec![
            fig01_artifact(&self.fig01.collect(outcomes)),
            fig02_artifact(&self.fig02.collect(outcomes)),
            fig03_artifact(&fig03_result),
            fig06_artifact(&self.fig06.collect(outcomes)),
            fig07_artifact(&self.fig07.collect(outcomes)),
            fig08_artifact(&self.fig08.collect(outcomes)),
            fig09_artifact(&self.fig09.collect(outcomes)),
            fig10_artifact(&self.fig10.collect(outcomes)),
            table1_artifact(settings.cores, &settings.workloads),
            table_pd_artifact(&self.table_pd.collect(outcomes)),
            table_power_artifact(&self.table_power.collect(outcomes)),
            table_storage_artifact(&storage_result),
            hybrid_lab_artifact(&self.hybrid.collect(outcomes)),
        ];
        PaperReport { artifacts }
    }
}

/// Every artifact of the reproduced paper, ready to write and score.
#[derive(Debug)]
pub struct PaperReport {
    artifacts: Vec<Artifact>,
}

impl PaperReport {
    /// All artifacts, in paper order.
    pub fn artifacts(&self) -> &[Artifact] {
        &self.artifacts
    }

    /// Finds an artifact by name (e.g. `"fig08"`).
    pub fn artifact(&self, name: &str) -> Option<&Artifact> {
        self.artifacts.iter().find(|a| a.name() == name)
    }

    /// Writes every artifact's JSON + CSV + markdown under `dir` and returns
    /// the written paths.
    pub fn write_to(&self, dir: impl AsRef<Path>) -> io::Result<Vec<PathBuf>> {
        let dir = dir.as_ref();
        let mut paths = Vec::new();
        for artifact in &self.artifacts {
            paths.extend(artifact.write_to(dir)?);
        }
        Ok(paths)
    }

    /// The final reference scoreboard (markdown, terminal-friendly).
    pub fn scoreboard(&self) -> String {
        scoreboard(&self.artifacts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_settings() -> ReproduceSettings {
        ReproduceSettings::new(
            4,
            Scale::Test,
            7,
            vec![
                presets::tiny().with_region_index(0),
                presets::tiny().with_region_index(1),
            ],
        )
    }

    #[test]
    fn shared_runs_simulate_once_across_figures() {
        let plan = PaperPlan::plan(tiny_settings());
        // Cross-figure sharing must collapse a substantial number of runs:
        // the baselines shared by Figures 1/2/8/§5.6, the SHIFT runs shared
        // by Figures 7/8/9/§5.7, and the PIF columns shared by Figures 2/7/8
        // and §5.6.
        assert!(
            plan.saved_by_dedup() > 0,
            "the merged matrix must be smaller than the per-figure sum"
        );
        assert_eq!(plan.run_count(), plan.matrix().keys().len());

        // The strongest form of the claim, on exact key counts: adding the
        // Figure 9 and §5.7 plans (SHIFT per workload — all shared with
        // Figure 8) to a matrix that already holds Figure 8 adds no keys.
        let settings = tiny_settings();
        let mut matrix = RunMatrix::new();
        let _ = SpeedupComparisonPlan::plan(
            &mut matrix,
            &settings.workloads,
            &PrefetcherConfig::figure8_suite(),
            settings.cores,
            settings.scale,
            settings.seed,
        );
        let after_fig08 = matrix.len();
        let _ = LlcTrafficPlan::plan(
            &mut matrix,
            &settings.workloads,
            settings.cores,
            settings.scale,
            settings.seed,
        );
        let _ = PowerOverheadPlan::plan(
            &mut matrix,
            &settings.workloads,
            settings.cores,
            settings.scale,
            settings.seed,
        );
        assert_eq!(
            matrix.len(),
            after_fig08,
            "fig09/§5.7 SHIFT runs must dedup onto fig08's SHIFT column"
        );

        // Likewise the Figure 1 baselines dedup onto Figure 8's baselines.
        let _ = EliminationPlan::plan(
            &mut matrix,
            &settings.workloads,
            &figure1_fractions(),
            settings.cores,
            settings.scale,
            settings.seed,
        );
        let nonzero_fractions = figure1_fractions().iter().filter(|&&f| f > 0.0).count();
        assert_eq!(
            matrix.len(),
            after_fig08 + settings.workloads.len() * nonzero_fractions,
            "fig01 must only add its elimination runs; its baselines are fig08's"
        );
    }

    #[test]
    fn consolidation_mix_divides_any_core_count() {
        // Regression: core counts that are not multiples of the 4-workload
        // suite (6, 10, 14, …) must shrink the mix to a divisor instead of
        // panicking in `ConsolidationSpec::even_split`.
        for cores in [2u16, 3, 4, 5, 6, 7, 8, 10, 14, 16] {
            let settings = ReproduceSettings::new(cores, Scale::Test, 1, vec![presets::tiny()]);
            let mix = PaperPlan::consolidation_mix(&settings);
            assert!(!mix.is_empty(), "{cores} cores: empty mix");
            assert!(
                (cores as usize).is_multiple_of(mix.len()),
                "{cores} cores: mix of {} workloads does not divide evenly",
                mix.len()
            );
        }
        let six = ReproduceSettings::new(6, Scale::Test, 1, vec![presets::tiny()]);
        assert_eq!(PaperPlan::consolidation_mix(&six).len(), 3);
        let sixteen = ReproduceSettings::new(16, Scale::Test, 1, vec![presets::tiny()]);
        assert_eq!(PaperPlan::consolidation_mix(&sixteen).len(), 4);
    }

    #[test]
    fn plan_spec_round_trips_and_resolves_against_the_catalog() {
        let spec = PlanSpec {
            cores: 4,
            scale: Scale::Test,
            seed: 7,
            workloads: vec!["Tiny".to_owned(), "OLTP DB2".to_owned()],
        };
        // Wire round-trip through the same JSON layer the server uses.
        let json = serde::json::to_string(&spec);
        let back: PlanSpec = serde::json::from_str(&json).expect("parse");
        assert_eq!(back, spec);

        // Resolution is case-insensitive and yields catalog specs verbatim.
        let lax = PlanSpec {
            workloads: vec!["tiny".to_owned(), "oltp db2".to_owned()],
            ..spec.clone()
        };
        let settings = lax.resolve().expect("resolve");
        assert_eq!(settings.cores, 4);
        assert_eq!(settings.workloads[0], presets::tiny());
        assert_eq!(settings.workloads[1], presets::oltp_db2());

        // Two equal submissions plan to the same matrix fingerprint — the
        // property the serving cache depends on.
        let a = PaperPlan::plan(spec.resolve().unwrap());
        let b = PaperPlan::plan(lax.resolve().unwrap());
        assert_eq!(a.matrix().fingerprint(), b.matrix().fingerprint());

        // from_settings is the inverse for catalog workloads.
        assert_eq!(
            PlanSpec::from_settings(&spec.resolve().unwrap()),
            PlanSpec {
                workloads: vec!["Tiny".to_owned(), "OLTP DB2".to_owned()],
                ..spec
            }
        );
    }

    #[test]
    fn plan_spec_rejects_bad_submissions_with_typed_errors() {
        let unknown = PlanSpec {
            cores: 4,
            scale: Scale::Test,
            seed: 0,
            workloads: vec!["OLTP DB3".to_owned()],
        };
        match unknown.resolve() {
            Err(PlanError::UnknownWorkload { name, known }) => {
                assert_eq!(name, "OLTP DB3");
                assert!(known.contains(&"OLTP DB2".to_owned()));
                assert!(known.contains(&"Tiny".to_owned()));
            }
            other => panic!("expected UnknownWorkload, got {other:?}"),
        }

        let narrow = PlanSpec {
            cores: 1,
            scale: Scale::Test,
            seed: 0,
            workloads: vec![],
        };
        assert_eq!(
            narrow.resolve().unwrap_err(),
            PlanError::TooFewCores { cores: 1 }
        );

        // Empty workloads select the full paper suite.
        let full = PlanSpec {
            cores: 2,
            scale: Scale::Test,
            seed: 0,
            workloads: vec![],
        };
        assert_eq!(full.resolve().unwrap().workloads, presets::paper_suite());
    }

    #[test]
    fn report_covers_all_figures_and_tables() {
        let plan = PaperPlan::plan(tiny_settings());
        let report = plan.execute();
        let names: Vec<&str> = report.artifacts().iter().map(|a| a.name()).collect();
        assert_eq!(
            names,
            vec![
                "fig01",
                "fig02",
                "fig03",
                "fig06",
                "fig07",
                "fig08",
                "fig09",
                "fig10",
                "table1",
                "table_pd",
                "table_power",
                "table_storage",
                "hybrid_lab",
            ]
        );
        let board = report.scoreboard();
        assert!(board.contains("Reference scoreboard"));
        assert!(board.contains("reference checks"));
        assert!(report.artifact("fig08").is_some());
        assert!(report.artifact("fig99").is_none());
        // The scoreboard gains at least three hybrid rows.
        let hybrid_rows = board
            .lines()
            .filter(|l| l.starts_with("hybrid_lab"))
            .count();
        assert!(hybrid_rows >= 3, "{hybrid_rows} hybrid_lab scoreboard rows");
    }

    #[test]
    fn hybrid_shootout_dedups_against_the_paper_figures() {
        // The shootout's baseline and NextLine/PIF_32K/SHIFT columns are
        // already planned by Figures 8/9: planning it into a matrix that
        // holds Figure 8 must add only the hybrid-specific keys (3 hybrid
        // designs + 5 throttled points, per workload).
        let settings = tiny_settings();
        let mut matrix = RunMatrix::new();
        let _ = SpeedupComparisonPlan::plan(
            &mut matrix,
            &settings.workloads,
            &PrefetcherConfig::figure8_suite(),
            settings.cores,
            settings.scale,
            settings.seed,
        );
        let after_fig08 = matrix.len();
        let _ = HybridShootoutPlan::plan(
            &mut matrix,
            &settings.workloads,
            settings.cores,
            settings.scale,
            settings.seed,
        );
        let hybrid_only = 3 + HybridShootoutPlan::BANDWIDTHS.len();
        assert_eq!(
            matrix.len(),
            after_fig08 + settings.workloads.len() * hybrid_only,
            "shootout must reuse fig08's baseline/NextLine/PIF_32K/SHIFT runs"
        );
    }
}
