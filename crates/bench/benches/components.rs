//! Microbenchmarks of the prefetcher building blocks and substrates.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use shift_cache::{CacheConfig, LlcConfig, NucaLlc, SetAssocCache};
use shift_core::sab::SabConfig;
use shift_core::StreamAddressBufferSet;
use shift_core::{
    HistoryBuffer, IndexTable, InstructionPrefetcher, Pif, PifConfig, Shift, ShiftConfig,
    SpatialRegion, SpatialRegionCompactor,
};
use shift_trace::{presets, CoreTraceGenerator};
use shift_types::{AccessClass, BlockAddr, CoreId};

fn bench_trace_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_generation");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("tiny_10k_fetches", |b| {
        let spec = presets::tiny();
        b.iter(|| {
            let mut gen = CoreTraceGenerator::new(&spec, CoreId::new(0), 1);
            let mut sum = 0u64;
            for _ in 0..10_000 {
                sum += gen.next_fetch().block.get();
            }
            black_box(sum)
        });
    });
    group.finish();
}

fn bench_history_and_index(c: &mut Criterion) {
    let mut group = c.benchmark_group("history_index");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("history_append_10k", |b| {
        b.iter(|| {
            let mut history = HistoryBuffer::new(32 * 1024);
            for i in 0..10_000u64 {
                history.append(SpatialRegion::new(BlockAddr::new(i * 8), 8));
            }
            black_box(history.write_ptr())
        });
    });
    group.bench_function("index_update_lookup_10k", |b| {
        b.iter(|| {
            let mut index = IndexTable::new(8 * 1024);
            for i in 0..10_000u64 {
                index.update(BlockAddr::new(i % 9_001), i as u32 % 32_768);
                black_box(index.lookup(BlockAddr::new((i * 7) % 9_001)));
            }
        });
    });
    group.finish();
}

fn bench_compactor_and_sab(c: &mut Criterion) {
    let mut group = c.benchmark_group("compactor_sab");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("compactor_10k_observes", |b| {
        let spec = presets::tiny();
        let mut gen = CoreTraceGenerator::new(&spec, CoreId::new(0), 2);
        let blocks: Vec<BlockAddr> = (0..10_000).map(|_| gen.next_fetch().block).collect();
        b.iter(|| {
            let mut compactor = SpatialRegionCompactor::new(8);
            let mut emitted = 0u64;
            for &blk in &blocks {
                if compactor.observe(blk).is_some() {
                    emitted += 1;
                }
            }
            black_box(emitted)
        });
    });
    group.bench_function("sab_allocate_and_advance", |b| {
        let mut history = HistoryBuffer::new(4096);
        for i in 0..4096u64 {
            let mut r = SpatialRegion::new(BlockAddr::new(i * 16), 8);
            r.try_record(BlockAddr::new(i * 16 + 2));
            history.append(r);
        }
        b.iter(|| {
            let mut sabs = StreamAddressBufferSet::new(SabConfig::micro13());
            let mut read = |p: u32, n: usize, buf: &mut Vec<_>| {
                history.read_into(p, n, buf);
                history.advance_ptr(p, buf.len() as u32)
            };
            let mut out = Vec::new();
            let mut total = 0usize;
            sabs.allocate(0, &mut read, &mut out);
            total += out.len();
            for i in 0..1_000u64 {
                out.clear();
                sabs.on_retire(BlockAddr::new(i * 16), &mut read, &mut out);
                total += out.len();
            }
            black_box(total)
        });
    });
    group.finish();
}

fn bench_caches(c: &mut Criterion) {
    let mut group = c.benchmark_group("caches");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("l1i_access_fill_10k", |b| {
        b.iter(|| {
            let mut l1: SetAssocCache<()> = SetAssocCache::new(CacheConfig::l1i_micro13());
            for i in 0..10_000u64 {
                let blk = BlockAddr::new(i % 2_048);
                if l1.access(blk).is_miss() {
                    l1.fill(blk, ());
                }
            }
            black_box(l1.stats().hits)
        });
    });
    group.bench_function("llc_access_10k", |b| {
        b.iter(|| {
            let mut llc = NucaLlc::new(LlcConfig::micro13(16));
            for i in 0..10_000u64 {
                llc.access(BlockAddr::new(i % 20_000), AccessClass::Demand);
            }
            black_box(llc.stats().hits)
        });
    });
    group.finish();
}

fn bench_prefetchers(c: &mut Criterion) {
    let mut group = c.benchmark_group("prefetchers");
    group.throughput(Throughput::Elements(20_000));
    let spec = presets::tiny();
    let mut gen = CoreTraceGenerator::new(&spec, CoreId::new(0), 3);
    let blocks: Vec<BlockAddr> = (0..20_000).map(|_| gen.next_fetch().block).collect();

    group.bench_function("pif_record_replay_20k", |b| {
        b.iter(|| {
            let mut llc = NucaLlc::new(LlcConfig::micro13(1));
            let mut pif = Pif::new(PifConfig::pif_32k(), 1);
            let mut out = Vec::new();
            for &blk in &blocks {
                out.clear();
                pif.on_access(CoreId::new(0), blk, false, &mut llc, &mut out);
                pif.on_retire(CoreId::new(0), blk, &mut llc, &mut out);
            }
            black_box(out.len())
        });
    });
    group.bench_function("shift_record_replay_20k", |b| {
        b.iter(|| {
            let mut llc = NucaLlc::new(LlcConfig::micro13(2));
            let cfg = ShiftConfig::virtualized_micro13(CoreId::new(0), BlockAddr::new(0x40_0000));
            let mut shift = Shift::new(cfg, 2);
            let mut out = Vec::new();
            for &blk in &blocks {
                out.clear();
                shift.on_access(CoreId::new(1), blk, false, &mut llc, &mut out);
                shift.on_retire(CoreId::new(0), blk, &mut llc, &mut out);
                shift.on_retire(CoreId::new(1), blk, &mut llc, &mut out);
            }
            black_box(out.len())
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_trace_generation,
    bench_history_and_index,
    bench_compactor_and_sab,
    bench_caches,
    bench_prefetchers
);
criterion_main!(benches);
