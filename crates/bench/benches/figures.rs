//! One Criterion bench per paper figure/table: each runs the corresponding
//! experiment driver at `Scale::Test` on a reduced workload set, so the full
//! pipeline behind every figure is exercised and timed by `cargo bench`.
//! The `fig*`/`table*` binaries produce the full-scale numbers.

use criterion::{criterion_group, criterion_main, Criterion};
use shift_sim::experiments::{
    commonality, consolidation, coverage_breakdown, coverage_vs_history, llc_traffic,
    performance_density, power_overhead, probabilistic_elimination, speedup_comparison,
    storage_table,
};
use shift_sim::PrefetcherConfig;
use shift_trace::{presets, Scale};

const SEED: u64 = 0x5417_2013;
const CORES: u16 = 4;

fn small_suite() -> Vec<shift_trace::WorkloadSpec> {
    vec![presets::tiny()]
}

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);

    group.bench_function("fig01_elimination", |b| {
        b.iter(|| {
            probabilistic_elimination(&small_suite(), &[0.0, 0.5, 1.0], CORES, Scale::Test, SEED)
        })
    });
    group.bench_function("fig02_pd", |b| {
        b.iter(|| {
            performance_density(
                &small_suite(),
                &[PrefetcherConfig::pif_32k()],
                CORES,
                Scale::Test,
                SEED,
            )
        })
    });
    group.bench_function("fig03_commonality", |b| {
        b.iter(|| commonality(&small_suite(), CORES, Scale::Test, SEED))
    });
    group.bench_function("fig06_history_sweep", |b| {
        b.iter(|| {
            coverage_vs_history(
                &small_suite(),
                &[Some(1 << 10), Some(32 << 10)],
                CORES,
                Scale::Test,
                SEED,
            )
        })
    });
    group.bench_function("fig07_coverage", |b| {
        b.iter(|| coverage_breakdown(&small_suite(), CORES, Scale::Test, SEED))
    });
    group.bench_function("fig08_speedup", |b| {
        b.iter(|| speedup_comparison(&small_suite(), CORES, Scale::Test, SEED))
    });
    group.bench_function("fig09_traffic", |b| {
        b.iter(|| llc_traffic(&small_suite(), CORES, Scale::Test, SEED))
    });
    group.bench_function("fig10_consolidation", |b| {
        let mix = vec![
            presets::tiny().with_region_index(0),
            presets::tiny().with_region_index(1),
        ];
        b.iter(|| {
            consolidation(
                &mix,
                &[PrefetcherConfig::shift_virtualized()],
                CORES,
                Scale::Test,
                SEED,
            )
        })
    });
    group.bench_function("table_power", |b| {
        b.iter(|| power_overhead(&small_suite(), CORES, Scale::Test, SEED))
    });
    group.bench_function("table1_storage_cost", |b| {
        b.iter(|| storage_table(16, 8 * 1024 * 1024 / 64))
    });
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
