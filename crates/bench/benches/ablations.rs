//! Ablation benches for the design choices DESIGN.md calls out: spatial
//! region size, stream-address-buffer geometry, and the choice of history
//! generator core. Each bench runs the full simulator with the parameter
//! varied and reports coverage in its label output via eprintln (the timing
//! itself measures simulation cost at that design point).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use shift_cache::{LlcConfig, NucaLlc};
use shift_core::sab::SabConfig;
use shift_core::{InstructionPrefetcher, Shift, ShiftConfig};
use shift_trace::{presets, CoreTraceGenerator};
use shift_types::CoreId;

const SEED: u64 = 0x5417_2013;

/// Drives a two-core SHIFT (core 0 records, core 1 replays) over a trace and
/// returns the fraction of core-1 accesses covered by active streams.
fn replay_coverage(config: ShiftConfig, fetches: usize) -> f64 {
    let spec = presets::tiny();
    let mut gen0 = CoreTraceGenerator::new(&spec, CoreId::new(0), SEED);
    let mut gen1 = CoreTraceGenerator::new(&spec, CoreId::new(1), SEED);
    let mut llc = NucaLlc::new(LlcConfig::micro13(2));
    let mut shift = Shift::new(config, 2);
    let mut out = Vec::new();
    let mut covered = 0u64;
    for _ in 0..fetches {
        let b0 = gen0.next_fetch().block;
        let b1 = gen1.next_fetch().block;
        out.clear();
        shift.on_retire(CoreId::new(0), b0, &mut llc, &mut out);
        if shift.covers(CoreId::new(1), b1) {
            covered += 1;
        } else {
            shift.on_access(CoreId::new(1), b1, false, &mut llc, &mut out);
        }
        shift.on_retire(CoreId::new(1), b1, &mut llc, &mut out);
    }
    covered as f64 / fetches as f64
}

fn bench_region_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_region_size");
    group.sample_size(10);
    for region_blocks in [2u8, 4, 8, 16] {
        let mut cfg = ShiftConfig::zero_latency_micro13(CoreId::new(0));
        cfg.region_blocks = region_blocks;
        let coverage = replay_coverage(cfg, 20_000);
        eprintln!(
            "region size {region_blocks}: replay coverage {:.1}%",
            coverage * 100.0
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(region_blocks),
            &region_blocks,
            |b, &_rb| b.iter(|| replay_coverage(cfg, 5_000)),
        );
    }
    group.finish();
}

fn bench_sab_geometry(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_sab");
    group.sample_size(10);
    for (streams, capacity, lookahead) in [(1, 4, 2), (2, 8, 3), (4, 12, 5), (8, 24, 8)] {
        let mut cfg = ShiftConfig::zero_latency_micro13(CoreId::new(0));
        cfg.sab = SabConfig {
            streams,
            capacity_regions: capacity,
            lookahead,
        };
        let coverage = replay_coverage(cfg, 20_000);
        eprintln!(
            "SAB {streams}x{capacity} lookahead {lookahead}: replay coverage {:.1}%",
            coverage * 100.0
        );
        let label = format!("{streams}x{capacity}la{lookahead}");
        group.bench_with_input(BenchmarkId::from_parameter(label), &cfg, |b, cfg| {
            b.iter(|| replay_coverage(*cfg, 5_000))
        });
    }
    group.finish();
}

fn bench_generator_core_choice(c: &mut Criterion) {
    // §6.1: the choice of history generator core does not matter. Measure the
    // replay coverage seen by core 1 with different recorder seeds standing in
    // for "different cores chosen as generator".
    let mut group = c.benchmark_group("ablation_generator_core");
    group.sample_size(10);
    for recorder in [0u16, 1, 2, 3] {
        let spec = presets::tiny();
        let cfg = ShiftConfig::zero_latency_micro13(CoreId::new(0));
        let coverage = {
            let mut gen_r = CoreTraceGenerator::new(&spec, CoreId::new(recorder), SEED);
            let mut gen_o = CoreTraceGenerator::new(&spec, CoreId::new(recorder + 8), SEED);
            let mut llc = NucaLlc::new(LlcConfig::micro13(2));
            let mut shift = Shift::new(cfg, 2);
            let mut out = Vec::new();
            let mut covered = 0u64;
            let total = 20_000u64;
            for _ in 0..total {
                let br = gen_r.next_fetch().block;
                let bo = gen_o.next_fetch().block;
                out.clear();
                shift.on_retire(CoreId::new(0), br, &mut llc, &mut out);
                if shift.covers(CoreId::new(1), bo) {
                    covered += 1;
                } else {
                    shift.on_access(CoreId::new(1), bo, false, &mut llc, &mut out);
                }
                shift.on_retire(CoreId::new(1), bo, &mut llc, &mut out);
            }
            covered as f64 / total as f64
        };
        eprintln!(
            "generator candidate {recorder}: replay coverage {:.1}%",
            coverage * 100.0
        );
        group.bench_with_input(BenchmarkId::from_parameter(recorder), &recorder, |b, _| {
            b.iter(|| replay_coverage(cfg, 5_000))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_region_size,
    bench_sab_geometry,
    bench_generator_core_choice
);
criterion_main!(benches);
