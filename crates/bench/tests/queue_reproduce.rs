//! The queue-mode and incremental-reuse acceptance tests.
//!
//! * Four concurrent queue workers draining the whole-paper matrix from one
//!   shared outcome directory — with a worker killed mid-run (its completed
//!   outcomes, a stale claim lock, and a half-written temp file left
//!   behind) — must merge to a scoreboard and artifact files
//!   *byte-identical* to a single-process `reproduce` run.
//! * After the plan grows by one figure, `--reuse` of an old outcome
//!   directory must execute only the delta keys, asserted by exact
//!   run-count.

use std::fs;
use std::path::PathBuf;
use std::time::Duration;

use shift_bench::reproduce::{PaperPlan, ReproduceSettings};
use shift_sim::experiments::{EliminationPlan, SpeedupComparisonPlan};
use shift_sim::store::{lock_file_name, seed_outcomes};
use shift_sim::{
    Execution, ExecutionReport, PrefetcherConfig, QueueConfig, RunMatrix, RunStore, ShardSpec,
};
use shift_trace::{presets, Scale};

fn settings() -> ReproduceSettings {
    ReproduceSettings::new(2, Scale::Test, 11, vec![presets::tiny()])
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("shift-queue-reproduce-{tag}"));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Writes a report's artifacts under `dir` and returns every file's bytes,
/// keyed by file name.
fn artifact_bytes(
    report: &shift_bench::reproduce::PaperReport,
    dir: &PathBuf,
) -> Vec<(String, Vec<u8>)> {
    let _ = fs::remove_dir_all(dir);
    let mut files: Vec<(String, Vec<u8>)> = report
        .write_to(dir)
        .expect("write artifacts")
        .into_iter()
        .map(|path| {
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            (name, fs::read(&path).expect("read artifact back"))
        })
        .collect();
    files.sort_by(|a, b| a.0.cmp(&b.0));
    files
}

fn worker(tag: &str) -> QueueConfig {
    let mut config = QueueConfig::new(format!("accept-{tag}"));
    config.poll = Duration::from_millis(10);
    config
}

/// One durable shard execution through the builder.
fn run_shard(
    matrix: &RunMatrix,
    spec: ShardSpec,
    dir: &PathBuf,
    threads: usize,
) -> ExecutionReport {
    *Execution::new(matrix)
        .shard(spec)
        .dir(dir)
        .threads(threads)
        .run()
        .expect("shard executes")
        .report()
}

#[test]
fn four_queue_workers_with_one_killed_merge_byte_identical_to_single_process() {
    const WORKERS: usize = 4;

    // Reference: the classic single-process run.
    let single = PaperPlan::plan(settings()).execute();
    let single_board = single.scoreboard();

    // A worker was killed mid-run before the fleet below started: it had
    // completed part of the sweep (simulate with a shard slice), died
    // holding a claim on another run (a lock whose claim time is long
    // past), and left a half-written temp outcome behind.
    let dir = temp_dir("shared");
    let dead_plan = PaperPlan::plan(settings());
    run_shard(dead_plan.matrix(), ShardSpec::new(1, 4), &dir, 1);
    let done_before = fs::read_dir(&dir).unwrap().count();
    let victim = {
        // A run the dead worker had claimed but not finished: any key
        // without an outcome file.
        let matrix = dead_plan.matrix();
        let missing = matrix
            .canonical_order()
            .into_iter()
            .find(|&slot| {
                !dir.join(shift_sim::store::outcome_file_name(matrix.key_ids()[slot]))
                    .exists()
            })
            .expect("some run is still missing");
        matrix.key_ids()[missing]
    };
    fs::write(
        dir.join(lock_file_name(victim)),
        format!(
            "{{\"schema\": 1, \"key_id\": \"{victim}\", \"worker\": \"killed\", \
             \"claimed_unix\": 1000}}"
        ),
    )
    .unwrap();
    fs::write(dir.join(".tmp-killed.json"), "{\"schema\":").unwrap();

    // Four replacement workers drain the queue concurrently, each planning
    // the identical sweep itself (as separate heterogeneous hosts would).
    let reports: Vec<_> = std::thread::scope(|scope| {
        let joins: Vec<_> = (0..WORKERS)
            .map(|w| {
                let dir = dir.clone();
                scope.spawn(move || {
                    let plan = PaperPlan::plan(settings());
                    *Execution::new(plan.matrix())
                        .queue(worker(&format!("w{w}")))
                        .dir(&dir)
                        .serial()
                        .run()
                        .expect("queue worker")
                        .report()
                })
            })
            .collect();
        joins
            .into_iter()
            .map(|j| j.join().expect("worker thread"))
            .collect()
    });

    let plan = PaperPlan::plan(settings());
    let executed_total: usize = reports.iter().map(|r| r.sources.executed).sum();
    assert_eq!(
        executed_total,
        plan.matrix().len() - done_before,
        "the fleet executes exactly the runs the dead worker left unfinished"
    );
    let reclaimed_total: usize = reports.iter().map(|r| r.sources.reclaimed).sum();
    assert_eq!(reclaimed_total, 1, "exactly one stale claim to reclaim");
    for report in &reports {
        assert!(report.complete, "wait-mode workers return on completion");
    }

    // Merge on a "fresh host" and compare byte-for-byte.
    let outcomes = RunStore::new([&dir])
        .load(plan.matrix())
        .expect("drained queue covers the sweep");
    let merged = plan.collect(&outcomes);
    assert_eq!(merged.scoreboard(), single_board);
    let single_dir = temp_dir("artifacts-single");
    let merged_dir = temp_dir("artifacts-merged");
    assert_eq!(
        artifact_bytes(&single, &single_dir),
        artifact_bytes(&merged, &merged_dir)
    );

    for d in [&dir, &single_dir, &merged_dir] {
        let _ = fs::remove_dir_all(d);
    }
}

/// The incremental-reproduce acceptance: grow a plan by one figure and
/// assert — by exact run-count — that reuse executes only the delta.
#[test]
fn adding_one_figure_executes_only_the_delta_keys() {
    let settings = settings();
    let (cores, scale, seed) = (settings.cores, settings.scale, settings.seed);
    let workloads = &settings.workloads;
    let prefetchers = PrefetcherConfig::figure8_suite();

    // Yesterday's sweep: Figure 8 alone, executed durably.
    let mut old_matrix = RunMatrix::new();
    let _ =
        SpeedupComparisonPlan::plan(&mut old_matrix, workloads, &prefetchers, cores, scale, seed);
    let old_dir = temp_dir("incr-old");
    run_shard(&old_matrix, ShardSpec::full(), &old_dir, 2);

    // Today's sweep: Figure 8 plus Figure 1 (whose baselines dedup onto
    // Figure 8's) — a grown plan with a different fingerprint.
    let mut new_matrix = RunMatrix::new();
    let _ =
        SpeedupComparisonPlan::plan(&mut new_matrix, workloads, &prefetchers, cores, scale, seed);
    let fig8_runs = new_matrix.len();
    let fractions = shift_bench::artifacts::figure1_fractions();
    let fig01 = EliminationPlan::plan(&mut new_matrix, workloads, &fractions, cores, scale, seed);
    let delta = new_matrix.len() - fig8_runs;
    assert!(delta > 0, "the added figure must contribute new keys");
    assert_ne!(old_matrix.fingerprint(), new_matrix.fingerprint());

    // Reuse probe: every old key is still planned, so exactly the delta is
    // missing...
    let partial = RunStore::new([&old_dir]).load_partial(&new_matrix).unwrap();
    assert_eq!(partial.reused, old_matrix.len());
    assert_eq!(partial.missing_slots(&new_matrix).len(), delta);

    // ...and in-memory delta execution runs exactly those keys. The spliced
    // outcomes are bit-identical to executing the grown plan from scratch.
    let output = Execution::new(&new_matrix)
        .reuse(partial.clone())
        .threads(2)
        .run()
        .expect("delta execution");
    assert_eq!(
        output.report().sources.executed,
        delta,
        "only the delta keys execute"
    );
    assert_eq!(output.report().sources.reused, old_matrix.len());
    let spliced = output.into_outcomes();
    let scratch = Execution::new(&new_matrix)
        .serial()
        .run()
        .expect("scratch execution")
        .into_outcomes();
    assert_eq!(format!("{spliced:?}"), format!("{scratch:?}"));
    let _ = fig01.collect(&spliced); // figure derivation works on spliced outcomes

    // The durable variant: seed a new directory from the old cache, then a
    // resumable 1/1 execution runs only the delta and the strict merge
    // accepts the directory under the new fingerprint.
    let new_dir = temp_dir("incr-new");
    let seeded = seed_outcomes(&new_matrix, &partial, &new_dir).unwrap();
    assert_eq!(seeded, old_matrix.len());
    let shard_report = run_shard(&new_matrix, ShardSpec::full(), &new_dir, 2);
    assert_eq!(shard_report.sources.executed, delta);
    assert_eq!(shard_report.sources.reused, old_matrix.len());
    RunStore::new([&new_dir])
        .load(&new_matrix)
        .expect("strict merge");

    fs::remove_dir_all(&old_dir).unwrap();
    fs::remove_dir_all(&new_dir).unwrap();
}
