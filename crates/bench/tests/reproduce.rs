//! End-to-end test of the whole-paper reproduce pipeline at test scale:
//! plan once, execute once, write JSON + CSV + markdown artifacts for every
//! figure/table, and render the reference scoreboard.

use std::fs;

use shift_bench::reproduce::{PaperPlan, ReproduceSettings};
use shift_trace::{presets, Scale};

const ARTIFACT_NAMES: [&str; 13] = [
    "fig01",
    "fig02",
    "fig03",
    "fig06",
    "fig07",
    "fig08",
    "fig09",
    "fig10",
    "table1",
    "table_pd",
    "table_power",
    "table_storage",
    "hybrid_lab",
];

#[test]
fn reproduce_writes_every_artifact_and_scores_references() {
    let settings = ReproduceSettings::new(2, Scale::Test, 11, vec![presets::tiny()]);
    let plan = PaperPlan::plan(settings);
    assert!(
        plan.saved_by_dedup() > 0,
        "cross-figure dedup must collapse shared runs"
    );
    let report = plan.execute();

    let dir = std::env::temp_dir().join("shift-bench-reproduce-test");
    let _ = fs::remove_dir_all(&dir);
    let paths = report.write_to(&dir).expect("write artifacts");
    assert_eq!(paths.len(), ARTIFACT_NAMES.len() * 3);

    for name in ARTIFACT_NAMES {
        for ext in ["json", "csv", "md"] {
            let path = dir.join(format!("{name}.{ext}"));
            let content = fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("missing artifact {}: {e}", path.display()));
            assert!(!content.is_empty(), "{} is empty", path.display());
        }
        let json = fs::read_to_string(dir.join(format!("{name}.json"))).unwrap();
        assert!(
            json.contains("\"reference\""),
            "{name}.json lacks a reference block"
        );
        assert!(json.contains("\"data\""), "{name}.json lacks the data tree");
    }

    let scoreboard = report.scoreboard();
    assert!(scoreboard.contains("Reference scoreboard"));
    assert!(
        scoreboard.contains("reference checks"),
        "scoreboard must count its checks:\n{scoreboard}"
    );

    fs::remove_dir_all(&dir).expect("cleanup");
}
