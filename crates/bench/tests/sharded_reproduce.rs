//! The sharded-reproduce acceptance test: executing the whole-paper matrix
//! as `K/4` shards into outcome directories and merging them must produce a
//! scoreboard (and artifact files) *byte-identical* to a single-process
//! `reproduce` run — including after a shard is killed mid-run and
//! restarted.

use std::fs;
use std::path::PathBuf;

use shift_bench::reproduce::{PaperPlan, ReproduceSettings};
use shift_sim::{Execution, ExecutionReport, RunStore, ShardSpec, StoreError};
use shift_trace::{presets, Scale};

fn settings() -> ReproduceSettings {
    ReproduceSettings::new(2, Scale::Test, 11, vec![presets::tiny()])
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("shift-sharded-reproduce-{tag}"));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// One durable `K/N` shard execution through the builder.
fn run_shard(
    matrix: &shift_sim::RunMatrix,
    spec: ShardSpec,
    dir: &PathBuf,
    threads: usize,
) -> ExecutionReport {
    *Execution::new(matrix)
        .shard(spec)
        .dir(dir)
        .threads(threads)
        .run()
        .expect("shard executes")
        .report()
}

/// Writes a report's artifacts under `dir` and returns every file's bytes,
/// keyed by file name.
fn artifact_bytes(
    report: &shift_bench::reproduce::PaperReport,
    dir: &PathBuf,
) -> Vec<(String, Vec<u8>)> {
    let _ = fs::remove_dir_all(dir);
    let mut files: Vec<(String, Vec<u8>)> = report
        .write_to(dir)
        .expect("write artifacts")
        .into_iter()
        .map(|path| {
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            (name, fs::read(&path).expect("read artifact back"))
        })
        .collect();
    files.sort_by(|a, b| a.0.cmp(&b.0));
    files
}

#[test]
fn four_shards_merge_byte_identical_to_single_process() {
    const SHARDS: usize = 4;

    // Reference: the classic single-process run.
    let single = PaperPlan::plan(settings()).execute();
    let single_board = single.scoreboard();

    // Sharded: plan the identical sweep (fresh matrix, same settings),
    // execute each K/4 slice into its own directory — as 4 separate machines
    // would — then merge.
    let dirs: Vec<PathBuf> = (1..=SHARDS).map(|k| temp_dir(&format!("d{k}"))).collect();
    let shard_plan = PaperPlan::plan(settings());
    let mut sliced_runs = 0;
    for (k, dir) in dirs.iter().enumerate() {
        let report = run_shard(shard_plan.matrix(), ShardSpec::new(k + 1, SHARDS), dir, 2);
        assert_eq!(
            report.sources.executed, report.planned,
            "fresh shard runs its whole slice"
        );
        sliced_runs += report.planned;
    }
    assert_eq!(
        sliced_runs,
        shard_plan.matrix().len(),
        "the {SHARDS} slices must partition the matrix"
    );

    // A shard dies mid-run: drop two of shard 2's outcomes and a half-written
    // temp file, then restart it. Only the missing runs re-execute.
    let mut shard2_files: Vec<PathBuf> = fs::read_dir(&dirs[1])
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    shard2_files.sort();
    let killed = shard2_files.len().min(2);
    for file in shard2_files.iter().take(killed) {
        fs::remove_file(file).unwrap();
    }
    fs::write(dirs[1].join(".tmp-interrupted.json"), "{\"schema\": 1,").unwrap();
    let restart_plan = PaperPlan::plan(settings());
    let restarted = run_shard(
        restart_plan.matrix(),
        ShardSpec::new(2, SHARDS),
        &dirs[1],
        2,
    );
    assert_eq!(
        restarted.sources.executed, killed,
        "restart re-runs only the lost outcomes"
    );
    assert_eq!(restarted.sources.reused, restarted.planned - killed);

    // Merge on a "fresh host": yet another identical plan, loading all dirs.
    let merge_plan = PaperPlan::plan(settings());
    let outcomes = RunStore::new(dirs.iter().cloned())
        .load(merge_plan.matrix())
        .expect("merge covers the sweep");
    let merged = merge_plan.collect(&outcomes);

    // Byte-identical scoreboard and artifact files.
    assert_eq!(merged.scoreboard(), single_board);
    let single_dir = temp_dir("artifacts-single");
    let merged_dir = temp_dir("artifacts-merged");
    assert_eq!(
        artifact_bytes(&single, &single_dir),
        artifact_bytes(&merged, &merged_dir)
    );

    for dir in dirs.iter().chain([&single_dir, &merged_dir]) {
        let _ = fs::remove_dir_all(dir);
    }
}

#[test]
fn merge_with_a_missing_shard_is_rejected() {
    let dir = temp_dir("missing-shard");
    let plan = PaperPlan::plan(settings());
    // Only shard 1 of 2 ran.
    run_shard(plan.matrix(), ShardSpec::new(1, 2), &dir, 2);
    let err = RunStore::new([&dir]).load(plan.matrix()).unwrap_err();
    match err {
        StoreError::MissingRuns { missing, planned } => {
            assert_eq!(planned, plan.matrix().len());
            assert!(!missing.is_empty());
            assert!(missing.len() < planned, "shard 1 must have contributed");
        }
        other => panic!("expected MissingRuns, got {other}"),
    }
    fs::remove_dir_all(&dir).unwrap();
}
