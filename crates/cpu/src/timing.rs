//! The analytical front-end stall timing model.

use serde::{Deserialize, Serialize};

use crate::params::{CoreKind, CoreParams};

/// Per-core accumulator of the quantities the timing model needs.
///
/// The trace-driven simulator feeds it retired instruction counts and the raw
/// (unoverlapped) latencies of instruction and data misses; the
/// [`CoreTiming`] model then converts the totals into cycles.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TimingAccumulator {
    /// Retired instructions.
    pub instructions: u64,
    /// Sum of raw instruction-miss latencies (cycles before overlap).
    pub raw_fetch_stall_cycles: u64,
    /// Sum of raw data-miss latencies (cycles before overlap).
    pub raw_data_stall_cycles: u64,
}

impl TimingAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds retired instructions.
    pub fn retire_instructions(&mut self, count: u64) {
        self.instructions += count;
    }

    /// Adds the raw latency of one instruction-fetch miss (or partial miss).
    pub fn fetch_stall(&mut self, raw_latency: u64) {
        self.raw_fetch_stall_cycles += raw_latency;
    }

    /// Adds the raw latency of one data miss.
    pub fn data_stall(&mut self, raw_latency: u64) {
        self.raw_data_stall_cycles += raw_latency;
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &TimingAccumulator) {
        self.instructions += other.instructions;
        self.raw_fetch_stall_cycles += other.raw_fetch_stall_cycles;
        self.raw_data_stall_cycles += other.raw_data_stall_cycles;
    }
}

/// The analytical timing model for one core type.
///
/// Total cycles are
///
/// ```text
/// cycles = instructions × base_cpi
///        + raw_fetch_stall × (1 − fetch_stall_overlap)
///        + raw_data_stall × (1 − data_stall_overlap)
/// ```
///
/// Performance is reported as instructions per cycle (the paper uses
/// application instructions per total cycle, which this model mirrors because
/// the trace interleaves OS instructions into the same stream).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CoreTiming {
    params: CoreParams,
}

impl CoreTiming {
    /// Creates the timing model for a core kind.
    pub fn new(kind: CoreKind) -> Self {
        CoreTiming {
            params: kind.params(),
        }
    }

    /// Creates a timing model from explicit parameters (used by sensitivity
    /// studies).
    pub fn from_params(params: CoreParams) -> Self {
        CoreTiming { params }
    }

    /// The underlying parameters.
    pub fn params(&self) -> &CoreParams {
        &self.params
    }

    /// Creates an empty accumulator for this model.
    pub fn new_accumulator(&self) -> TimingAccumulator {
        TimingAccumulator::new()
    }

    /// Cycles spent on useful execution (no miss stalls).
    pub fn base_cycles(&self, instructions: u64) -> f64 {
        instructions as f64 * self.params.base_cpi
    }

    /// Total cycles for the accumulated work.
    pub fn total_cycles(&self, acc: &TimingAccumulator) -> f64 {
        self.base_cycles(acc.instructions)
            + acc.raw_fetch_stall_cycles as f64 * self.params.exposed_fetch_fraction()
            + acc.raw_data_stall_cycles as f64 * self.params.exposed_data_fraction()
    }

    /// Instructions per cycle for the accumulated work.
    pub fn ipc(&self, acc: &TimingAccumulator) -> f64 {
        let cycles = self.total_cycles(acc);
        if cycles == 0.0 {
            0.0
        } else {
            acc.instructions as f64 / cycles
        }
    }

    /// Fraction of total cycles spent stalled on instruction fetch.
    pub fn fetch_stall_fraction(&self, acc: &TimingAccumulator) -> f64 {
        let total = self.total_cycles(acc);
        if total == 0.0 {
            0.0
        } else {
            acc.raw_fetch_stall_cycles as f64 * self.params.exposed_fetch_fraction() / total
        }
    }

    /// Speedup of `improved` over `baseline` (same instruction counts assumed;
    /// computed as the ratio of IPCs).
    pub fn speedup(&self, baseline: &TimingAccumulator, improved: &TimingAccumulator) -> f64 {
        let base_ipc = self.ipc(baseline);
        let new_ipc = self.ipc(improved);
        if base_ipc == 0.0 {
            0.0
        } else {
            new_ipc / base_ipc
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc(instr: u64, fetch: u64, data: u64) -> TimingAccumulator {
        TimingAccumulator {
            instructions: instr,
            raw_fetch_stall_cycles: fetch,
            raw_data_stall_cycles: data,
        }
    }

    #[test]
    fn in_order_core_exposes_full_fetch_latency() {
        let t = CoreTiming::new(CoreKind::LeanIO);
        let a = acc(1_000, 500, 0);
        let expected = 1_000.0 * t.params().base_cpi + 500.0;
        assert!((t.total_cycles(&a) - expected).abs() < 1e-9);
    }

    #[test]
    fn ooo_core_hides_part_of_fetch_latency() {
        let lean = CoreTiming::new(CoreKind::LeanOoO);
        let fat = CoreTiming::new(CoreKind::FatOoO);
        let a = acc(1_000, 500, 0);
        let lean_stall = lean.total_cycles(&a) - lean.base_cycles(1_000);
        let fat_stall = fat.total_cycles(&a) - fat.base_cycles(1_000);
        assert!(fat_stall < lean_stall);
        assert!(lean_stall < 500.0);
    }

    #[test]
    fn removing_fetch_stalls_speeds_up_linearly() {
        // The model must reproduce Figure 1's linear relationship: speedup is
        // linear in the fraction of fetch stall removed.
        let t = CoreTiming::new(CoreKind::LeanOoO);
        let baseline = acc(10_000, 4_000, 2_000);
        let half = acc(10_000, 2_000, 2_000);
        let none = acc(10_000, 0, 2_000);
        let s_half = t.speedup(&baseline, &half);
        let s_none = t.speedup(&baseline, &none);
        assert!(s_none > s_half);
        assert!(s_half > 1.0);
        // Cycle savings are exactly linear; check the midpoint in cycle space.
        let mid_cycles = (t.total_cycles(&baseline) + t.total_cycles(&none)) / 2.0;
        assert!((t.total_cycles(&half) - mid_cycles).abs() < 1e-9);
    }

    #[test]
    fn ipc_and_stall_fraction_are_consistent() {
        let t = CoreTiming::new(CoreKind::LeanOoO);
        let a = acc(10_000, 3_000, 1_000);
        let ipc = t.ipc(&a);
        assert!(ipc > 0.0 && ipc < t.params().dispatch_width as f64);
        let frac = t.fetch_stall_fraction(&a);
        assert!(frac > 0.0 && frac < 1.0);
    }

    #[test]
    fn merge_accumulates_all_fields() {
        let mut a = acc(10, 20, 30);
        a.merge(&acc(1, 2, 3));
        assert_eq!(a, acc(11, 22, 33));
    }

    #[test]
    fn zero_work_yields_zero_ipc() {
        let t = CoreTiming::new(CoreKind::FatOoO);
        assert_eq!(t.ipc(&TimingAccumulator::new()), 0.0);
        assert_eq!(t.fetch_stall_fraction(&TimingAccumulator::new()), 0.0);
    }
}
