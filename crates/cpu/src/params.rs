//! Core-type parameters.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The three core microarchitectures the paper evaluates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CoreKind {
    /// Xeon-class fat out-of-order core (4-wide, 128-entry ROB, 25 mm²).
    FatOoO,
    /// Cortex-A15-class lean out-of-order core (3-wide, 60-entry ROB,
    /// 4.5 mm²). This is the primary evaluation core of the paper.
    LeanOoO,
    /// Cortex-A8-class lean in-order core (2-wide, 1.3 mm²).
    LeanIO,
}

impl CoreKind {
    /// All core kinds, in the paper's order (fattest first).
    pub const ALL: [CoreKind; 3] = [CoreKind::FatOoO, CoreKind::LeanOoO, CoreKind::LeanIO];

    /// The paper's parameters for this core kind.
    pub fn params(self) -> CoreParams {
        match self {
            CoreKind::FatOoO => CoreParams {
                kind: self,
                dispatch_width: 4,
                rob_entries: 128,
                lsq_entries: 32,
                area_mm2: 25.0,
                base_cpi: 0.62,
                fetch_stall_overlap: 0.35,
                data_stall_overlap: 0.70,
                fetch_runahead_cycles: 40,
            },
            CoreKind::LeanOoO => CoreParams {
                kind: self,
                dispatch_width: 3,
                rob_entries: 60,
                lsq_entries: 16,
                area_mm2: 4.5,
                base_cpi: 0.72,
                fetch_stall_overlap: 0.20,
                data_stall_overlap: 0.55,
                fetch_runahead_cycles: 24,
            },
            CoreKind::LeanIO => CoreParams {
                kind: self,
                dispatch_width: 2,
                rob_entries: 0,
                lsq_entries: 0,
                area_mm2: 1.3,
                base_cpi: 0.95,
                fetch_stall_overlap: 0.0,
                data_stall_overlap: 0.30,
                fetch_runahead_cycles: 16,
            },
        }
    }
}

impl fmt::Display for CoreKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CoreKind::FatOoO => "Fat-OoO",
            CoreKind::LeanOoO => "Lean-OoO",
            CoreKind::LeanIO => "Lean-IO",
        };
        f.write_str(s)
    }
}

/// Microarchitectural parameters of one core type.
///
/// The area figures include the core's private L1 caches and are the paper's
/// published 40 nm numbers; `base_cpi` and the overlap factors are the free
/// parameters of the analytical timing model (see the crate-level docs).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CoreParams {
    /// Which core type these parameters describe.
    pub kind: CoreKind,
    /// Dispatch/retire width.
    pub dispatch_width: u32,
    /// Reorder buffer entries (zero for in-order cores).
    pub rob_entries: u32,
    /// Load/store queue entries (zero for in-order cores).
    pub lsq_entries: u32,
    /// Core area including L1 caches, in mm² at 40 nm.
    pub area_mm2: f64,
    /// Cycles per instruction in the absence of L1 misses.
    pub base_cpi: f64,
    /// Fraction of an instruction-miss round trip the core hides by
    /// overlapping it with useful work (0 for in-order front ends).
    pub fetch_stall_overlap: f64,
    /// Fraction of a data-miss round trip hidden by memory-level parallelism.
    pub data_stall_overlap: f64,
    /// How many cycles ahead of retirement the fetch engine runs (decoupled
    /// front end / fetch queue depth). A prefetch issued this far before its
    /// block is needed completes in time and exposes no stall.
    pub fetch_runahead_cycles: u64,
}

impl CoreParams {
    /// Fraction of an instruction-miss latency that is exposed as stall.
    pub fn exposed_fetch_fraction(&self) -> f64 {
        1.0 - self.fetch_stall_overlap
    }

    /// Fraction of a data-miss latency that is exposed as stall.
    pub fn exposed_data_fraction(&self) -> f64 {
        1.0 - self.data_stall_overlap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn areas_match_published_numbers() {
        assert_eq!(CoreKind::FatOoO.params().area_mm2, 25.0);
        assert_eq!(CoreKind::LeanOoO.params().area_mm2, 4.5);
        assert_eq!(CoreKind::LeanIO.params().area_mm2, 1.3);
    }

    #[test]
    fn widths_match_table1() {
        assert_eq!(CoreKind::FatOoO.params().dispatch_width, 4);
        assert_eq!(CoreKind::LeanOoO.params().dispatch_width, 3);
        assert_eq!(CoreKind::LeanIO.params().dispatch_width, 2);
        assert_eq!(CoreKind::FatOoO.params().rob_entries, 128);
        assert_eq!(CoreKind::LeanOoO.params().rob_entries, 60);
    }

    #[test]
    fn fatter_cores_hide_more_fetch_latency() {
        let fat = CoreKind::FatOoO.params();
        let lean = CoreKind::LeanOoO.params();
        let io = CoreKind::LeanIO.params();
        assert!(fat.fetch_stall_overlap > lean.fetch_stall_overlap);
        assert!(lean.fetch_stall_overlap > io.fetch_stall_overlap);
        assert_eq!(io.exposed_fetch_fraction(), 1.0);
    }

    #[test]
    fn fatter_cores_have_lower_base_cpi() {
        let fat = CoreKind::FatOoO.params();
        let lean = CoreKind::LeanOoO.params();
        let io = CoreKind::LeanIO.params();
        assert!(fat.base_cpi < lean.base_cpi);
        assert!(lean.base_cpi < io.base_cpi);
    }

    #[test]
    fn display_names_are_paper_names() {
        assert_eq!(CoreKind::FatOoO.to_string(), "Fat-OoO");
        assert_eq!(CoreKind::LeanOoO.to_string(), "Lean-OoO");
        assert_eq!(CoreKind::LeanIO.to_string(), "Lean-IO");
    }
}
