//! Core microarchitecture parameters and the front-end stall timing model.
//!
//! The paper evaluates three core types (Table I and §2.3):
//!
//! * **Fat-OoO** — a Xeon-class core: 4-wide dispatch/retire, 128-entry ROB,
//!   32-entry LSQ, 25 mm² at 40 nm including L1 caches.
//! * **Lean-OoO** — an ARM Cortex-A15-class core: 3-wide, 60-entry ROB,
//!   16-entry LSQ, 4.5 mm².
//! * **Lean-IO** — an ARM Cortex-A8-class core: dual-issue in-order, 1.3 mm².
//!
//! All cores run at 2 GHz. Performance is modelled analytically: execution
//! cycles are the sum of a base component (instructions × base CPI, covering
//! compute and L1-hit latencies) and *exposed* stall components from
//! instruction and data misses. Out-of-order cores overlap part of the miss
//! latency with independent work; the per-core-type overlap factors encode
//! that. The model reproduces the (near-)linear relationship between
//! eliminated instruction misses and speedup that Figure 1 of the paper
//! demonstrates.
//!
//! # Examples
//!
//! ```
//! use shift_cpu::{CoreKind, CoreTiming};
//!
//! let timing = CoreTiming::new(CoreKind::LeanOoO);
//! let mut acc = timing.new_accumulator();
//! acc.retire_instructions(1_000);
//! acc.fetch_stall(30);
//! let cycles = timing.total_cycles(&acc);
//! assert!(cycles > 1_000.0 * timing.params().base_cpi);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod params;
pub mod timing;

pub use params::{CoreKind, CoreParams};
pub use timing::{CoreTiming, TimingAccumulator};
