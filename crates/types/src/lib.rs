//! Fundamental types shared by every crate of the SHIFT reproduction.
//!
//! The paper (Kaynak et al., MICRO-46 2013) models a 16-core server CMP with
//! 64-byte cache blocks and a 40-bit physical address space. The types in
//! this crate give those quantities distinct, misuse-resistant representations:
//!
//! * [`Addr`] — a byte-granularity physical address.
//! * [`BlockAddr`] — a cache-block-granularity address (an [`Addr`] shifted
//!   right by [`BLOCK_SHIFT`]). Instruction prefetchers in this repository
//!   operate exclusively on block addresses, exactly as the hardware proposals
//!   do.
//! * [`CoreId`] / [`WorkloadId`] — identifiers for cores and consolidated
//!   workloads.
//! * [`Cycle`] — a point in (or a duration of) simulated time.
//!
//! # Examples
//!
//! ```
//! use shift_types::{Addr, BlockAddr, BLOCK_BYTES};
//!
//! let pc = Addr::new(0x4_0000_1040);
//! let block = pc.block();
//! assert_eq!(block.base_addr().get(), 0x4_0000_1040 & !(BLOCK_BYTES as u64 - 1));
//! assert_eq!(block.next(), BlockAddr::new(block.get() + 1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod access;
pub mod addr;
pub mod ids;
pub mod time;

pub use access::{AccessClass, AccessKind};
pub use addr::{Addr, BlockAddr, BLOCK_BYTES, BLOCK_SHIFT, PHYS_ADDR_BITS};
pub use ids::{CoreId, WorkloadId};
pub use time::Cycle;
