//! Core and workload identifiers.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a core in the simulated CMP.
///
/// The paper evaluates a 16-core CMP; this type supports up to `u16::MAX`
/// cores so that scaling studies beyond 16 cores are possible.
///
/// # Examples
///
/// ```
/// use shift_types::CoreId;
/// let cores: Vec<CoreId> = CoreId::range(4).collect();
/// assert_eq!(cores.len(), 4);
/// assert_eq!(cores[3].index(), 3);
/// ```
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct CoreId(u16);

impl CoreId {
    /// Creates a core identifier from a zero-based index.
    #[inline]
    pub const fn new(index: u16) -> Self {
        CoreId(index)
    }

    /// Returns the zero-based index of this core as a `usize`, suitable for
    /// indexing per-core vectors.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw identifier value.
    #[inline]
    pub const fn get(self) -> u16 {
        self.0
    }

    /// Returns an iterator over the first `n` core identifiers.
    pub fn range(n: u16) -> impl Iterator<Item = CoreId> + Clone {
        (0..n).map(CoreId)
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

impl From<u16> for CoreId {
    fn from(raw: u16) -> Self {
        CoreId(raw)
    }
}

impl From<CoreId> for u16 {
    fn from(id: CoreId) -> Self {
        id.0
    }
}

/// Identifier of a workload in a consolidated (multi-workload) configuration.
///
/// When several server workloads are consolidated onto one CMP (§5.5 of the
/// paper), each workload gets its own shared history buffer; `WorkloadId`
/// selects among them.
///
/// # Examples
///
/// ```
/// use shift_types::WorkloadId;
/// assert_eq!(WorkloadId::new(2).index(), 2);
/// ```
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct WorkloadId(u8);

impl WorkloadId {
    /// Creates a workload identifier from a zero-based index.
    #[inline]
    pub const fn new(index: u8) -> Self {
        WorkloadId(index)
    }

    /// Returns the zero-based index as a `usize`.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw identifier value.
    #[inline]
    pub const fn get(self) -> u8 {
        self.0
    }
}

impl fmt::Display for WorkloadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wl{}", self.0)
    }
}

impl From<u8> for WorkloadId {
    fn from(raw: u8) -> Self {
        WorkloadId(raw)
    }
}

impl From<WorkloadId> for u8 {
    fn from(id: WorkloadId) -> Self {
        id.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_id_range_is_dense() {
        let ids: Vec<_> = CoreId::range(16).collect();
        assert_eq!(ids.len(), 16);
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(id.index(), i);
        }
    }

    #[test]
    fn core_id_ordering_follows_index() {
        assert!(CoreId::new(3) < CoreId::new(7));
    }

    #[test]
    fn display_includes_index() {
        assert_eq!(CoreId::new(5).to_string(), "core5");
        assert_eq!(WorkloadId::new(1).to_string(), "wl1");
    }

    #[test]
    fn conversions_round_trip() {
        let c: CoreId = 9u16.into();
        assert_eq!(u16::from(c), 9);
        let w: WorkloadId = 3u8.into();
        assert_eq!(u8::from(w), 3);
    }
}
