//! Simulated time.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// A point in, or a duration of, simulated time measured in core clock cycles.
///
/// All cores in the modelled CMP run at the same frequency (the paper fixes
/// 2 GHz for every core type to simplify comparisons), so a single cycle type
/// is sufficient.
///
/// # Examples
///
/// ```
/// use shift_types::Cycle;
/// let start = Cycle::new(100);
/// let end = start + Cycle::new(45);
/// assert_eq!(end.saturating_since(start), Cycle::new(45));
/// ```
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Cycle(u64);

impl Cycle {
    /// Cycle zero, the start of simulated time.
    pub const ZERO: Cycle = Cycle(0);

    /// Creates a cycle value.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Cycle(raw)
    }

    /// Returns the raw cycle count.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Returns `self - earlier`, saturating at zero if `earlier` is later.
    #[inline]
    pub fn saturating_since(self, earlier: Cycle) -> Cycle {
        Cycle(self.0.saturating_sub(earlier.0))
    }

    /// Returns the later of two cycle values.
    #[inline]
    pub fn max(self, other: Cycle) -> Cycle {
        Cycle(self.0.max(other.0))
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cyc", self.0)
    }
}

impl From<u64> for Cycle {
    fn from(raw: u64) -> Self {
        Cycle(raw)
    }
}

impl From<Cycle> for u64 {
    fn from(c: Cycle) -> Self {
        c.0
    }
}

impl Add for Cycle {
    type Output = Cycle;
    fn add(self, rhs: Cycle) -> Cycle {
        Cycle(self.0 + rhs.0)
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;
    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl AddAssign for Cycle {
    fn add_assign(&mut self, rhs: Cycle) {
        self.0 += rhs.0;
    }
}

impl AddAssign<u64> for Cycle {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub for Cycle {
    type Output = Cycle;
    fn sub(self, rhs: Cycle) -> Cycle {
        Cycle(self.0 - rhs.0)
    }
}

impl Sum for Cycle {
    fn sum<I: Iterator<Item = Cycle>>(iter: I) -> Cycle {
        Cycle(iter.map(|c| c.0).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_behaves_like_u64() {
        let a = Cycle::new(10);
        let b = Cycle::new(3);
        assert_eq!(a + b, Cycle::new(13));
        assert_eq!(a - b, Cycle::new(7));
        assert_eq!(a + 5u64, Cycle::new(15));
    }

    #[test]
    fn saturating_since_never_underflows() {
        let early = Cycle::new(5);
        let late = Cycle::new(9);
        assert_eq!(late.saturating_since(early), Cycle::new(4));
        assert_eq!(early.saturating_since(late), Cycle::ZERO);
    }

    #[test]
    fn sum_of_cycles() {
        let total: Cycle = [1u64, 2, 3].iter().map(|&c| Cycle::new(c)).sum();
        assert_eq!(total, Cycle::new(6));
    }

    #[test]
    fn add_assign_accumulates() {
        let mut c = Cycle::ZERO;
        c += Cycle::new(4);
        c += 6u64;
        assert_eq!(c.get(), 10);
    }
}
