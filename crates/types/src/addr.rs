//! Physical byte addresses and cache-block addresses.

use std::fmt;
use std::ops::{Add, Sub};

use serde::{Deserialize, Serialize};

/// Number of bytes in a cache block (the paper models 64-byte blocks).
pub const BLOCK_BYTES: usize = 64;

/// log2 of [`BLOCK_BYTES`]; shift amount between byte and block addresses.
pub const BLOCK_SHIFT: u32 = 6;

/// Width of the modelled physical address space in bits (the paper assumes 40).
pub const PHYS_ADDR_BITS: u32 = 40;

/// A byte-granularity physical address.
///
/// `Addr` is a thin newtype over `u64`; it exists so that byte addresses and
/// block addresses cannot be mixed up when they flow between the trace
/// generator, the caches, and the prefetchers.
///
/// # Examples
///
/// ```
/// use shift_types::Addr;
/// let a = Addr::new(0x1000);
/// assert_eq!(a.block().get(), 0x1000 >> 6);
/// ```
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Addr(u64);

impl Addr {
    /// Creates a byte address.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// Returns the raw byte address.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Returns the cache block containing this byte address.
    #[inline]
    pub const fn block(self) -> BlockAddr {
        BlockAddr(self.0 >> BLOCK_SHIFT)
    }

    /// Returns the offset of this byte address within its cache block.
    #[inline]
    pub const fn block_offset(self) -> u64 {
        self.0 & (BLOCK_BYTES as u64 - 1)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#012x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Self {
        Addr(raw)
    }
}

impl From<Addr> for u64 {
    fn from(a: Addr) -> Self {
        a.0
    }
}

impl Add<u64> for Addr {
    type Output = Addr;
    fn add(self, rhs: u64) -> Addr {
        Addr(self.0 + rhs)
    }
}

impl Sub<Addr> for Addr {
    type Output = u64;
    fn sub(self, rhs: Addr) -> u64 {
        self.0 - rhs.0
    }
}

/// A cache-block-granularity address (a byte address divided by [`BLOCK_BYTES`]).
///
/// All prefetcher history structures in this repository (spatial region
/// records, index tables, stream address buffers) operate on `BlockAddr`
/// values, exactly as the hardware proposals in the paper do.
///
/// # Examples
///
/// ```
/// use shift_types::{Addr, BlockAddr};
/// let b = BlockAddr::new(0x40);
/// assert_eq!(b.base_addr(), Addr::new(0x40 << 6));
/// assert_eq!(b.next(), BlockAddr::new(0x41));
/// assert_eq!(b.offset_from(BlockAddr::new(0x3e)), Some(2));
/// ```
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct BlockAddr(u64);

impl BlockAddr {
    /// Creates a block address from a raw block number.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        BlockAddr(raw)
    }

    /// Returns the raw block number.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Returns the byte address of the first byte of this block.
    #[inline]
    pub const fn base_addr(self) -> Addr {
        Addr(self.0 << BLOCK_SHIFT)
    }

    /// Returns the block immediately following this one.
    #[inline]
    pub const fn next(self) -> BlockAddr {
        BlockAddr(self.0 + 1)
    }

    /// Returns the block `n` positions after this one.
    #[inline]
    pub const fn offset(self, n: u64) -> BlockAddr {
        BlockAddr(self.0 + n)
    }

    /// Returns `self - other` if `self >= other`, i.e. how many blocks after
    /// `other` this block lies.
    #[inline]
    pub fn offset_from(self, other: BlockAddr) -> Option<u64> {
        self.0.checked_sub(other.0)
    }

    /// Number of bits needed to store a block address in the modelled
    /// physical address space (40-bit addresses, 64-byte blocks → 34 bits).
    pub const STORAGE_BITS: u32 = PHYS_ADDR_BITS - BLOCK_SHIFT;
}

impl fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blk:{:#x}", self.0)
    }
}

impl fmt::LowerHex for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for BlockAddr {
    fn from(raw: u64) -> Self {
        BlockAddr(raw)
    }
}

impl From<BlockAddr> for u64 {
    fn from(b: BlockAddr) -> Self {
        b.0
    }
}

impl Add<u64> for BlockAddr {
    type Output = BlockAddr;
    fn add(self, rhs: u64) -> BlockAddr {
        BlockAddr(self.0 + rhs)
    }
}

impl Sub<BlockAddr> for BlockAddr {
    type Output = u64;
    fn sub(self, rhs: BlockAddr) -> u64 {
        self.0 - rhs.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_of_addr_truncates_offset() {
        let a = Addr::new(0x12345);
        assert_eq!(a.block(), BlockAddr::new(0x12345 >> 6));
        assert_eq!(a.block_offset(), 0x12345 & 63);
    }

    #[test]
    fn block_base_addr_round_trips() {
        let b = BlockAddr::new(77);
        assert_eq!(b.base_addr().block(), b);
        assert_eq!(b.base_addr().block_offset(), 0);
    }

    #[test]
    fn next_and_offset_are_consistent() {
        let b = BlockAddr::new(10);
        assert_eq!(b.next(), b.offset(1));
        assert_eq!(b.offset(4) - b, 4);
        assert_eq!(b.offset(4).offset_from(b), Some(4));
        assert_eq!(b.offset_from(b.offset(4)), None);
    }

    #[test]
    fn storage_bits_matches_paper() {
        // 40-bit physical addresses with 64-byte blocks → 34-bit block addresses,
        // the quantity the paper uses when costing history records.
        assert_eq!(BlockAddr::STORAGE_BITS, 34);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", Addr::new(0)).is_empty());
        assert!(!format!("{}", BlockAddr::new(0)).is_empty());
        assert!(!format!("{:?}", Addr::new(0)).is_empty());
    }

    #[test]
    fn conversions_round_trip() {
        let a: Addr = 0xdead_beefu64.into();
        let raw: u64 = a.into();
        assert_eq!(raw, 0xdead_beef);
        let b: BlockAddr = 42u64.into();
        let raw: u64 = b.into();
        assert_eq!(raw, 42);
    }

    #[test]
    fn arithmetic_on_addr() {
        let a = Addr::new(100);
        assert_eq!(a + 28, Addr::new(128));
        assert_eq!(Addr::new(128) - a, 28);
    }
}
