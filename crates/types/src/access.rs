//! Classification of memory accesses.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The kind of memory reference a core performs.
///
/// The trace generator produces instruction fetches and data loads/stores;
/// the cache hierarchy and the LLC traffic accounting distinguish them.
///
/// # Examples
///
/// ```
/// use shift_types::AccessKind;
/// assert!(AccessKind::InstructionFetch.is_instruction());
/// assert!(!AccessKind::Load.is_instruction());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// An instruction-cache fetch.
    InstructionFetch,
    /// A data load.
    Load,
    /// A data store.
    Store,
}

impl AccessKind {
    /// Returns `true` for instruction fetches.
    #[inline]
    pub const fn is_instruction(self) -> bool {
        matches!(self, AccessKind::InstructionFetch)
    }

    /// Returns `true` for loads and stores.
    #[inline]
    pub const fn is_data(self) -> bool {
        !self.is_instruction()
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AccessKind::InstructionFetch => "ifetch",
            AccessKind::Load => "load",
            AccessKind::Store => "store",
        };
        f.write_str(s)
    }
}

/// The architectural *class* of traffic a request belongs to, used by the LLC
/// and NoC accounting to reproduce the paper's traffic breakdown (Figure 9).
///
/// Baseline traffic comprises [`AccessClass::Demand`] requests (instruction
/// and data). SHIFT adds history-buffer reads ([`AccessClass::HistoryRead`],
/// "LogRead" in the paper), history-buffer writes ([`AccessClass::HistoryWrite`],
/// "LogWrite"), prefetches that are discarded before use
/// ([`AccessClass::Discard`]) and index-pointer updates in the tag array
/// ([`AccessClass::IndexUpdate`]).
///
/// # Examples
///
/// ```
/// use shift_types::AccessClass;
/// assert!(AccessClass::Demand.is_baseline());
/// assert!(!AccessClass::HistoryRead.is_baseline());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessClass {
    /// A demand instruction or data request from a core.
    Demand,
    /// A prefetch request that was later referenced by the core (useful).
    PrefetchUseful,
    /// A prefetch request whose block was discarded before being referenced.
    Discard,
    /// A read of the virtualized history buffer from the LLC ("LogRead").
    HistoryRead,
    /// A write of the virtualized history buffer into the LLC ("LogWrite").
    HistoryWrite,
    /// An index-pointer update in the LLC tag array.
    IndexUpdate,
}

impl AccessClass {
    /// Returns `true` if this class is part of the *baseline* (no-prefetcher)
    /// traffic that Figure 9 normalizes against.
    #[inline]
    pub const fn is_baseline(self) -> bool {
        matches!(self, AccessClass::Demand)
    }

    /// Returns `true` if this class is traffic introduced by a prefetcher.
    #[inline]
    pub const fn is_prefetcher_overhead(self) -> bool {
        !self.is_baseline() && !matches!(self, AccessClass::PrefetchUseful)
    }

    /// All variants, in a stable reporting order.
    pub const ALL: [AccessClass; 6] = [
        AccessClass::Demand,
        AccessClass::PrefetchUseful,
        AccessClass::Discard,
        AccessClass::HistoryRead,
        AccessClass::HistoryWrite,
        AccessClass::IndexUpdate,
    ];

    /// This class's position in [`AccessClass::ALL`].
    ///
    /// Traffic accounting indexes per-class counter arrays with it on every
    /// LLC access and NoC transfer, so it must be a constant-time lookup, not
    /// a search over `ALL`.
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            AccessClass::Demand => 0,
            AccessClass::PrefetchUseful => 1,
            AccessClass::Discard => 2,
            AccessClass::HistoryRead => 3,
            AccessClass::HistoryWrite => 4,
            AccessClass::IndexUpdate => 5,
        }
    }
}

impl fmt::Display for AccessClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AccessClass::Demand => "demand",
            AccessClass::PrefetchUseful => "prefetch",
            AccessClass::Discard => "discard",
            AccessClass::HistoryRead => "log-read",
            AccessClass::HistoryWrite => "log-write",
            AccessClass::IndexUpdate => "index-update",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_matches_position_in_all() {
        for (i, class) in AccessClass::ALL.iter().enumerate() {
            assert_eq!(class.index(), i, "index() out of sync with ALL for {class}");
        }
    }

    #[test]
    fn instruction_vs_data() {
        assert!(AccessKind::InstructionFetch.is_instruction());
        assert!(AccessKind::Load.is_data());
        assert!(AccessKind::Store.is_data());
    }

    #[test]
    fn baseline_classification() {
        assert!(AccessClass::Demand.is_baseline());
        for class in [
            AccessClass::Discard,
            AccessClass::HistoryRead,
            AccessClass::HistoryWrite,
            AccessClass::IndexUpdate,
        ] {
            assert!(!class.is_baseline(), "{class} must not be baseline");
            assert!(class.is_prefetcher_overhead(), "{class} is overhead");
        }
        assert!(!AccessClass::PrefetchUseful.is_prefetcher_overhead());
    }

    #[test]
    fn all_variants_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for class in AccessClass::ALL {
            assert!(seen.insert(format!("{class:?}")));
        }
        assert_eq!(seen.len(), 6);
    }

    #[test]
    fn display_is_nonempty() {
        for class in AccessClass::ALL {
            assert!(!class.to_string().is_empty());
        }
        assert_eq!(AccessKind::Load.to_string(), "load");
    }
}
