//! Property tests for address arithmetic.

use proptest::prelude::*;
use shift_types::{Addr, BlockAddr, Cycle, BLOCK_BYTES};

proptest! {
    #[test]
    fn block_base_is_aligned_and_contains_addr(raw in 0u64..(1 << 40)) {
        let addr = Addr::new(raw);
        let base = addr.block().base_addr();
        prop_assert_eq!(base.get() % BLOCK_BYTES as u64, 0);
        prop_assert!(base.get() <= raw);
        prop_assert!(raw - base.get() < BLOCK_BYTES as u64);
    }

    #[test]
    fn block_offsets_compose(block in 0u64..(1 << 30), a in 0u64..1_000, b in 0u64..1_000) {
        let base = BlockAddr::new(block);
        prop_assert_eq!(base.offset(a).offset(b), base.offset(a + b));
        prop_assert_eq!(base.offset(a).offset_from(base), Some(a));
    }

    #[test]
    fn cycle_saturating_since_never_underflows(a in 0u64..u64::MAX / 2, b in 0u64..u64::MAX / 2) {
        let (x, y) = (Cycle::new(a), Cycle::new(b));
        let d = x.saturating_since(y);
        prop_assert!(d.get() <= a);
        if a >= b {
            prop_assert_eq!(d.get(), a - b);
        } else {
            prop_assert_eq!(d.get(), 0);
        }
    }
}
