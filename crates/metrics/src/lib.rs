//! Area, power, and performance-density models.
//!
//! The paper's headline argument is not raw speedup but *performance per unit
//! area* (performance density, §2.3 and §5.6): a prefetcher whose storage
//! rivals a lean core's area must buy more performance than simply adding
//! another core would. This crate provides the small analytic models needed
//! to reproduce that analysis:
//!
//! * [`AreaModel`] — SRAM area per kilobyte at 40 nm, calibrated to the
//!   paper's figure of 0.9 mm² for PIF's 213 KB of per-core storage, plus the
//!   published core areas (25 / 4.5 / 1.3 mm²).
//! * [`density`] — performance-density arithmetic for Figure 2 and §5.6.
//! * [`PowerModel`] — CACTI-style energy-per-access constants for the LLC and
//!   NoC, used to reproduce the §5.7 estimate that SHIFT's history traffic
//!   costs less than 150 mW in a 16-core CMP.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod area;
pub mod density;
pub mod power;

pub use area::AreaModel;
pub use density::{performance_density, PdComparison};
pub use power::{PowerBreakdown, PowerModel};
