//! SRAM and CMP area model (40 nm).

use serde::{Deserialize, Serialize};
use shift_core::StorageCost;
use shift_cpu::CoreKind;

/// Analytic area model at the paper's 40 nm technology node.
///
/// The single free parameter is the SRAM density, calibrated so that PIF's
/// 213 KB of per-core storage occupies the 0.9 mm² the paper reports
/// (≈ 0.00423 mm²/KB, consistent with CACTI estimates for small SRAMs at
/// 40 nm).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct AreaModel {
    /// SRAM area per kibibyte, in mm².
    pub sram_mm2_per_kib: f64,
}

impl AreaModel {
    /// The calibrated 40 nm model.
    pub fn nm40() -> Self {
        AreaModel {
            sram_mm2_per_kib: 0.9 / 213.0,
        }
    }

    /// Area of `bytes` of SRAM.
    pub fn sram_mm2(&self, bytes: u64) -> f64 {
        bytes as f64 / 1024.0 * self.sram_mm2_per_kib
    }

    /// Area added by a prefetcher design to a CMP with `cores` cores:
    /// all dedicated SRAM (per-core and shared) plus LLC tag-array extensions.
    /// LLC data capacity borrowed by a virtualized history adds no area.
    pub fn prefetcher_mm2(&self, storage: &StorageCost, cores: u16) -> f64 {
        self.sram_mm2(storage.added_sram_bytes(cores))
    }

    /// Area added *per core* by a prefetcher design.
    pub fn prefetcher_mm2_per_core(&self, storage: &StorageCost, cores: u16) -> f64 {
        self.prefetcher_mm2(storage, cores) / cores as f64
    }

    /// Total core area (cores only, excluding the LLC and NoC which are the
    /// same in every configuration being compared) for `cores` cores of
    /// `kind`, plus prefetcher storage.
    pub fn cmp_core_area_mm2(&self, kind: CoreKind, cores: u16, storage: &StorageCost) -> f64 {
        kind.params().area_mm2 * cores as f64 + self.prefetcher_mm2(storage, cores)
    }
}

impl Default for AreaModel {
    fn default() -> Self {
        Self::nm40()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pif_storage_area_matches_calibration_point() {
        let model = AreaModel::nm40();
        let area = model.sram_mm2(213 * 1024);
        assert!((area - 0.9).abs() < 1e-9);
    }

    #[test]
    fn pif_32k_per_core_area_is_about_0_9_mm2() {
        let model = AreaModel::nm40();
        let storage = StorageCost {
            per_core_bytes: 213 * 1024,
            shared_bytes: 0,
            llc_data_bytes: 0,
            llc_tag_bytes: 0,
        };
        let per_core = model.prefetcher_mm2_per_core(&storage, 16);
        assert!((per_core - 0.9).abs() < 0.01);
        // Aggregate over 16 cores ≈ 14.4 mm², the paper's §5.6 number.
        assert!((model.prefetcher_mm2(&storage, 16) - 14.4).abs() < 0.1);
    }

    #[test]
    fn shift_aggregate_area_is_about_one_mm2() {
        // SHIFT's only added SRAM is the 240 KB tag extension plus tiny
        // per-core SABs; the paper reports 0.96 mm² total.
        let model = AreaModel::nm40();
        let storage = StorageCost {
            per_core_bytes: 256,
            shared_bytes: 0,
            llc_data_bytes: 171 * 1024,
            llc_tag_bytes: 240 * 1024,
        };
        let total = model.prefetcher_mm2(&storage, 16);
        assert!((0.9..1.2).contains(&total), "total {total}");
    }

    #[test]
    fn cmp_area_scales_with_core_count_and_kind() {
        let model = AreaModel::nm40();
        let none = StorageCost::none();
        let lean = model.cmp_core_area_mm2(CoreKind::LeanIO, 16, &none);
        let fat = model.cmp_core_area_mm2(CoreKind::FatOoO, 16, &none);
        assert!((lean - 16.0 * 1.3).abs() < 1e-9);
        assert!(fat > lean);
    }
}
