//! Performance-density arithmetic (Figure 2 and §5.6).

use serde::{Deserialize, Serialize};

/// Performance density: performance per unit area.
///
/// # Panics
///
/// Panics if `area_mm2` is not positive.
pub fn performance_density(performance: f64, area_mm2: f64) -> f64 {
    assert!(area_mm2 > 0.0, "area must be positive");
    performance / area_mm2
}

/// Comparison of a prefetcher-equipped design against its no-prefetch
/// baseline, in the relative-performance vs relative-area plane of Figure 2.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PdComparison {
    /// Performance of the design relative to the baseline (speedup).
    pub relative_performance: f64,
    /// Area of the design relative to the baseline.
    pub relative_area: f64,
}

impl PdComparison {
    /// Creates a comparison from baseline and design (performance, area)
    /// pairs.
    ///
    /// # Panics
    ///
    /// Panics if any quantity is not positive.
    pub fn new(
        baseline_performance: f64,
        baseline_area_mm2: f64,
        design_performance: f64,
        design_area_mm2: f64,
    ) -> Self {
        assert!(
            baseline_performance > 0.0
                && baseline_area_mm2 > 0.0
                && design_performance > 0.0
                && design_area_mm2 > 0.0,
            "performance and area must be positive"
        );
        PdComparison {
            relative_performance: design_performance / baseline_performance,
            relative_area: design_area_mm2 / baseline_area_mm2,
        }
    }

    /// Performance-density of the design relative to the baseline
    /// (> 1 means the design lands in Figure 2's shaded "PD gain" region).
    pub fn pd_ratio(&self) -> f64 {
        self.relative_performance / self.relative_area
    }

    /// Returns `true` if the design improves performance density, i.e. the
    /// relative performance exceeds the relative area.
    pub fn improves_density(&self) -> bool {
        self.pd_ratio() > 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_is_perf_over_area() {
        assert!((performance_density(2.0, 4.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn adding_cores_keeps_density_constant() {
        // Twice the performance in twice the area: PD ratio of exactly 1.
        let cmp = PdComparison::new(1.0, 10.0, 2.0, 20.0);
        assert!((cmp.pd_ratio() - 1.0).abs() < 1e-12);
        assert!(!cmp.improves_density());
    }

    #[test]
    fn paper_fat_core_example_gains_density() {
        // §2.3: PIF on a Xeon adds 4% area for 23% performance → PD gain.
        let cmp = PdComparison::new(1.0, 25.0, 1.23, 25.0 + 0.9);
        assert!(cmp.improves_density());
        assert!(cmp.pd_ratio() > 1.15);
    }

    #[test]
    fn paper_lean_io_example_loses_density() {
        // §2.3: PIF on a Cortex-A8 adds 0.9 mm² to a 1.3 mm² core for 17%
        // performance → PD loss.
        let cmp = PdComparison::new(1.0, 1.3, 1.17, 1.3 + 0.9);
        assert!(!cmp.improves_density());
        assert!(cmp.pd_ratio() < 0.75);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_area_rejected() {
        let _ = performance_density(1.0, 0.0);
    }
}
