//! Power overhead model (§5.7).
//!
//! SHIFT's power overhead comes from two sources: history-buffer reads and
//! writes in the LLC data array (plus the index reads/writes in the tag
//! array), and the NoC traffic that carries them. The paper uses CACTI for
//! the LLC energies and a custom NoC model, and finds a total overhead below
//! 150 mW for a 16-core CMP — under 2 % of even the lowest-power core
//! evaluated. This module reproduces that estimate with energy-per-event
//! constants in the range CACTI reports for an 8 MB LLC at 40 nm.

use serde::{Deserialize, Serialize};

/// Energy-per-event constants and the clock frequency.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Energy of one LLC data-array access (a 64-byte block read or write),
    /// in nanojoules.
    pub llc_data_access_nj: f64,
    /// Energy of one LLC tag-array access (index pointer read/update), in
    /// nanojoules.
    pub llc_tag_access_nj: f64,
    /// Energy of moving one flit across one hop (link + router), in
    /// nanojoules.
    pub noc_flit_hop_nj: f64,
    /// Core clock frequency in hertz (2 GHz in the paper).
    pub clock_hz: f64,
}

impl PowerModel {
    /// The calibrated 40 nm model.
    pub fn nm40() -> Self {
        PowerModel {
            llc_data_access_nj: 0.55,
            llc_tag_access_nj: 0.04,
            noc_flit_hop_nj: 0.018,
            clock_hz: 2.0e9,
        }
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        Self::nm40()
    }
}

/// Breakdown of the prefetcher-induced power overhead.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PowerBreakdown {
    /// Power spent on history-buffer reads and writes in the LLC data array,
    /// in milliwatts.
    pub llc_data_mw: f64,
    /// Power spent on index reads/updates in the LLC tag array, in milliwatts.
    pub llc_tag_mw: f64,
    /// Power spent moving the extra traffic across the NoC, in milliwatts.
    pub noc_mw: f64,
}

impl PowerBreakdown {
    /// Total overhead in milliwatts.
    pub fn total_mw(&self) -> f64 {
        self.llc_data_mw + self.llc_tag_mw + self.noc_mw
    }
}

impl PowerModel {
    /// Computes the power overhead of the prefetcher-induced activity over a
    /// simulated interval of `cycles` core cycles.
    ///
    /// * `history_block_accesses` — LLC data-array accesses for history reads
    ///   and writes.
    /// * `index_accesses` — LLC tag-array accesses for index lookups/updates.
    /// * `extra_flit_hops` — NoC flit-hops carrying prefetcher traffic.
    ///
    /// # Panics
    ///
    /// Panics if `cycles` is zero.
    pub fn overhead(
        &self,
        history_block_accesses: u64,
        index_accesses: u64,
        extra_flit_hops: u64,
        cycles: u64,
    ) -> PowerBreakdown {
        assert!(cycles > 0, "interval must cover at least one cycle");
        let seconds = cycles as f64 / self.clock_hz;
        let to_mw = |energy_nj: f64| energy_nj * 1e-9 / seconds * 1e3;
        PowerBreakdown {
            llc_data_mw: to_mw(history_block_accesses as f64 * self.llc_data_access_nj),
            llc_tag_mw: to_mw(index_accesses as f64 * self.llc_tag_access_nj),
            noc_mw: to_mw(extra_flit_hops as f64 * self.noc_flit_hop_nj),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shift_like_activity_stays_below_150_mw() {
        // Representative 16-core numbers: over a 10 M-cycle window the history
        // traffic is a few percent of ~2 M baseline LLC accesses, plus index
        // updates and the NoC hops carrying them.
        let model = PowerModel::nm40();
        let cycles = 10_000_000u64;
        let history_accesses = 150_000u64;
        let index_accesses = 400_000u64;
        let flit_hops = 3_000_000u64;
        let breakdown = model.overhead(history_accesses, index_accesses, flit_hops, cycles);
        assert!(breakdown.total_mw() > 0.0);
        assert!(
            breakdown.total_mw() < 150.0,
            "total {} mW exceeds the paper's bound",
            breakdown.total_mw()
        );
    }

    #[test]
    fn power_scales_linearly_with_activity() {
        let model = PowerModel::nm40();
        let a = model.overhead(1_000, 1_000, 1_000, 1_000_000);
        let b = model.overhead(2_000, 2_000, 2_000, 1_000_000);
        assert!((b.total_mw() - 2.0 * a.total_mw()).abs() < 1e-9);
    }

    #[test]
    fn breakdown_sums_to_total() {
        let model = PowerModel::nm40();
        let b = model.overhead(10, 20, 30, 1_000);
        assert!((b.total_mw() - (b.llc_data_mw + b.llc_tag_mw + b.noc_mw)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one cycle")]
    fn zero_cycles_rejected() {
        PowerModel::nm40().overhead(1, 1, 1, 0);
    }
}
