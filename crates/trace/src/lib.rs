//! Synthetic server-workload trace generation for the SHIFT reproduction.
//!
//! The original paper evaluates SHIFT with Flexus/Simics full-system traces of
//! commercial server stacks (TPC-C on DB2 and Oracle, TPC-H, SPECweb99, Darwin
//! streaming, Nutch web search). Those software stacks and traces are not
//! available here, so this crate provides the closest synthetic equivalent:
//! a parameterized generator that reproduces the *statistical structure* the
//! prefetchers in the paper rely on:
//!
//! * **Multi-megabyte instruction working sets** — a workload's code layout
//!   consists of hundreds to thousands of functions, each several cache blocks
//!   long, laid out in a dedicated region of the physical address space.
//! * **Recurring temporal streams** — work arrives as *requests*; each request
//!   type has a fixed call path through the code layout, so the instruction
//!   block sequence of a request recurs every time that request type is served.
//! * **Small control-flow variation** — individual fragments of a function can
//!   be skipped probabilistically (data-dependent branches), and operating
//!   system handlers are injected at a configurable rate, fragmenting streams
//!   exactly as §6.1 of the paper describes.
//! * **Cross-core commonality** — all cores of a workload share the same code
//!   layout and request types but draw independent request interleavings, so
//!   their access streams are highly similar but not identical (Figure 3).
//! * **Data references** — a simple hot/cold data model produces L1-D misses
//!   and the baseline LLC data traffic against which Figure 9 normalizes.
//!
//! # Quick start
//!
//! ```
//! use shift_trace::{presets, CoreTraceGenerator, TraceEvent};
//! use shift_types::CoreId;
//!
//! let spec = presets::web_frontend().scaled_footprint(0.05);
//! let mut generator = CoreTraceGenerator::new(&spec, CoreId::new(0), 42);
//! let code = generator.program().layout().code_region();
//! let os = generator.program().layout().os_region();
//! let mut fetches = 0usize;
//! for event in generator.by_ref().take(10_000) {
//!     if let TraceEvent::Fetch(f) = event {
//!         assert!(code.contains(f.block) || os.contains(f.block));
//!         fetches += 1;
//!     }
//! }
//! assert!(fetches > 1_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod consolidation;
pub mod event;
pub mod fastdiv;
pub mod generator;
pub mod layout;
pub mod presets;
pub mod request;
pub mod stats;
pub mod workload;

pub use consolidation::{ConsolidationSpec, CoreAssignment};
pub use event::{DataEvent, FetchEvent, TraceEvent};
pub use fastdiv::InvariantModulus;
pub use generator::CoreTraceGenerator;
pub use layout::{AddressRegion, CodeLayout, Fragment, Function};
pub use request::{CallStep, RequestType};
pub use stats::TraceStats;
pub use workload::{Scale, WorkloadSpec};
