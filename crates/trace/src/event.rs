//! Events emitted by a per-core trace generator.

use serde::{Deserialize, Serialize};
use shift_types::{AccessKind, BlockAddr};

/// One visit of the core front end to an instruction cache block.
///
/// A `FetchEvent` represents the retire-order access the paper's prefetchers
/// record: the core entered `block` and retired `instructions` instructions
/// from it before control flow left the block.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FetchEvent {
    /// The instruction cache block being fetched.
    pub block: BlockAddr,
    /// Number of instructions retired from this block visit (used by the
    /// timing model to convert block visits into execution cycles).
    pub instructions: u8,
}

impl FetchEvent {
    /// Creates a fetch event.
    pub fn new(block: BlockAddr, instructions: u8) -> Self {
        FetchEvent {
            block,
            instructions,
        }
    }
}

/// One data reference (load or store) performed by the core.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DataEvent {
    /// Whether the reference is a load or a store.
    pub kind: AccessKind,
    /// The data cache block referenced.
    pub block: BlockAddr,
}

impl DataEvent {
    /// Creates a data event.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is [`AccessKind::InstructionFetch`]; instruction
    /// fetches are represented by [`FetchEvent`].
    pub fn new(kind: AccessKind, block: BlockAddr) -> Self {
        assert!(
            kind.is_data(),
            "DataEvent must carry a load or store, not an instruction fetch"
        );
        DataEvent { kind, block }
    }
}

/// An event in a core's retire-order trace.
///
/// The trace is an interleaving of instruction-block visits and the data
/// references made by the instructions in those blocks, in program order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TraceEvent {
    /// An instruction-block visit.
    Fetch(FetchEvent),
    /// A data load or store.
    Data(DataEvent),
}

impl TraceEvent {
    /// Returns the fetch event if this is an instruction-block visit.
    pub fn as_fetch(&self) -> Option<&FetchEvent> {
        match self {
            TraceEvent::Fetch(f) => Some(f),
            TraceEvent::Data(_) => None,
        }
    }

    /// Returns the data event if this is a load or store.
    pub fn as_data(&self) -> Option<&DataEvent> {
        match self {
            TraceEvent::Data(d) => Some(d),
            TraceEvent::Fetch(_) => None,
        }
    }

    /// Returns the block address referenced by the event, regardless of kind.
    pub fn block(&self) -> BlockAddr {
        match self {
            TraceEvent::Fetch(f) => f.block,
            TraceEvent::Data(d) => d.block,
        }
    }
}

impl From<FetchEvent> for TraceEvent {
    fn from(f: FetchEvent) -> Self {
        TraceEvent::Fetch(f)
    }
}

impl From<DataEvent> for TraceEvent {
    fn from(d: DataEvent) -> Self {
        TraceEvent::Data(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fetch_accessors() {
        let e: TraceEvent = FetchEvent::new(BlockAddr::new(7), 12).into();
        assert!(e.as_fetch().is_some());
        assert!(e.as_data().is_none());
        assert_eq!(e.block(), BlockAddr::new(7));
    }

    #[test]
    fn data_accessors() {
        let e: TraceEvent = DataEvent::new(AccessKind::Load, BlockAddr::new(9)).into();
        assert!(e.as_data().is_some());
        assert!(e.as_fetch().is_none());
        assert_eq!(e.block(), BlockAddr::new(9));
    }

    #[test]
    #[should_panic(expected = "load or store")]
    fn data_event_rejects_instruction_kind() {
        let _ = DataEvent::new(AccessKind::InstructionFetch, BlockAddr::new(1));
    }
}
