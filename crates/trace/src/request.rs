//! Request types: the recurring control-flow templates of a server workload.
//!
//! Server workloads process large numbers of similar requests. Each *request
//! type* (e.g. "new-order transaction", "HTTP GET of a static page") is a
//! fixed call path through the workload's functions; serving a request
//! executes that path with minor data-dependent variation. Because the path
//! is fixed, the instruction-block sequence of a request type recurs every
//! time the type is served — these recurrences are the temporal streams that
//! stream-based prefetchers record and replay.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// One step in a request's call path.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CallStep {
    /// Index of the called function in the workload's [`CodeLayout`]
    /// (application functions only).
    ///
    /// [`CodeLayout`]: crate::CodeLayout
    pub function: usize,
    /// Probability that this call is executed by a given request instance.
    /// `1.0` means the call is unconditional.
    pub execute_probability: f64,
}

impl CallStep {
    /// Creates an unconditional call step.
    pub fn always(function: usize) -> Self {
        CallStep {
            function,
            execute_probability: 1.0,
        }
    }

    /// Creates a conditional call step executed with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `(0, 1]`.
    pub fn conditional(function: usize, p: f64) -> Self {
        assert!(p > 0.0 && p <= 1.0, "execute probability must be in (0, 1]");
        CallStep {
            function,
            execute_probability: p,
        }
    }
}

/// A request type: a weighted, recurring call path through the code layout.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RequestType {
    name: String,
    steps: Vec<CallStep>,
    weight: f64,
}

impl RequestType {
    /// Creates a request type from an explicit call path.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is empty or `weight` is not positive.
    pub fn new(name: impl Into<String>, steps: Vec<CallStep>, weight: f64) -> Self {
        assert!(!steps.is_empty(), "request type needs at least one call");
        assert!(weight > 0.0, "request weight must be positive");
        RequestType {
            name: name.into(),
            steps,
            weight,
        }
    }

    /// Synthesizes a request type as a random call path.
    ///
    /// `hot_functions` are shared utility functions (dispatch, logging, memory
    /// allocation, network I/O) that most request types call frequently; they
    /// are drawn from the first `hot_functions` of the layout with probability
    /// `hot_call_fraction` per step, giving the instruction stream the hot/cold
    /// structure observed in real server software.
    #[allow(clippy::too_many_arguments)]
    pub fn generate<R: Rng + ?Sized>(
        rng: &mut R,
        name: impl Into<String>,
        total_functions: usize,
        hot_functions: usize,
        calls: usize,
        hot_call_fraction: f64,
        conditional_call_fraction: f64,
        weight: f64,
    ) -> Self {
        assert!(total_functions > 0, "layout has no functions");
        assert!(calls > 0, "request must make at least one call");
        let hot = hot_functions.clamp(1, total_functions);
        let mut steps = Vec::with_capacity(calls);
        for i in 0..calls {
            let function = if rng.gen_bool(hot_call_fraction.clamp(0.0, 1.0)) {
                rng.gen_range(0..hot)
            } else {
                rng.gen_range(0..total_functions)
            };
            // The first call (request entry) is always executed; later calls
            // may be conditional.
            let step = if i > 0 && rng.gen_bool(conditional_call_fraction.clamp(0.0, 1.0)) {
                CallStep::conditional(function, rng.gen_range(0.5..1.0))
            } else {
                CallStep::always(function)
            };
            steps.push(step);
        }
        RequestType::new(name, steps, weight)
    }

    /// The request type's human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The call path.
    pub fn steps(&self) -> &[CallStep] {
        &self.steps
    }

    /// Relative frequency of this request type in the workload mix.
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// Expected number of calls executed by one request instance.
    pub fn expected_calls(&self) -> f64 {
        self.steps.iter().map(|s| s.execute_probability).sum()
    }
}

/// Selects a request type index according to the mix weights.
///
/// # Panics
///
/// Panics if `types` is empty.
pub fn pick_request<R: Rng + ?Sized>(rng: &mut R, types: &[RequestType]) -> usize {
    let total: f64 = types.iter().map(|t| t.weight()).sum();
    pick_request_with_total(rng, types, total)
}

/// [`pick_request`] with the weight sum precomputed (the trace generator
/// caches it on the compiled program so the per-request hot path skips the
/// summation).
///
/// # Panics
///
/// Panics if `types` is empty.
#[inline]
pub fn pick_request_with_total<R: Rng + ?Sized>(
    rng: &mut R,
    types: &[RequestType],
    total: f64,
) -> usize {
    assert!(!types.is_empty(), "workload has no request types");
    let mut draw = rng.gen_range(0.0..total);
    for (i, t) in types.iter().enumerate() {
        if draw < t.weight() {
            return i;
        }
        draw -= t.weight();
    }
    types.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn generated_request_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(11);
        let req = RequestType::generate(&mut rng, "q1", 100, 10, 40, 0.3, 0.2, 1.0);
        assert_eq!(req.steps().len(), 40);
        for step in req.steps() {
            assert!(step.function < 100);
            assert!(step.execute_probability > 0.0 && step.execute_probability <= 1.0);
        }
        assert!(req.expected_calls() <= 40.0);
        assert!(req.expected_calls() > 20.0);
    }

    #[test]
    fn first_step_is_unconditional() {
        let mut rng = SmallRng::seed_from_u64(12);
        for seed in 0..20u64 {
            let mut r = SmallRng::seed_from_u64(seed);
            let req = RequestType::generate(&mut r, "q", 50, 5, 10, 0.2, 0.9, 1.0);
            assert_eq!(req.steps()[0].execute_probability, 1.0);
            let _ = &mut rng;
        }
    }

    #[test]
    fn pick_request_covers_all_types_over_many_draws() {
        let mut rng = SmallRng::seed_from_u64(13);
        let types = vec![
            RequestType::new("a", vec![CallStep::always(0)], 1.0),
            RequestType::new("b", vec![CallStep::always(1)], 2.0),
            RequestType::new("c", vec![CallStep::always(2)], 4.0),
        ];
        let mut counts = [0usize; 3];
        for _ in 0..7000 {
            counts[pick_request(&mut rng, &types)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 0));
        // Heavier weights are picked more often.
        assert!(counts[2] > counts[1]);
        assert!(counts[1] > counts[0]);
    }

    #[test]
    #[should_panic(expected = "at least one call")]
    fn empty_request_rejected() {
        let _ = RequestType::new("empty", vec![], 1.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn non_positive_weight_rejected() {
        let _ = RequestType::new("w", vec![CallStep::always(0)], 0.0);
    }
}
