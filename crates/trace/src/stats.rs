//! Trace statistics: footprint, reuse, and sequential-run measurements.
//!
//! These statistics characterize the synthetic traces the same way the paper
//! characterizes its workloads (multi-megabyte instruction working sets,
//! recurring streams, short sequential runs). They are used by tests to check
//! that the generator produces server-like streams and by the documentation
//! harness to report trace properties alongside each experiment.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use shift_types::BlockAddr;

use crate::event::FetchEvent;

/// Aggregate statistics over a fetch stream.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Number of fetch events observed.
    pub fetches: u64,
    /// Number of instructions retired.
    pub instructions: u64,
    /// Number of distinct instruction blocks touched.
    pub unique_blocks: u64,
    /// Number of fetches whose block is exactly the previous block plus one
    /// (the accesses a next-line prefetcher can cover).
    pub sequential_fetches: u64,
    /// Number of fetches to a block already touched earlier in the stream.
    pub reused_fetches: u64,
}

impl TraceStats {
    /// Computes statistics over a fetch stream.
    pub fn from_fetches<I>(fetches: I) -> Self
    where
        I: IntoIterator<Item = FetchEvent>,
    {
        let mut collector = TraceStatsCollector::new();
        for f in fetches {
            collector.observe(&f);
        }
        collector.finish()
    }

    /// Instruction footprint in bytes.
    pub fn footprint_bytes(&self) -> u64 {
        self.unique_blocks * shift_types::BLOCK_BYTES as u64
    }

    /// Fraction of fetches that target the block after the previous one.
    pub fn sequential_fraction(&self) -> f64 {
        if self.fetches == 0 {
            0.0
        } else {
            self.sequential_fetches as f64 / self.fetches as f64
        }
    }

    /// Fraction of fetches that revisit a previously-touched block.
    pub fn reuse_fraction(&self) -> f64 {
        if self.fetches == 0 {
            0.0
        } else {
            self.reused_fetches as f64 / self.fetches as f64
        }
    }

    /// Average instructions retired per block visit.
    pub fn instructions_per_fetch(&self) -> f64 {
        if self.fetches == 0 {
            0.0
        } else {
            self.instructions as f64 / self.fetches as f64
        }
    }
}

/// Incremental collector for [`TraceStats`].
#[derive(Clone, Debug, Default)]
pub struct TraceStatsCollector {
    stats: TraceStats,
    last_block: Option<BlockAddr>,
    visit_counts: HashMap<BlockAddr, u64>,
}

impl TraceStatsCollector {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one fetch event.
    pub fn observe(&mut self, fetch: &FetchEvent) {
        self.stats.fetches += 1;
        self.stats.instructions += fetch.instructions as u64;
        if let Some(prev) = self.last_block {
            if fetch.block == prev.next() {
                self.stats.sequential_fetches += 1;
            }
        }
        let count = self.visit_counts.entry(fetch.block).or_insert(0);
        if *count > 0 {
            self.stats.reused_fetches += 1;
        }
        *count += 1;
        self.last_block = Some(fetch.block);
    }

    /// Finishes collection and returns the statistics.
    pub fn finish(mut self) -> TraceStats {
        self.stats.unique_blocks = self.visit_counts.len() as u64;
        self.stats
    }

    /// Returns per-block visit counts (consumes the collector).
    pub fn into_visit_counts(self) -> HashMap<BlockAddr, u64> {
        self.visit_counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::CoreTraceGenerator;
    use crate::presets;
    use shift_types::CoreId;

    fn stream(n: usize) -> Vec<FetchEvent> {
        let mut gen = CoreTraceGenerator::new(&presets::tiny(), CoreId::new(0), 2);
        (0..n).map(|_| gen.next_fetch()).collect()
    }

    #[test]
    fn empty_stats_are_zero() {
        let stats = TraceStats::from_fetches(Vec::new());
        assert_eq!(stats.fetches, 0);
        assert_eq!(stats.sequential_fraction(), 0.0);
        assert_eq!(stats.reuse_fraction(), 0.0);
        assert_eq!(stats.instructions_per_fetch(), 0.0);
    }

    #[test]
    fn hand_built_stream_counts() {
        let fetches = vec![
            FetchEvent::new(BlockAddr::new(10), 8),
            FetchEvent::new(BlockAddr::new(11), 8),
            FetchEvent::new(BlockAddr::new(20), 8),
            FetchEvent::new(BlockAddr::new(10), 8),
            FetchEvent::new(BlockAddr::new(11), 8),
        ];
        let stats = TraceStats::from_fetches(fetches);
        assert_eq!(stats.fetches, 5);
        assert_eq!(stats.unique_blocks, 3);
        // 10→11 (twice) are sequential; 11→20 and 20→10 are not.
        assert_eq!(stats.sequential_fetches, 2);
        assert_eq!(stats.reused_fetches, 2);
        assert_eq!(stats.instructions, 40);
        assert_eq!(stats.footprint_bytes(), 3 * 64);
    }

    #[test]
    fn synthetic_trace_has_server_like_structure() {
        let stats = TraceStats::from_fetches(stream(30_000));
        // Heavy reuse (temporal streams recur)…
        assert!(
            stats.reuse_fraction() > 0.8,
            "reuse {}",
            stats.reuse_fraction()
        );
        // …but only partial sequentiality (frequent discontinuities), which is
        // why next-line prefetching is not enough.
        let seq = stats.sequential_fraction();
        assert!(
            (0.2..0.8).contains(&seq),
            "sequential fraction {seq} outside server-like range"
        );
        assert!(stats.instructions_per_fetch() >= 6.0);
    }

    #[test]
    fn visit_counts_sum_to_fetches() {
        let mut collector = TraceStatsCollector::new();
        let fetches = stream(5_000);
        for f in &fetches {
            collector.observe(f);
        }
        let counts = collector.into_visit_counts();
        let total: u64 = counts.values().sum();
        assert_eq!(total, fetches.len() as u64);
    }
}
