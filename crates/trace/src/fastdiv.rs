//! Strength-reduced modulo by a loop-invariant divisor.
//!
//! The trace generator's uniform draws reduce a raw 64-bit RNG word with
//! `x % span`, and every span (instructions per block, data footprint sizes,
//! handler counts) is fixed for the lifetime of a generator. A hardware
//! 64-bit division costs ~25 cycles on the per-event hot path; this module
//! precomputes the Granlund–Montgomery round-up magic number once per divisor
//! so each reduction is a widening multiply, an add, and a shift — with a
//! result **bit-identical** to `x % d` for every `x` (locked by exhaustive
//! boundary tests and the golden end-to-end tests, which would catch any
//! deviation in the RNG-draw mapping).

use serde::{Deserialize, Serialize};

/// A divisor with its precomputed magic constants. `rem(x)` equals `x % d`
/// exactly for all `x`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct InvariantModulus {
    d: u64,
    /// Low 64 bits of the 65-bit round-up multiplier (general case), or the
    /// mask `d - 1` for powers of two.
    magic: u64,
    /// Post-multiply shift (general case), or `u32::MAX` marking the
    /// power-of-two fast path.
    shift: u32,
}

const POW2: u32 = u32::MAX;

impl InvariantModulus {
    /// Precomputes the reduction constants for `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d` is zero.
    pub fn new(d: u64) -> Self {
        assert!(d > 0, "modulus must be positive");
        if d.is_power_of_two() {
            return InvariantModulus {
                d,
                magic: d - 1,
                shift: POW2,
            };
        }
        // Granlund–Montgomery round-up method with ℓ = ceil(log2 d): the
        // multiplier m = floor(2^(64+ℓ)/d) + 1 is a 65-bit constant
        // (2^64 < m < 2^65); floor(m·x / 2^(64+ℓ)) = floor(x/d) for every
        // 64-bit x because the rounding error d − (2^(64+ℓ) mod d) is < d ≤ 2^ℓ.
        // Only the low 64 bits of m are stored; `rem` re-adds the implicit
        // 2^64·x term before shifting.
        let l = 64 - d.leading_zeros(); // ceil(log2 d) for a non-power-of-two
        let m = if l == 64 {
            // 2^128 does not fit in u128; since a non-power-of-two never
            // divides 2^128, floor(2^128/d) = floor((2^128 - 1)/d).
            u128::MAX / d as u128 + 1
        } else {
            (1u128 << (64 + l)) / d as u128 + 1
        };
        InvariantModulus {
            d,
            magic: m as u64,
            shift: l,
        }
    }

    /// The divisor.
    pub fn divisor(&self) -> u64 {
        self.d
    }

    /// Computes `x % d` without a division.
    #[inline]
    pub fn rem(&self, x: u64) -> u64 {
        if self.shift == POW2 {
            return x & self.magic;
        }
        // q = floor((x·2^64 + x·magic) / 2^(64+shift)) = floor(x/d); the sum
        // x + hi64(x·magic) is at most 2^65 − 2, so it is exact in u128.
        let hi = (self.magic as u128 * x as u128) >> 64;
        let q = ((x as u128 + hi) >> self.shift) as u64;
        x - q * self.d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(d: u64, x: u64) {
        let m = InvariantModulus::new(d);
        assert_eq!(m.rem(x), x % d, "x={x} d={d}");
    }

    #[test]
    fn matches_hardware_modulo_on_boundaries() {
        for d in [
            1,
            2,
            3,
            5,
            7,
            8,
            10,
            60,
            63,
            64,
            65,
            100,
            255,
            256,
            257,
            1_000,
            4_095,
            1 << 20,
            (1 << 20) + 1,
            u32::MAX as u64,
            u64::MAX / 2,
            u64::MAX - 1,
            u64::MAX,
        ] {
            for base in [
                0u64,
                1,
                d - 1,
                d,
                d.wrapping_add(1),
                2 * d.min(u64::MAX / 2),
            ] {
                for delta in 0..4 {
                    check(d, base.wrapping_add(delta));
                    check(d, u64::MAX - base.wrapping_add(delta) % 8);
                }
            }
            check(d, u64::MAX);
            check(d, u64::MAX - 1);
        }
    }

    #[test]
    fn matches_hardware_modulo_exhaustively_for_small_divisors() {
        for d in 1..=257u64 {
            let m = InvariantModulus::new(d);
            for x in 0..10_000u64 {
                assert_eq!(m.rem(x), x % d, "x={x} d={d}");
            }
            // Stride through the full 64-bit range.
            let mut x = 0u64;
            loop {
                assert_eq!(m.rem(x), x % d, "x={x} d={d}");
                let (next, overflow) = x.overflowing_add(0x3C0C_A871_65E6_D9CB);
                if overflow {
                    break;
                }
                x = next;
            }
        }
    }

    #[test]
    fn pseudo_random_cross_check() {
        // xorshift-driven cross-check over assorted divisor magnitudes.
        let mut s = 0x1234_5678_9ABC_DEF0u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for _ in 0..200 {
            let d = next() | 1;
            let m = InvariantModulus::new(d);
            for _ in 0..2_000 {
                let x = next();
                assert_eq!(m.rem(x), x % d);
            }
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_divisor_rejected() {
        let _ = InvariantModulus::new(0);
    }
}
