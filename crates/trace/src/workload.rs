//! Workload specification and the compiled per-workload program.

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use shift_types::BlockAddr;

use crate::layout::{AddressRegion, CodeLayout, LayoutParams};
use crate::request::RequestType;

/// Experiment scale: how much trace each core executes.
///
/// The paper's traces contain two billion instructions per core; driving this
/// reproduction at that length is unnecessary to recover the result shapes,
/// so experiments pick a [`Scale`]:
///
/// * [`Scale::Test`] — a few tens of thousands of fetches, for unit tests.
/// * [`Scale::Demo`] — a few hundred thousand fetches, for quick examples.
/// * [`Scale::Paper`] — millions of fetches per core, for the figure harness.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scale {
    /// Tiny traces for unit tests.
    Test,
    /// Medium traces for interactive examples.
    Demo,
    /// Full-length traces for the benchmark harness.
    Paper,
}

impl Scale {
    /// Number of instruction-block fetches each core executes after warm-up.
    pub fn fetches_per_core(self) -> usize {
        match self {
            Scale::Test => 40_000,
            Scale::Demo => 250_000,
            Scale::Paper => 1_500_000,
        }
    }

    /// Number of fetches used to warm caches and history before measurement.
    pub fn warmup_fetches_per_core(self) -> usize {
        match self {
            Scale::Test => 10_000,
            Scale::Demo => 80_000,
            Scale::Paper => 500_000,
        }
    }
}

/// Full parameter set describing one synthetic server workload.
///
/// A `WorkloadSpec` is pure data; [`WorkloadProgram::build`] compiles it into
/// the concrete code layout and request types shared by all cores that run
/// the workload. Two specs with the same parameters and `structure_seed`
/// compile to identical programs, which is what gives different cores (and
/// different prefetcher configurations under test) a common instruction
/// stream structure.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Human-readable workload name (e.g. `"OLTP Oracle"`).
    pub name: String,
    /// Code layout synthesis parameters.
    pub layout: LayoutParams,
    /// Number of distinct request types in the mix.
    pub request_types: usize,
    /// Number of function calls in a request's call path.
    pub calls_per_request: usize,
    /// Number of "hot" shared utility functions (the first N functions).
    pub hot_functions: usize,
    /// Fraction of calls that target hot functions.
    pub hot_call_fraction: f64,
    /// Fraction of call steps that are conditional (data dependent).
    pub conditional_call_fraction: f64,
    /// Zipf-like skew of the request mix: weight of type `i` is
    /// `1 / (i + 1)^request_skew`.
    pub request_skew: f64,
    /// Probability that an OS handler (trap, interrupt, scheduler) runs after
    /// a call step, fragmenting the stream.
    pub os_invocation_probability: f64,
    /// Minimum instructions retired per block visit.
    pub instructions_per_block_min: u8,
    /// Maximum instructions retired per block visit.
    pub instructions_per_block_max: u8,
    /// Average data references (loads + stores) per instruction.
    pub data_refs_per_instruction: f64,
    /// Size of the workload's data footprint in blocks.
    pub data_region_blocks: u64,
    /// Size of the hot (frequently reused) portion of the data footprint.
    pub hot_data_blocks: u64,
    /// Fraction of data references that go to the hot region.
    pub hot_data_fraction: f64,
    /// Fraction of data references that are stores.
    pub store_fraction: f64,
    /// First block of the workload's code region.
    pub code_base: BlockAddr,
    /// First block of the workload's OS-code region.
    pub os_base: BlockAddr,
    /// First block of the workload's data region.
    pub data_base: BlockAddr,
    /// Seed from which the layout and request types are derived.
    pub structure_seed: u64,
}

impl WorkloadSpec {
    /// Returns the code region the compiled program will occupy (approximate
    /// upper bound; the exact region is available from [`WorkloadProgram`]).
    pub fn code_region(&self) -> AddressRegion {
        let blocks = (self.layout.functions as f64 * self.layout.mean_function_blocks * 1.6)
            .ceil()
            .max(1.0) as u64;
        AddressRegion::new(self.code_base, blocks)
    }

    /// Returns the data region referenced by the workload.
    pub fn data_region(&self) -> AddressRegion {
        AddressRegion::new(self.data_base, self.data_region_blocks.max(1))
    }

    /// Scales the instruction footprint (functions and OS handlers) by
    /// `factor`, clamping to at least a handful of functions. Useful for unit
    /// tests that need the workload's structure without its full size.
    #[must_use]
    pub fn scaled_footprint(mut self, factor: f64) -> Self {
        assert!(factor > 0.0, "scale factor must be positive");
        self.layout.functions = ((self.layout.functions as f64 * factor).round() as usize).max(8);
        self.layout.os_functions =
            ((self.layout.os_functions as f64 * factor).round() as usize).max(2);
        self.hot_functions = self.hot_functions.clamp(1, self.layout.functions);
        self.data_region_blocks = ((self.data_region_blocks as f64 * factor) as u64).max(64);
        self.hot_data_blocks = self.hot_data_blocks.min(self.data_region_blocks);
        self
    }

    /// Re-bases the workload's code, OS, and data regions for consolidation:
    /// workload `index` gets disjoint address regions.
    #[must_use]
    pub fn with_region_index(mut self, index: usize) -> Self {
        // 1 GiB of block address space (2^24 blocks) per workload slot keeps
        // regions disjoint for any realistic footprint.
        let stride = 1u64 << 24;
        let base = (index as u64 + 1) * stride * 4;
        self.code_base = BlockAddr::new(base);
        self.os_base = BlockAddr::new(base + stride);
        self.data_base = BlockAddr::new(base + 2 * stride);
        self
    }

    /// Expected instruction footprint in blocks (application + OS).
    pub fn expected_footprint_blocks(&self) -> f64 {
        self.layout.functions as f64 * self.layout.mean_function_blocks
            + self.layout.os_functions as f64 * self.layout.mean_os_function_blocks
    }
}

/// A compiled workload: the concrete code layout and request mix that every
/// core running the workload shares.
#[derive(Clone, Debug)]
pub struct WorkloadProgram {
    spec: WorkloadSpec,
    layout: CodeLayout,
    request_types: Vec<RequestType>,
    /// Sum of all request-type weights, precomputed so every request draw on
    /// the trace-generation hot path skips the per-call summation.
    total_request_weight: f64,
}

impl WorkloadProgram {
    /// Compiles `spec` into a program. Deterministic in
    /// `spec.structure_seed` and the other parameters.
    pub fn build(spec: &WorkloadSpec) -> Arc<Self> {
        let mut rng = SmallRng::seed_from_u64(spec.structure_seed);
        let layout = CodeLayout::generate(&mut rng, &spec.layout, spec.code_base, spec.os_base);
        let total_functions = layout.functions().len();
        let mut request_types = Vec::with_capacity(spec.request_types);
        for i in 0..spec.request_types.max(1) {
            let weight = 1.0 / ((i + 1) as f64).powf(spec.request_skew);
            request_types.push(RequestType::generate(
                &mut rng,
                format!("{}-req{}", spec.name, i),
                total_functions,
                spec.hot_functions,
                spec.calls_per_request,
                spec.hot_call_fraction,
                spec.conditional_call_fraction,
                weight,
            ));
        }
        // Summed in declaration order — the identical order `pick_request`
        // used to sum in, so the RNG draw bounds (and therefore every seeded
        // trace) are bit-identical.
        let total_request_weight = request_types.iter().map(|t| t.weight()).sum();
        Arc::new(WorkloadProgram {
            spec: spec.clone(),
            layout,
            request_types,
            total_request_weight,
        })
    }

    /// Sum of all request-type weights (the denominator of the request mix).
    pub fn total_request_weight(&self) -> f64 {
        self.total_request_weight
    }

    /// The specification this program was compiled from.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// The compiled code layout.
    pub fn layout(&self) -> &CodeLayout {
        &self.layout
    }

    /// The request mix.
    pub fn request_types(&self) -> &[RequestType] {
        &self.request_types
    }

    /// Upper bound on the blocks any single function execution (application
    /// or OS handler) can emit. The per-core generator pre-sizes its block
    /// scratch buffer to this.
    pub fn max_function_blocks(&self) -> usize {
        self.layout
            .functions()
            .iter()
            .chain(self.layout.os_functions())
            .map(|f| f.max_blocks_per_execution() as usize)
            .max()
            .unwrap_or(0)
    }

    /// Upper bound on the trace events one request can emit: the deepest
    /// call path, every step also invoking the largest OS handler, every
    /// fragment taken, every block at the maximum instruction count and
    /// data-reference rate. The per-core generator pre-sizes its pending
    /// queue to this, so bursts never reallocate on the hot path.
    pub fn max_burst_events(&self) -> usize {
        let max_app_blocks = self
            .layout
            .functions()
            .iter()
            .map(|f| f.max_blocks_per_execution())
            .max()
            .unwrap_or(0) as usize;
        let max_os_blocks = self
            .layout
            .os_functions()
            .iter()
            .map(|f| f.max_blocks_per_execution())
            .max()
            .unwrap_or(0) as usize;
        let max_steps = self
            .request_types
            .iter()
            .map(|t| t.steps().len())
            .max()
            .unwrap_or(0);
        // Per block: one fetch event plus the data references it can spawn
        // (expected count rounded up, plus one for the fractional carry).
        let max_data_refs_per_block = (self.spec.instructions_per_block_max as f64
            * self.spec.data_refs_per_instruction)
            .ceil() as usize
            + 1;
        let events_per_block = 1 + max_data_refs_per_block;
        max_steps * (max_app_blocks + max_os_blocks) * events_per_block
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn scale_lengths_are_ordered() {
        assert!(Scale::Test.fetches_per_core() < Scale::Demo.fetches_per_core());
        assert!(Scale::Demo.fetches_per_core() < Scale::Paper.fetches_per_core());
        assert!(Scale::Test.warmup_fetches_per_core() < Scale::Test.fetches_per_core());
    }

    #[test]
    fn program_build_is_deterministic() {
        let spec = presets::web_search().scaled_footprint(0.05);
        let a = WorkloadProgram::build(&spec);
        let b = WorkloadProgram::build(&spec);
        assert_eq!(a.layout().footprint_blocks(), b.layout().footprint_blocks());
        assert_eq!(a.request_types().len(), b.request_types().len());
        for (x, y) in a.request_types().iter().zip(b.request_types()) {
            assert_eq!(x.steps(), y.steps());
        }
    }

    #[test]
    fn scaled_footprint_shrinks_layout() {
        let full = presets::oltp_oracle();
        let small = full.clone().scaled_footprint(0.1);
        assert!(small.layout.functions < full.layout.functions);
        assert!(small.expected_footprint_blocks() < full.expected_footprint_blocks());
    }

    #[test]
    fn region_index_keeps_regions_disjoint() {
        let a = presets::oltp_db2().with_region_index(0);
        let b = presets::web_frontend().with_region_index(1);
        assert!(!a.code_region().overlaps(&b.code_region()));
        assert!(!a.data_region().overlaps(&b.data_region()));
        assert!(!a.code_region().overlaps(&b.data_region()));
    }

    #[test]
    fn request_weights_are_skewed() {
        let spec = presets::oltp_db2().scaled_footprint(0.05);
        let program = WorkloadProgram::build(&spec);
        let types = program.request_types();
        assert!(types[0].weight() > types[types.len() - 1].weight());
    }
}
