//! The per-core trace generator.

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};
use shift_types::{AccessKind, BlockAddr, CoreId};

use crate::event::{DataEvent, FetchEvent, TraceEvent};
use crate::fastdiv::InvariantModulus;
use crate::request::pick_request_with_total;
use crate::workload::{WorkloadProgram, WorkloadSpec};

/// Generates the retire-order instruction and data reference stream of one
/// core running a server workload.
///
/// All cores running the same workload share one [`WorkloadProgram`] (the code
/// layout and request mix); each core draws its own request interleaving and
/// its own data-dependent control-flow decisions from a per-core RNG. This is
/// exactly the structure the paper exploits: the streams of different cores
/// are highly similar (same code, same request types) but not identical.
///
/// The generator is an infinite [`Iterator`] over [`TraceEvent`]s; callers
/// bound it with [`Iterator::take`] or by counting fetch events.
///
/// # Examples
///
/// ```
/// use shift_trace::{presets, CoreTraceGenerator};
/// use shift_types::CoreId;
///
/// let spec = presets::tiny();
/// let mut gen = CoreTraceGenerator::new(&spec, CoreId::new(0), 7);
/// let events: Vec<_> = gen.by_ref().take(100).collect();
/// assert_eq!(events.len(), 100);
/// ```
#[derive(Debug)]
pub struct CoreTraceGenerator {
    program: Arc<WorkloadProgram>,
    core: CoreId,
    core_bias: u64,
    rng: SmallRng,
    /// Events of the current request, consumed through `cursor`: a flat
    /// buffer instead of a ring, so batch reads are contiguous slice copies.
    pending: Vec<TraceEvent>,
    /// Next unconsumed index into `pending`.
    cursor: usize,
    scratch_blocks: Vec<BlockAddr>,
    requests_generated: u64,
    fetches_generated: u64,
    data_ref_carry: f64,
    // Strength-reduced reducers for the uniform draws on the per-event hot
    // path. Each produces exactly `next_u64() % span` (the compat `rand`
    // `gen_range` reduction) for its loop-invariant span, replacing a
    // hardware 64-bit division with a multiply-and-shift.
    instr_mod: InvariantModulus,
    hot_data_mod: InvariantModulus,
    cold_data_mod: InvariantModulus,
    os_fn_mod: InvariantModulus,
}

impl CoreTraceGenerator {
    /// Creates a generator for `core`, compiling the workload program from
    /// `spec`. When several generators share a workload, prefer
    /// [`CoreTraceGenerator::with_program`] to compile the program once.
    pub fn new(spec: &WorkloadSpec, core: CoreId, seed: u64) -> Self {
        Self::with_program(WorkloadProgram::build(spec), core, seed)
    }

    /// Creates a generator for `core` over an already-compiled program.
    pub fn with_program(program: Arc<WorkloadProgram>, core: CoreId, seed: u64) -> Self {
        let spec_seed = program.spec().structure_seed;
        // Mix the workload structure seed, the experiment seed, and the core
        // id so that (a) different cores see different interleavings and
        // (b) the same core is reproducible across runs.
        let mixed = spec_seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(seed)
            .wrapping_add((core.index() as u64 + 1).wrapping_mul(0xBF58_476D_1CE4_E5B9));
        // Pre-size both per-request buffers to their worst-case burst so the
        // `next_event` hot path never grows an allocation mid-trace: the
        // pending queue holds at most one full request's events
        // (`generate_request` drains it to empty before refilling), and the
        // scratch holds at most one function execution's blocks.
        let max_burst = program.max_burst_events();
        let max_function_blocks = program.max_function_blocks();
        let spec = program.spec();
        let instr_span = (spec
            .instructions_per_block_max
            .max(spec.instructions_per_block_min)
            - spec.instructions_per_block_min) as u64
            + 1;
        let instr_mod = InvariantModulus::new(instr_span);
        let hot_data_mod = InvariantModulus::new(spec.hot_data_blocks.max(1));
        let cold_data_mod = InvariantModulus::new(spec.data_region_blocks.max(1));
        let os_fn_mod = InvariantModulus::new(program.layout().os_functions().len().max(1) as u64);
        CoreTraceGenerator {
            program,
            core,
            // Per-core sticky-branch bias: depends on the core identity and the
            // workload structure, but *not* on the experiment seed, so the same
            // core diverges the same way in every run.
            core_bias: spec_seed ^ ((core.index() as u64 + 1).wrapping_mul(0xA24B_AED4_963E_E407)),
            rng: SmallRng::seed_from_u64(mixed),
            pending: Vec::with_capacity(max_burst),
            cursor: 0,
            scratch_blocks: Vec::with_capacity(max_function_blocks),
            requests_generated: 0,
            fetches_generated: 0,
            data_ref_carry: 0.0,
            instr_mod,
            hot_data_mod,
            cold_data_mod,
            os_fn_mod,
        }
    }

    /// The core this generator models.
    pub fn core(&self) -> CoreId {
        self.core
    }

    /// The compiled workload program driving this generator.
    pub fn program(&self) -> &Arc<WorkloadProgram> {
        &self.program
    }

    /// Number of complete requests generated so far.
    pub fn requests_generated(&self) -> u64 {
        self.requests_generated
    }

    /// Number of fetch events generated so far.
    pub fn fetches_generated(&self) -> u64 {
        self.fetches_generated
    }

    /// Produces the next event, generating a new request when the current one
    /// is exhausted. Never returns `None`; the trace is conceptually infinite.
    #[inline]
    pub fn next_event(&mut self) -> TraceEvent {
        loop {
            if let Some(&event) = self.pending.get(self.cursor) {
                self.cursor += 1;
                if matches!(event, TraceEvent::Fetch(_)) {
                    self.fetches_generated += 1;
                }
                return event;
            }
            self.generate_request();
        }
    }

    /// Fills `out` (cleared first) with every event up to and *including* the
    /// next fetch event — the batch the simulation engine consumes per
    /// stepped fetch: the data references that precede an instruction-block
    /// fetch in retire order, then the fetch itself (always the last event).
    ///
    /// Exactly equivalent to calling [`next_event`](Self::next_event) until
    /// it returns a [`TraceEvent::Fetch`], but copies each run of pending
    /// events as one contiguous slice instead of popping through a queue.
    #[inline]
    pub fn next_events_into(&mut self, out: &mut Vec<TraceEvent>) {
        out.clear();
        loop {
            let rest = &self.pending[self.cursor..];
            if let Some(pos) = rest.iter().position(|e| matches!(e, TraceEvent::Fetch(_))) {
                out.extend_from_slice(&rest[..=pos]);
                self.cursor += pos + 1;
                self.fetches_generated += 1;
                return;
            }
            out.extend_from_slice(rest);
            self.cursor = self.pending.len();
            self.generate_request();
        }
    }

    /// Produces the next *fetch* event, discarding interleaved data events.
    /// Useful for prefetcher-only studies that do not model the data path.
    pub fn next_fetch(&mut self) -> FetchEvent {
        loop {
            if let TraceEvent::Fetch(f) = self.next_event() {
                return f;
            }
        }
    }

    /// Deterministic per-core decision for a conditional call step.
    ///
    /// Conditional calls model data-dependent paths that are *sticky per
    /// core* (e.g. a core always serving the same client mix or NUMA
    /// partition): a given core either takes a conditional call on every
    /// request of that type or never does, but different cores decide
    /// differently. This is the source of cross-core control-flow divergence
    /// that separates a shared history (SHIFT) from per-core histories (PIF).
    fn core_takes_conditional(&self, request: usize, step: usize, probability: f64) -> bool {
        let mut h = self
            .core_bias
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((request as u64) << 32 | step as u64);
        h ^= h >> 33;
        h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        h ^= h >> 33;
        (h as f64 / u64::MAX as f64) < probability
    }

    fn generate_request(&mut self) {
        // Only called once the current buffer is fully consumed, so clearing
        // never discards events and the buffer never outgrows one request.
        debug_assert_eq!(self.cursor, self.pending.len());
        self.pending.clear();
        self.cursor = 0;
        let program = Arc::clone(&self.program);
        let spec = program.spec();
        let types = program.request_types();
        let idx = pick_request_with_total(&mut self.rng, types, program.total_request_weight());
        let request = &types[idx];
        self.requests_generated += 1;

        for (step_idx, step) in request.steps().iter().enumerate() {
            if step.execute_probability < 1.0
                && !self.core_takes_conditional(idx, step_idx, step.execute_probability)
            {
                continue;
            }
            let function = &program.layout().functions()[step.function];
            self.emit_function(function, spec);

            // Spontaneous OS activity (scheduler tick, TLB fill, interrupt)
            // fragments the application's temporal streams, as §6.1 discusses.
            if spec.os_invocation_probability > 0.0
                && self.rng.gen_bool(spec.os_invocation_probability)
            {
                let os_fns = program.layout().os_functions();
                let os_idx = self.os_fn_mod.rem(self.rng.next_u64()) as usize;
                let handler = &os_fns[os_idx];
                self.emit_function(handler, spec);
            }
        }
    }

    fn emit_function(&mut self, function: &crate::layout::Function, spec: &WorkloadSpec) {
        self.scratch_blocks.clear();
        function.execute(&mut self.rng, &mut self.scratch_blocks);
        let blocks = std::mem::take(&mut self.scratch_blocks);
        for &block in &blocks {
            let instructions =
                spec.instructions_per_block_min + self.instr_mod.rem(self.rng.next_u64()) as u8;
            self.pending
                .push(TraceEvent::Fetch(FetchEvent::new(block, instructions)));
            self.emit_data_refs(instructions, spec);
        }
        self.scratch_blocks = blocks;
    }

    fn emit_data_refs(&mut self, instructions: u8, spec: &WorkloadSpec) {
        // Expected number of data references for this block visit; carry the
        // fractional part so the long-run ratio matches the spec exactly.
        let expected = instructions as f64 * spec.data_refs_per_instruction + self.data_ref_carry;
        let count = expected.floor() as usize;
        self.data_ref_carry = expected - count as f64;
        for _ in 0..count {
            let block = if self.rng.gen_bool(spec.hot_data_fraction.clamp(0.0, 1.0)) {
                spec.data_base
                    .offset(self.hot_data_mod.rem(self.rng.next_u64()))
            } else {
                spec.data_base
                    .offset(self.cold_data_mod.rem(self.rng.next_u64()))
            };
            let kind = if self.rng.gen_bool(spec.store_fraction.clamp(0.0, 1.0)) {
                AccessKind::Store
            } else {
                AccessKind::Load
            };
            self.pending
                .push(TraceEvent::Data(DataEvent::new(kind, block)));
        }
    }
}

impl Iterator for CoreTraceGenerator {
    type Item = TraceEvent;

    fn next(&mut self) -> Option<TraceEvent> {
        Some(self.next_event())
    }
}

/// Builds one generator per core over a shared compiled program.
///
/// # Examples
///
/// ```
/// use shift_trace::{presets, generator::per_core_generators};
///
/// let gens = per_core_generators(&presets::tiny(), 4, 99);
/// assert_eq!(gens.len(), 4);
/// ```
pub fn per_core_generators(spec: &WorkloadSpec, cores: u16, seed: u64) -> Vec<CoreTraceGenerator> {
    let program = WorkloadProgram::build(spec);
    CoreId::range(cores)
        .map(|core| CoreTraceGenerator::with_program(Arc::clone(&program), core, seed))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use std::collections::HashSet;

    #[test]
    fn generator_is_deterministic_for_same_seed() {
        let spec = presets::tiny();
        let a: Vec<_> = CoreTraceGenerator::new(&spec, CoreId::new(0), 1)
            .take(5_000)
            .collect();
        let b: Vec<_> = CoreTraceGenerator::new(&spec, CoreId::new(0), 1)
            .take(5_000)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_cores_produce_different_interleavings() {
        let spec = presets::tiny();
        let gens = per_core_generators(&spec, 2, 7);
        let [mut g0, mut g1]: [CoreTraceGenerator; 2] = gens.try_into().unwrap();
        let a: Vec<_> = g0.by_ref().take(2_000).collect();
        let b: Vec<_> = g1.by_ref().take(2_000).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn fetches_stay_within_code_and_os_regions() {
        let spec = presets::tiny();
        let mut gen = CoreTraceGenerator::new(&spec, CoreId::new(0), 3);
        let code = gen.program().layout().code_region();
        let os = gen.program().layout().os_region();
        for event in gen.by_ref().take(20_000) {
            if let TraceEvent::Fetch(f) = event {
                assert!(
                    code.contains(f.block) || os.contains(f.block),
                    "fetch outside code regions: {}",
                    f.block
                );
                assert!(f.instructions >= 1);
            }
        }
    }

    #[test]
    fn data_refs_stay_within_data_region() {
        let spec = presets::tiny();
        let mut gen = CoreTraceGenerator::new(&spec, CoreId::new(1), 3);
        let data = spec.data_region();
        let mut saw_data = false;
        for event in gen.by_ref().take(20_000) {
            if let TraceEvent::Data(d) = event {
                saw_data = true;
                assert!(data.contains(d.block), "data ref outside region");
            }
        }
        assert!(saw_data, "expected at least one data reference");
    }

    #[test]
    fn data_ref_ratio_tracks_spec() {
        let spec = presets::tiny();
        let mut gen = CoreTraceGenerator::new(&spec, CoreId::new(0), 5);
        let mut instructions = 0u64;
        let mut data_refs = 0u64;
        for event in gen.by_ref().take(60_000) {
            match event {
                TraceEvent::Fetch(f) => instructions += f.instructions as u64,
                TraceEvent::Data(_) => data_refs += 1,
            }
        }
        let ratio = data_refs as f64 / instructions as f64;
        assert!(
            (ratio - spec.data_refs_per_instruction).abs() < 0.03,
            "data ref ratio {ratio} too far from {}",
            spec.data_refs_per_instruction
        );
    }

    #[test]
    fn bursty_requests_never_grow_the_pending_queue() {
        // The pending queue is pre-sized to the worst-case request burst
        // (`WorkloadProgram::max_burst_events`), so generating any number of
        // requests must never reallocate it — that was the last allocation
        // site on the trace hot path.
        let spec = presets::tiny();
        let mut gen = CoreTraceGenerator::new(&spec, CoreId::new(0), 13);
        let pending_capacity = gen.pending.capacity();
        let scratch_capacity = gen.scratch_blocks.capacity();
        assert!(pending_capacity >= gen.program().max_burst_events());
        let mut max_pending = 0usize;
        while gen.requests_generated() < 500 {
            let _ = gen.next_event();
            max_pending = max_pending.max(gen.pending.len() - gen.cursor);
        }
        assert!(max_pending > 0, "bursts must actually fill the queue");
        assert_eq!(
            gen.pending.capacity(),
            pending_capacity,
            "pending queue reallocated (burst exceeded the pre-sized bound)"
        );
        assert_eq!(
            gen.scratch_blocks.capacity(),
            scratch_capacity,
            "scratch block buffer reallocated"
        );
    }

    #[test]
    fn batched_events_match_event_by_event_consumption() {
        // `next_events_into` must be an exact restatement of "call
        // `next_event` until it returns a fetch": same events, same order,
        // same fetch counter — the property the engine's batched stepping
        // path (and the golden tests behind it) relies on.
        let spec = presets::tiny();
        let mut batched = CoreTraceGenerator::new(&spec, CoreId::new(0), 21);
        let mut serial = CoreTraceGenerator::new(&spec, CoreId::new(0), 21);
        let mut batch = Vec::new();
        for _ in 0..5_000 {
            batched.next_events_into(&mut batch);
            assert!(matches!(batch.last(), Some(TraceEvent::Fetch(_))));
            for &event in &batch {
                assert_eq!(event, serial.next_event());
            }
        }
        assert_eq!(batched.fetches_generated(), serial.fetches_generated());
        assert_eq!(batched.requests_generated(), serial.requests_generated());
    }

    #[test]
    fn stream_revisits_blocks_across_requests() {
        // Requests of the same type recur, so the set of unique blocks grows
        // much more slowly than the trace length: the signature of temporal
        // streams that the prefetchers exploit.
        let spec = presets::tiny();
        let mut gen = CoreTraceGenerator::new(&spec, CoreId::new(0), 9);
        let mut unique = HashSet::new();
        let mut fetches = 0u64;
        while fetches < 30_000 {
            let f = gen.next_fetch();
            unique.insert(f.block);
            fetches += 1;
        }
        assert!(
            (unique.len() as u64) < fetches / 10,
            "trace should revisit blocks heavily: {} unique of {}",
            unique.len(),
            fetches
        );
    }

    #[test]
    fn cores_share_instruction_footprint() {
        let spec = presets::tiny();
        let mut gens = per_core_generators(&spec, 2, 11);
        let mut sets: Vec<HashSet<_>> = Vec::new();
        for gen in gens.iter_mut() {
            let mut set = HashSet::new();
            for _ in 0..20_000 {
                set.insert(gen.next_fetch().block);
            }
            sets.push(set);
        }
        let inter = sets[0].intersection(&sets[1]).count();
        let union = sets[0].union(&sets[1]).count();
        let jaccard = inter as f64 / union as f64;
        assert!(
            jaccard > 0.75,
            "cores running the same workload must share most of their footprint (jaccard {jaccard})"
        );
    }
}
