//! Workload consolidation: several workloads sharing one CMP.
//!
//! §5.5 of the paper consolidates four server workloads onto a 16-core CMP,
//! four cores each, every workload with its own OS image and its own shared
//! history buffer. This module describes such configurations and maps cores
//! to workloads.

use serde::{Deserialize, Serialize};
use shift_types::{CoreId, WorkloadId};

use crate::workload::WorkloadSpec;

/// Assignment of one core to one workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CoreAssignment {
    /// The core.
    pub core: CoreId,
    /// The workload it runs.
    pub workload: WorkloadId,
}

/// A consolidated configuration: a list of workloads and the number of cores
/// each one receives.
///
/// # Examples
///
/// ```
/// use shift_trace::{presets, ConsolidationSpec};
///
/// let spec = ConsolidationSpec::even_split(presets::consolidation_suite(), 16);
/// assert_eq!(spec.total_cores(), 16);
/// assert_eq!(spec.workloads().len(), 4);
/// assert_eq!(spec.cores_of(shift_types::WorkloadId::new(2)).len(), 4);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ConsolidationSpec {
    workloads: Vec<WorkloadSpec>,
    cores_per_workload: Vec<u16>,
}

impl ConsolidationSpec {
    /// Creates a consolidation spec with an explicit core count per workload.
    ///
    /// # Panics
    ///
    /// Panics if the lists have different lengths, are empty, or any workload
    /// receives zero cores.
    pub fn new(workloads: Vec<WorkloadSpec>, cores_per_workload: Vec<u16>) -> Self {
        assert_eq!(
            workloads.len(),
            cores_per_workload.len(),
            "one core count per workload required"
        );
        assert!(!workloads.is_empty(), "consolidation needs workloads");
        assert!(
            cores_per_workload.iter().all(|&c| c > 0),
            "every workload needs at least one core"
        );
        ConsolidationSpec {
            workloads,
            cores_per_workload,
        }
    }

    /// Splits `total_cores` evenly across the workloads.
    ///
    /// # Panics
    ///
    /// Panics if `total_cores` is not divisible by the number of workloads.
    pub fn even_split(workloads: Vec<WorkloadSpec>, total_cores: u16) -> Self {
        assert!(!workloads.is_empty(), "consolidation needs workloads");
        assert_eq!(
            total_cores as usize % workloads.len(),
            0,
            "cores must divide evenly across workloads"
        );
        let per = total_cores / workloads.len() as u16;
        let counts = vec![per; workloads.len()];
        ConsolidationSpec::new(workloads, counts)
    }

    /// A single-workload "consolidation" covering all cores; convenient for
    /// treating standalone and consolidated runs uniformly.
    pub fn standalone(workload: WorkloadSpec, cores: u16) -> Self {
        ConsolidationSpec::new(vec![workload], vec![cores])
    }

    /// The workloads in this configuration.
    pub fn workloads(&self) -> &[WorkloadSpec] {
        &self.workloads
    }

    /// Total number of cores.
    pub fn total_cores(&self) -> u16 {
        self.cores_per_workload.iter().sum()
    }

    /// The per-core workload assignment, cores numbered contiguously workload
    /// by workload (workload 0 gets the lowest-numbered cores).
    pub fn assignments(&self) -> Vec<CoreAssignment> {
        let mut out = Vec::with_capacity(self.total_cores() as usize);
        let mut next_core = 0u16;
        for (w, &count) in self.cores_per_workload.iter().enumerate() {
            for _ in 0..count {
                out.push(CoreAssignment {
                    core: CoreId::new(next_core),
                    workload: WorkloadId::new(w as u8),
                });
                next_core += 1;
            }
        }
        out
    }

    /// The workload a given core runs.
    ///
    /// # Panics
    ///
    /// Panics if `core` is outside the configuration.
    pub fn workload_of(&self, core: CoreId) -> WorkloadId {
        let mut next_core = 0u16;
        for (w, &count) in self.cores_per_workload.iter().enumerate() {
            if core.get() < next_core + count {
                return WorkloadId::new(w as u8);
            }
            next_core += count;
        }
        panic!("core {core} is outside this consolidation spec");
    }

    /// The cores assigned to a workload.
    pub fn cores_of(&self, workload: WorkloadId) -> Vec<CoreId> {
        self.assignments()
            .into_iter()
            .filter(|a| a.workload == workload)
            .map(|a| a.core)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn even_split_assigns_contiguous_core_groups() {
        let spec = ConsolidationSpec::even_split(presets::consolidation_suite(), 16);
        let assignments = spec.assignments();
        assert_eq!(assignments.len(), 16);
        for (i, a) in assignments.iter().enumerate() {
            assert_eq!(a.core.index(), i);
            assert_eq!(a.workload.index(), i / 4);
        }
    }

    #[test]
    fn workload_of_matches_assignments() {
        let spec = ConsolidationSpec::new(
            vec![presets::tiny(), presets::tiny().with_region_index(1)],
            vec![3, 5],
        );
        assert_eq!(spec.total_cores(), 8);
        assert_eq!(spec.workload_of(CoreId::new(0)).index(), 0);
        assert_eq!(spec.workload_of(CoreId::new(2)).index(), 0);
        assert_eq!(spec.workload_of(CoreId::new(3)).index(), 1);
        assert_eq!(spec.workload_of(CoreId::new(7)).index(), 1);
        assert_eq!(spec.cores_of(WorkloadId::new(1)).len(), 5);
    }

    #[test]
    #[should_panic(expected = "outside this consolidation spec")]
    fn workload_of_rejects_out_of_range_core() {
        let spec = ConsolidationSpec::standalone(presets::tiny(), 4);
        let _ = spec.workload_of(CoreId::new(4));
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn uneven_split_rejected() {
        let _ = ConsolidationSpec::even_split(presets::consolidation_suite(), 15);
    }

    #[test]
    fn standalone_covers_all_cores_with_one_workload() {
        let spec = ConsolidationSpec::standalone(presets::tiny(), 16);
        assert_eq!(spec.total_cores(), 16);
        assert!(spec
            .assignments()
            .iter()
            .all(|a| a.workload == WorkloadId::new(0)));
    }
}
