//! Code layout synthesis: address regions, functions, and fragments.
//!
//! A workload's instruction footprint is modelled as a set of *functions* laid
//! out back to back in a dedicated [`AddressRegion`]. Each function is a
//! sequence of *fragments*: short runs of consecutive cache blocks separated
//! by control-flow discontinuities (taken branches, calls). A fragment may be
//! skipped with a small probability when the function executes, modelling
//! data-dependent branches — the source of the minor control-flow differences
//! between request instances that the paper discusses.

use rand::Rng;
use serde::{Deserialize, Serialize};
use shift_types::BlockAddr;

/// A half-open range of cache-block addresses `[start, start + len_blocks)`.
///
/// Regions keep the instruction footprints, data footprints, and OS code of
/// different (possibly consolidated) workloads disjoint.
///
/// # Examples
///
/// ```
/// use shift_trace::AddressRegion;
/// use shift_types::BlockAddr;
///
/// let region = AddressRegion::new(BlockAddr::new(0x1000), 64);
/// assert!(region.contains(BlockAddr::new(0x103f)));
/// assert!(!region.contains(BlockAddr::new(0x1040)));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AddressRegion {
    start: BlockAddr,
    len_blocks: u64,
}

impl AddressRegion {
    /// Creates a region starting at `start` and spanning `len_blocks` blocks.
    ///
    /// # Panics
    ///
    /// Panics if `len_blocks` is zero.
    pub fn new(start: BlockAddr, len_blocks: u64) -> Self {
        assert!(len_blocks > 0, "address region must not be empty");
        AddressRegion { start, len_blocks }
    }

    /// First block of the region.
    pub fn start(&self) -> BlockAddr {
        self.start
    }

    /// Number of blocks in the region.
    pub fn len_blocks(&self) -> u64 {
        self.len_blocks
    }

    /// One-past-the-end block of the region.
    pub fn end(&self) -> BlockAddr {
        self.start.offset(self.len_blocks)
    }

    /// Returns `true` if `block` falls inside the region.
    pub fn contains(&self, block: BlockAddr) -> bool {
        block >= self.start && block < self.end()
    }

    /// Returns `true` if the two regions share any block.
    pub fn overlaps(&self, other: &AddressRegion) -> bool {
        self.start < other.end() && other.start < self.end()
    }

    /// Returns the `i`-th block of the region.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len_blocks`.
    pub fn block(&self, i: u64) -> BlockAddr {
        assert!(i < self.len_blocks, "block index out of region bounds");
        self.start.offset(i)
    }

    /// Footprint of the region in bytes.
    pub fn bytes(&self) -> u64 {
        self.len_blocks * shift_types::BLOCK_BYTES as u64
    }
}

/// A run of consecutive instruction blocks within a function, bounded by a
/// control-flow discontinuity.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Fragment {
    /// Offset (in blocks) of the fragment's first block from the function entry.
    pub offset: u32,
    /// Number of consecutive blocks in the fragment.
    pub len: u32,
    /// Probability that an execution of the function skips this fragment.
    pub skip_probability: f64,
}

impl Fragment {
    /// Creates a fragment.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero or `skip_probability` is outside `[0, 1)`.
    pub fn new(offset: u32, len: u32, skip_probability: f64) -> Self {
        assert!(len > 0, "fragment must contain at least one block");
        assert!(
            (0.0..1.0).contains(&skip_probability),
            "skip probability must be in [0, 1)"
        );
        Fragment {
            offset,
            len,
            skip_probability,
        }
    }
}

/// A function: a contiguous range of blocks subdivided into fragments.
///
/// Fragments are laid out back to back in the address space, but *execute* in
/// a fixed, per-function order that generally differs from address order —
/// modelling taken branches and basic-block reordering. The execution order
/// is part of the function's static identity, so every execution of the
/// function produces the same block sequence (up to skipped fragments), which
/// is what makes temporal streams recur.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Function {
    entry: BlockAddr,
    len_blocks: u32,
    fragments: Vec<Fragment>,
    execution_order: Vec<u32>,
}

impl Function {
    /// Creates a function whose fragments must tile `[0, len_blocks)` without
    /// overlapping (gaps are allowed: padding blocks that are never fetched).
    /// Fragments execute in address order; use
    /// [`Function::with_execution_order`] to model taken branches.
    ///
    /// # Panics
    ///
    /// Panics if any fragment extends past `len_blocks`.
    pub fn new(entry: BlockAddr, len_blocks: u32, fragments: Vec<Fragment>) -> Self {
        for frag in &fragments {
            assert!(
                frag.offset + frag.len <= len_blocks,
                "fragment extends past end of function"
            );
        }
        let execution_order = (0..fragments.len() as u32).collect();
        Function {
            entry,
            len_blocks,
            fragments,
            execution_order,
        }
    }

    /// Replaces the fragment execution order.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of `0..fragments.len()` or does
    /// not start with fragment `0` (the entry fragment must execute first).
    #[must_use]
    pub fn with_execution_order(mut self, order: Vec<u32>) -> Self {
        assert_eq!(
            order.len(),
            self.fragments.len(),
            "order must cover all fragments"
        );
        let mut seen = vec![false; self.fragments.len()];
        for &i in &order {
            let idx = i as usize;
            assert!(
                idx < self.fragments.len(),
                "order references unknown fragment"
            );
            assert!(!seen[idx], "order repeats a fragment");
            seen[idx] = true;
        }
        assert_eq!(order.first(), Some(&0), "entry fragment must execute first");
        self.execution_order = order;
        self
    }

    /// First block of the function (its entry point).
    pub fn entry(&self) -> BlockAddr {
        self.entry
    }

    /// Total extent of the function in blocks, including padding.
    pub fn len_blocks(&self) -> u32 {
        self.len_blocks
    }

    /// The function's fragments in static program order.
    pub fn fragments(&self) -> &[Fragment] {
        &self.fragments
    }

    /// Expected number of blocks fetched by one execution (each fragment
    /// weighted by its execution probability).
    pub fn expected_blocks_per_execution(&self) -> f64 {
        self.fragments
            .iter()
            .map(|f| f.len as f64 * (1.0 - f.skip_probability))
            .sum()
    }

    /// Upper bound on the blocks one execution can emit: every fragment
    /// taken (no skips). Used to pre-size trace-generation buffers so the
    /// hot path never reallocates.
    pub fn max_blocks_per_execution(&self) -> u32 {
        self.fragments.iter().map(|f| f.len).sum()
    }

    /// The fixed fragment execution order.
    pub fn execution_order(&self) -> &[u32] {
        &self.execution_order
    }

    /// Emits the block addresses touched by one execution of the function,
    /// using `rng` to decide which fragments are skipped, appending them to
    /// `out`. Fragments are emitted in the function's execution order; the
    /// entry fragment is never skipped so that every execution touches the
    /// function entry block.
    pub fn execute<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut Vec<BlockAddr>) {
        for &idx in &self.execution_order {
            let frag = &self.fragments[idx as usize];
            let always = frag.offset == 0;
            if !always && frag.skip_probability > 0.0 && rng.gen_bool(frag.skip_probability) {
                continue;
            }
            for i in 0..frag.len {
                out.push(self.entry.offset((frag.offset + i) as u64));
            }
        }
    }
}

/// The complete code layout of one workload.
///
/// Application functions live in the workload's code region; operating-system
/// handler functions (scheduler, TLB-miss handler, interrupt handlers) live in
/// a separate OS region shared by all request types.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CodeLayout {
    code_region: AddressRegion,
    os_region: AddressRegion,
    functions: Vec<Function>,
    os_functions: Vec<Function>,
}

/// Parameters controlling random layout synthesis.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LayoutParams {
    /// Number of application functions.
    pub functions: usize,
    /// Mean function length in blocks.
    pub mean_function_blocks: f64,
    /// Mean fragment length in blocks (controls next-line prefetcher efficacy).
    pub mean_fragment_blocks: f64,
    /// Probability that a non-entry fragment is skipped by an execution.
    pub fragment_skip_probability: f64,
    /// Probability that control flow *branches* at a fragment boundary instead
    /// of falling through to the next fragment in address order. Higher values
    /// mean more discontinuities, which next-line prefetching cannot cover.
    pub taken_branch_probability: f64,
    /// Number of OS handler functions.
    pub os_functions: usize,
    /// Mean OS handler length in blocks.
    pub mean_os_function_blocks: f64,
}

impl CodeLayout {
    /// Synthesizes a layout from `params`, placing application code at
    /// `code_base` and OS code at `os_base`.
    ///
    /// # Panics
    ///
    /// Panics if `params.functions` is zero.
    pub fn generate<R: Rng + ?Sized>(
        rng: &mut R,
        params: &LayoutParams,
        code_base: BlockAddr,
        os_base: BlockAddr,
    ) -> Self {
        assert!(params.functions > 0, "layout needs at least one function");
        let functions = Self::generate_functions(
            rng,
            code_base,
            params.functions,
            params.mean_function_blocks,
            params.mean_fragment_blocks,
            params.fragment_skip_probability,
            params.taken_branch_probability,
        );
        let os_functions = Self::generate_functions(
            rng,
            os_base,
            params.os_functions.max(1),
            params.mean_os_function_blocks,
            params.mean_fragment_blocks,
            // OS handlers have straighter control flow.
            params.fragment_skip_probability * 0.5,
            params.taken_branch_probability * 0.7,
        );
        let code_len = functions
            .last()
            .map(|f| f.entry().offset(f.len_blocks() as u64) - code_base)
            .unwrap_or(1)
            .max(1);
        let os_len = os_functions
            .last()
            .map(|f| f.entry().offset(f.len_blocks() as u64) - os_base)
            .unwrap_or(1)
            .max(1);
        CodeLayout {
            code_region: AddressRegion::new(code_base, code_len),
            os_region: AddressRegion::new(os_base, os_len),
            functions,
            os_functions,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn generate_functions<R: Rng + ?Sized>(
        rng: &mut R,
        base: BlockAddr,
        count: usize,
        mean_blocks: f64,
        mean_fragment_blocks: f64,
        skip_probability: f64,
        taken_branch_probability: f64,
    ) -> Vec<Function> {
        let mut functions = Vec::with_capacity(count);
        let mut cursor = base;
        for _ in 0..count {
            // Function length: uniform in [mean/2, 3*mean/2], at least 1 block.
            let lo = (mean_blocks * 0.5).max(1.0);
            let hi = (mean_blocks * 1.5).max(lo + 1.0);
            let len = rng.gen_range(lo..hi).round().max(1.0) as u32;
            let fragments = Self::fragment(rng, len, mean_fragment_blocks, skip_probability);
            let order = Self::execution_order(rng, fragments.len(), taken_branch_probability);
            functions.push(Function::new(cursor, len, fragments).with_execution_order(order));
            cursor = cursor.offset(len as u64);
        }
        functions
    }

    /// Builds a per-function fragment execution order: starting from address
    /// order, each fragment boundary becomes a taken branch (a jump to a
    /// random not-yet-executed fragment) with the given probability.
    fn execution_order<R: Rng + ?Sized>(
        rng: &mut R,
        fragment_count: usize,
        taken_branch_probability: f64,
    ) -> Vec<u32> {
        let mut remaining: Vec<u32> = (1..fragment_count as u32).collect();
        let mut order = Vec::with_capacity(fragment_count);
        order.push(0u32);
        let mut last = 0u32;
        while !remaining.is_empty() {
            let fallthrough_pos = remaining.iter().position(|&f| f == last + 1);
            let pick = match fallthrough_pos {
                Some(pos) if !rng.gen_bool(taken_branch_probability.clamp(0.0, 1.0)) => pos,
                _ => rng.gen_range(0..remaining.len()),
            };
            last = remaining.swap_remove(pick);
            order.push(last);
        }
        order
    }

    fn fragment<R: Rng + ?Sized>(
        rng: &mut R,
        len_blocks: u32,
        mean_fragment_blocks: f64,
        skip_probability: f64,
    ) -> Vec<Fragment> {
        let mut fragments = Vec::new();
        let mut offset = 0u32;
        while offset < len_blocks {
            let remaining = len_blocks - offset;
            let lo = 1.0f64;
            let hi = (mean_fragment_blocks * 2.0).max(lo + 0.5);
            let frag_len = rng.gen_range(lo..hi).round().max(1.0) as u32;
            let frag_len = frag_len.min(remaining);
            // The entry fragment is never skipped; later fragments are skipped
            // with the configured probability.
            let skip = if offset == 0 { 0.0 } else { skip_probability };
            fragments.push(Fragment::new(offset, frag_len, skip));
            offset += frag_len;
        }
        fragments
    }

    /// The application code region.
    pub fn code_region(&self) -> AddressRegion {
        self.code_region
    }

    /// The OS code region.
    pub fn os_region(&self) -> AddressRegion {
        self.os_region
    }

    /// Application functions.
    pub fn functions(&self) -> &[Function] {
        &self.functions
    }

    /// OS handler functions.
    pub fn os_functions(&self) -> &[Function] {
        &self.os_functions
    }

    /// Total instruction footprint (application + OS) in blocks.
    pub fn footprint_blocks(&self) -> u64 {
        let app: u64 = self.functions.iter().map(|f| f.len_blocks() as u64).sum();
        let os: u64 = self
            .os_functions
            .iter()
            .map(|f| f.len_blocks() as u64)
            .sum();
        app + os
    }

    /// Total instruction footprint in bytes.
    pub fn footprint_bytes(&self) -> u64 {
        self.footprint_blocks() * shift_types::BLOCK_BYTES as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn small_params() -> LayoutParams {
        LayoutParams {
            functions: 50,
            mean_function_blocks: 12.0,
            mean_fragment_blocks: 2.5,
            fragment_skip_probability: 0.1,
            taken_branch_probability: 0.55,
            os_functions: 5,
            mean_os_function_blocks: 8.0,
        }
    }

    #[test]
    fn region_containment_and_overlap() {
        let a = AddressRegion::new(BlockAddr::new(0), 10);
        let b = AddressRegion::new(BlockAddr::new(10), 10);
        let c = AddressRegion::new(BlockAddr::new(5), 3);
        assert!(!a.overlaps(&b));
        assert!(a.overlaps(&c));
        assert!(a.contains(BlockAddr::new(9)));
        assert!(!a.contains(BlockAddr::new(10)));
        assert_eq!(a.bytes(), 640);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_region_rejected() {
        let _ = AddressRegion::new(BlockAddr::new(0), 0);
    }

    #[test]
    fn functions_are_laid_out_contiguously_without_overlap() {
        let mut rng = SmallRng::seed_from_u64(1);
        let layout = CodeLayout::generate(
            &mut rng,
            &small_params(),
            BlockAddr::new(0x10000),
            BlockAddr::new(0x80000),
        );
        let fns = layout.functions();
        assert_eq!(fns.len(), 50);
        for pair in fns.windows(2) {
            let end = pair[0].entry().offset(pair[0].len_blocks() as u64);
            assert_eq!(end, pair[1].entry(), "functions must be contiguous");
        }
        assert!(layout.code_region().contains(fns[0].entry()));
        assert!(!layout.code_region().overlaps(&layout.os_region()));
    }

    #[test]
    fn execution_emits_blocks_within_function_extent() {
        let mut rng = SmallRng::seed_from_u64(2);
        let layout = CodeLayout::generate(
            &mut rng,
            &small_params(),
            BlockAddr::new(0),
            BlockAddr::new(0x80000),
        );
        let f = &layout.functions()[7];
        let mut blocks = Vec::new();
        f.execute(&mut rng, &mut blocks);
        assert!(!blocks.is_empty());
        for b in &blocks {
            let off = b.offset_from(f.entry()).expect("block before entry");
            assert!(off < f.len_blocks() as u64);
        }
        // Entry block is always fetched.
        assert_eq!(blocks[0], f.entry());
    }

    #[test]
    fn expected_blocks_reflects_skip_probability() {
        let f = Function::new(
            BlockAddr::new(0),
            4,
            vec![Fragment::new(0, 2, 0.0), Fragment::new(2, 2, 0.5)],
        );
        let expected = f.expected_blocks_per_execution();
        assert!((expected - 3.0).abs() < 1e-9);
    }

    #[test]
    fn footprint_counts_app_and_os_blocks() {
        let mut rng = SmallRng::seed_from_u64(3);
        let layout = CodeLayout::generate(
            &mut rng,
            &small_params(),
            BlockAddr::new(0),
            BlockAddr::new(0x80000),
        );
        let sum: u64 = layout
            .functions()
            .iter()
            .chain(layout.os_functions())
            .map(|f| f.len_blocks() as u64)
            .sum();
        assert_eq!(layout.footprint_blocks(), sum);
        assert_eq!(layout.footprint_bytes(), sum * 64);
    }

    #[test]
    #[should_panic(expected = "extends past end")]
    fn fragment_past_function_end_rejected() {
        let _ = Function::new(BlockAddr::new(0), 2, vec![Fragment::new(1, 4, 0.0)]);
    }
}
