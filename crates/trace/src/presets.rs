//! The seven server workloads of Table I, as synthetic-workload presets.
//!
//! The parameters below are chosen to reproduce the qualitative properties the
//! paper reports for each workload: OLTP on Oracle has the largest instruction
//! working set, DSS queries have few request types with very long recurring
//! paths, media streaming has the smallest footprint, and the web workloads
//! sit in between with frequent OS involvement. Absolute footprints are in the
//! multi-megabyte range, far beyond a 32 KB L1-I, exactly as in the paper.

use shift_types::BlockAddr;

use crate::layout::LayoutParams;
use crate::workload::WorkloadSpec;

/// Default byte-region bases (expressed in blocks) for a standalone workload.
const CODE_BASE: u64 = 0x0100_0000;
const OS_BASE: u64 = 0x0200_0000;
const DATA_BASE: u64 = 0x0400_0000;

fn base_spec(name: &str, structure_seed: u64) -> WorkloadSpec {
    WorkloadSpec {
        name: name.to_owned(),
        layout: LayoutParams {
            functions: 800,
            mean_function_blocks: 26.0,
            mean_fragment_blocks: 2.4,
            fragment_skip_probability: 0.08,
            taken_branch_probability: 0.68,
            os_functions: 48,
            mean_os_function_blocks: 14.0,
        },
        request_types: 8,
        calls_per_request: 64,
        hot_functions: 40,
        hot_call_fraction: 0.30,
        conditional_call_fraction: 0.20,
        request_skew: 0.6,
        os_invocation_probability: 0.03,
        instructions_per_block_min: 6,
        instructions_per_block_max: 16,
        data_refs_per_instruction: 0.30,
        data_region_blocks: 2_000_000,
        hot_data_blocks: 4_096,
        hot_data_fraction: 0.70,
        store_fraction: 0.30,
        code_base: BlockAddr::new(CODE_BASE),
        os_base: BlockAddr::new(OS_BASE),
        data_base: BlockAddr::new(DATA_BASE),
        structure_seed,
    }
}

/// OLTP on IBM DB2 (TPC-C, 100 warehouses): a large instruction working set
/// and a moderately diverse transaction mix.
pub fn oltp_db2() -> WorkloadSpec {
    let mut s = base_spec("OLTP DB2", 0xD82_0001);
    s.layout.functions = 1_050;
    s.layout.mean_function_blocks = 28.0;
    s.request_types = 12;
    s.calls_per_request = 72;
    s.hot_functions = 52;
    s.data_region_blocks = 2_600_000;
    s
}

/// OLTP on Oracle (TPC-C): the largest instruction working set in the suite.
pub fn oltp_oracle() -> WorkloadSpec {
    let mut s = base_spec("OLTP Oracle", 0x0AC_0002);
    s.layout.functions = 1_500;
    s.layout.mean_function_blocks = 30.0;
    s.request_types = 16;
    s.calls_per_request = 88;
    s.hot_functions = 60;
    s.hot_call_fraction = 0.26;
    s.os_invocation_probability = 0.035;
    s.data_region_blocks = 3_200_000;
    s
}

/// DSS query 2 (TPC-H on DB2): few request types, very long recurring scans.
pub fn dss_q2() -> WorkloadSpec {
    let mut s = base_spec("DSS Qry 2", 0xD55_0003);
    s.layout.functions = 620;
    s.layout.mean_function_blocks = 24.0;
    s.request_types = 3;
    s.calls_per_request = 150;
    s.hot_functions = 30;
    s.hot_call_fraction = 0.38;
    s.conditional_call_fraction = 0.10;
    s.os_invocation_probability = 0.02;
    s.data_region_blocks = 4_000_000;
    s.hot_data_fraction = 0.55;
    s
}

/// DSS query 17 (TPC-H on DB2): like query 2 with a slightly larger footprint.
pub fn dss_q17() -> WorkloadSpec {
    let mut s = base_spec("DSS Qry 17", 0xD55_0017);
    s.layout.functions = 700;
    s.layout.mean_function_blocks = 25.0;
    s.request_types = 4;
    s.calls_per_request = 140;
    s.hot_functions = 34;
    s.hot_call_fraction = 0.36;
    s.conditional_call_fraction = 0.11;
    s.os_invocation_probability = 0.02;
    s.data_region_blocks = 4_000_000;
    s.hot_data_fraction = 0.55;
    s
}

/// Darwin media streaming: the smallest instruction footprint of the suite,
/// dominated by a few packet-pump loops.
pub fn media_streaming() -> WorkloadSpec {
    let mut s = base_spec("Media Streaming", 0x3ED_0004);
    s.layout.functions = 460;
    s.layout.mean_function_blocks = 22.0;
    s.request_types = 6;
    s.calls_per_request = 48;
    s.hot_functions = 26;
    s.hot_call_fraction = 0.42;
    s.os_invocation_probability = 0.045;
    s.data_region_blocks = 6_000_000;
    s.hot_data_fraction = 0.45;
    s
}

/// Apache web frontend (SPECweb99): a broad URL mix with heavy OS involvement.
pub fn web_frontend() -> WorkloadSpec {
    let mut s = base_spec("Web Frontend", 0x3EB_0005);
    s.layout.functions = 1_150;
    s.layout.mean_function_blocks = 26.0;
    s.request_types = 10;
    s.calls_per_request = 60;
    s.hot_functions = 46;
    s.os_invocation_probability = 0.06;
    s.layout.os_functions = 64;
    s.data_region_blocks = 1_800_000;
    s
}

/// Nutch/Lucene web search: scoring and index traversal with a mid-sized
/// footprint.
pub fn web_search() -> WorkloadSpec {
    let mut s = base_spec("Web Search", 0x3EA_0006);
    s.layout.functions = 820;
    s.layout.mean_function_blocks = 24.0;
    s.request_types = 8;
    s.calls_per_request = 68;
    s.hot_functions = 38;
    s.hot_call_fraction = 0.34;
    s.os_invocation_probability = 0.025;
    s.data_region_blocks = 2_400_000;
    s
}

/// The full workload suite of Table I, in the paper's reporting order.
pub fn paper_suite() -> Vec<WorkloadSpec> {
    vec![
        oltp_db2(),
        oltp_oracle(),
        dss_q2(),
        dss_q17(),
        media_streaming(),
        web_frontend(),
        web_search(),
    ]
}

/// The four-workload consolidation mix of §5.5 (OLTP Oracle, web frontend,
/// media streaming, web search), each re-based to a disjoint address region.
pub fn consolidation_suite() -> Vec<WorkloadSpec> {
    [
        oltp_oracle(),
        web_frontend(),
        media_streaming(),
        web_search(),
    ]
    .into_iter()
    .enumerate()
    .map(|(i, spec)| spec.with_region_index(i))
    .collect()
}

/// A deliberately tiny workload for unit tests: a few dozen functions, short
/// requests, small data footprint. Its structure matches the real presets so
/// tests exercise the same code paths quickly.
pub fn tiny() -> WorkloadSpec {
    let mut s = base_spec("Tiny", 0x7E57_0000);
    // Keep the footprint several times the 512-block L1-I so that capacity
    // misses dominate, as they do for the real server workloads.
    s.layout.functions = 170;
    s.layout.mean_function_blocks = 12.0;
    s.layout.os_functions = 8;
    s.layout.mean_os_function_blocks = 6.0;
    s.request_types = 4;
    s.calls_per_request = 20;
    s.hot_functions = 8;
    s.data_region_blocks = 8_192;
    s.hot_data_blocks = 256;
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_seven_workloads_with_unique_names() {
        let suite = paper_suite();
        assert_eq!(suite.len(), 7);
        let names: std::collections::HashSet<_> = suite.iter().map(|s| s.name.clone()).collect();
        assert_eq!(names.len(), 7);
    }

    #[test]
    fn footprints_exceed_l1i_capacity() {
        // 32 KB L1-I = 512 blocks; every workload's footprint must exceed it
        // by a wide margin, as in the paper.
        for spec in paper_suite() {
            assert!(
                spec.expected_footprint_blocks() > 8.0 * 512.0,
                "{} footprint too small",
                spec.name
            );
        }
    }

    #[test]
    fn oracle_has_largest_footprint() {
        let suite = paper_suite();
        let oracle = suite.iter().find(|s| s.name == "OLTP Oracle").unwrap();
        for spec in &suite {
            assert!(oracle.expected_footprint_blocks() >= spec.expected_footprint_blocks());
        }
    }

    #[test]
    fn consolidation_suite_regions_are_disjoint() {
        let mix = consolidation_suite();
        assert_eq!(mix.len(), 4);
        for i in 0..mix.len() {
            for j in (i + 1)..mix.len() {
                assert!(!mix[i].code_region().overlaps(&mix[j].code_region()));
                assert!(!mix[i].data_region().overlaps(&mix[j].data_region()));
            }
        }
    }

    #[test]
    fn tiny_is_much_smaller_than_paper_workloads() {
        assert!(tiny().expected_footprint_blocks() < 4_000.0);
    }
}
