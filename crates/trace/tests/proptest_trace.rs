//! Property tests for the synthetic workload generator.

use proptest::prelude::*;
use shift_trace::{presets, CoreTraceGenerator, TraceEvent};
use shift_types::CoreId;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every generated event stays within the workload's declared address
    /// regions, for any core and seed.
    #[test]
    fn events_stay_in_declared_regions(core in 0u16..8, seed in 0u64..1_000) {
        let spec = presets::tiny();
        let mut generator = CoreTraceGenerator::new(&spec, CoreId::new(core), seed);
        let code = generator.program().layout().code_region();
        let os = generator.program().layout().os_region();
        let data = spec.data_region();
        for event in generator.by_ref().take(3_000) {
            match event {
                TraceEvent::Fetch(f) => {
                    prop_assert!(code.contains(f.block) || os.contains(f.block));
                    prop_assert!(f.instructions >= spec.instructions_per_block_min);
                    prop_assert!(f.instructions <= spec.instructions_per_block_max);
                }
                TraceEvent::Data(d) => prop_assert!(data.contains(d.block)),
            }
        }
    }

    /// Generation is a pure function of (spec, core, seed).
    #[test]
    fn generation_is_deterministic(core in 0u16..4, seed in 0u64..100) {
        let spec = presets::tiny();
        let a: Vec<_> = CoreTraceGenerator::new(&spec, CoreId::new(core), seed)
            .take(1_000)
            .collect();
        let b: Vec<_> = CoreTraceGenerator::new(&spec, CoreId::new(core), seed)
            .take(1_000)
            .collect();
        prop_assert_eq!(a, b);
    }
}
