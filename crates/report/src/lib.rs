//! Machine-readable reproduction artifacts.
//!
//! Every figure and table of the paper's evaluation is published as an
//! [`Artifact`]: a named bundle of
//!
//! * the experiment's full result tree (everything its summary type
//!   serializes via `serde`), written as **JSON** for downstream tooling,
//! * a flat [`Table`] of the figure's rows, written as **CSV** for
//!   spreadsheets and plotting scripts, and
//! * a human-readable **markdown** rendering of the same table,
//!
//! plus a `reference` block of [`Reference`] checks that compare headline
//! metrics against the values the paper reports, each with a pass/warn
//! tolerance verdict. [`scoreboard`] renders the checks of a whole artifact
//! set as the final console summary the `reproduce` driver prints.
//!
//! The crate deliberately depends only on the `serde` shim, so every layer of
//! the workspace (simulator, harness, examples) can emit artifacts without
//! dependency cycles.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod artifact;
mod reference;
mod table;
mod wire;

pub use artifact::{write_json, Artifact};
pub use reference::{Check, Reference, Verdict};
pub use table::Table;
pub use wire::{wire_artifact, wire_bundle, wire_bundle_json};

use std::fmt::Write as _;

/// Renders the reference scoreboard for a set of artifacts as markdown
/// (which also reads cleanly on a terminal).
///
/// One line per [`Reference`] check, grouped by artifact, followed by a
/// summary count. Artifacts without references are listed as informational.
pub fn scoreboard(artifacts: &[Artifact]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "## Reference scoreboard");
    let _ = writeln!(out);
    let mut pass = 0usize;
    let mut warn = 0usize;
    for artifact in artifacts {
        if artifact.references().is_empty() {
            let _ = writeln!(out, "{:<10} (no reference values)", artifact.name());
            continue;
        }
        for reference in artifact.references() {
            match reference.verdict() {
                Verdict::Pass => pass += 1,
                Verdict::Warn => warn += 1,
            }
            let _ = writeln!(out, "{:<10} {}", artifact.name(), reference.summary_line());
        }
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{pass} pass, {warn} warn of {} reference checks",
        pass + warn
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoreboard_counts_verdicts() {
        let with_ref = Artifact::new("fig01", "Figure 1", &1.31f64, Table::new(["x"]))
            .with_reference(Reference::new(
                "perfect-I$ speedup",
                1.31,
                Check::near(1.31, 0.10),
            ))
            .with_reference(Reference::new("way off", 9.0, Check::near(1.0, 0.10)));
        let without_ref = Artifact::new("table1", "Table I", &0u8, Table::new(["k", "v"]));
        let board = scoreboard(&[with_ref, without_ref]);
        assert!(board.contains("1 pass, 1 warn of 2 reference checks"));
        assert!(board.contains("(no reference values)"));
        assert!(board.contains("fig01"));
    }
}
