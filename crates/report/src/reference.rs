//! Paper-reference checks: does a reproduced metric land near the value the
//! paper reports?

use serde::{Serialize, Value};

/// How a reproduced value is compared against the paper's reference.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Check {
    /// Pass when within `tolerance` (relative) of `expected`.
    Near {
        /// The value the paper reports.
        expected: f64,
        /// Allowed relative deviation (e.g. `0.15` = ±15 %).
        tolerance: f64,
    },
    /// Pass when the actual value does not exceed `limit` (used for "< 150 mW"
    /// style claims).
    AtMost {
        /// Upper bound the paper claims.
        limit: f64,
    },
    /// Pass when the actual value reaches at least `limit` (used for "> 90 %"
    /// style claims).
    AtLeast {
        /// Lower bound the paper claims.
        limit: f64,
    },
}

impl Check {
    /// A [`Check::Near`] comparison.
    pub fn near(expected: f64, tolerance: f64) -> Self {
        assert!(tolerance >= 0.0, "tolerance must be non-negative");
        Check::Near {
            expected,
            tolerance,
        }
    }

    /// An [`Check::AtMost`] comparison.
    pub fn at_most(limit: f64) -> Self {
        Check::AtMost { limit }
    }

    /// An [`Check::AtLeast`] comparison.
    pub fn at_least(limit: f64) -> Self {
        Check::AtLeast { limit }
    }

    /// The paper value this check is anchored to (for display).
    pub fn paper_value(&self) -> f64 {
        match self {
            Check::Near { expected, .. } => *expected,
            Check::AtMost { limit } | Check::AtLeast { limit } => *limit,
        }
    }

    fn verdict(&self, actual: f64) -> Verdict {
        let ok = match self {
            Check::Near {
                expected,
                tolerance,
            } => {
                let denom = expected.abs().max(f64::MIN_POSITIVE);
                actual.is_finite() && ((actual - expected).abs() / denom) <= *tolerance
            }
            Check::AtMost { limit } => actual.is_finite() && actual <= *limit,
            Check::AtLeast { limit } => actual.is_finite() && actual >= *limit,
        };
        if ok {
            Verdict::Pass
        } else {
            Verdict::Warn
        }
    }

    fn describe(&self) -> String {
        match self {
            Check::Near {
                expected,
                tolerance,
            } => format!("≈ {expected} (±{:.0}%)", tolerance * 100.0),
            Check::AtMost { limit } => format!("≤ {limit}"),
            Check::AtLeast { limit } => format!("≥ {limit}"),
        }
    }
}

/// Outcome of a reference check.
///
/// The synthetic workloads cannot (and are not expected to) hit the paper's
/// hardware-measured numbers exactly, so a deviation is a **warning** in the
/// scoreboard, never a hard failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Within tolerance of the paper's value.
    Pass,
    /// Outside tolerance — worth a look, not a failure.
    Warn,
}

impl Verdict {
    /// Scoreboard tag (`PASS` / `warn`).
    pub fn tag(&self) -> &'static str {
        match self {
            Verdict::Pass => "PASS",
            Verdict::Warn => "warn",
        }
    }
}

/// One reproduced metric compared against the paper.
#[derive(Clone, Debug)]
pub struct Reference {
    /// What is being checked (e.g. `"geomean speedup, SHIFT"`).
    pub metric: String,
    /// The reproduced value.
    pub actual: f64,
    /// The comparison against the paper's value.
    pub check: Check,
}

impl Reference {
    /// A reference check for `metric` with the reproduced `actual` value.
    pub fn new(metric: impl Into<String>, actual: f64, check: Check) -> Self {
        Reference {
            metric: metric.into(),
            actual,
            check,
        }
    }

    /// The pass/warn outcome.
    pub fn verdict(&self) -> Verdict {
        self.check.verdict(self.actual)
    }

    /// One scoreboard line: verdict, metric, actual vs. paper.
    pub fn summary_line(&self) -> String {
        format!(
            "[{}] {}: {:.3} (paper: {})",
            self.verdict().tag(),
            self.metric,
            self.actual,
            self.check.describe()
        )
    }
}

impl Serialize for Reference {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("metric".to_owned(), self.metric.to_value()),
            ("actual".to_owned(), self.actual.to_value()),
            ("paper".to_owned(), self.check.paper_value().to_value()),
            (
                "check".to_owned(),
                Value::Str(self.check.describe().replace('≈', "~").replace('±', "+/-")),
            ),
            (
                "verdict".to_owned(),
                Value::Str(self.verdict().tag().to_owned()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn near_check_uses_relative_tolerance() {
        assert_eq!(Check::near(1.31, 0.10).verdict(1.25), Verdict::Pass);
        assert_eq!(Check::near(1.31, 0.10).verdict(1.50), Verdict::Warn);
        assert_eq!(Check::near(1.31, 0.10).verdict(f64::NAN), Verdict::Warn);
    }

    #[test]
    fn bound_checks() {
        assert_eq!(Check::at_most(150.0).verdict(80.0), Verdict::Pass);
        assert_eq!(Check::at_most(150.0).verdict(151.0), Verdict::Warn);
        assert_eq!(Check::at_least(0.9).verdict(0.95), Verdict::Pass);
        assert_eq!(Check::at_least(0.9).verdict(0.7), Verdict::Warn);
    }

    #[test]
    fn summary_line_and_serialization_name_the_verdict() {
        let r = Reference::new("perfect-I$ speedup", 1.28, Check::near(1.31, 0.10));
        assert!(r.summary_line().contains("[PASS] perfect-I$ speedup"));
        let v = r.to_value();
        assert_eq!(v.get("verdict").and_then(Value::as_str), Some("PASS"));
        assert_eq!(v.get("paper").and_then(Value::as_f64), Some(1.31));
    }
}
