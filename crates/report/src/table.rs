//! Flat tables rendered as CSV and markdown.

use serde::{Serialize, Value};

/// A flat table of strings: the tabular view of a figure's rows.
///
/// The table owns its formatting: numeric cells should be pre-formatted by
/// the caller (the artifact builders format to the same precision the paper
/// reports).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers and no rows yet.
    pub fn new<I, S>(headers: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row's length differs from the header count — a malformed
    /// table is a bug in the artifact builder, not a runtime condition.
    pub fn push_row<I, S>(&mut self, row: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "table row has {} cells but the table has {} columns",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
    }

    /// Column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// Data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders as RFC 4180 CSV (comma-separated, quoted where needed, CRLF-free).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&csv_line(&self.headers));
        for row in &self.rows {
            out.push_str(&csv_line(row));
        }
        out
    }

    /// Renders as a GitHub-flavored markdown table.
    pub fn to_markdown(&self) -> String {
        let widths: Vec<usize> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| {
                self.rows
                    .iter()
                    .map(|r| r[i].chars().count())
                    .chain([h.chars().count(), 3])
                    .max()
                    .unwrap_or(3)
            })
            .collect();
        let mut out = String::new();
        out.push_str(&md_line(&self.headers, &widths));
        let dashes: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&md_line(&dashes, &widths));
        for row in &self.rows {
            out.push_str(&md_line(row, &widths));
        }
        out
    }
}

impl Serialize for Table {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("headers".to_owned(), self.headers.to_value()),
            ("rows".to_owned(), self.rows.to_value()),
        ])
    }
}

fn csv_line(cells: &[String]) -> String {
    let escaped: Vec<String> = cells
        .iter()
        .map(|cell| {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.clone()
            }
        })
        .collect();
    format!("{}\n", escaped.join(","))
}

fn md_line(cells: &[String], widths: &[usize]) -> String {
    let padded: Vec<String> = cells
        .iter()
        .zip(widths)
        .map(|(cell, w)| format!("{cell:<w$}"))
        .collect();
    format!("| {} |\n", padded.join(" | "))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(["workload", "speedup"]);
        t.push_row(["web,frontend", "1.19"]);
        t.push_row(["oltp \"small\"", "1.21"]);
        t
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let csv = sample().to_csv();
        assert_eq!(
            csv,
            "workload,speedup\n\"web,frontend\",1.19\n\"oltp \"\"small\"\"\",1.21\n"
        );
    }

    #[test]
    fn markdown_pads_columns() {
        let md = sample().to_markdown();
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("| workload"));
        assert!(lines[1].contains("---"));
        // All lines align to the same rendered width.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn mismatched_row_width_panics() {
        let mut t = Table::new(["a", "b"]);
        t.push_row(["only one"]);
    }

    #[test]
    fn serializes_headers_and_rows() {
        let json = sample().to_value().to_json();
        assert!(json.starts_with(r#"{"headers":["workload","speedup"],"rows":"#));
    }
}
