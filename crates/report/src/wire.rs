//! Wire encoding of artifact bundles for the serving path.
//!
//! A resident server answers artifact queries over HTTP, so the whole
//! bundle — every figure/table plus the scoreboard — has to travel as one
//! JSON document. The encoding here embeds each artifact's **exact**
//! [`Artifact::to_json`] / [`Table::to_csv`](crate::Table::to_csv) /
//! [`Artifact::to_markdown`] output as JSON *string fields* rather than
//! splicing the JSON tree in structurally. That choice is what makes the
//! serving path byte-faithful: a client that extracts the `json` field of
//! `fig08` gets the identical bytes `reproduce --merge` would have written
//! to `fig08.json`, so byte-comparison tests (and checksum-keeping clients)
//! work across the wire.

use serde::{json, Value};

use crate::artifact::Artifact;
use crate::scoreboard;

/// One artifact as a wire value: `{name, title, json, csv, markdown}`,
/// where the last three are the exact strings the on-disk
/// [`Artifact::write_to`] files would contain.
pub fn wire_artifact(artifact: &Artifact) -> Value {
    Value::Map(vec![
        ("name".to_owned(), Value::Str(artifact.name().to_owned())),
        ("title".to_owned(), Value::Str(artifact.title().to_owned())),
        ("json".to_owned(), Value::Str(artifact.to_json())),
        ("csv".to_owned(), Value::Str(artifact.table().to_csv())),
        ("markdown".to_owned(), Value::Str(artifact.to_markdown())),
    ])
}

/// A whole artifact set as one wire value:
/// `{scoreboard, artifacts: [...]}` with the artifacts in input order, each
/// encoded by [`wire_artifact`].
pub fn wire_bundle(artifacts: &[Artifact]) -> Value {
    Value::Map(vec![
        ("scoreboard".to_owned(), Value::Str(scoreboard(artifacts))),
        (
            "artifacts".to_owned(),
            Value::Seq(artifacts.iter().map(wire_artifact).collect()),
        ),
    ])
}

/// [`wire_bundle`] rendered to its JSON string — the body a server caches
/// and replays verbatim for repeat queries.
pub fn wire_bundle_json(artifacts: &[Artifact]) -> String {
    json::to_string(&wire_bundle(artifacts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Check, Reference, Table};

    fn sample() -> Artifact {
        let mut table = Table::new(["workload", "speedup"]);
        table.push_row(["OLTP DB2".to_owned(), "1.5".to_owned()]);
        Artifact::new(
            "fig99",
            "Figure 99: a \"quoted\" title\nwith a newline",
            &1.5f64,
            table,
        )
        .with_reference(Reference::new("speedup", 1.5, Check::near(1.4, 0.2)))
    }

    #[test]
    fn wire_fields_are_byte_identical_to_local_rendering() {
        let artifact = sample();
        let wire = wire_artifact(&artifact);
        assert_eq!(wire.get("name").and_then(Value::as_str), Some("fig99"));
        assert_eq!(
            wire.get("json").and_then(Value::as_str),
            Some(artifact.to_json().as_str())
        );
        assert_eq!(
            wire.get("csv").and_then(Value::as_str),
            Some(artifact.table().to_csv().as_str())
        );
        assert_eq!(
            wire.get("markdown").and_then(Value::as_str),
            Some(artifact.to_markdown().as_str())
        );
    }

    #[test]
    fn bundle_json_round_trips_through_the_json_layer() {
        let artifacts = [sample()];
        let body = wire_bundle_json(&artifacts);
        // Embedded newlines/quotes must survive a parse round-trip exactly:
        // the client-side decode of the string fields is the byte-identity
        // contract the serve tests rely on.
        let doc = json::parse(&body).expect("bundle parses");
        assert_eq!(
            doc.get("scoreboard").and_then(Value::as_str),
            Some(scoreboard(&artifacts).as_str())
        );
        let list = match doc.get("artifacts") {
            Some(Value::Seq(items)) => items,
            other => panic!("expected artifact seq, got {other:?}"),
        };
        assert_eq!(list.len(), 1);
        assert_eq!(
            list[0].get("json").and_then(Value::as_str),
            Some(artifacts[0].to_json().as_str())
        );
        assert_eq!(
            list[0].get("markdown").and_then(Value::as_str),
            Some(artifacts[0].to_markdown().as_str())
        );
    }
}
