//! The artifact bundle: one figure/table's result in every emitted format.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use serde::{json, Serialize, Value};

use crate::{Reference, Table};

/// One reproduced figure/table, ready to be written to disk as
/// `<name>.json`, `<name>.csv`, and `<name>.md`.
#[derive(Clone, Debug)]
pub struct Artifact {
    name: String,
    title: String,
    data: Value,
    table: Table,
    references: Vec<Reference>,
}

impl Artifact {
    /// Bundles a figure's serialized result `data` with its tabular view.
    ///
    /// `name` becomes the artifact's file stem (e.g. `fig08`); `title` is the
    /// human-readable heading (e.g. `"Figure 8: speedup comparison"`).
    pub fn new(
        name: impl Into<String>,
        title: impl Into<String>,
        data: &(impl Serialize + ?Sized),
        table: Table,
    ) -> Self {
        Artifact {
            name: name.into(),
            title: title.into(),
            data: data.to_value(),
            table,
            references: Vec::new(),
        }
    }

    /// Attaches a paper-reference check to the artifact's `reference` block.
    #[must_use]
    pub fn with_reference(mut self, reference: Reference) -> Self {
        self.references.push(reference);
        self
    }

    /// The artifact's file stem.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The artifact's human-readable title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The serialized result tree.
    pub fn data(&self) -> &Value {
        &self.data
    }

    /// The tabular view.
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// The attached paper-reference checks.
    pub fn references(&self) -> &[Reference] {
        &self.references
    }

    /// The JSON document written to `<name>.json`: name, title, reference
    /// block, and the full result tree.
    pub fn to_json(&self) -> String {
        let doc = Value::Map(vec![
            ("name".to_owned(), self.name.to_value()),
            ("title".to_owned(), self.title.to_value()),
            ("reference".to_owned(), self.references.to_value()),
            ("data".to_owned(), self.data.clone()),
        ]);
        json::to_string_pretty(&doc)
    }

    /// The markdown document written to `<name>.md`: title, table, and the
    /// reference checks.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("# {}\n\n", self.title);
        out.push_str(&self.table.to_markdown());
        if !self.references.is_empty() {
            out.push_str("\n## Paper reference\n\n");
            for reference in &self.references {
                out.push_str(&format!("- {}\n", reference.summary_line()));
            }
        }
        out
    }

    /// Writes `<dir>/<name>.{json,csv,md}`, creating `dir` if needed, and
    /// returns the three paths.
    pub fn write_to(&self, dir: impl AsRef<Path>) -> io::Result<Vec<PathBuf>> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir)?;
        let paths = vec![
            dir.join(format!("{}.json", self.name)),
            dir.join(format!("{}.csv", self.name)),
            dir.join(format!("{}.md", self.name)),
        ];
        fs::write(&paths[0], self.to_json())?;
        fs::write(&paths[1], self.table.to_csv())?;
        fs::write(&paths[2], self.to_markdown())?;
        Ok(paths)
    }
}

/// Writes any serializable value as pretty JSON to `path`, creating parent
/// directories as needed. The one-stop call for examples and ad-hoc tooling.
pub fn write_json(path: impl AsRef<Path>, value: &(impl Serialize + ?Sized)) -> io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, json::to_string_pretty(value))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Artifact {
        let mut table = Table::new(["workload", "speedup"]);
        table.push_row(["oltp", "1.19"]);
        Artifact::new(
            "fig08",
            "Figure 8: speedup comparison",
            &vec![1.19f64],
            table,
        )
        .with_reference(Reference::new(
            "geomean speedup, SHIFT",
            1.19,
            crate::Check::near(1.19, 0.15),
        ))
    }

    #[test]
    fn json_document_carries_reference_block_and_data() {
        let json = sample().to_json();
        assert!(json.contains("\"name\": \"fig08\""));
        assert!(json.contains("\"reference\": ["));
        assert!(json.contains("\"verdict\": \"PASS\""));
        assert!(json.contains("\"data\": ["));
    }

    #[test]
    fn markdown_document_has_title_table_and_references() {
        let md = sample().to_markdown();
        assert!(md.starts_with("# Figure 8"));
        assert!(md.contains("| workload"));
        assert!(md.contains("[PASS] geomean speedup, SHIFT"));
    }

    #[test]
    fn writes_three_files() {
        let dir = std::env::temp_dir().join("shift-report-test-artifact");
        let _ = fs::remove_dir_all(&dir);
        let paths = sample().write_to(&dir).expect("write artifacts");
        assert_eq!(paths.len(), 3);
        for path in &paths {
            let content = fs::read_to_string(path).expect("artifact file readable");
            assert!(!content.is_empty());
        }
        write_json(dir.join("extra.json"), &42u8).expect("write_json");
        assert_eq!(fs::read_to_string(dir.join("extra.json")).unwrap(), "42\n");
        fs::remove_dir_all(&dir).expect("cleanup");
    }
}
