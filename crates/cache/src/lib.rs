//! Cache hierarchy models for the SHIFT reproduction.
//!
//! This crate provides the storage substrates the simulated CMP is built
//! from:
//!
//! * [`SetAssocCache`] — a set-associative cache with pluggable replacement,
//!   per-line user metadata, and optional *pinned* (non-evictable) lines. The
//!   L1 instruction and data caches are instances of it.
//! * [`Mshr`] — miss-status holding registers that merge secondary misses.
//! * [`NucaLlc`] — the shared, banked last-level cache. It supports the two
//!   extensions virtualized SHIFT needs: an index-pointer field appended to
//!   every tag (the paper's embedded index table) and a non-evictable address
//!   window that holds the virtualized history buffer.
//! * [`CacheStats`] / [`TrafficStats`] — hit/miss and per-class traffic
//!   accounting used to reproduce the paper's LLC-overhead results (Fig. 9).
//!
//! # Examples
//!
//! ```
//! use shift_cache::{CacheConfig, SetAssocCache};
//! use shift_types::BlockAddr;
//!
//! // The paper's 32 KB, 2-way, 64 B-block L1-I cache.
//! let mut l1i: SetAssocCache<()> = SetAssocCache::new(CacheConfig::l1i_micro13());
//! let block = BlockAddr::new(0x400);
//! assert!(!l1i.access(block).is_hit());
//! l1i.fill(block, ());
//! assert!(l1i.access(block).is_hit());
//! ```

// Unsafe is denied crate-wide rather than forbidden: the one exception is
// the runtime-detected `std::arch` tag-scan module in `set_assoc`, whose
// intrinsic calls are `unsafe` by signature and pinned to the scalar scan by
// differential tests.
#![deny(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]
#![cfg_attr(feature = "simd", feature(portable_simd))]

pub mod config;
pub mod llc;
pub mod mshr;
pub mod replacement;
pub mod set_assoc;
pub mod stats;

pub use config::{CacheConfig, LlcConfig};
pub use llc::{LlcAccessOutcome, LlcMeta, NucaLlc};
pub use mshr::{Mshr, MshrAllocation};
pub use replacement::ReplacementPolicy;
pub use set_assoc::{AccessResult, EvictedLine, SetAssocCache};
pub use stats::{CacheStats, TrafficStats};
