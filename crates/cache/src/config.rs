//! Cache geometry and latency configuration.

use serde::{Deserialize, Serialize};
use shift_types::BLOCK_BYTES;

/// Geometry and latency of a single cache (an L1 or one LLC bank).
///
/// # Examples
///
/// ```
/// use shift_cache::CacheConfig;
/// let l1i = CacheConfig::l1i_micro13();
/// assert_eq!(l1i.sets(), 32 * 1024 / (2 * 64));
/// assert_eq!(l1i.capacity_blocks(), 512);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: usize,
    /// Associativity (number of ways per set).
    pub ways: usize,
    /// Block size in bytes.
    pub block_bytes: usize,
    /// Load-to-use (hit) latency in cycles.
    pub hit_latency: u64,
}

impl CacheConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not an exact multiple of `ways * block_bytes`
    /// or any parameter is zero.
    pub fn new(capacity_bytes: usize, ways: usize, block_bytes: usize, hit_latency: u64) -> Self {
        assert!(capacity_bytes > 0 && ways > 0 && block_bytes > 0);
        assert_eq!(
            capacity_bytes % (ways * block_bytes),
            0,
            "capacity must be a whole number of sets"
        );
        CacheConfig {
            capacity_bytes,
            ways,
            block_bytes,
            hit_latency,
        }
    }

    /// The paper's L1 instruction cache: 32 KB, 2-way, 64 B blocks, 2-cycle
    /// load-to-use latency.
    pub fn l1i_micro13() -> Self {
        CacheConfig::new(32 * 1024, 2, BLOCK_BYTES, 2)
    }

    /// The paper's L1 data cache: 32 KB, 2-way, 64 B blocks, 2-cycle latency.
    pub fn l1d_micro13() -> Self {
        CacheConfig::new(32 * 1024, 2, BLOCK_BYTES, 2)
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.capacity_bytes / (self.ways * self.block_bytes)
    }

    /// Total number of blocks the cache can hold.
    pub fn capacity_blocks(&self) -> usize {
        self.capacity_bytes / self.block_bytes
    }
}

/// Geometry of the shared NUCA last-level cache.
///
/// The paper models a unified L2/LLC of 512 KB per core, 16-way, with one
/// bank per core (16 banks), 5-cycle bank hit latency, and 64-byte blocks.
///
/// # Examples
///
/// ```
/// use shift_cache::LlcConfig;
/// let llc = LlcConfig::micro13(16);
/// assert_eq!(llc.total_bytes, 16 * 512 * 1024);
/// assert_eq!(llc.banks, 16);
/// assert_eq!(llc.bank_config().capacity_bytes, 512 * 1024);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LlcConfig {
    /// Aggregate capacity in bytes across all banks.
    pub total_bytes: usize,
    /// Associativity of each bank.
    pub ways: usize,
    /// Number of banks (address-interleaved at block granularity).
    pub banks: usize,
    /// Block size in bytes.
    pub block_bytes: usize,
    /// Hit latency of a bank in cycles.
    pub hit_latency: u64,
    /// Main-memory access latency in cycles, charged on LLC misses.
    pub memory_latency: u64,
    /// Width in bits of the index pointer appended to each tag for the
    /// virtualized SHIFT index table (15 bits in the paper, addressing a
    /// 32 K-entry history buffer).
    pub index_pointer_bits: u32,
}

impl LlcConfig {
    /// The paper's LLC for a CMP with `cores` cores: 512 KB per core, 16-way,
    /// one bank per core, 5-cycle hit latency, 45 ns (90 cycles at 2 GHz)
    /// memory latency, 15-bit index pointers.
    pub fn micro13(cores: usize) -> Self {
        assert!(cores > 0, "LLC needs at least one bank");
        LlcConfig {
            total_bytes: cores * 512 * 1024,
            ways: 16,
            banks: cores,
            block_bytes: BLOCK_BYTES,
            hit_latency: 5,
            memory_latency: 90,
            index_pointer_bits: 15,
        }
    }

    /// Configuration of a single bank.
    pub fn bank_config(&self) -> CacheConfig {
        CacheConfig::new(
            self.total_bytes / self.banks,
            self.ways,
            self.block_bytes,
            self.hit_latency,
        )
    }

    /// Total number of blocks (and therefore tags) in the LLC.
    pub fn capacity_blocks(&self) -> usize {
        self.total_bytes / self.block_bytes
    }

    /// Storage overhead, in bytes, of appending `index_pointer_bits` to every
    /// LLC tag — the paper's 240 KB figure for an 8 MB LLC with 15-bit
    /// pointers.
    pub fn index_table_overhead_bytes(&self) -> usize {
        self.capacity_blocks() * self.index_pointer_bits as usize / 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l1_configs_match_table1() {
        let i = CacheConfig::l1i_micro13();
        let d = CacheConfig::l1d_micro13();
        assert_eq!(i.capacity_bytes, 32 * 1024);
        assert_eq!(i.ways, 2);
        assert_eq!(i.hit_latency, 2);
        assert_eq!(d.capacity_bytes, 32 * 1024);
        assert_eq!(i.sets(), 256);
    }

    #[test]
    fn llc_config_matches_table1() {
        let llc = LlcConfig::micro13(16);
        assert_eq!(llc.total_bytes, 8 * 1024 * 1024);
        assert_eq!(llc.ways, 16);
        assert_eq!(llc.banks, 16);
        assert_eq!(llc.hit_latency, 5);
        assert_eq!(llc.bank_config().sets(), 512 * 1024 / (16 * 64));
    }

    #[test]
    fn index_table_overhead_matches_paper() {
        // 8 MB LLC → 128 K tags × 15 bits = 240 KB.
        let llc = LlcConfig::micro13(16);
        assert_eq!(llc.index_table_overhead_bytes(), 240 * 1024);
    }

    #[test]
    #[should_panic(expected = "whole number of sets")]
    fn misaligned_capacity_rejected() {
        let _ = CacheConfig::new(1000, 3, 64, 1);
    }
}
