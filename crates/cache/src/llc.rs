//! The shared, banked NUCA last-level cache.
//!
//! The LLC is the substrate into which virtualized SHIFT embeds its shared
//! history: a reserved, non-evictable block range holds the history buffer,
//! and every tag carries an optional index pointer into that buffer (the
//! embedded index table of §4.2). The LLC also accounts traffic per
//! [`AccessClass`] so that the Figure 9 overhead breakdown can be reproduced.

use serde::{Deserialize, Serialize};
use shift_types::{AccessClass, BlockAddr};

use crate::config::LlcConfig;
use crate::set_assoc::SetAssocCache;
use crate::stats::{CacheStats, TrafficStats};

/// Per-line LLC metadata: the index pointer appended to the tag.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LlcMeta {
    /// Pointer to the most recent occurrence of this (instruction) block's
    /// trigger in the virtualized history buffer, if any.
    pub index_ptr: Option<u32>,
}

/// Outcome of an LLC access.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LlcAccessOutcome {
    /// Whether the block was found in the LLC.
    pub hit: bool,
    /// The bank that served the request.
    pub bank: usize,
    /// Access latency in cycles (bank hit latency, plus memory latency on a
    /// miss).
    pub latency: u64,
    /// Index pointer stored alongside the block's tag, if the block was
    /// present and had one. The LLC returns it with every demand response so
    /// the requesting core's SHIFT logic can start a history read (§4.2,
    /// replay step 1).
    pub index_ptr: Option<u32>,
}

/// The shared, banked last-level cache.
///
/// # Examples
///
/// ```
/// use shift_cache::{LlcConfig, NucaLlc};
/// use shift_types::{AccessClass, BlockAddr};
///
/// let mut llc = NucaLlc::new(LlcConfig::micro13(4));
/// let outcome = llc.access(BlockAddr::new(0x1234), AccessClass::Demand);
/// assert!(!outcome.hit);
/// let outcome = llc.access(BlockAddr::new(0x1234), AccessClass::Demand);
/// assert!(outcome.hit);
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NucaLlc {
    config: LlcConfig,
    banks: Vec<SetAssocCache<LlcMeta>>,
    traffic: TrafficStats,
    pinned_ranges: Vec<(BlockAddr, u64)>,
    /// `log2(banks)` when the bank count is a power of two: bank selection
    /// and bank-local address derivation then use mask/shift instead of the
    /// modulo and division on the per-access path.
    bank_bits: Option<u32>,
}

impl NucaLlc {
    /// Creates an empty LLC.
    pub fn new(config: LlcConfig) -> Self {
        let banks = (0..config.banks)
            .map(|_| SetAssocCache::new(config.bank_config()))
            .collect();
        NucaLlc {
            banks,
            traffic: TrafficStats::new(),
            pinned_ranges: Vec::new(),
            bank_bits: (config.banks as u64)
                .is_power_of_two()
                .then(|| (config.banks as u64).trailing_zeros()),
            config,
        }
    }

    /// The LLC configuration.
    pub fn config(&self) -> &LlcConfig {
        &self.config
    }

    /// The bank a block maps to (block-interleaved).
    #[inline]
    pub fn bank_of(&self, block: BlockAddr) -> usize {
        match self.bank_bits {
            Some(bits) => (block.get() & ((1u64 << bits) - 1)) as usize,
            None => (block.get() % self.config.banks as u64) as usize,
        }
    }

    /// The address used to index within a bank: the bank-selection bits are
    /// stripped so consecutive blocks of one bank spread over all of its sets.
    #[inline]
    fn bank_local(&self, block: BlockAddr) -> BlockAddr {
        match self.bank_bits {
            Some(bits) => BlockAddr::new(block.get() >> bits),
            None => BlockAddr::new(block.get() / self.config.banks as u64),
        }
    }

    /// Per-class traffic statistics.
    pub fn traffic(&self) -> &TrafficStats {
        &self.traffic
    }

    /// Records a traffic event that does not correspond to a block transfer
    /// performed through [`access`](Self::access) (e.g. a discarded prefetch
    /// or a tag-only index update).
    pub fn record_traffic(&mut self, class: AccessClass, bytes: u64) {
        self.traffic.record(class, bytes);
    }

    /// Aggregate hit/miss statistics across all banks.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for bank in &self.banks {
            let s = bank.stats();
            total.accesses += s.accesses;
            total.hits += s.hits;
            total.misses += s.misses;
            total.fills += s.fills;
            total.evictions += s.evictions;
        }
        total
    }

    /// Resets hit/miss and traffic statistics (e.g. after warm-up).
    pub fn reset_stats(&mut self) {
        for bank in &mut self.banks {
            bank.reset_stats();
        }
        self.traffic = TrafficStats::new();
    }

    /// Performs an access of the given class, filling the block on a miss.
    ///
    /// The returned latency covers the bank lookup plus, on a miss, the
    /// memory round trip. NoC latency between the requesting core and the
    /// bank is accounted separately by the interconnect model.
    #[inline]
    pub fn access(&mut self, block: BlockAddr, class: AccessClass) -> LlcAccessOutcome {
        self.traffic.record(class, self.config.block_bytes as u64);
        let bank_idx = self.bank_of(block);
        let local = self.bank_local(block);
        // One combined scan resolves hit/miss, recency, and the index
        // pointer; the pinned-range check only matters for fills, so it is
        // deferred to the miss path.
        let (result, meta) = self.banks[bank_idx].access_meta(local);
        let hit = result.is_hit();
        let index_ptr = if let Some(meta) = meta {
            meta.index_ptr
        } else {
            if self.is_pinned(block) {
                self.banks[bank_idx].fill_pinned(local, LlcMeta::default());
            } else {
                self.banks[bank_idx].fill(local, LlcMeta::default());
            }
            None
        };
        let latency = if hit {
            self.config.hit_latency
        } else {
            self.config.hit_latency + self.config.memory_latency
        };
        LlcAccessOutcome {
            hit,
            bank: bank_idx,
            latency,
            index_ptr,
        }
    }

    /// Checks whether a block is resident without perturbing state.
    pub fn probe(&self, block: BlockAddr) -> bool {
        self.banks[self.bank_of(block)].probe(self.bank_local(block))
    }

    /// Reads the index pointer stored with `block`'s tag, if the block is
    /// resident. Does not count as traffic (the pointer travels with demand
    /// responses).
    pub fn index_ptr(&self, block: BlockAddr) -> Option<u32> {
        self.banks[self.bank_of(block)]
            .meta(self.bank_local(block))
            .and_then(|m| m.index_ptr)
    }

    /// Updates the index pointer of `block` if it is resident, recording the
    /// tag-array traffic. Returns `true` if the pointer was stored.
    ///
    /// This is the "index update request" the history generator core issues
    /// for every new spatial-region record (§4.2, record step 2).
    pub fn update_index_ptr(&mut self, block: BlockAddr, ptr: u32) -> bool {
        // Index updates only touch the tag array; account two bytes (the
        // 15-bit pointer) rather than a full block.
        self.traffic.record(AccessClass::IndexUpdate, 2);
        let bank = self.bank_of(block);
        let local = self.bank_local(block);
        match self.banks[bank].meta_mut(local) {
            Some(meta) => {
                meta.index_ptr = Some(ptr);
                true
            }
            None => false,
        }
    }

    /// Reserves `blocks` LLC lines starting at `start` for a virtualized
    /// history buffer: the lines are installed immediately and pinned so they
    /// can never be evicted, guaranteeing that the entire history is always
    /// LLC-resident (§4.2).
    pub fn reserve_history_region(&mut self, start: BlockAddr, blocks: u64) {
        assert!(blocks > 0, "history region must not be empty");
        self.pinned_ranges.push((start, blocks));
        for i in 0..blocks {
            let block = start.offset(i);
            let bank = self.bank_of(block);
            let local = self.bank_local(block);
            self.banks[bank].fill_pinned(local, LlcMeta::default());
        }
    }

    /// Returns `true` if `block` belongs to a reserved history region.
    #[inline]
    pub fn is_pinned(&self, block: BlockAddr) -> bool {
        self.pinned_ranges
            .iter()
            .any(|&(start, len)| block >= start && block < start.offset(len))
    }

    /// Total number of LLC blocks reserved for history buffers.
    pub fn pinned_blocks(&self) -> u64 {
        self.pinned_ranges.iter().map(|&(_, len)| len).sum()
    }

    /// Number of blocks currently resident across all banks.
    pub fn resident_blocks(&self) -> usize {
        self.banks.iter().map(|b| b.resident_blocks()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_llc() -> NucaLlc {
        NucaLlc::new(LlcConfig {
            total_bytes: 64 * 1024,
            ways: 4,
            banks: 4,
            block_bytes: 64,
            hit_latency: 5,
            memory_latency: 90,
            index_pointer_bits: 15,
        })
    }

    #[test]
    fn miss_fills_and_charges_memory_latency() {
        let mut llc = small_llc();
        let b = BlockAddr::new(77);
        let first = llc.access(b, AccessClass::Demand);
        assert!(!first.hit);
        assert_eq!(first.latency, 95);
        let second = llc.access(b, AccessClass::Demand);
        assert!(second.hit);
        assert_eq!(second.latency, 5);
        assert_eq!(llc.stats().accesses, 2);
    }

    #[test]
    fn banks_are_block_interleaved() {
        let llc = small_llc();
        assert_eq!(llc.bank_of(BlockAddr::new(0)), 0);
        assert_eq!(llc.bank_of(BlockAddr::new(1)), 1);
        assert_eq!(llc.bank_of(BlockAddr::new(5)), 1);
        assert_eq!(llc.bank_of(BlockAddr::new(7)), 3);
    }

    #[test]
    fn index_pointer_round_trips_while_block_resident() {
        let mut llc = small_llc();
        let b = BlockAddr::new(100);
        // Not resident yet: update fails.
        assert!(!llc.update_index_ptr(b, 5));
        llc.access(b, AccessClass::Demand);
        assert!(llc.update_index_ptr(b, 5));
        assert_eq!(llc.index_ptr(b), Some(5));
        // A demand hit returns the pointer with the response.
        let outcome = llc.access(b, AccessClass::Demand);
        assert_eq!(outcome.index_ptr, Some(5));
    }

    #[test]
    fn history_region_is_always_resident() {
        let mut llc = small_llc();
        let start = BlockAddr::new(0x8000);
        llc.reserve_history_region(start, 64);
        assert_eq!(llc.pinned_blocks(), 64);
        // Thrash the cache with demand traffic.
        for i in 0..10_000u64 {
            llc.access(BlockAddr::new(i), AccessClass::Demand);
        }
        for i in 0..64u64 {
            assert!(llc.probe(start.offset(i)), "history block evicted");
            assert!(llc.is_pinned(start.offset(i)));
        }
    }

    #[test]
    fn history_reads_are_hits_after_reservation() {
        let mut llc = small_llc();
        let start = BlockAddr::new(0x4000);
        llc.reserve_history_region(start, 16);
        let outcome = llc.access(start.offset(3), AccessClass::HistoryRead);
        assert!(outcome.hit);
        assert_eq!(llc.traffic().count(AccessClass::HistoryRead), 1);
    }

    #[test]
    fn traffic_classes_are_recorded_separately() {
        let mut llc = small_llc();
        llc.access(BlockAddr::new(1), AccessClass::Demand);
        llc.access(BlockAddr::new(2), AccessClass::HistoryWrite);
        llc.record_traffic(AccessClass::Discard, 64);
        llc.update_index_ptr(BlockAddr::new(1), 9);
        assert_eq!(llc.traffic().count(AccessClass::Demand), 1);
        assert_eq!(llc.traffic().count(AccessClass::HistoryWrite), 1);
        assert_eq!(llc.traffic().count(AccessClass::Discard), 1);
        assert_eq!(llc.traffic().count(AccessClass::IndexUpdate), 1);
    }

    #[test]
    fn reset_stats_clears_traffic_and_counters() {
        let mut llc = small_llc();
        llc.access(BlockAddr::new(1), AccessClass::Demand);
        llc.reset_stats();
        assert_eq!(llc.stats().accesses, 0);
        assert_eq!(llc.traffic().total_count(), 0);
    }

    #[test]
    fn evicted_blocks_lose_their_index_pointer() {
        let mut llc = NucaLlc::new(LlcConfig {
            total_bytes: 4096, // 1 bank × 1 set... actually 4096/ (4*64)=16 sets? keep small
            ways: 2,
            banks: 1,
            block_bytes: 64,
            hit_latency: 5,
            memory_latency: 90,
            index_pointer_bits: 15,
        });
        let sets = llc.config().bank_config().sets() as u64;
        let b = BlockAddr::new(3);
        llc.access(b, AccessClass::Demand);
        llc.update_index_ptr(b, 42);
        // Evict it by filling two more blocks mapping to the same set.
        llc.access(BlockAddr::new(3 + sets), AccessClass::Demand);
        llc.access(BlockAddr::new(3 + 2 * sets), AccessClass::Demand);
        assert!(!llc.probe(b));
        assert_eq!(llc.index_ptr(b), None);
    }
}
