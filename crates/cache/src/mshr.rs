//! Miss-status holding registers.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use shift_types::BlockAddr;

/// Outcome of trying to allocate an MSHR entry for a miss.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MshrAllocation {
    /// A new entry was allocated; the request must be sent to the next level.
    Primary,
    /// The block already has an outstanding miss; this request was merged.
    Secondary,
    /// All MSHRs are occupied; the requester must stall and retry.
    Full,
}

impl MshrAllocation {
    /// Returns `true` if the allocation requires a new request to the next
    /// cache level.
    pub const fn needs_request(self) -> bool {
        matches!(self, MshrAllocation::Primary)
    }
}

/// A file of miss-status holding registers.
///
/// Each entry tracks one outstanding miss; secondary misses to the same block
/// merge into the existing entry. The paper's L1 caches have 32 MSHRs and the
/// LLC banks 64.
///
/// # Examples
///
/// ```
/// use shift_cache::{Mshr, MshrAllocation};
/// use shift_types::BlockAddr;
///
/// let mut mshr = Mshr::new(2);
/// assert_eq!(mshr.allocate(BlockAddr::new(1)), MshrAllocation::Primary);
/// assert_eq!(mshr.allocate(BlockAddr::new(1)), MshrAllocation::Secondary);
/// assert_eq!(mshr.allocate(BlockAddr::new(2)), MshrAllocation::Primary);
/// assert_eq!(mshr.allocate(BlockAddr::new(3)), MshrAllocation::Full);
/// assert_eq!(mshr.complete(BlockAddr::new(1)), Some(2));
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Mshr {
    capacity: usize,
    outstanding: HashMap<BlockAddr, u32>,
    peak_occupancy: usize,
    full_stalls: u64,
}

impl Mshr {
    /// Creates an MSHR file with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR file needs at least one entry");
        Mshr {
            capacity,
            outstanding: HashMap::new(),
            peak_occupancy: 0,
            full_stalls: 0,
        }
    }

    /// Number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of currently outstanding (distinct) misses.
    pub fn occupancy(&self) -> usize {
        self.outstanding.len()
    }

    /// Highest occupancy observed so far.
    pub fn peak_occupancy(&self) -> usize {
        self.peak_occupancy
    }

    /// Number of allocation attempts rejected because the file was full.
    pub fn full_stalls(&self) -> u64 {
        self.full_stalls
    }

    /// Returns `true` if `block` already has an outstanding miss.
    pub fn is_outstanding(&self, block: BlockAddr) -> bool {
        self.outstanding.contains_key(&block)
    }

    /// Attempts to allocate (or merge into) an entry for `block`.
    pub fn allocate(&mut self, block: BlockAddr) -> MshrAllocation {
        if let Some(count) = self.outstanding.get_mut(&block) {
            *count += 1;
            return MshrAllocation::Secondary;
        }
        if self.outstanding.len() >= self.capacity {
            self.full_stalls += 1;
            return MshrAllocation::Full;
        }
        self.outstanding.insert(block, 1);
        self.peak_occupancy = self.peak_occupancy.max(self.outstanding.len());
        MshrAllocation::Primary
    }

    /// Completes the outstanding miss for `block`, returning how many
    /// requests (primary + merged) were waiting on it, or `None` if the block
    /// had no outstanding miss.
    pub fn complete(&mut self, block: BlockAddr) -> Option<u32> {
        self.outstanding.remove(&block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_counts_waiters() {
        let mut m = Mshr::new(4);
        assert_eq!(m.allocate(BlockAddr::new(9)), MshrAllocation::Primary);
        assert_eq!(m.allocate(BlockAddr::new(9)), MshrAllocation::Secondary);
        assert_eq!(m.allocate(BlockAddr::new(9)), MshrAllocation::Secondary);
        assert!(m.is_outstanding(BlockAddr::new(9)));
        assert_eq!(m.complete(BlockAddr::new(9)), Some(3));
        assert!(!m.is_outstanding(BlockAddr::new(9)));
        assert_eq!(m.complete(BlockAddr::new(9)), None);
    }

    #[test]
    fn full_file_rejects_new_primaries_but_accepts_secondaries() {
        let mut m = Mshr::new(1);
        assert_eq!(m.allocate(BlockAddr::new(1)), MshrAllocation::Primary);
        assert_eq!(m.allocate(BlockAddr::new(2)), MshrAllocation::Full);
        assert_eq!(m.allocate(BlockAddr::new(1)), MshrAllocation::Secondary);
        assert_eq!(m.full_stalls(), 1);
    }

    #[test]
    fn occupancy_tracking() {
        let mut m = Mshr::new(8);
        for i in 0..5 {
            m.allocate(BlockAddr::new(i));
        }
        assert_eq!(m.occupancy(), 5);
        assert_eq!(m.peak_occupancy(), 5);
        m.complete(BlockAddr::new(0));
        assert_eq!(m.occupancy(), 4);
        assert_eq!(m.peak_occupancy(), 5);
    }

    #[test]
    fn needs_request_only_for_primary() {
        assert!(MshrAllocation::Primary.needs_request());
        assert!(!MshrAllocation::Secondary.needs_request());
        assert!(!MshrAllocation::Full.needs_request());
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_rejected() {
        let _ = Mshr::new(0);
    }
}
