//! Hit/miss and traffic statistics.

use serde::{Deserialize, Serialize};
use shift_types::AccessClass;

/// Hit/miss counters for one cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Number of lookups performed through `access`.
    pub accesses: u64,
    /// Number of lookups that hit.
    pub hits: u64,
    /// Number of lookups that missed.
    pub misses: u64,
    /// Number of blocks installed by fills.
    pub fills: u64,
    /// Number of valid blocks evicted to make room for fills.
    pub evictions: u64,
}

impl CacheStats {
    /// Miss ratio (`misses / accesses`), or zero when no accesses occurred.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Hit ratio (`hits / accesses`), or zero when no accesses occurred.
    pub fn hit_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    /// Misses per kilo-instruction given a retired instruction count.
    pub fn mpki(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            0.0
        } else {
            self.misses as f64 * 1000.0 / instructions as f64
        }
    }
}

/// Per-[`AccessClass`] request counters for a shared resource (LLC or NoC).
///
/// Used to reproduce Figure 9: history reads ("LogRead"), history writes
/// ("LogWrite"), discarded prefetches, and index updates, each normalized to
/// baseline demand traffic.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficStats {
    counts: [u64; AccessClass::ALL.len()],
    bytes: [u64; AccessClass::ALL.len()],
}

impl TrafficStats {
    /// Creates empty traffic statistics.
    pub fn new() -> Self {
        Self::default()
    }

    fn slot(class: AccessClass) -> usize {
        class.index()
    }

    /// Records one request of `class` transferring `bytes` bytes.
    #[inline]
    pub fn record(&mut self, class: AccessClass, bytes: u64) {
        let i = Self::slot(class);
        self.counts[i] += 1;
        self.bytes[i] += bytes;
    }

    /// Number of requests recorded for `class`.
    pub fn count(&self, class: AccessClass) -> u64 {
        self.counts[Self::slot(class)]
    }

    /// Bytes transferred for `class`.
    pub fn bytes(&self, class: AccessClass) -> u64 {
        self.bytes[Self::slot(class)]
    }

    /// Total requests across all classes.
    pub fn total_count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Total baseline (demand) requests.
    pub fn baseline_count(&self) -> u64 {
        AccessClass::ALL
            .iter()
            .filter(|c| c.is_baseline())
            .map(|&c| self.count(c))
            .sum()
    }

    /// Ratio of `class` requests to baseline demand requests, the
    /// normalization Figure 9 uses. Returns zero if there is no baseline
    /// traffic.
    pub fn overhead_ratio(&self, class: AccessClass) -> f64 {
        let base = self.baseline_count();
        if base == 0 {
            0.0
        } else {
            self.count(class) as f64 / base as f64
        }
    }

    /// Merges another set of statistics into this one.
    pub fn merge(&mut self, other: &TrafficStats) {
        for i in 0..self.counts.len() {
            self.counts[i] += other.counts[i];
            self.bytes[i] += other.bytes[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_handle_zero_accesses() {
        let s = CacheStats::default();
        assert_eq!(s.miss_ratio(), 0.0);
        assert_eq!(s.hit_ratio(), 0.0);
        assert_eq!(s.mpki(0), 0.0);
    }

    #[test]
    fn mpki_scales_with_instructions() {
        let s = CacheStats {
            accesses: 100,
            hits: 60,
            misses: 40,
            fills: 40,
            evictions: 10,
        };
        assert!((s.miss_ratio() - 0.4).abs() < 1e-12);
        assert!((s.mpki(10_000) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn traffic_overhead_ratio_normalizes_to_demand() {
        let mut t = TrafficStats::new();
        for _ in 0..100 {
            t.record(AccessClass::Demand, 64);
        }
        for _ in 0..6 {
            t.record(AccessClass::HistoryRead, 64);
        }
        for _ in 0..7 {
            t.record(AccessClass::Discard, 64);
        }
        assert_eq!(t.baseline_count(), 100);
        assert!((t.overhead_ratio(AccessClass::HistoryRead) - 0.06).abs() < 1e-12);
        assert!((t.overhead_ratio(AccessClass::Discard) - 0.07).abs() < 1e-12);
        assert_eq!(t.bytes(AccessClass::Demand), 6400);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = TrafficStats::new();
        a.record(AccessClass::Demand, 64);
        let mut b = TrafficStats::new();
        b.record(AccessClass::Demand, 64);
        b.record(AccessClass::HistoryWrite, 64);
        a.merge(&b);
        assert_eq!(a.count(AccessClass::Demand), 2);
        assert_eq!(a.count(AccessClass::HistoryWrite), 1);
        assert_eq!(a.total_count(), 3);
    }
}
