//! A set-associative cache with per-line metadata and pinning support.

use serde::{Deserialize, Serialize};
use shift_types::BlockAddr;

use crate::config::CacheConfig;
use crate::replacement::{ReplacementPolicy, VictimRng};
use crate::stats::CacheStats;

/// Result of a lookup through [`SetAssocCache::access`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessResult {
    /// The block was present.
    Hit,
    /// The block was absent.
    Miss,
}

impl AccessResult {
    /// Returns `true` for [`AccessResult::Hit`].
    pub const fn is_hit(self) -> bool {
        matches!(self, AccessResult::Hit)
    }

    /// Returns `true` for [`AccessResult::Miss`].
    pub const fn is_miss(self) -> bool {
        matches!(self, AccessResult::Miss)
    }
}

/// A line evicted by a fill, returned to the caller so bookkeeping (e.g.
/// counting prefetched-but-unused blocks) can be performed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct EvictedLine<M> {
    /// The evicted block address.
    pub block: BlockAddr,
    /// The metadata that was stored with the block.
    pub meta: M,
}

#[derive(Clone, Debug, Serialize, Deserialize)]
struct Line<M> {
    block: BlockAddr,
    meta: M,
    last_use: u64,
    pinned: bool,
}

/// A set-associative cache parameterized by per-line metadata `M`.
///
/// The cache tracks only tags and metadata, never data contents — exactly what
/// a trace-driven simulator needs. Lookups ([`access`](Self::access)) update
/// recency and statistics; [`probe`](Self::probe) checks presence without
/// perturbing either. Fills install blocks and report the victim, and lines
/// can be *pinned* so they are never chosen for eviction (used by the LLC to
/// make the virtualized history buffer non-evictable, as §4.2 requires).
///
/// # Examples
///
/// ```
/// use shift_cache::{CacheConfig, SetAssocCache};
/// use shift_types::BlockAddr;
///
/// let mut cache: SetAssocCache<u32> = SetAssocCache::new(CacheConfig::new(1024, 2, 64, 1));
/// cache.fill(BlockAddr::new(1), 10);
/// assert_eq!(cache.meta(BlockAddr::new(1)), Some(&10));
/// assert!(cache.access(BlockAddr::new(1)).is_hit());
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SetAssocCache<M> {
    config: CacheConfig,
    policy: ReplacementPolicy,
    sets: Vec<Vec<Line<M>>>,
    /// Number of sets, cached so the per-access index computation performs no
    /// division over the configuration.
    set_count: u64,
    /// `set_count - 1` when the set count is a power of two: set selection is
    /// then a single AND instead of a modulo.
    index_mask: Option<u64>,
    clock: u64,
    stats: CacheStats,
    victim_rng: VictimRng,
}

impl<M> SetAssocCache<M> {
    /// Creates an empty cache with LRU replacement.
    pub fn new(config: CacheConfig) -> Self {
        Self::with_policy(config, ReplacementPolicy::Lru)
    }

    /// Creates an empty cache with the given replacement policy.
    pub fn with_policy(config: CacheConfig, policy: ReplacementPolicy) -> Self {
        let set_count = config.sets() as u64;
        let sets = (0..config.sets()).map(|_| Vec::new()).collect();
        SetAssocCache {
            config,
            policy,
            sets,
            set_count,
            index_mask: set_count.is_power_of_two().then(|| set_count - 1),
            clock: 0,
            stats: CacheStats::default(),
            victim_rng: VictimRng::default(),
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated hit/miss statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets the hit/miss statistics (e.g. after cache warm-up).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Number of valid blocks currently resident.
    pub fn resident_blocks(&self) -> usize {
        self.sets.iter().map(|s| s.len()).sum()
    }

    #[inline]
    fn set_index(&self, block: BlockAddr) -> usize {
        match self.index_mask {
            Some(mask) => (block.get() & mask) as usize,
            None => (block.get() % self.set_count) as usize,
        }
    }

    /// Returns `true` if `block` is resident, without updating recency or
    /// statistics.
    #[inline]
    pub fn probe(&self, block: BlockAddr) -> bool {
        let set = &self.sets[self.set_index(block)];
        set.iter().any(|l| l.block == block)
    }

    /// Looks up `block`, updating recency and statistics. Does **not** fill on
    /// a miss; the caller decides whether and when to call
    /// [`fill`](Self::fill).
    #[inline]
    pub fn access(&mut self, block: BlockAddr) -> AccessResult {
        self.clock += 1;
        self.stats.accesses += 1;
        let clock = self.clock;
        let idx = self.set_index(block);
        let set = &mut self.sets[idx];
        if let Some(line) = set.iter_mut().find(|l| l.block == block) {
            line.last_use = clock;
            self.stats.hits += 1;
            AccessResult::Hit
        } else {
            self.stats.misses += 1;
            AccessResult::Miss
        }
    }

    /// Looks up `block` exactly like [`access`](Self::access) (same recency
    /// and statistics updates) and additionally hands back mutable access to
    /// the line's metadata on a hit — one set scan where an
    /// `access`-then-[`meta_mut`](Self::meta_mut) sequence would perform two.
    /// The instruction-fetch hot path classifies prefetched lines with it on
    /// every L1-I hit.
    #[inline]
    pub fn access_meta(&mut self, block: BlockAddr) -> (AccessResult, Option<&mut M>) {
        self.clock += 1;
        self.stats.accesses += 1;
        let clock = self.clock;
        let idx = self.set_index(block);
        let set = &mut self.sets[idx];
        if let Some(line) = set.iter_mut().find(|l| l.block == block) {
            line.last_use = clock;
            self.stats.hits += 1;
            (AccessResult::Hit, Some(&mut line.meta))
        } else {
            self.stats.misses += 1;
            (AccessResult::Miss, None)
        }
    }

    /// Installs `block` with `meta`, evicting a victim if the set is full.
    /// If the block is already resident its metadata is replaced and no
    /// eviction occurs.
    ///
    /// Returns the evicted line, if any.
    ///
    /// # Panics
    ///
    /// Panics if every way of the target set is pinned.
    pub fn fill(&mut self, block: BlockAddr, meta: M) -> Option<EvictedLine<M>> {
        self.fill_inner(block, meta, false)
    }

    /// Installs `block` as a *pinned* (non-evictable) line.
    ///
    /// # Panics
    ///
    /// Panics if every way of the target set is already pinned.
    pub fn fill_pinned(&mut self, block: BlockAddr, meta: M) -> Option<EvictedLine<M>> {
        self.fill_inner(block, meta, true)
    }

    fn fill_inner(&mut self, block: BlockAddr, meta: M, pinned: bool) -> Option<EvictedLine<M>> {
        self.clock += 1;
        self.stats.fills += 1;
        let clock = self.clock;
        let ways = self.config.ways;
        let policy = self.policy;
        let idx = self.set_index(block);

        // Fast path: block already resident → update metadata in place.
        if let Some(line) = self.sets[idx].iter_mut().find(|l| l.block == block) {
            line.meta = meta;
            line.last_use = clock;
            line.pinned = line.pinned || pinned;
            return None;
        }

        let evicted = if self.sets[idx].len() < ways {
            None
        } else {
            // Victim selection scans the (at most `ways`-long) set directly
            // instead of collecting candidate indices into a heap-allocated
            // vector; fills are on the miss path of every cache level, so
            // this must stay allocation-free.
            let victim = {
                let set = &self.sets[idx];
                let unpinned = set.iter().filter(|l| !l.pinned).count();
                assert!(
                    unpinned > 0,
                    "all ways of set {idx} are pinned; cannot fill {block}"
                );
                match policy {
                    ReplacementPolicy::Lru => (0..set.len())
                        .filter(|&i| !set[i].pinned)
                        .min_by_key(|&i| set[i].last_use)
                        .expect("candidates non-empty"),
                    ReplacementPolicy::Random => {
                        let k = self.victim_rng.next_below(unpinned);
                        (0..set.len())
                            .filter(|&i| !set[i].pinned)
                            .nth(k)
                            .expect("k-th unpinned way exists")
                    }
                }
            };
            self.stats.evictions += 1;
            let line = self.sets[idx].swap_remove(victim);
            Some(EvictedLine {
                block: line.block,
                meta: line.meta,
            })
        };

        self.sets[idx].push(Line {
            block,
            meta,
            last_use: clock,
            pinned,
        });
        evicted
    }

    /// Returns a reference to the metadata of `block`, if resident.
    #[inline]
    pub fn meta(&self, block: BlockAddr) -> Option<&M> {
        let set = &self.sets[self.set_index(block)];
        set.iter().find(|l| l.block == block).map(|l| &l.meta)
    }

    /// Returns a mutable reference to the metadata of `block`, if resident.
    #[inline]
    pub fn meta_mut(&mut self, block: BlockAddr) -> Option<&mut M> {
        let idx = self.set_index(block);
        self.sets[idx]
            .iter_mut()
            .find(|l| l.block == block)
            .map(|l| &mut l.meta)
    }

    /// Removes `block` from the cache, returning its metadata if it was
    /// resident.
    pub fn invalidate(&mut self, block: BlockAddr) -> Option<M> {
        let idx = self.set_index(block);
        let pos = self.sets[idx].iter().position(|l| l.block == block)?;
        Some(self.sets[idx].swap_remove(pos).meta)
    }

    /// Iterates over all resident blocks (in no particular order).
    pub fn resident(&self) -> impl Iterator<Item = BlockAddr> + '_ {
        self.sets.iter().flat_map(|s| s.iter().map(|l| l.block))
    }

    /// Applies `f` to the metadata of every resident line (used e.g. to clear
    /// transient bookkeeping after cache warm-up).
    pub fn for_each_meta_mut<F: FnMut(&mut M)>(&mut self, mut f: F) {
        for set in &mut self.sets {
            for line in set.iter_mut() {
                f(&mut line.meta);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SetAssocCache<u8> {
        // 4 sets × 2 ways.
        SetAssocCache::new(CacheConfig::new(512, 2, 64, 1))
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = small();
        let b = BlockAddr::new(5);
        assert!(c.access(b).is_miss());
        assert!(c.fill(b, 1).is_none());
        assert!(c.access(b).is_hit());
        assert_eq!(c.stats().accesses, 2);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn probe_does_not_touch_stats_or_lru() {
        let mut c = small();
        c.fill(BlockAddr::new(1), 0);
        let before = *c.stats();
        assert!(c.probe(BlockAddr::new(1)));
        assert!(!c.probe(BlockAddr::new(2)));
        assert_eq!(*c.stats(), before);
    }

    #[test]
    fn lru_evicts_least_recently_used_within_set() {
        let mut c = small();
        // Blocks 0, 4, 8 all map to set 0 (4 sets).
        c.fill(BlockAddr::new(0), 0);
        c.fill(BlockAddr::new(4), 4);
        // Touch block 0 so block 4 becomes LRU.
        assert!(c.access(BlockAddr::new(0)).is_hit());
        let evicted = c.fill(BlockAddr::new(8), 8).expect("eviction expected");
        assert_eq!(evicted.block, BlockAddr::new(4));
        assert!(c.probe(BlockAddr::new(0)));
        assert!(c.probe(BlockAddr::new(8)));
    }

    #[test]
    fn refill_of_resident_block_updates_meta_without_eviction() {
        let mut c = small();
        c.fill(BlockAddr::new(3), 1);
        assert!(c.fill(BlockAddr::new(3), 9).is_none());
        assert_eq!(c.meta(BlockAddr::new(3)), Some(&9));
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn pinned_lines_are_never_victims() {
        let mut c = small();
        c.fill_pinned(BlockAddr::new(0), 7);
        c.fill(BlockAddr::new(4), 1);
        // Set 0 is now full; filling another block of set 0 must evict the
        // unpinned line even though the pinned one is older.
        let evicted = c.fill(BlockAddr::new(8), 2).expect("eviction expected");
        assert_eq!(evicted.block, BlockAddr::new(4));
        assert!(c.probe(BlockAddr::new(0)));
    }

    #[test]
    #[should_panic(expected = "pinned")]
    fn filling_a_fully_pinned_set_panics() {
        let mut c = small();
        c.fill_pinned(BlockAddr::new(0), 0);
        c.fill_pinned(BlockAddr::new(4), 0);
        let _ = c.fill(BlockAddr::new(8), 0);
    }

    #[test]
    fn invalidate_removes_block() {
        let mut c = small();
        c.fill(BlockAddr::new(2), 5);
        assert_eq!(c.invalidate(BlockAddr::new(2)), Some(5));
        assert!(!c.probe(BlockAddr::new(2)));
        assert_eq!(c.invalidate(BlockAddr::new(2)), None);
    }

    #[test]
    fn meta_mut_allows_in_place_update() {
        let mut c = small();
        c.fill(BlockAddr::new(1), 5);
        *c.meta_mut(BlockAddr::new(1)).unwrap() = 6;
        assert_eq!(c.meta(BlockAddr::new(1)), Some(&6));
        assert_eq!(c.meta(BlockAddr::new(9)), None);
    }

    #[test]
    fn capacity_is_bounded_by_config() {
        let mut c = small();
        for i in 0..100 {
            c.fill(BlockAddr::new(i), 0);
        }
        assert!(c.resident_blocks() <= c.config().capacity_blocks());
        assert_eq!(c.resident_blocks(), 8);
        assert_eq!(c.resident().count(), 8);
    }

    #[test]
    fn random_policy_still_bounds_capacity() {
        let mut c: SetAssocCache<()> =
            SetAssocCache::with_policy(CacheConfig::new(512, 2, 64, 1), ReplacementPolicy::Random);
        for i in 0..1000 {
            c.fill(BlockAddr::new(i), ());
        }
        assert_eq!(c.resident_blocks(), 8);
    }

    #[test]
    fn reset_stats_clears_counters() {
        let mut c = small();
        c.access(BlockAddr::new(1));
        c.reset_stats();
        assert_eq!(c.stats().accesses, 0);
    }
}
