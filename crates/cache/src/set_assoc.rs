//! A set-associative cache with per-line metadata and pinning support.
//!
//! # Layout
//!
//! Per-line state lives in parallel packed arrays (`tags`, `last_use`,
//! `meta`) indexed by `set * ways + way`, with per-set occupancy counts and a
//! per-set pinned-way bitmask — a struct-of-arrays layout in which the tag
//! scan of a lookup touches only the 8-byte tag lane instead of striding over
//! full line structs. The scan itself is a branch-light fixed-width loop that
//! builds a hit bitmask (one bit per way) the compiler can autovectorize; an
//! explicit portable-SIMD variant sits behind the default-off `simd` feature
//! (nightly toolchains only — stable builds use the pure-scalar loop).
//!
//! Within a set, live lines occupy ways `0..len` in the order the previous
//! `Vec`-per-set representation kept them (fills append, evictions
//! `swap_remove`), so replacement decisions — including the deterministic
//! `Random` policy's k-th-unpinned-way choice — are bit-identical to the old
//! layout.

use serde::{Deserialize, Serialize};
use shift_types::BlockAddr;

use crate::config::CacheConfig;
use crate::replacement::{ReplacementPolicy, VictimRng};
use crate::stats::CacheStats;

/// Result of a lookup through [`SetAssocCache::access`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessResult {
    /// The block was present.
    Hit,
    /// The block was absent.
    Miss,
}

impl AccessResult {
    /// Returns `true` for [`AccessResult::Hit`].
    pub const fn is_hit(self) -> bool {
        matches!(self, AccessResult::Hit)
    }

    /// Returns `true` for [`AccessResult::Miss`].
    pub const fn is_miss(self) -> bool {
        matches!(self, AccessResult::Miss)
    }
}

/// A line evicted by a fill, returned to the caller so bookkeeping (e.g.
/// counting prefetched-but-unused blocks) can be performed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct EvictedLine<M> {
    /// The evicted block address.
    pub block: BlockAddr,
    /// The metadata that was stored with the block.
    pub meta: M,
}

/// Computes the hit bitmask of a fixed-width tag row: bit `w` is set iff
/// `tags[w] == target`. Monomorphizing per associativity gives the compiler a
/// compile-time trip count it fully unrolls and autovectorizes.
#[inline(always)]
fn hit_mask_fixed<const W: usize>(tags: &[u64], target: u64) -> u64 {
    let row: &[u64; W] = tags.first_chunk::<W>().expect("set narrower than ways");
    let mut mask = 0u64;
    let mut w = 0;
    while w < W {
        mask |= u64::from(row[w] == target) << w;
        w += 1;
    }
    mask
}

/// Scalar hit-mask scan, specialized for the associativities the simulator
/// actually configures (2-way L1s, 16-way LLC banks, 4/8-way studies).
#[cfg(not(feature = "simd"))]
#[inline(always)]
fn hit_mask_scalar(tags: &[u64], target: u64) -> u64 {
    match tags.len() {
        2 => hit_mask_fixed::<2>(tags, target),
        4 => hit_mask_fixed::<4>(tags, target),
        8 => hit_mask_fixed::<8>(tags, target),
        16 => hit_mask_fixed::<16>(tags, target),
        _ => {
            let mut mask = 0u64;
            for (w, &t) in tags.iter().enumerate() {
                mask |= u64::from(t == target) << w;
            }
            mask
        }
    }
}

/// Hit-mask scan on stable toolchains: the scalar loop by default, or — when
/// `SHIFT_TAG_SCAN` selects one and the CPU supports it — a runtime-detected
/// `std::arch` SSE2/AVX2 compare from [`arch_scan`]. The scalar path stays
/// the default so committed perf numbers never silently depend on the host's
/// vector units; all paths produce bit-identical masks (locked by the
/// in-module differential tests and the cache property tests).
#[cfg(not(feature = "simd"))]
#[inline(always)]
fn hit_mask(tags: &[u64], target: u64) -> u64 {
    #[cfg(target_arch = "x86_64")]
    if let Some(mask) = arch_scan::hit_mask(tags, target) {
        return mask;
    }
    hit_mask_scalar(tags, target)
}

/// Runtime-selected `std::arch` tag scans for x86_64 on *stable* toolchains,
/// complementing the nightly-only `portable_simd` feature (which, being
/// default-off, no committed measurement ever exercises).
///
/// Selection is driven by the `SHIFT_TAG_SCAN` environment variable, read
/// once per process on first scan:
///
/// * unset / `scalar` (or anything unrecognized) — scalar loop (the default);
/// * `auto` — AVX2 when the CPU has it, else SSE2;
/// * `avx2` — AVX2 if detected, scalar otherwise;
/// * `sse2` — SSE2 (always available: it is part of the x86_64 baseline).
#[cfg(all(target_arch = "x86_64", not(feature = "simd")))]
mod arch_scan {
    // The only unsafe code in the crate: `std::arch` intrinsic calls, each
    // behind the corresponding runtime/baseline feature guarantee.
    #![allow(unsafe_code)]

    use std::sync::atomic::{AtomicU8, Ordering};

    const UNDECIDED: u8 = 0;
    const SCALAR: u8 = 1;
    const SSE2: u8 = 2;
    const AVX2: u8 = 3;

    /// Process-wide selected implementation; decided once, then a relaxed
    /// load per scan.
    static SELECTED: AtomicU8 = AtomicU8::new(UNDECIDED);

    fn decide_from(choice: &str, avx2_available: bool) -> u8 {
        match choice {
            "auto" => {
                if avx2_available {
                    AVX2
                } else {
                    SSE2
                }
            }
            "avx2" => {
                if avx2_available {
                    AVX2
                } else {
                    SCALAR
                }
            }
            "sse2" => SSE2,
            _ => SCALAR,
        }
    }

    #[inline]
    fn selected() -> u8 {
        match SELECTED.load(Ordering::Relaxed) {
            UNDECIDED => {
                let choice = std::env::var("SHIFT_TAG_SCAN").unwrap_or_default();
                let s = decide_from(&choice, std::arch::is_x86_feature_detected!("avx2"));
                SELECTED.store(s, Ordering::Relaxed);
                s
            }
            s => s,
        }
    }

    /// The selected arch scan, or `None` when the scalar loop should run.
    #[inline]
    pub(super) fn hit_mask(tags: &[u64], target: u64) -> Option<u64> {
        match selected() {
            // SAFETY: AVX2 was detected at runtime before being selected.
            AVX2 => Some(unsafe { hit_mask_avx2(tags, target) }),
            SSE2 => Some(hit_mask_sse2(tags, target)),
            _ => None,
        }
    }

    /// SSE2 scan: two 64-bit tags per 128-bit compare. SSE2 has no 64-bit
    /// integer compare, so equality is two 32-bit lane compares ANDed with
    /// their half-swapped selves, extracted through the 64-bit sign mask.
    fn hit_mask_sse2(tags: &[u64], target: u64) -> u64 {
        use std::arch::x86_64::{
            __m128i, _mm_and_si128, _mm_castsi128_pd, _mm_cmpeq_epi32, _mm_loadu_si128,
            _mm_movemask_pd, _mm_set1_epi64x, _mm_shuffle_epi32,
        };
        let mut mask = 0u64;
        let mut shift = 0u32;
        let mut chunks = tags.chunks_exact(2);
        // SAFETY: SSE2 is part of the x86_64 baseline (always available), and
        // `_mm_loadu_si128` performs an unaligned load of exactly 16 bytes,
        // which every 2-element chunk of a `&[u64]` provides.
        unsafe {
            let splat = _mm_set1_epi64x(target as i64);
            for chunk in &mut chunks {
                let row = _mm_loadu_si128(chunk.as_ptr() as *const __m128i);
                let eq32 = _mm_cmpeq_epi32(row, splat);
                let eq64 = _mm_and_si128(eq32, _mm_shuffle_epi32(eq32, 0b1011_0001));
                mask |= (_mm_movemask_pd(_mm_castsi128_pd(eq64)) as u64) << shift;
                shift += 2;
            }
        }
        for (w, &t) in chunks.remainder().iter().enumerate() {
            mask |= u64::from(t == target) << (shift as usize + w);
        }
        mask
    }

    /// AVX2 scan: four 64-bit tags per 256-bit compare, extracted through
    /// the 64-bit sign mask.
    ///
    /// # Safety
    ///
    /// The CPU must support AVX2 (callers check via runtime detection).
    #[target_feature(enable = "avx2")]
    unsafe fn hit_mask_avx2(tags: &[u64], target: u64) -> u64 {
        use std::arch::x86_64::{
            __m256i, _mm256_castsi256_pd, _mm256_cmpeq_epi64, _mm256_loadu_si256,
            _mm256_movemask_pd, _mm256_set1_epi64x,
        };
        let mut mask = 0u64;
        let mut shift = 0u32;
        let mut chunks = tags.chunks_exact(4);
        let splat = _mm256_set1_epi64x(target as i64);
        for chunk in &mut chunks {
            let row = _mm256_loadu_si256(chunk.as_ptr() as *const __m256i);
            let eq = _mm256_cmpeq_epi64(row, splat);
            mask |= (_mm256_movemask_pd(_mm256_castsi256_pd(eq)) as u64) << shift;
            shift += 4;
        }
        for (w, &t) in chunks.remainder().iter().enumerate() {
            mask |= u64::from(t == target) << (shift as usize + w);
        }
        mask
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        /// Deterministic pseudo-random tag patterns, heavy on duplicates so
        /// multi-bit masks actually occur.
        fn pattern(seed: u64, len: usize) -> Vec<u64> {
            let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            (0..len)
                .map(|_| {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    state % 7 // few distinct values => frequent duplicates
                })
                .collect()
        }

        #[test]
        fn arch_scans_match_scalar_for_all_widths() {
            for len in 0..=24 {
                for seed in 1..=32u64 {
                    let tags = pattern(seed, len);
                    for target in 0..7u64 {
                        let scalar = super::super::hit_mask_scalar(&tags, target);
                        assert_eq!(
                            hit_mask_sse2(&tags, target),
                            scalar,
                            "sse2 mismatch len={len} seed={seed} target={target}"
                        );
                        if std::arch::is_x86_feature_detected!("avx2") {
                            // SAFETY: guarded by the runtime detection above.
                            let avx2 = unsafe { hit_mask_avx2(&tags, target) };
                            assert_eq!(
                                avx2, scalar,
                                "avx2 mismatch len={len} seed={seed} target={target}"
                            );
                        }
                    }
                }
            }
        }

        #[test]
        fn extreme_tag_values_survive_the_lane_split() {
            // Values whose 32-bit halves collide across different u64s are
            // exactly what the SSE2 half-compare trick must not confuse.
            let tags = vec![
                u64::MAX,
                u64::MAX - 1,
                0,
                1,
                0xFFFF_FFFF_0000_0000,
                0x0000_0000_FFFF_FFFF,
                0x8000_0000_0000_0000,
                0xFFFF_FFFF_FFFF_FFFF,
            ];
            for &target in &tags {
                let scalar = super::super::hit_mask_scalar(&tags, target);
                assert_eq!(hit_mask_sse2(&tags, target), scalar, "target {target:#x}");
                if std::arch::is_x86_feature_detected!("avx2") {
                    // SAFETY: guarded by the runtime detection above.
                    assert_eq!(unsafe { hit_mask_avx2(&tags, target) }, scalar);
                }
            }
        }

        #[test]
        fn selection_policy_prefers_detected_features() {
            assert_eq!(decide_from("", true), SCALAR);
            assert_eq!(decide_from("scalar", true), SCALAR);
            assert_eq!(decide_from("bogus", true), SCALAR);
            assert_eq!(decide_from("auto", true), AVX2);
            assert_eq!(decide_from("auto", false), SSE2);
            assert_eq!(decide_from("avx2", true), AVX2);
            assert_eq!(decide_from("avx2", false), SCALAR);
            assert_eq!(decide_from("sse2", true), SSE2);
            assert_eq!(decide_from("sse2", false), SSE2);
        }
    }
}

/// Portable-SIMD hit-mask scan: compare 8 ways per vector op against the
/// splatted target and merge the lane masks. Requires a nightly toolchain
/// (`core::simd`); enabled by the `simd` feature, which is default-off so
/// stable builds stay pure-scalar.
#[cfg(feature = "simd")]
#[inline(always)]
fn hit_mask(tags: &[u64], target: u64) -> u64 {
    use std::simd::cmp::SimdPartialEq;
    use std::simd::Simd;

    let splat: Simd<u64, 8> = Simd::splat(target);
    let mut mask = 0u64;
    let mut shift = 0u32;
    let mut chunks = tags.chunks_exact(8);
    for chunk in &mut chunks {
        let row = Simd::<u64, 8>::from_slice(chunk);
        mask |= row.simd_eq(splat).to_bitmask() << shift;
        shift += 8;
    }
    for (w, &t) in chunks.remainder().iter().enumerate() {
        mask |= u64::from(t == target) << (shift as usize + w);
    }
    mask
}

/// A set-associative cache parameterized by per-line metadata `M`.
///
/// The cache tracks only tags and metadata, never data contents — exactly what
/// a trace-driven simulator needs. Lookups ([`access`](Self::access)) update
/// recency and statistics; [`probe`](Self::probe) checks presence without
/// perturbing either. Fills install blocks and report the victim, and lines
/// can be *pinned* so they are never chosen for eviction (used by the LLC to
/// make the virtualized history buffer non-evictable, as §4.2 requires).
///
/// # Examples
///
/// ```
/// use shift_cache::{CacheConfig, SetAssocCache};
/// use shift_types::BlockAddr;
///
/// let mut cache: SetAssocCache<u32> = SetAssocCache::new(CacheConfig::new(1024, 2, 64, 1));
/// cache.fill(BlockAddr::new(1), 10);
/// assert_eq!(cache.meta(BlockAddr::new(1)), Some(&10));
/// assert!(cache.access(BlockAddr::new(1)).is_hit());
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SetAssocCache<M> {
    config: CacheConfig,
    policy: ReplacementPolicy,
    /// Associativity, hoisted out of `config` for the per-access path.
    ways: usize,
    /// Tag lane: the raw block number per line slot (`set * ways + way`).
    /// Slots at or beyond a set's occupancy hold stale values that the
    /// live-way mask excludes from every match.
    tags: Vec<u64>,
    /// Recency lane: the cache clock at each line's last touch.
    last_use: Vec<u64>,
    /// Metadata lane.
    meta: Vec<M>,
    /// Number of live ways per set; live lines pack ways `0..len`.
    set_len: Vec<u8>,
    /// Per-set bitmask of pinned (non-evictable) ways.
    pinned: Vec<u64>,
    /// Number of sets, cached so the per-access index computation performs no
    /// division over the configuration.
    set_count: u64,
    /// `set_count - 1` when the set count is a power of two: set selection is
    /// then a single AND instead of a modulo.
    index_mask: Option<u64>,
    clock: u64,
    stats: CacheStats,
    victim_rng: VictimRng,
}

impl<M: Default> SetAssocCache<M> {
    /// Creates an empty cache with LRU replacement.
    pub fn new(config: CacheConfig) -> Self {
        Self::with_policy(config, ReplacementPolicy::Lru)
    }

    /// Creates an empty cache with the given replacement policy.
    ///
    /// # Panics
    ///
    /// Panics if the associativity exceeds 64 (the pinned/live way bitmasks
    /// are single words).
    pub fn with_policy(config: CacheConfig, policy: ReplacementPolicy) -> Self {
        assert!(config.ways <= 64, "associativity above 64 ways unsupported");
        let sets = config.sets();
        let set_count = sets as u64;
        let slots = sets * config.ways;
        let mut meta = Vec::with_capacity(slots);
        meta.resize_with(slots, M::default);
        SetAssocCache {
            policy,
            ways: config.ways,
            tags: vec![0; slots],
            last_use: vec![0; slots],
            meta,
            set_len: vec![0; sets],
            pinned: vec![0; sets],
            set_count,
            index_mask: set_count.is_power_of_two().then(|| set_count - 1),
            clock: 0,
            stats: CacheStats::default(),
            victim_rng: VictimRng::default(),
            config,
        }
    }

    /// Removes `block` from the cache, returning its metadata if it was
    /// resident.
    pub fn invalidate(&mut self, block: BlockAddr) -> Option<M> {
        let idx = self.set_index(block);
        let base = idx * self.ways;
        let len = self.set_len[idx] as usize;
        let w = self.match_way(base, len, block.get())?;
        let last = len - 1;
        // Vacate the last live way and let it backfill the removed slot —
        // the same compaction `Vec::swap_remove` performed.
        let moved_meta = std::mem::take(&mut self.meta[base + last]);
        let evicted = if w == last {
            moved_meta
        } else {
            self.tags[base + w] = self.tags[base + last];
            self.last_use[base + w] = self.last_use[base + last];
            let moved_pin = (self.pinned[idx] >> last) & 1;
            self.pinned[idx] = (self.pinned[idx] & !(1 << w)) | (moved_pin << w);
            std::mem::replace(&mut self.meta[base + w], moved_meta)
        };
        self.pinned[idx] &= !(1 << last);
        self.set_len[idx] = last as u8;
        Some(evicted)
    }
}

impl<M> SetAssocCache<M> {
    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated hit/miss statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets the hit/miss statistics (e.g. after cache warm-up).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Number of valid blocks currently resident.
    pub fn resident_blocks(&self) -> usize {
        self.set_len.iter().map(|&l| l as usize).sum()
    }

    #[inline]
    fn set_index(&self, block: BlockAddr) -> usize {
        match self.index_mask {
            Some(mask) => (block.get() & mask) as usize,
            None => (block.get() % self.set_count) as usize,
        }
    }

    /// Finds the live way holding `target` in the set at `base`, if any.
    #[inline(always)]
    fn match_way(&self, base: usize, len: usize, target: u64) -> Option<usize> {
        if len == 0 {
            return None;
        }
        let row = &self.tags[base..base + self.ways];
        let live = hit_mask(row, target) & (u64::MAX >> (64 - len as u32));
        if live == 0 {
            None
        } else {
            Some(live.trailing_zeros() as usize)
        }
    }

    /// Returns `true` if `block` is resident, without updating recency or
    /// statistics.
    #[inline]
    pub fn probe(&self, block: BlockAddr) -> bool {
        let idx = self.set_index(block);
        self.match_way(idx * self.ways, self.set_len[idx] as usize, block.get())
            .is_some()
    }

    /// Looks up `block`, updating recency and statistics. Does **not** fill on
    /// a miss; the caller decides whether and when to call
    /// [`fill`](Self::fill).
    #[inline]
    pub fn access(&mut self, block: BlockAddr) -> AccessResult {
        self.clock += 1;
        self.stats.accesses += 1;
        let idx = self.set_index(block);
        let base = idx * self.ways;
        match self.match_way(base, self.set_len[idx] as usize, block.get()) {
            Some(w) => {
                self.last_use[base + w] = self.clock;
                self.stats.hits += 1;
                AccessResult::Hit
            }
            None => {
                self.stats.misses += 1;
                AccessResult::Miss
            }
        }
    }

    /// Looks up `block` exactly like [`access`](Self::access) (same recency
    /// and statistics updates) and additionally hands back mutable access to
    /// the line's metadata on a hit — one set scan where an
    /// `access`-then-[`meta_mut`](Self::meta_mut) sequence would perform two.
    /// The instruction-fetch hot path classifies prefetched lines with it on
    /// every L1-I hit.
    #[inline]
    pub fn access_meta(&mut self, block: BlockAddr) -> (AccessResult, Option<&mut M>) {
        self.clock += 1;
        self.stats.accesses += 1;
        let idx = self.set_index(block);
        let base = idx * self.ways;
        match self.match_way(base, self.set_len[idx] as usize, block.get()) {
            Some(w) => {
                self.last_use[base + w] = self.clock;
                self.stats.hits += 1;
                (AccessResult::Hit, Some(&mut self.meta[base + w]))
            }
            None => {
                self.stats.misses += 1;
                (AccessResult::Miss, None)
            }
        }
    }

    /// Installs `block` with `meta`, evicting a victim if the set is full.
    /// If the block is already resident its metadata is replaced and no
    /// eviction occurs.
    ///
    /// Returns the evicted line, if any.
    ///
    /// # Panics
    ///
    /// Panics if every way of the target set is pinned.
    pub fn fill(&mut self, block: BlockAddr, meta: M) -> Option<EvictedLine<M>> {
        self.fill_inner(block, meta, false)
    }

    /// Installs `block` as a *pinned* (non-evictable) line.
    ///
    /// # Panics
    ///
    /// Panics if every way of the target set is already pinned.
    pub fn fill_pinned(&mut self, block: BlockAddr, meta: M) -> Option<EvictedLine<M>> {
        self.fill_inner(block, meta, true)
    }

    fn fill_inner(&mut self, block: BlockAddr, meta: M, pinned: bool) -> Option<EvictedLine<M>> {
        self.clock += 1;
        self.stats.fills += 1;
        let clock = self.clock;
        let ways = self.ways;
        let idx = self.set_index(block);
        let base = idx * ways;
        let len = self.set_len[idx] as usize;
        let key = block.get();

        // Fast path: block already resident → update metadata in place.
        if let Some(w) = self.match_way(base, len, key) {
            self.meta[base + w] = meta;
            self.last_use[base + w] = clock;
            if pinned {
                self.pinned[idx] |= 1 << w;
            }
            return None;
        }

        if len < ways {
            // A free way: append, as the Vec representation's `push` did.
            let slot = base + len;
            self.tags[slot] = key;
            self.meta[slot] = meta;
            self.last_use[slot] = clock;
            if pinned {
                self.pinned[idx] |= 1 << len;
            } else {
                self.pinned[idx] &= !(1 << len);
            }
            self.set_len[idx] = (len + 1) as u8;
            return None;
        }

        // Victim selection over the unpinned live ways, directly on the
        // bitmask; fills are on the miss path of every cache level, so this
        // must stay allocation-free.
        let live_mask = u64::MAX >> (64 - len as u32);
        let unpinned_mask = live_mask & !self.pinned[idx];
        assert!(
            unpinned_mask != 0,
            "all ways of set {idx} are pinned; cannot fill {block}"
        );
        let victim = match self.policy {
            ReplacementPolicy::Lru => {
                let mut rest = unpinned_mask;
                let mut best = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                while rest != 0 {
                    let w = rest.trailing_zeros() as usize;
                    if self.last_use[base + w] < self.last_use[base + best] {
                        best = w;
                    }
                    rest &= rest - 1;
                }
                best
            }
            ReplacementPolicy::Random => {
                // The k-th unpinned way in way order — the same candidate
                // order the Vec representation enumerated.
                let k = self
                    .victim_rng
                    .next_below(unpinned_mask.count_ones() as usize);
                let mut rest = unpinned_mask;
                for _ in 0..k {
                    rest &= rest - 1;
                }
                rest.trailing_zeros() as usize
            }
        };
        self.stats.evictions += 1;

        // Emulate `swap_remove(victim)` + `push(new)`: the last live way
        // backfills the victim slot and the new line lands in the last way.
        let last = len - 1;
        let vslot = base + victim;
        let lslot = base + last;
        let evicted_block = BlockAddr::new(self.tags[vslot]);
        let evicted_meta = if victim == last {
            std::mem::replace(&mut self.meta[vslot], meta)
        } else {
            let moved = std::mem::replace(&mut self.meta[lslot], meta);
            let evicted = std::mem::replace(&mut self.meta[vslot], moved);
            self.tags[vslot] = self.tags[lslot];
            self.last_use[vslot] = self.last_use[lslot];
            let moved_pin = (self.pinned[idx] >> last) & 1;
            self.pinned[idx] = (self.pinned[idx] & !(1 << victim)) | (moved_pin << victim);
            evicted
        };
        self.tags[lslot] = key;
        self.last_use[lslot] = clock;
        if pinned {
            self.pinned[idx] |= 1 << last;
        } else {
            self.pinned[idx] &= !(1 << last);
        }
        Some(EvictedLine {
            block: evicted_block,
            meta: evicted_meta,
        })
    }

    /// Returns a reference to the metadata of `block`, if resident.
    #[inline]
    pub fn meta(&self, block: BlockAddr) -> Option<&M> {
        let idx = self.set_index(block);
        let base = idx * self.ways;
        self.match_way(base, self.set_len[idx] as usize, block.get())
            .map(|w| &self.meta[base + w])
    }

    /// Returns a mutable reference to the metadata of `block`, if resident.
    #[inline]
    pub fn meta_mut(&mut self, block: BlockAddr) -> Option<&mut M> {
        let idx = self.set_index(block);
        let base = idx * self.ways;
        self.match_way(base, self.set_len[idx] as usize, block.get())
            .map(|w| &mut self.meta[base + w])
    }

    /// Iterates over all resident blocks (in no particular order).
    pub fn resident(&self) -> impl Iterator<Item = BlockAddr> + '_ {
        self.set_len
            .iter()
            .enumerate()
            .flat_map(move |(idx, &len)| {
                let base = idx * self.ways;
                self.tags[base..base + len as usize]
                    .iter()
                    .map(|&t| BlockAddr::new(t))
            })
    }

    /// Applies `f` to the metadata of every resident line (used e.g. to clear
    /// transient bookkeeping after cache warm-up).
    pub fn for_each_meta_mut<F: FnMut(&mut M)>(&mut self, mut f: F) {
        for (idx, &len) in self.set_len.iter().enumerate() {
            let base = idx * self.ways;
            for m in &mut self.meta[base..base + len as usize] {
                f(m);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SetAssocCache<u8> {
        // 4 sets × 2 ways.
        SetAssocCache::new(CacheConfig::new(512, 2, 64, 1))
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = small();
        let b = BlockAddr::new(5);
        assert!(c.access(b).is_miss());
        assert!(c.fill(b, 1).is_none());
        assert!(c.access(b).is_hit());
        assert_eq!(c.stats().accesses, 2);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn probe_does_not_touch_stats_or_lru() {
        let mut c = small();
        c.fill(BlockAddr::new(1), 0);
        let before = *c.stats();
        assert!(c.probe(BlockAddr::new(1)));
        assert!(!c.probe(BlockAddr::new(2)));
        assert_eq!(*c.stats(), before);
    }

    #[test]
    fn lru_evicts_least_recently_used_within_set() {
        let mut c = small();
        // Blocks 0, 4, 8 all map to set 0 (4 sets).
        c.fill(BlockAddr::new(0), 0);
        c.fill(BlockAddr::new(4), 4);
        // Touch block 0 so block 4 becomes LRU.
        assert!(c.access(BlockAddr::new(0)).is_hit());
        let evicted = c.fill(BlockAddr::new(8), 8).expect("eviction expected");
        assert_eq!(evicted.block, BlockAddr::new(4));
        assert!(c.probe(BlockAddr::new(0)));
        assert!(c.probe(BlockAddr::new(8)));
    }

    #[test]
    fn refill_of_resident_block_updates_meta_without_eviction() {
        let mut c = small();
        c.fill(BlockAddr::new(3), 1);
        assert!(c.fill(BlockAddr::new(3), 9).is_none());
        assert_eq!(c.meta(BlockAddr::new(3)), Some(&9));
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn pinned_lines_are_never_victims() {
        let mut c = small();
        c.fill_pinned(BlockAddr::new(0), 7);
        c.fill(BlockAddr::new(4), 1);
        // Set 0 is now full; filling another block of set 0 must evict the
        // unpinned line even though the pinned one is older.
        let evicted = c.fill(BlockAddr::new(8), 2).expect("eviction expected");
        assert_eq!(evicted.block, BlockAddr::new(4));
        assert!(c.probe(BlockAddr::new(0)));
    }

    #[test]
    #[should_panic(expected = "pinned")]
    fn filling_a_fully_pinned_set_panics() {
        let mut c = small();
        c.fill_pinned(BlockAddr::new(0), 0);
        c.fill_pinned(BlockAddr::new(4), 0);
        let _ = c.fill(BlockAddr::new(8), 0);
    }

    #[test]
    fn invalidate_removes_block() {
        let mut c = small();
        c.fill(BlockAddr::new(2), 5);
        assert_eq!(c.invalidate(BlockAddr::new(2)), Some(5));
        assert!(!c.probe(BlockAddr::new(2)));
        assert_eq!(c.invalidate(BlockAddr::new(2)), None);
    }

    #[test]
    fn invalidate_compacts_and_preserves_peers() {
        let mut c = small();
        // Fill both ways of set 0, remove the first, and check the survivor.
        c.fill(BlockAddr::new(0), 1);
        c.fill_pinned(BlockAddr::new(4), 2);
        assert_eq!(c.invalidate(BlockAddr::new(0)), Some(1));
        assert!(c.probe(BlockAddr::new(4)));
        assert_eq!(c.meta(BlockAddr::new(4)), Some(&2));
        // The survivor kept its pin: a new fill pair must evict around it.
        c.fill(BlockAddr::new(8), 3);
        let evicted = c.fill(BlockAddr::new(12), 4).expect("eviction expected");
        assert_eq!(evicted.block, BlockAddr::new(8));
        assert!(c.probe(BlockAddr::new(4)));
    }

    #[test]
    fn meta_mut_allows_in_place_update() {
        let mut c = small();
        c.fill(BlockAddr::new(1), 5);
        *c.meta_mut(BlockAddr::new(1)).unwrap() = 6;
        assert_eq!(c.meta(BlockAddr::new(1)), Some(&6));
        assert_eq!(c.meta(BlockAddr::new(9)), None);
    }

    #[test]
    fn capacity_is_bounded_by_config() {
        let mut c = small();
        for i in 0..100 {
            c.fill(BlockAddr::new(i), 0);
        }
        assert!(c.resident_blocks() <= c.config().capacity_blocks());
        assert_eq!(c.resident_blocks(), 8);
        assert_eq!(c.resident().count(), 8);
    }

    #[test]
    fn random_policy_still_bounds_capacity() {
        let mut c: SetAssocCache<()> =
            SetAssocCache::with_policy(CacheConfig::new(512, 2, 64, 1), ReplacementPolicy::Random);
        for i in 0..1000 {
            c.fill(BlockAddr::new(i), ());
        }
        assert_eq!(c.resident_blocks(), 8);
    }

    #[test]
    fn reset_stats_clears_counters() {
        let mut c = small();
        c.access(BlockAddr::new(1));
        c.reset_stats();
        assert_eq!(c.stats().accesses, 0);
    }

    #[test]
    fn wide_sets_scan_all_ways() {
        // 16-way (the LLC bank shape) exercises the widest fixed scan.
        let mut c: SetAssocCache<u32> = SetAssocCache::new(CacheConfig::new(2048, 16, 64, 1));
        // 2 sets; fill all 16 ways of set 0.
        for i in 0..16u64 {
            c.fill(BlockAddr::new(i * 2), i as u32);
        }
        for i in 0..16u64 {
            assert!(c.access(BlockAddr::new(i * 2)).is_hit(), "way {i} lost");
            assert_eq!(c.meta(BlockAddr::new(i * 2)), Some(&(i as u32)));
        }
        // One more fill evicts exactly one line.
        let evicted = c.fill(BlockAddr::new(32), 99).expect("set full");
        assert_eq!(evicted.block, BlockAddr::new(0), "LRU way evicted");
    }

    #[test]
    fn stale_tags_beyond_occupancy_never_match() {
        let mut c = small();
        // Fill both ways of set 0, then invalidate the newest: its tag stays
        // in the array but beyond the live prefix.
        c.fill(BlockAddr::new(0), 1);
        c.fill(BlockAddr::new(4), 2);
        c.invalidate(BlockAddr::new(4));
        assert!(!c.probe(BlockAddr::new(4)), "stale tag matched");
        assert!(c.access(BlockAddr::new(4)).is_miss());
    }

    #[test]
    fn hot_paths_do_not_allocate_after_construction() {
        let mut c: SetAssocCache<u64> = SetAssocCache::new(CacheConfig::new(4096, 4, 64, 1));
        let caps = (
            c.tags.capacity(),
            c.last_use.capacity(),
            c.meta.capacity(),
            c.set_len.capacity(),
            c.pinned.capacity(),
        );
        for i in 0..50_000u64 {
            let b = BlockAddr::new(i % 509);
            if c.access(b).is_miss() {
                c.fill(b, i);
            }
            if i % 17 == 0 {
                c.invalidate(BlockAddr::new((i * 3) % 509));
            }
        }
        assert_eq!(
            caps,
            (
                c.tags.capacity(),
                c.last_use.capacity(),
                c.meta.capacity(),
                c.set_len.capacity(),
                c.pinned.capacity(),
            ),
            "SetAssocCache hot paths must not reallocate"
        );
    }
}
