//! Replacement policies for set-associative caches.

use serde::{Deserialize, Serialize};

/// Which line a set evicts when a fill finds no invalid way.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReplacementPolicy {
    /// Evict the least-recently-used line (the paper's caches are LRU).
    #[default]
    Lru,
    /// Evict a pseudo-random line (cheap hardware alternative; used by the
    /// sensitivity studies).
    Random,
}

/// Small deterministic xorshift generator used by [`ReplacementPolicy::Random`]
/// so that simulations are reproducible without threading an external RNG
/// through every cache.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct VictimRng {
    state: u64,
}

impl VictimRng {
    /// Creates a generator with a fixed non-zero seed.
    pub fn new(seed: u64) -> Self {
        VictimRng {
            state: seed | 1, // avoid the all-zero fixed point
        }
    }

    /// Returns a pseudo-random value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "bound must be positive");
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        (x % bound as u64) as usize
    }
}

impl Default for VictimRng {
    fn default() -> Self {
        VictimRng::new(0x5EED_CAFE_F00D_u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_lru() {
        assert_eq!(ReplacementPolicy::default(), ReplacementPolicy::Lru);
    }

    #[test]
    fn victim_rng_is_deterministic_and_bounded() {
        let mut a = VictimRng::new(7);
        let mut b = VictimRng::new(7);
        for _ in 0..1000 {
            let x = a.next_below(16);
            assert_eq!(x, b.next_below(16));
            assert!(x < 16);
        }
    }

    #[test]
    fn victim_rng_covers_all_ways_eventually() {
        let mut rng = VictimRng::default();
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.next_below(8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_rejected() {
        VictimRng::default().next_below(0);
    }
}
