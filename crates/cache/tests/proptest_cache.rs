//! Property tests for the cache substrates.

use proptest::prelude::*;
use shift_cache::{CacheConfig, LlcConfig, Mshr, NucaLlc, SetAssocCache};
use shift_types::{AccessClass, BlockAddr};

proptest! {
    /// LRU property: after a fill of a full set, the most recently used block
    /// is always still resident.
    #[test]
    fn most_recently_used_block_survives(fillers in proptest::collection::vec(0u64..64, 1..200)) {
        // Single-set cache: 4 ways of 64-byte blocks.
        let mut cache: SetAssocCache<()> =
            SetAssocCache::new(CacheConfig::new(4 * 64, 4, 64, 1));
        let mut last = None;
        for &f in &fillers {
            // Map every block to set 0 by multiplying by the set count (1).
            let block = BlockAddr::new(f);
            cache.fill(block, ());
            cache.access(block);
            last = Some(block);
        }
        prop_assert!(cache.probe(last.unwrap()));
    }

    /// The LLC never loses pinned (history) blocks no matter the traffic.
    #[test]
    fn llc_pinned_blocks_survive_any_traffic(traffic in proptest::collection::vec(0u64..100_000, 1..2_000)) {
        let mut llc = NucaLlc::new(LlcConfig {
            total_bytes: 64 * 1024,
            ways: 4,
            banks: 4,
            block_bytes: 64,
            hit_latency: 5,
            memory_latency: 90,
            index_pointer_bits: 15,
        });
        let history_start = BlockAddr::new(200_000);
        llc.reserve_history_region(history_start, 32);
        for &t in &traffic {
            llc.access(BlockAddr::new(t), AccessClass::Demand);
        }
        for i in 0..32 {
            prop_assert!(llc.probe(history_start.offset(i)));
        }
    }

    /// The packed-tag-array `SetAssocCache` is observationally identical to a
    /// scalar per-set model under any interleaving of accesses, fills, and
    /// invalidations — same hit/miss outcomes, same eviction victims, same
    /// resident sets. This pins the SoA layout's branch-light scan and
    /// bitmask victim selection to the straightforward AoS semantics it
    /// replaced.
    #[test]
    fn packed_tag_scan_matches_scalar_model(
        ops in proptest::collection::vec((0u8..3, 0u64..64), 1..400),
    ) {
        const SETS: u64 = 8;
        const WAYS: usize = 4;
        let mut cache: SetAssocCache<u64> =
            SetAssocCache::new(CacheConfig::new(SETS as usize * WAYS * 64, WAYS, 64, 1));

        // Scalar reference model: per-set Vec of (block, meta, last_use) with
        // a shared clock that ticks on every access *and* fill, mirroring the
        // cache's internal clock so LRU victims are chosen identically.
        let mut model: Vec<Vec<(u64, u64, u64)>> = vec![Vec::new(); SETS as usize];
        let mut clock = 0u64;

        for (i, &(op, key)) in ops.iter().enumerate() {
            let block = BlockAddr::new(key);
            let set = &mut model[(key % SETS) as usize];
            match op {
                0 => {
                    clock += 1;
                    let model_hit = match set.iter_mut().find(|l| l.0 == key) {
                        Some(line) => {
                            line.2 = clock;
                            true
                        }
                        None => false,
                    };
                    prop_assert_eq!(cache.access(block).is_hit(), model_hit);
                }
                1 => {
                    clock += 1;
                    let meta = i as u64;
                    let model_victim = if let Some(line) = set.iter_mut().find(|l| l.0 == key) {
                        line.1 = meta;
                        line.2 = clock;
                        None
                    } else if set.len() < WAYS {
                        set.push((key, meta, clock));
                        None
                    } else {
                        let victim = (0..set.len())
                            .min_by_key(|&w| set[w].2)
                            .expect("full set");
                        let evicted = set.remove(victim);
                        set.push((key, meta, clock));
                        Some((evicted.0, evicted.1))
                    };
                    let evicted = cache.fill(block, meta).map(|e| (e.block.get(), e.meta));
                    prop_assert_eq!(evicted, model_victim);
                }
                _ => {
                    let model_meta = set
                        .iter()
                        .position(|l| l.0 == key)
                        .map(|w| set.remove(w).1);
                    prop_assert_eq!(cache.invalidate(block), model_meta);
                }
            }
        }

        // Final residency over the whole block domain must agree exactly.
        let resident: usize = model.iter().map(Vec::len).sum();
        prop_assert_eq!(cache.resident_blocks(), resident);
        for key in 0..64u64 {
            let in_model = model[(key % SETS) as usize].iter().any(|l| l.0 == key);
            prop_assert_eq!(cache.probe(BlockAddr::new(key)), in_model);
        }
    }

    /// MSHR occupancy never exceeds capacity and completes exactly what was
    /// allocated.
    #[test]
    fn mshr_occupancy_bounded(ops in proptest::collection::vec((0u64..32, any::<bool>()), 1..300)) {
        let mut mshr = Mshr::new(8);
        for &(block, complete) in &ops {
            let b = BlockAddr::new(block);
            if complete {
                mshr.complete(b);
            } else {
                mshr.allocate(b);
            }
            prop_assert!(mshr.occupancy() <= 8);
            prop_assert!(mshr.peak_occupancy() <= 8);
        }
    }
}
