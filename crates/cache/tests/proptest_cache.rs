//! Property tests for the cache substrates.

use proptest::prelude::*;
use shift_cache::{CacheConfig, LlcConfig, Mshr, NucaLlc, SetAssocCache};
use shift_types::{AccessClass, BlockAddr};

proptest! {
    /// LRU property: after a fill of a full set, the most recently used block
    /// is always still resident.
    #[test]
    fn most_recently_used_block_survives(fillers in proptest::collection::vec(0u64..64, 1..200)) {
        // Single-set cache: 4 ways of 64-byte blocks.
        let mut cache: SetAssocCache<()> =
            SetAssocCache::new(CacheConfig::new(4 * 64, 4, 64, 1));
        let mut last = None;
        for &f in &fillers {
            // Map every block to set 0 by multiplying by the set count (1).
            let block = BlockAddr::new(f);
            cache.fill(block, ());
            cache.access(block);
            last = Some(block);
        }
        prop_assert!(cache.probe(last.unwrap()));
    }

    /// The LLC never loses pinned (history) blocks no matter the traffic.
    #[test]
    fn llc_pinned_blocks_survive_any_traffic(traffic in proptest::collection::vec(0u64..100_000, 1..2_000)) {
        let mut llc = NucaLlc::new(LlcConfig {
            total_bytes: 64 * 1024,
            ways: 4,
            banks: 4,
            block_bytes: 64,
            hit_latency: 5,
            memory_latency: 90,
            index_pointer_bits: 15,
        });
        let history_start = BlockAddr::new(200_000);
        llc.reserve_history_region(history_start, 32);
        for &t in &traffic {
            llc.access(BlockAddr::new(t), AccessClass::Demand);
        }
        for i in 0..32 {
            prop_assert!(llc.probe(history_start.offset(i)));
        }
    }

    /// MSHR occupancy never exceeds capacity and completes exactly what was
    /// allocated.
    #[test]
    fn mshr_occupancy_bounded(ops in proptest::collection::vec((0u64..32, any::<bool>()), 1..300)) {
        let mut mshr = Mshr::new(8);
        for &(block, complete) in &ops {
            let b = BlockAddr::new(block);
            if complete {
                mshr.complete(b);
            } else {
                mshr.allocate(b);
            }
            prop_assert!(mshr.occupancy() <= 8);
            prop_assert!(mshr.peak_occupancy() <= 8);
        }
    }
}
