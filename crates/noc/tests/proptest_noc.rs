//! Property tests pinning the tabulated round-trip path to the computed one.
//!
//! [`RoundTripTable`] is a pure precomputation of what two
//! [`Mesh::record_transfer`] calls (request out, response back) would do; the
//! simulation engine's per-LLC-access accounting rides on that equivalence
//! being exact — latency, injected flits, and flit-hops all at once, for
//! every tile pair, every access class, and arbitrary message sizes.

use proptest::prelude::*;
use shift_noc::{Mesh, MeshConfig, RoundTripTable};
use shift_types::AccessClass;

proptest! {
    /// For any mesh geometry and message-size pair, the table reproduces the
    /// computed hops/latency/flit accounting for every ordered tile pair and
    /// every access class.
    #[test]
    fn table_matches_computed_transfers(
        cols in 1usize..6,
        rows in 1usize..6,
        hop_latency in 1u64..8,
        flit_shift in 3u32..6, // flit widths 8/16/32 bytes

        request_bytes in 1u64..130,
        response_bytes in 1u64..130,
    ) {
        let flit_bytes = 1usize << flit_shift;
        let config = MeshConfig { cols, rows, hop_latency, flit_bytes };
        let table = RoundTripTable::new(&config, request_bytes, response_bytes);
        prop_assert_eq!(table.tiles(), config.tiles());

        let mut tabulated = Mesh::new(config);
        let mut computed = Mesh::new(config);
        for (slot, &class) in AccessClass::ALL.iter().enumerate() {
            // Rotate the starting pair per class so classes exercise
            // different table rows while both meshes stay in lockstep.
            for from in 0..config.tiles() {
                for to in 0..config.tiles() {
                    let from = (from + slot) % config.tiles();
                    let fast = tabulated.record_round_trip(&table, from, to, class);
                    let req = computed.record_transfer(from, to, request_bytes, class);
                    let resp = computed.record_transfer(to, from, response_bytes, class);
                    prop_assert_eq!(
                        fast,
                        req + resp,
                        "latency mismatch {}->{} class {:?}",
                        from,
                        to,
                        class
                    );
                    prop_assert_eq!(fast, tabulated.round_trip_latency(from, to));
                    prop_assert_eq!(
                        table.flit_hops(from, to),
                        table.flits_per_round_trip() * tabulated.hops(from, to)
                    );
                }
            }
            prop_assert_eq!(
                tabulated.traffic().flits(class),
                computed.traffic().flits(class)
            );
            prop_assert_eq!(
                tabulated.traffic().flit_hops(class),
                computed.traffic().flit_hops(class)
            );
        }
        prop_assert_eq!(tabulated.traffic(), computed.traffic());
    }
}
