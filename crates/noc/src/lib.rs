//! 2D-mesh network-on-chip model for the SHIFT reproduction.
//!
//! The paper's CMP is a tiled design: each tile holds one core, its private L1
//! caches, and one LLC bank, and the tiles are connected by a 4×4 2D mesh with
//! a 3-cycle per-hop latency (Table I). This crate models that interconnect at
//! the level the evaluation needs:
//!
//! * request/response latency between a core tile and an LLC bank tile
//!   (Manhattan distance × hop latency), used by the timing model to compute
//!   the exposed instruction-miss penalty;
//! * per-class traffic accounting in flit-hops, used by the power model of
//!   §5.7 to estimate the energy cost of SHIFT's extra history traffic.
//!
//! For per-access hot paths, [`RoundTripTable`] tabulates the latency and
//! flit-hop cost of a fixed request/response pair for every tile pair at
//! construction; [`Mesh::record_round_trip`] then performs a whole accounted
//! round trip as a table load plus two adds, bit-identical to the computed
//! [`Mesh::record_transfer`] pair (locked by this crate's property tests).
//!
//! # Examples
//!
//! ```
//! use shift_noc::{Mesh, MeshConfig};
//!
//! let mesh = Mesh::new(MeshConfig::micro13());
//! // Opposite corners of the 4×4 mesh: 6 hops of 3 cycles each.
//! assert_eq!(mesh.hops(0, 15), 6);
//! assert_eq!(mesh.latency(0, 15), 18);
//! assert_eq!(mesh.round_trip_latency(0, 15), 36);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod mesh;

pub use mesh::{Mesh, MeshConfig, NocTrafficStats, RoundTripTable};
