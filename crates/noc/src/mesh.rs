//! The 2D-mesh interconnect model.

use serde::{Deserialize, Serialize};
use shift_types::AccessClass;

/// Geometry and latency of the mesh.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MeshConfig {
    /// Number of tile columns.
    pub cols: usize,
    /// Number of tile rows.
    pub rows: usize,
    /// Latency of one hop (router + link) in cycles.
    pub hop_latency: u64,
    /// Flit width in bytes; a transfer of `n` bytes occupies
    /// `ceil(n / flit_bytes)` flits on every traversed link.
    pub flit_bytes: usize,
}

impl MeshConfig {
    /// The paper's interconnect: a 4×4 mesh with 3 cycles per hop and
    /// 16-byte links.
    pub fn micro13() -> Self {
        MeshConfig {
            cols: 4,
            rows: 4,
            hop_latency: 3,
            flit_bytes: 16,
        }
    }

    /// A square-ish mesh large enough for `tiles` tiles, keeping the paper's
    /// per-hop latency. Useful for scaling studies beyond 16 cores.
    pub fn for_tiles(tiles: usize) -> Self {
        assert!(tiles > 0, "mesh needs at least one tile");
        let cols = (tiles as f64).sqrt().ceil() as usize;
        let rows = tiles.div_ceil(cols);
        MeshConfig {
            cols,
            rows,
            hop_latency: 3,
            flit_bytes: 16,
        }
    }

    /// Number of tiles in the mesh.
    pub fn tiles(&self) -> usize {
        self.cols * self.rows
    }
}

/// Per-class traffic accounting in flits and flit-hops.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NocTrafficStats {
    flits: [u64; AccessClass::ALL.len()],
    flit_hops: [u64; AccessClass::ALL.len()],
}

impl NocTrafficStats {
    fn slot(class: AccessClass) -> usize {
        class.index()
    }

    /// Flits injected for `class`.
    pub fn flits(&self, class: AccessClass) -> u64 {
        self.flits[Self::slot(class)]
    }

    /// Flit-hops (flits × hops traversed) for `class`; the quantity NoC
    /// dynamic energy is proportional to.
    pub fn flit_hops(&self, class: AccessClass) -> u64 {
        self.flit_hops[Self::slot(class)]
    }

    /// Total flit-hops across all classes.
    pub fn total_flit_hops(&self) -> u64 {
        self.flit_hops.iter().sum()
    }

    #[inline]
    fn record(&mut self, class: AccessClass, flits: u64, hops: u64) {
        let i = Self::slot(class);
        self.flits[i] += flits;
        self.flit_hops[i] += flits * hops;
    }

    /// Records pre-multiplied traffic: `flits` injected flits that already
    /// traversed `flit_hops` flit-hops in total. Used by the tabulated
    /// round-trip path, where the flits × hops product is precomputed.
    #[inline]
    fn record_bulk(&mut self, class: AccessClass, flits: u64, flit_hops: u64) {
        let i = Self::slot(class);
        self.flits[i] += flits;
        self.flit_hops[i] += flit_hops;
    }
}

/// Precomputed round-trip costs for a fixed (request, response) message pair
/// over a mesh: per-(source, destination) latency and flit-hops, tabulated at
/// construction so the per-access path is a table load plus two adds instead
/// of coordinate arithmetic, `div_ceil`, and multiplies.
///
/// The table is exactly equivalent to two [`Mesh::record_transfer`] calls —
/// `request_bytes` from `from` to `to` followed by `response_bytes` back —
/// which the `noc` property tests lock for every tile pair.
///
/// # Examples
///
/// ```
/// use shift_noc::{Mesh, MeshConfig, RoundTripTable};
/// use shift_types::AccessClass;
///
/// let mut mesh = Mesh::new(MeshConfig::micro13());
/// // An LLC access: 8-byte request out, 64-byte block back.
/// let table = RoundTripTable::new(mesh.config(), 8, 64);
/// let latency = mesh.record_round_trip(&table, 0, 15, AccessClass::Demand);
/// assert_eq!(latency, mesh.round_trip_latency(0, 15));
/// // 1 request flit + 4 response flits, each over 6 hops.
/// assert_eq!(mesh.traffic().flits(AccessClass::Demand), 5);
/// assert_eq!(mesh.traffic().flit_hops(AccessClass::Demand), 30);
/// ```
#[derive(Clone, Debug)]
pub struct RoundTripTable {
    /// `latency[from * tiles + to]`: request + response latency in cycles.
    latency: Vec<u64>,
    /// `flit_hops[from * tiles + to]`: total flit-hops of both transfers.
    flit_hops: Vec<u64>,
    /// Flits injected per round trip (request + response); independent of
    /// the tile pair.
    flits: u64,
    tiles: usize,
}

impl RoundTripTable {
    /// Tabulates round trips of `request_bytes` out / `response_bytes` back
    /// for every ordered tile pair of a mesh with geometry `config`.
    pub fn new(config: &MeshConfig, request_bytes: u64, response_bytes: u64) -> Self {
        let mesh = Mesh::new(*config);
        let tiles = config.tiles();
        let request_flits = request_bytes.div_ceil(config.flit_bytes as u64).max(1);
        let response_flits = response_bytes.div_ceil(config.flit_bytes as u64).max(1);
        let flits = request_flits + response_flits;
        let mut latency = Vec::with_capacity(tiles * tiles);
        let mut flit_hops = Vec::with_capacity(tiles * tiles);
        for from in 0..tiles {
            for to in 0..tiles {
                let hops = mesh.hops(from, to);
                latency.push(2 * hops * config.hop_latency);
                flit_hops.push(flits * hops);
            }
        }
        RoundTripTable {
            latency,
            flit_hops,
            flits,
            tiles,
        }
    }

    /// Number of tiles the table covers (one row/column per tile).
    pub fn tiles(&self) -> usize {
        self.tiles
    }

    /// Flits injected per round trip (request flits + response flits).
    pub fn flits_per_round_trip(&self) -> u64 {
        self.flits
    }

    /// Tabulated round-trip latency between two tiles in cycles.
    #[inline]
    pub fn latency(&self, from: usize, to: usize) -> u64 {
        self.latency[from * self.tiles + to]
    }

    /// Tabulated total flit-hops of one round trip between two tiles.
    #[inline]
    pub fn flit_hops(&self, from: usize, to: usize) -> u64 {
        self.flit_hops[from * self.tiles + to]
    }
}

/// The mesh interconnect.
///
/// Tiles are numbered row-major: tile `t` sits at column `t % cols`, row
/// `t / cols`. In the modelled tiled CMP, core `i` and LLC bank `i` share
/// tile `i`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Mesh {
    config: MeshConfig,
    traffic: NocTrafficStats,
    /// Tile → (column, row), tabulated at construction so the per-transfer
    /// hop computation performs no division.
    coords: Vec<(u16, u16)>,
}

impl Mesh {
    /// Creates a mesh.
    pub fn new(config: MeshConfig) -> Self {
        assert!(config.cols > 0 && config.rows > 0, "mesh must have tiles");
        assert!(config.flit_bytes > 0, "flit size must be positive");
        let coords = (0..config.tiles())
            .map(|t| ((t % config.cols) as u16, (t / config.cols) as u16))
            .collect();
        Mesh {
            config,
            traffic: NocTrafficStats::default(),
            coords,
        }
    }

    /// The mesh configuration.
    pub fn config(&self) -> &MeshConfig {
        &self.config
    }

    /// Accumulated traffic statistics.
    pub fn traffic(&self) -> &NocTrafficStats {
        &self.traffic
    }

    /// Resets the traffic statistics.
    pub fn reset_stats(&mut self) {
        self.traffic = NocTrafficStats::default();
    }

    #[inline]
    fn coords(&self, tile: usize) -> (u16, u16) {
        assert!(tile < self.config.tiles(), "tile {tile} outside mesh");
        self.coords[tile]
    }

    /// Manhattan hop count between two tiles.
    #[inline]
    pub fn hops(&self, from: usize, to: usize) -> u64 {
        let (fx, fy) = self.coords(from);
        let (tx, ty) = self.coords(to);
        (fx.abs_diff(tx) + fy.abs_diff(ty)) as u64
    }

    /// One-way latency between two tiles in cycles.
    pub fn latency(&self, from: usize, to: usize) -> u64 {
        self.hops(from, to) * self.config.hop_latency
    }

    /// Round-trip (request + response) latency between two tiles in cycles.
    pub fn round_trip_latency(&self, from: usize, to: usize) -> u64 {
        2 * self.latency(from, to)
    }

    /// Average round-trip latency from `from` to every tile of the mesh —
    /// the expected latency of reaching a random (block-interleaved) LLC bank.
    pub fn average_round_trip_latency(&self, from: usize) -> f64 {
        let tiles = self.config.tiles();
        let total: u64 = (0..tiles).map(|t| self.round_trip_latency(from, t)).sum();
        total as f64 / tiles as f64
    }

    /// Records a transfer of `bytes` payload bytes from tile `from` to tile
    /// `to` for traffic/energy accounting, returning its one-way latency.
    #[inline]
    pub fn record_transfer(
        &mut self,
        from: usize,
        to: usize,
        bytes: u64,
        class: AccessClass,
    ) -> u64 {
        let hops = self.hops(from, to);
        let flits = bytes.div_ceil(self.config.flit_bytes as u64).max(1);
        self.traffic.record(class, flits, hops);
        hops * self.config.hop_latency
    }

    /// Records one tabulated round trip (request from `from` to `to`, then
    /// the response back) for traffic accounting, returning the round-trip
    /// latency. Equivalent to the two [`Mesh::record_transfer`] calls the
    /// `table` was built from, at the cost of a table load and two adds.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `table` was built for a different tile
    /// count than this mesh, and on out-of-range tiles via the table lookup.
    #[inline]
    pub fn record_round_trip(
        &mut self,
        table: &RoundTripTable,
        from: usize,
        to: usize,
        class: AccessClass,
    ) -> u64 {
        debug_assert_eq!(table.tiles(), self.config.tiles(), "table/mesh mismatch");
        self.traffic
            .record_bulk(class, table.flits, table.flit_hops(from, to));
        table.latency(from, to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_mesh_is_4x4() {
        let cfg = MeshConfig::micro13();
        assert_eq!(cfg.tiles(), 16);
        assert_eq!(cfg.hop_latency, 3);
    }

    #[test]
    fn hops_are_manhattan_distance() {
        let mesh = Mesh::new(MeshConfig::micro13());
        assert_eq!(mesh.hops(0, 0), 0);
        assert_eq!(mesh.hops(0, 3), 3);
        assert_eq!(mesh.hops(0, 12), 3);
        assert_eq!(mesh.hops(0, 15), 6);
        assert_eq!(mesh.hops(5, 10), 2);
        // Symmetry.
        assert_eq!(mesh.hops(2, 11), mesh.hops(11, 2));
    }

    #[test]
    fn latency_scales_with_hops() {
        let mesh = Mesh::new(MeshConfig::micro13());
        assert_eq!(mesh.latency(0, 15), 18);
        assert_eq!(mesh.round_trip_latency(0, 15), 36);
        assert_eq!(mesh.latency(7, 7), 0);
    }

    #[test]
    fn average_round_trip_is_between_extremes() {
        let mesh = Mesh::new(MeshConfig::micro13());
        let avg = mesh.average_round_trip_latency(0);
        assert!(avg > 0.0);
        assert!(avg < mesh.round_trip_latency(0, 15) as f64);
    }

    #[test]
    fn transfers_accumulate_flit_hops() {
        let mut mesh = Mesh::new(MeshConfig::micro13());
        // 64-byte block + 16-byte flits = 4 flits; 0→15 is 6 hops.
        let latency = mesh.record_transfer(0, 15, 64, AccessClass::Demand);
        assert_eq!(latency, 18);
        assert_eq!(mesh.traffic().flits(AccessClass::Demand), 4);
        assert_eq!(mesh.traffic().flit_hops(AccessClass::Demand), 24);
        mesh.record_transfer(0, 1, 8, AccessClass::HistoryRead);
        assert_eq!(mesh.traffic().flits(AccessClass::HistoryRead), 1);
        assert_eq!(mesh.traffic().total_flit_hops(), 25);
        mesh.reset_stats();
        assert_eq!(mesh.traffic().total_flit_hops(), 0);
    }

    #[test]
    fn tabulated_round_trip_matches_two_transfers() {
        let config = MeshConfig::micro13();
        let table = RoundTripTable::new(&config, 8, 64);
        let mut tabulated = Mesh::new(config);
        let mut computed = Mesh::new(config);
        for from in 0..config.tiles() {
            for to in 0..config.tiles() {
                let fast = tabulated.record_round_trip(&table, from, to, AccessClass::Demand);
                let req = computed.record_transfer(from, to, 8, AccessClass::Demand);
                let resp = computed.record_transfer(to, from, 64, AccessClass::Demand);
                assert_eq!(fast, req + resp, "latency mismatch {from}->{to}");
            }
        }
        assert_eq!(tabulated.traffic(), computed.traffic());
        assert_eq!(table.flits_per_round_trip(), 5);
        assert_eq!(table.tiles(), 16);
    }

    #[test]
    fn for_tiles_covers_requested_count() {
        for n in [1usize, 4, 9, 16, 20, 64] {
            let cfg = MeshConfig::for_tiles(n);
            assert!(cfg.tiles() >= n, "{n} tiles requested, got {}", cfg.tiles());
        }
    }

    #[test]
    #[should_panic(expected = "outside mesh")]
    fn out_of_range_tile_rejected() {
        let mesh = Mesh::new(MeshConfig::micro13());
        let _ = mesh.hops(0, 16);
    }
}
