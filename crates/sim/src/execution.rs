//! The unified entry point for executing a planned [`RunMatrix`].
//!
//! The execute surface once grew one free function at a time — serial,
//! threaded, sharded, queued, observed, delta — until callers had to pick
//! from nine near-duplicates and there was no coherent place to hang new
//! cross-cutting concerns (scheduling policy, cost calibration, unified
//! reporting). The [`Execution`] builder replaced all of them, and the
//! legacy functions have since been removed:
//!
//! ```
//! use shift_sim::{Execution, PrefetcherConfig, RunMatrix};
//! use shift_trace::{presets, Scale};
//!
//! let mut matrix = RunMatrix::new();
//! let w = presets::tiny();
//! let run = matrix.standalone(&w, PrefetcherConfig::None, 2, Scale::Test, 7);
//!
//! // In-memory execution on two worker threads.
//! let output = Execution::new(&matrix).threads(2).run().unwrap();
//! assert!(output.report().complete);
//! let outcomes = output.into_outcomes();
//! assert!(outcomes[run].throughput() > 0.0);
//! ```
//!
//! The configured pieces compose by *mode*:
//!
//! | Configured | Mode |
//! |---|---|
//! | *(nothing)* | In-memory parallel execution |
//! | [`dir`](Execution::dir) | Durable full execution: persist every outcome, return them too |
//! | [`shard`](Execution::shard) + `dir` | Durable slice |
//! | [`queue`](Execution::queue) + `dir` | Elastic work-queue drain |
//! | [`reuse`](Execution::reuse) | In-memory delta over a cache probe |
//! | `reuse` + any durable mode | Cache hits seeded into `dir` first |

use std::io;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::matrix::{default_threads, RunMatrix};
use crate::schedule::{rank_by_cost, CostModel, SchedulePolicy};
use crate::shard::{
    delta_inner, queue_inner, shard_inner, CancelToken, QueueConfig, RunObserver, ShardSpec,
};
use crate::store::{seed_outcomes, RunOutcomes, RunStore};

/// Where each planned run's outcome came from, summed over one execution.
///
/// The three sources are exhaustive and disjoint per run *as this invocation
/// saw it*: simulated here (`executed`), already present — cache hit,
/// resumed file, or another queue worker's work (`reused`) — or taken over
/// from a dead worker's stale claim (`reclaimed`, a subset of `executed`
/// counted separately because operators alert on it).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutcomeSources {
    /// Runs simulated by this invocation.
    pub executed: usize,
    /// Runs satisfied without simulating: valid outcomes that already
    /// existed (resume, cache seed, or other workers' completions observed
    /// by this one).
    pub reused: usize,
    /// Stale claims taken over from dead workers (these runs also count in
    /// `executed`).
    pub reclaimed: usize,
}

/// What one [`Execution`] did, uniformly across every mode. Serde-derived so
/// embedding services (`shift-serve` status responses, the bench decision
/// log) can emit it directly.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecutionReport {
    /// Runs this execution was responsible for: the whole matrix, or the
    /// shard's slice in shard mode.
    pub planned: usize,
    /// Per-source breakdown of how those runs were satisfied.
    pub sources: OutcomeSources,
    /// Queue passes taken (1 for every non-queue mode).
    pub passes: usize,
    /// `true` if every planned run had a valid outcome on return. Shard
    /// mode reports its own slice; a cancelled or non-waiting queue drain
    /// reports `false`.
    pub complete: bool,
}

/// The result of [`Execution::run`]: the unified report, plus in-memory
/// outcomes for the modes that produce them.
#[derive(Debug)]
pub struct ExecutionOutput {
    report: ExecutionReport,
    outcomes: Option<RunOutcomes>,
}

impl ExecutionOutput {
    /// What the execution did.
    pub fn report(&self) -> &ExecutionReport {
        &self.report
    }

    /// The executed outcomes, if this mode produces them in memory: every
    /// mode except shard and queue execution (those persist to the outcome
    /// directory for a later [`RunStore`] merge instead; `None`).
    pub fn outcomes(&self) -> Option<&RunOutcomes> {
        self.outcomes.as_ref()
    }

    /// Consumes the output, returning the in-memory outcomes.
    ///
    /// # Panics
    ///
    /// Panics for shard/queue executions, which do not return outcomes in
    /// memory — merge their outcome directory with [`RunStore`] instead.
    pub fn into_outcomes(self) -> RunOutcomes {
        self.outcomes.expect(
            "this execution mode persists to the outcome directory; \
             merge it with RunStore::load instead of into_outcomes()",
        )
    }
}

/// Builder for executing a [`RunMatrix`] — see the [module docs](self) for
/// the mode table.
pub struct Execution<'a> {
    matrix: &'a RunMatrix,
    threads: Option<usize>,
    dir: Option<PathBuf>,
    shard: Option<ShardSpec>,
    queue: Option<QueueConfig>,
    reuse: Option<crate::store::PartialLoad>,
    observer: Option<&'a dyn RunObserver>,
    cancel: Option<&'a CancelToken>,
    policy: Option<SchedulePolicy>,
    calibration: CostModel,
}

impl std::fmt::Debug for Execution<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Execution")
            .field("planned", &self.matrix.len())
            .field("threads", &self.threads)
            .field("dir", &self.dir)
            .field("shard", &self.shard)
            .field("queue", &self.queue)
            .field("reuse", &self.reuse.is_some())
            .field("observer", &self.observer.is_some())
            .field("cancel", &self.cancel.is_some())
            .field("policy", &self.policy)
            .field("calibration", &self.calibration)
            .finish()
    }
}

impl<'a> Execution<'a> {
    /// Starts building an execution of `matrix`. With no further
    /// configuration, [`run`](Execution::run) executes in memory on the
    /// default worker pool.
    pub fn new(matrix: &'a RunMatrix) -> Self {
        Execution {
            matrix,
            threads: None,
            dir: None,
            shard: None,
            queue: None,
            reuse: None,
            observer: None,
            cancel: None,
            policy: None,
            calibration: CostModel::default(),
        }
    }

    /// Uses exactly `n` worker threads (default: [`default_threads`]).
    #[must_use]
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = Some(n);
        self
    }

    /// Executes on the calling thread only — shorthand for `.threads(1)`.
    #[must_use]
    pub fn serial(self) -> Self {
        self.threads(1)
    }

    /// Persists outcomes under `dir`. Alone this is a durable full
    /// execution (every run written as a keyed outcome file, resumable);
    /// combined with [`shard`](Execution::shard) or
    /// [`queue`](Execution::queue) it is the shared outcome directory those
    /// modes require.
    #[must_use]
    pub fn dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.dir = Some(dir.into());
        self
    }

    /// Executes only this shard's slice of the matrix (requires
    /// [`dir`](Execution::dir); mutually exclusive with
    /// [`queue`](Execution::queue)).
    #[must_use]
    pub fn shard(mut self, spec: ShardSpec) -> Self {
        self.shard = Some(spec);
        self
    }

    /// Drains the matrix through the elastic work queue as the worker
    /// described by `config` (requires [`dir`](Execution::dir); mutually
    /// exclusive with [`shard`](Execution::shard)).
    #[must_use]
    pub fn queue(mut self, config: QueueConfig) -> Self {
        self.queue = Some(config);
        self
    }

    /// Reuses the cache hits of a [`RunStore::load_partial`] probe:
    /// in-memory modes splice them in and execute only the delta; durable
    /// modes seed them into [`dir`](Execution::dir) first.
    #[must_use]
    pub fn reuse(mut self, partial: crate::store::PartialLoad) -> Self {
        self.reuse = Some(partial);
        self
    }

    /// Streams [`RunEvent`](crate::RunEvent)s from queue execution to
    /// `observer` (ignored by other modes).
    #[must_use]
    pub fn observer(mut self, observer: &'a dyn RunObserver) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Makes queue execution cancellable through `token` (ignored by other
    /// modes).
    #[must_use]
    pub fn cancel(mut self, token: &'a CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Sets the scheduling policy: the claim order for queue workers, and
    /// the packing order for in-memory execution. Overrides the policy in
    /// the [`queue`](Execution::queue) config (which is where
    /// `SHIFT_SCHED_POLICY` lands); when neither is set, the stable
    /// canonical order is used.
    #[must_use]
    pub fn policy(mut self, policy: SchedulePolicy) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Replaces the default cost calibration (committed `BENCH_PR6.json`
    /// numbers) — see [`CostModel::from_bench_json`].
    #[must_use]
    pub fn calibration(mut self, model: CostModel) -> Self {
        self.calibration = model;
        self
    }

    /// Executes in the mode the configuration selects (see the
    /// [module docs](self)) and returns the unified report plus, for
    /// in-memory modes, the outcomes.
    ///
    /// # Panics
    ///
    /// Panics on contradictory configuration: [`shard`](Execution::shard)
    /// combined with [`queue`](Execution::queue), or either of them without
    /// [`dir`](Execution::dir).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from the durable modes (creating the
    /// outcome directory, writing outcome or lock files, loading outcomes
    /// back).
    pub fn run(self) -> io::Result<ExecutionOutput> {
        assert!(
            self.shard.is_none() || self.queue.is_none(),
            "Execution: .shard() and .queue() are mutually exclusive \
             (a shard is a static slice, a queue worker sees the whole matrix)"
        );
        let threads = self.threads.unwrap_or_else(default_threads);
        let matrix = self.matrix;

        if let Some(mut config) = self.queue {
            let dir = self
                .dir
                .as_deref()
                .expect("Execution: .queue() requires .dir(shared outcome directory)");
            if let Some(policy) = self.policy {
                config.policy = policy;
            }
            if let Some(partial) = &self.reuse {
                seed_outcomes(matrix, partial, dir)?;
            }
            let fallback_cancel = CancelToken::new();
            let noop = |_event: crate::shard::RunEvent| {};
            let observer: &dyn RunObserver = match self.observer {
                Some(o) => o,
                None => &noop,
            };
            let drained = queue_inner(
                matrix,
                dir,
                &config,
                threads,
                observer,
                self.cancel.unwrap_or(&fallback_cancel),
                &self.calibration,
            )?;
            return Ok(ExecutionOutput {
                report: ExecutionReport {
                    planned: drained.planned,
                    sources: OutcomeSources {
                        executed: drained.executed,
                        reused: drained.already,
                        reclaimed: drained.reclaimed,
                    },
                    passes: drained.passes,
                    complete: drained.complete,
                },
                outcomes: None,
            });
        }

        if let Some(spec) = self.shard {
            let dir = self
                .dir
                .as_deref()
                .expect("Execution: .shard() requires .dir(outcome directory)");
            if let Some(partial) = &self.reuse {
                // Seeded files surface as resumed (reused) runs below.
                crate::shard::seed_shard_outcomes(matrix, partial, dir, spec)?;
            }
            let report = shard_inner(matrix, spec, dir, threads)?;
            return Ok(ExecutionOutput {
                report: ExecutionReport {
                    planned: report.planned,
                    sources: OutcomeSources {
                        executed: report.executed,
                        reused: report.resumed,
                        reclaimed: 0,
                    },
                    passes: 1,
                    complete: report.executed + report.resumed == report.planned,
                },
                outcomes: None,
            });
        }

        if let Some(dir) = self.dir.as_deref() {
            // Durable full execution: persist everything, then load the
            // complete sweep back so callers get outcomes *and* durability.
            if let Some(partial) = &self.reuse {
                seed_outcomes(matrix, partial, dir)?;
            }
            let report = shard_inner(matrix, ShardSpec::full(), dir, threads)?;
            let outcomes = load_back(matrix, dir)?;
            return Ok(ExecutionOutput {
                report: ExecutionReport {
                    planned: report.planned,
                    sources: OutcomeSources {
                        executed: report.executed,
                        reused: report.resumed,
                        reclaimed: 0,
                    },
                    passes: 1,
                    complete: true,
                },
                outcomes: Some(outcomes),
            });
        }

        if let Some(partial) = self.reuse {
            let report = delta_inner(matrix, partial, threads);
            return Ok(ExecutionOutput {
                report: ExecutionReport {
                    planned: matrix.len(),
                    sources: OutcomeSources {
                        executed: report.executed,
                        reused: report.reused,
                        reclaimed: 0,
                    },
                    passes: 1,
                    complete: true,
                },
                outcomes: Some(report.outcomes),
            });
        }

        // Pure in-memory execution. Under CostOrdered the workers pick up
        // the biggest runs first (classic LPT packing, lower makespan when
        // run sizes are skewed); results are keyed by plan slot, so the
        // outcomes are bit-identical either way.
        let outcomes = match self.policy.unwrap_or_default() {
            SchedulePolicy::Canonical => matrix.run_all(threads),
            SchedulePolicy::CostOrdered => {
                matrix.run_all_ordered(threads, &rank_by_cost(&self.calibration, matrix))
            }
        };
        Ok(ExecutionOutput {
            report: ExecutionReport {
                planned: matrix.len(),
                sources: OutcomeSources {
                    executed: matrix.len(),
                    reused: 0,
                    reclaimed: 0,
                },
                passes: 1,
                complete: true,
            },
            outcomes: Some(outcomes),
        })
    }
}

/// Loads a complete durable execution back into memory, mapping store
/// errors (all of which indicate a bug or concurrent tampering right after
/// a successful full execution) into `io::Error`.
fn load_back(matrix: &RunMatrix, dir: &Path) -> io::Result<RunOutcomes> {
    RunStore::new([dir])
        .load(matrix)
        .map_err(|e| io::Error::other(format!("re-loading executed outcomes: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PrefetcherConfig;
    use shift_trace::{presets, Scale};

    fn small_matrix() -> RunMatrix {
        let mut matrix = RunMatrix::new();
        let w = presets::tiny();
        for seed in [11u64, 12] {
            matrix.standalone(&w, PrefetcherConfig::None, 2, Scale::Test, seed);
        }
        matrix
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("shift-execution-test-{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn in_memory_mode_returns_outcomes_and_full_report() {
        let matrix = small_matrix();
        let output = Execution::new(&matrix).serial().run().unwrap();
        assert_eq!(output.report().planned, matrix.len());
        assert_eq!(output.report().sources.executed, matrix.len());
        assert!(output.report().complete);
        assert_eq!(output.into_outcomes().len(), matrix.len());
    }

    #[test]
    fn cost_ordered_in_memory_is_bit_identical_to_canonical() {
        let matrix = small_matrix();
        let canonical = Execution::new(&matrix)
            .serial()
            .run()
            .unwrap()
            .into_outcomes();
        let ordered = Execution::new(&matrix)
            .serial()
            .policy(SchedulePolicy::CostOrdered)
            .run()
            .unwrap()
            .into_outcomes();
        assert_eq!(format!("{canonical:?}"), format!("{ordered:?}"));
    }

    #[test]
    fn dir_mode_persists_and_returns_outcomes() {
        let matrix = small_matrix();
        let dir = temp_dir("durable");
        let output = Execution::new(&matrix).serial().dir(&dir).run().unwrap();
        assert_eq!(output.report().sources.executed, matrix.len());
        assert!(output.outcomes().is_some());
        // Durable: a second execution resumes everything from disk.
        let again = Execution::new(&matrix).serial().dir(&dir).run().unwrap();
        assert_eq!(again.report().sources.executed, 0);
        assert_eq!(again.report().sources.reused, matrix.len());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shard_mode_reports_slice_and_withholds_outcomes() {
        let matrix = small_matrix();
        let dir = temp_dir("shard");
        let output = Execution::new(&matrix)
            .serial()
            .shard(ShardSpec::new(1, 2))
            .dir(&dir)
            .run()
            .unwrap();
        assert!(output.report().planned < matrix.len() || matrix.len() < 2);
        assert!(output.outcomes().is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    #[should_panic(expected = "mutually exclusive")]
    fn shard_plus_queue_is_rejected() {
        let matrix = small_matrix();
        let _ = Execution::new(&matrix)
            .shard(ShardSpec::full())
            .queue(QueueConfig::new("w"))
            .dir("/tmp/never-used")
            .run();
    }

    #[test]
    #[should_panic(expected = "requires .dir")]
    fn queue_without_dir_is_rejected() {
        let matrix = small_matrix();
        let _ = Execution::new(&matrix).queue(QueueConfig::new("w")).run();
    }

    #[test]
    #[should_panic(expected = "merge it with RunStore")]
    fn into_outcomes_panics_for_durable_slice_modes() {
        let matrix = small_matrix();
        let dir = temp_dir("no-outcomes");
        let output = Execution::new(&matrix)
            .serial()
            .shard(ShardSpec::full())
            .dir(&dir)
            .run()
            .unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        let _ = output.into_outcomes();
    }
}
