//! Trace-driven 16-core CMP simulator and experiment drivers.
//!
//! This crate assembles the substrates (synthetic traces, caches, NoC, core
//! timing, prefetchers) into the full system the paper evaluates and provides
//! one driver per figure/table of the evaluation section:
//!
//! | Paper result | Driver |
//! |---|---|
//! | Fig. 1 — speedup vs. fraction of I-misses eliminated | [`experiments::probabilistic_elimination`](fn@experiments::probabilistic_elimination) |
//! | Fig. 2 / §5.6 — performance density | [`experiments::performance_density`](fn@experiments::performance_density) |
//! | Fig. 3 — instruction stream commonality across cores | [`experiments::commonality`](fn@experiments::commonality) |
//! | Fig. 6 — miss coverage vs. aggregate history size | [`experiments::coverage_vs_history`](fn@experiments::coverage_vs_history) |
//! | Fig. 7 — covered / overpredicted breakdown | [`experiments::coverage_breakdown`](fn@experiments::coverage_breakdown) |
//! | Fig. 8 — speedup comparison | [`experiments::speedup_comparison`](fn@experiments::speedup_comparison) |
//! | Fig. 9 — LLC traffic overhead | [`experiments::llc_traffic`](fn@experiments::llc_traffic) |
//! | Fig. 10 — workload consolidation | [`experiments::consolidation`](fn@experiments::consolidation) |
//! | §5.7 — power overhead | [`experiments::power_overhead`](fn@experiments::power_overhead) |
//! | §5.1 — storage cost table | [`experiments::storage_table`](fn@experiments::storage_table) |
//!
//! # Quick start
//!
//! ```
//! use shift_sim::{CmpConfig, PrefetcherConfig, SimOptions, Simulation};
//! use shift_trace::{presets, Scale};
//!
//! let workload = presets::tiny();
//! let config = CmpConfig::micro13(4, PrefetcherConfig::shift_virtualized());
//! let options = SimOptions::new(Scale::Test, 42);
//! let result = Simulation::standalone(config, workload, options).run();
//! assert!(result.coverage.covered + result.coverage.uncovered > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod config;
pub mod experiments;
pub mod results;
pub mod system;

pub use config::{CmpConfig, PrefetcherConfig, SimOptions};
pub use results::{CoverageStats, RunResult};
pub use system::Simulation;
