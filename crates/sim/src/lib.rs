//! Trace-driven 16-core CMP simulator and experiment drivers.
//!
//! This crate assembles the substrates (synthetic traces, caches, NoC, core
//! timing, prefetchers) into the full system the paper evaluates and provides
//! one driver per figure/table of the evaluation section:
//!
//! | Paper result | Driver |
//! |---|---|
//! | Fig. 1 — speedup vs. fraction of I-misses eliminated | [`experiments::probabilistic_elimination`](fn@experiments::probabilistic_elimination) |
//! | Fig. 2 / §5.6 — performance density | [`experiments::performance_density`](fn@experiments::performance_density) |
//! | Fig. 3 — instruction stream commonality across cores | [`experiments::commonality`](fn@experiments::commonality) |
//! | Fig. 6 — miss coverage vs. aggregate history size | [`experiments::coverage_vs_history`](fn@experiments::coverage_vs_history) |
//! | Fig. 7 — covered / overpredicted breakdown | [`experiments::coverage_breakdown`](fn@experiments::coverage_breakdown) |
//! | Fig. 8 — speedup comparison | [`experiments::speedup_comparison`](fn@experiments::speedup_comparison) |
//! | Fig. 9 — LLC traffic overhead | [`experiments::llc_traffic`](fn@experiments::llc_traffic) |
//! | Fig. 10 — workload consolidation | [`experiments::consolidation`](fn@experiments::consolidation) |
//! | §5.7 — power overhead | [`experiments::power_overhead`](fn@experiments::power_overhead) |
//! | §5.1 — storage cost table | [`experiments::storage_table`](fn@experiments::storage_table) |
//! | beyond the paper — hybrid/adaptive designs + throttled history port | [`experiments::hybrid_shootout`](fn@experiments::hybrid_shootout) |
//!
//! # Quick start
//!
//! ```
//! use shift_sim::{CmpConfig, PrefetcherConfig, SimOptions, Simulation};
//! use shift_trace::{presets, Scale};
//!
//! let workload = presets::tiny();
//! let config = CmpConfig::micro13(4, PrefetcherConfig::shift_virtualized());
//! let options = SimOptions::new(Scale::Test, 42);
//! let result = Simulation::standalone(config, workload, options).run();
//! assert!(result.coverage.covered + result.coverage.uncovered > 0);
//! ```
//!
//! # Sweeps: the run matrix
//!
//! Single runs compose into sweeps through [`RunMatrix`], the planner and
//! parallel executor every experiment driver sits on. Runs are planned by
//! key (workload, prefetcher, cores, scale, seed, options); identical keys
//! deduplicate to one simulation — so the shared no-prefetch baseline of a
//! five-way comparison is simulated once, not five times — and the whole
//! matrix executes across all available cores with results that are
//! bit-identical to a serial sweep:
//!
//! ```
//! use shift_sim::{PrefetcherConfig, RunMatrix};
//! use shift_trace::{presets, Scale};
//!
//! let mut matrix = RunMatrix::new();
//! let workload = presets::tiny();
//! let baseline = matrix.standalone(&workload, PrefetcherConfig::None, 4, Scale::Test, 42);
//! let handles: Vec<_> = PrefetcherConfig::figure8_suite()
//!     .into_iter()
//!     .map(|p| matrix.standalone(&workload, p, 4, Scale::Test, 42))
//!     .collect();
//!
//! let outcomes = matrix.execute(); // parallel across cores
//! for handle in handles {
//!     assert!(outcomes[handle].speedup_over(&outcomes[baseline]) > 0.9);
//! }
//! ```
//!
//! Sweeps that exceed one host split into a three-stage pipeline over the
//! same matrix: **plan** ([`matrix`]), **execute** either a deterministic
//! `K/N` slice or an elastic work-queue claim of the next unowned run, with
//! durable per-run outcomes either way ([`shard`]), and **merge** the
//! outcome directories back into bit-identical [`RunOutcomes`] ([`store`]).
//! Outcome directories double as a cross-sweep simulation cache:
//! [`RunStore::load_partial`] reuses any outcome whose key still exists in a
//! changed plan and `Execution::new(&matrix).reuse(partial)` runs only the
//! rest. All of these modes go through one entry point, the [`Execution`]
//! builder ([`execution`]), which also owns the scheduling knobs: a
//! [`CostModel`] ranks runs by estimated work ([`schedule`]) and
//! [`SchedulePolicy::CostOrdered`] drains queues biggest-first weighted by
//! each worker's measured throughput. See `docs/SWEEP.md` and
//! `docs/OPERATIONS.md` in the repository for the operational guides.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod config;
pub mod engine;
pub mod execution;
pub mod experiments;
pub mod matrix;
pub mod results;
pub mod schedule;
pub mod shard;
pub mod store;
pub mod system;

pub use config::{CmpConfig, PrefetcherConfig, SimOptions};
pub use engine::Engine;
pub use execution::{Execution, ExecutionOutput, ExecutionReport, OutcomeSources};
pub use matrix::{MatrixFingerprint, RunHandle, RunKey, RunKeyId, RunMatrix};
pub use results::{CoverageStats, RunResult, RESULTS_VERSION};
pub use schedule::{CostModel, RunCost, SchedulePolicy};
pub use shard::{
    CancelToken, DeltaReport, LockHeartbeat, QueueConfig, RunEvent, RunObserver, ShardReport,
    ShardSpec,
};
pub use store::{PartialLoad, RunOutcomes, RunStore, StoreError};
pub use system::Simulation;
