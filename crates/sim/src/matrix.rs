//! The **plan** stage of the sweep pipeline: deduplicated run matrices with
//! content-addressed keys and a canonical ordering.
//!
//! The paper's evaluation is a large matrix of (workload × prefetcher ×
//! scale × seed) simulations, and several figures share runs — most notably
//! the no-prefetch baseline, which every speedup is normalized against. This
//! module gives all experiment drivers one way to declare such a sweep:
//!
//! 1. **Plan** — add runs to a [`RunMatrix`]. Each call returns a cheap
//!    [`RunHandle`]; adding a run whose full configuration (CMP config,
//!    options, and workload assignment) matches an already-planned run
//!    returns the *existing* handle, so shared runs — e.g. a baseline used
//!    by five prefetcher comparisons — are simulated exactly once.
//! 2. **Execute** — [`RunMatrix::execute`] runs all planned simulations on a
//!    pool of worker threads (one per available core by default, overridable
//!    with the `SHIFT_THREADS` environment variable) and returns
//!    [`RunOutcomes`] indexed by the handles. For sweeps too large for one
//!    host, the [`Execution`](crate::Execution) builder's shard mode
//!    executes a deterministic *slice* of the matrix instead, persisting
//!    each completed run as a keyed outcome file — or its queue mode lets
//!    any number of heterogeneous workers *elastically* claim runs one at a
//!    time from a shared outcome directory.
//! 3. **Merge / consume** — look up each run's [`RunResult`] by handle and
//!    derive the figure's rows. Outcomes can come from in-process execution,
//!    from a [`RunStore`](crate::store::RunStore) merge of one or more
//!    shard/queue directories (all bit-identical), or partially from a
//!    *cache* of an earlier sweep
//!    ([`RunStore::load_partial`](crate::store::RunStore::load_partial) +
//!    [`Execution::reuse`](crate::Execution::reuse)) when the plan has
//!    changed since the outcomes were executed.
//!
//! Every simulation is fully deterministic in its key (the only randomness
//! comes from generators seeded by [`SimOptions::seed`]), so the parallel
//! execution is bit-identical to a serial one
//! ([`Execution::serial`](crate::Execution::serial)) — a property locked in
//! by the `runner` and `shard` integration tests.
//!
//! # Identity across process boundaries
//!
//! In-process, a [`RunHandle`] is pinned to its planning matrix by a
//! process-local id. Across processes (a shard executing on another
//! machine), identity is *content-addressed* instead: every [`RunKey`] has a
//! [`RunKeyId`] — a hash of its canonical JSON form — and the whole matrix
//! has a [`MatrixFingerprint`] over its sorted key ids. Two processes that
//! plan the same sweep compute the same ids, which is what lets outcome
//! files written by one host be merged and verified by another.
//!
//! Wherever runs are *enumerated* — shard slices, outcome stores, manifest
//! listings — the canonical ordering ([`RunMatrix::canonical_order`], sorted
//! by key) is used rather than plan order, so slices are stable even when
//! drivers plan figures in a different sequence.
//!
//! # Example
//!
//! ```
//! use shift_sim::{PrefetcherConfig, RunMatrix};
//! use shift_trace::{presets, Scale};
//!
//! let mut matrix = RunMatrix::new();
//! let workload = presets::tiny();
//! let baseline = matrix.standalone(&workload, PrefetcherConfig::None, 4, Scale::Test, 42);
//! let shift = matrix.standalone(&workload, PrefetcherConfig::shift_virtualized(), 4, Scale::Test, 42);
//! // Re-planning an identical run is free: it returns the same handle.
//! assert_eq!(baseline, matrix.standalone(&workload, PrefetcherConfig::None, 4, Scale::Test, 42));
//! assert_eq!(matrix.len(), 2);
//!
//! let outcomes = matrix.execute();
//! assert!(outcomes[shift].speedup_over(&outcomes[baseline]) > 1.0);
//! ```

use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use serde::de::Error as DeError;
use serde::{json, Deserialize, Serialize, Value};
use shift_trace::{ConsolidationSpec, Scale, WorkloadSpec};

use crate::config::{CmpConfig, PrefetcherConfig, SimOptions};
use crate::results::RunResult;
use crate::store::RunOutcomes;
use crate::system::Simulation;

/// Process-wide matrix id source, so a handle can prove which matrix planned
/// it (see [`RunHandle`]).
static NEXT_MATRIX_ID: AtomicU64 = AtomicU64::new(0);

/// Handle to one planned run in a [`RunMatrix`]; index into the matrix's
/// [`RunOutcomes`] to get its [`RunResult`].
///
/// # Invariant
///
/// A handle is only valid against [`RunOutcomes`] executed from the *same*
/// matrix that planned it. Handles carry the id of their planning matrix, so
/// resolving one against a different matrix's outcomes panics with a
/// diagnostic (or returns `None` from [`RunOutcomes::try_get`]) instead of
/// silently reading another plan's result.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RunHandle {
    pub(crate) matrix: u64,
    pub(crate) slot: usize,
}

/// The identity of one simulation run: everything that determines its result.
///
/// Two runs with equal keys produce bit-identical
/// [`RunResult`]s, so the planner simulates only
/// one of them. The key covers the full CMP configuration (including the
/// prefetcher), the simulation options (scale, seed, prediction-only and
/// miss-elimination modes), and the complete workload-to-core assignment —
/// equality is plain structural equality over all of them. Keys serialize
/// and deserialize (shard outcome files embed the key of the run they
/// record), and [`RunKey::id`] gives the content-addressed identity used
/// across process boundaries.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunKey {
    config: CmpConfig,
    options: SimOptions,
    consolidation: ConsolidationSpec,
}

impl RunKey {
    fn of(sim: &Simulation) -> Self {
        RunKey {
            config: *sim.config(),
            options: *sim.options(),
            consolidation: sim.consolidation().clone(),
        }
    }

    /// The CMP configuration of the planned run (cores, caches, prefetcher).
    pub fn config(&self) -> &CmpConfig {
        &self.config
    }

    /// The simulation options of the planned run (scale, seed, modes).
    pub fn options(&self) -> &SimOptions {
        &self.options
    }

    /// The workload-to-core assignment of the planned run.
    pub fn consolidation(&self) -> &ConsolidationSpec {
        &self.consolidation
    }

    /// The key's canonical serialized form: compact JSON of all fields.
    ///
    /// Equal keys render identically (struct field order is fixed, floats
    /// use shortest round-trip formatting), so this string *is* the key's
    /// cross-process identity; [`RunKey::id`] is its hash.
    pub fn canonical_json(&self) -> String {
        json::to_string(self)
    }

    /// The key's content-addressed id: a 64-bit FNV-1a hash of
    /// [`RunKey::canonical_json`].
    pub fn id(&self) -> RunKeyId {
        RunKeyId(fnv1a(self.canonical_json().as_bytes()))
    }
}

/// 64-bit FNV-1a: tiny, dependency-free, and stable across platforms — all
/// this needs to be. Collisions are guarded against downstream: the outcome
/// store compares the full embedded key JSON, not just the id.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

macro_rules! hex_id {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(u64);

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:016x}", self.0)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({:016x})"), self.0)
            }
        }

        impl FromStr for $name {
            type Err = String;

            fn from_str(s: &str) -> Result<Self, String> {
                if s.len() != 16 {
                    return Err(format!(
                        concat!(stringify!($name), " must be 16 hex digits, got `{}`"),
                        s
                    ));
                }
                u64::from_str_radix(s, 16)
                    .map($name)
                    .map_err(|e| format!(concat!("bad ", stringify!($name), " `{}`: {}"), s, e))
            }
        }

        impl Serialize for $name {
            fn to_value(&self) -> Value {
                Value::Str(self.to_string())
            }
        }

        impl Deserialize for $name {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Str(s) => s.parse().map_err(DeError::custom),
                    other => Err(DeError::unexpected(
                        stringify!($name),
                        "a 16-hex-digit string",
                        other,
                    )),
                }
            }
        }
    };
}

hex_id! {
    /// Content-addressed identity of one [`RunKey`]: the hash of its
    /// canonical JSON, rendered as 16 hex digits. Two processes planning the
    /// same run compute the same id, which names the run's outcome file.
    RunKeyId
}

hex_id! {
    /// Content-addressed identity of a whole planned [`RunMatrix`]: a hash
    /// over its sorted [`RunKeyId`]s. Outcome files record the fingerprint of
    /// the matrix they were executed for, so a merge rejects outcomes from a
    /// different sweep (different scale, workload set, core count, …).
    MatrixFingerprint
}

/// A deduplicated plan of simulation runs, executed in parallel.
///
/// See the [module documentation](self) for the plan / execute / merge
/// workflow. The full single-process pipeline — plan a sweep, execute it
/// once, write the derived figure as a machine-readable artifact — looks
/// like this:
///
/// ```
/// use shift_report::{Artifact, Check, Reference, Table};
/// use shift_sim::{PrefetcherConfig, RunMatrix};
/// use shift_trace::{presets, Scale};
///
/// // Plan: identical keys deduplicate, so the baseline is simulated once
/// // no matter how many comparisons reference it.
/// let mut matrix = RunMatrix::new();
/// let workload = presets::tiny();
/// let baseline = matrix.standalone(&workload, PrefetcherConfig::None, 2, Scale::Test, 7);
/// let shift = matrix.standalone(
///     &workload,
///     PrefetcherConfig::shift_virtualized(),
///     2,
///     Scale::Test,
///     7,
/// );
///
/// // Execute: one parallel sweep over all planned runs.
/// let outcomes = matrix.execute();
/// let speedup = outcomes[shift].speedup_over(&outcomes[baseline]);
///
/// // Artifact-write: JSON (full result tree), CSV, and markdown, plus a
/// // reference check against the paper's value.
/// let mut table = Table::new(["workload", "speedup"]);
/// table.push_row([workload.name.as_str(), &format!("{speedup:.3}")]);
/// let artifact = Artifact::new("quick", "SHIFT speedup", &outcomes[shift], table)
///     .with_reference(Reference::new("speedup", speedup, Check::at_least(1.0)));
/// let dir = std::env::temp_dir().join("shift-runner-doctest");
/// let paths = artifact.write_to(&dir).unwrap();
/// assert_eq!(paths.len(), 3);
/// # std::fs::remove_dir_all(&dir).unwrap();
/// ```
#[derive(Debug)]
pub struct RunMatrix {
    id: u64,
    plans: Vec<Simulation>,
    keys: Vec<RunKey>,
    key_ids: Vec<RunKeyId>,
}

impl Default for RunMatrix {
    fn default() -> Self {
        RunMatrix::new()
    }
}

impl RunMatrix {
    /// An empty matrix.
    pub fn new() -> Self {
        RunMatrix {
            id: NEXT_MATRIX_ID.fetch_add(1, Ordering::Relaxed),
            plans: Vec::new(),
            keys: Vec::new(),
            key_ids: Vec::new(),
        }
    }

    /// Plans a standalone-workload run on the paper's CMP
    /// ([`CmpConfig::micro13`]) with the given prefetcher.
    pub fn standalone(
        &mut self,
        workload: &WorkloadSpec,
        prefetcher: PrefetcherConfig,
        cores: u16,
        scale: Scale,
        seed: u64,
    ) -> RunHandle {
        self.standalone_with(
            CmpConfig::micro13(cores, prefetcher),
            workload,
            SimOptions::new(scale, seed),
        )
    }

    /// Plans a standalone-workload run with an explicit CMP configuration and
    /// options (core-kind overrides, prediction-only mode, …).
    pub fn standalone_with(
        &mut self,
        config: CmpConfig,
        workload: &WorkloadSpec,
        options: SimOptions,
    ) -> RunHandle {
        self.plan(Simulation::standalone(config, workload.clone(), options))
    }

    /// Plans a consolidated run of several workloads sharing the CMP.
    ///
    /// # Panics
    ///
    /// Panics if the consolidation spec's core count differs from the CMP's.
    pub fn consolidated(
        &mut self,
        config: CmpConfig,
        consolidation: &ConsolidationSpec,
        options: SimOptions,
    ) -> RunHandle {
        self.plan(Simulation::consolidated(
            config,
            consolidation.clone(),
            options,
        ))
    }

    /// Plans an arbitrary pre-built simulation.
    ///
    /// Deduplication is a linear scan over the planned keys: matrices hold at
    /// most a few hundred runs, and each key comparison is far cheaper than
    /// the seconds-to-minutes simulation it saves.
    pub fn plan(&mut self, sim: Simulation) -> RunHandle {
        let key = RunKey::of(&sim);
        if let Some(existing) = self.keys.iter().position(|k| *k == key) {
            return RunHandle {
                matrix: self.id,
                slot: existing,
            };
        }
        let slot = self.plans.len();
        self.key_ids.push(key.id());
        self.plans.push(sim);
        self.keys.push(key);
        RunHandle {
            matrix: self.id,
            slot,
        }
    }

    /// The deduplicated keys of every planned run, in plan order. Use
    /// [`RunMatrix::canonical_order`] when enumeration order must be stable
    /// across planning-order changes.
    pub fn keys(&self) -> &[RunKey] {
        &self.keys
    }

    /// The content-addressed id of every planned run, in plan order
    /// (parallel to [`RunMatrix::keys`]).
    pub fn key_ids(&self) -> &[RunKeyId] {
        &self.key_ids
    }

    /// Plan-order slot indices in *canonical order*: sorted by the key's
    /// canonical JSON. This is the enumeration order every cross-process
    /// consumer uses — shard slices, outcome stores, manifests — so slices
    /// stay stable no matter which figure planned a shared run first.
    pub fn canonical_order(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.keys.len()).collect();
        order.sort_by_cached_key(|&slot| self.keys[slot].canonical_json());
        order
    }

    /// The fingerprint identifying this *plan* (not this process): a hash
    /// over the sorted key ids. Matrices planned independently from the same
    /// settings agree on it; any difference in run set changes it.
    pub fn fingerprint(&self) -> MatrixFingerprint {
        let mut sorted = self.key_ids.clone();
        sorted.sort_unstable();
        let mut text = String::with_capacity(17 * sorted.len());
        for id in &sorted {
            text.push_str(&id.to_string());
            text.push('\n');
        }
        MatrixFingerprint(fnv1a(text.as_bytes()))
    }

    /// The process-local matrix id handles are branded with.
    pub(crate) fn local_id(&self) -> u64 {
        self.id
    }

    /// The planned simulation in `slot` (plan order).
    pub(crate) fn simulation(&self, slot: usize) -> &Simulation {
        &self.plans[slot]
    }

    /// Number of distinct runs planned (after deduplication).
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// `true` if no runs are planned.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }

    /// Executes every planned run across the default worker-thread count:
    /// the `SHIFT_THREADS` environment variable if set, otherwise one thread
    /// per available hardware core. Shorthand for
    /// [`Execution::new(&matrix).run()`](crate::execution::Execution); use
    /// the builder directly for explicit thread counts, durable modes, or
    /// scheduling policies.
    pub fn execute(&self) -> RunOutcomes {
        self.run_all(default_threads())
    }

    /// The in-memory executor behind [`RunMatrix::execute`] and the
    /// [`Execution`](crate::execution::Execution) builder.
    ///
    /// Results are keyed by plan position, so the outcome is independent of
    /// which worker runs which simulation: for the same matrix, any thread
    /// count yields bit-identical [`RunOutcomes`].
    pub(crate) fn run_all(&self, threads: usize) -> RunOutcomes {
        RunOutcomes::from_results(
            self.id,
            parallel_map_with_threads(&self.plans, threads, Simulation::run),
        )
    }

    /// [`RunMatrix::run_all`] with an explicit claim order: workers pick up
    /// slots in `order` (e.g. biggest-first for better tail packing), but
    /// results still land in plan order, so the outcomes are bit-identical
    /// for every ordering.
    pub(crate) fn run_all_ordered(&self, threads: usize, order: &[usize]) -> RunOutcomes {
        debug_assert_eq!(order.len(), self.plans.len());
        let ordered: Vec<RunResult> =
            parallel_map_with_threads(order, threads, |&slot| self.plans[slot].run());
        let mut results: Vec<Option<RunResult>> = (0..self.plans.len()).map(|_| None).collect();
        for (&slot, result) in order.iter().zip(ordered) {
            results[slot] = Some(result);
        }
        RunOutcomes::from_results(
            self.id,
            results
                .into_iter()
                .map(|r| r.expect("order covers every plan slot"))
                .collect(),
        )
    }
}

/// Default worker-thread count: `SHIFT_THREADS` if set to a positive integer,
/// otherwise the number of available hardware threads.
pub fn default_threads() -> usize {
    if let Ok(value) = std::env::var("SHIFT_THREADS") {
        if let Ok(n) = value.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
        eprintln!("ignoring invalid SHIFT_THREADS `{value}`");
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Applies `f` to every item on the default worker-thread pool, returning the
/// outputs in item order.
///
/// This is the same executor [`RunMatrix`] uses, exposed for sweeps that are
/// not plain `Simulation::run` calls (the commonality opportunity study, the
/// storage-table arithmetic, shard execution with its per-run persistence).
pub fn parallel_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    parallel_map_with_threads(items, default_threads(), f)
}

pub(crate) fn parallel_map_with_threads<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let n = items.len();
    let workers = threads.clamp(1, n.max(1));
    if workers == 1 {
        return items.iter().map(f).collect();
    }

    // Work-stealing by atomic counter: each worker claims the next unclaimed
    // item and writes its result into that item's dedicated slot, so the
    // output order (and therefore determinism) never depends on scheduling.
    let slots: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let output = f(&items[i]);
                *slots[i].lock().expect("result slot poisoned") = Some(output);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker completed every claimed item")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use shift_trace::presets;

    #[test]
    fn identical_plans_deduplicate_to_one_run() {
        let mut matrix = RunMatrix::new();
        let w = presets::tiny();
        let a = matrix.standalone(&w, PrefetcherConfig::None, 4, Scale::Test, 7);
        let b = matrix.standalone(&w, PrefetcherConfig::None, 4, Scale::Test, 7);
        assert_eq!(a, b);
        assert_eq!(matrix.len(), 1);

        // Any differing component of the key is a distinct run.
        let c = matrix.standalone(&w, PrefetcherConfig::None, 4, Scale::Test, 8);
        let d = matrix.standalone(&w, PrefetcherConfig::next_line(), 4, Scale::Test, 7);
        let e = matrix.standalone(&w, PrefetcherConfig::None, 8, Scale::Test, 7);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert_ne!(a, e);
        assert_eq!(matrix.len(), 4);
    }

    #[test]
    fn options_and_workload_identity_are_part_of_the_key() {
        let mut matrix = RunMatrix::new();
        let w = presets::tiny();
        let config = CmpConfig::micro13(4, PrefetcherConfig::pif_32k());
        let plain = matrix.standalone_with(config, &w, SimOptions::new(Scale::Test, 3));
        let predict = matrix.standalone_with(
            config,
            &w,
            SimOptions::new(Scale::Test, 3).prediction_only(),
        );
        let scaled = matrix.standalone_with(
            config,
            &w.clone().scaled_footprint(0.5),
            SimOptions::new(Scale::Test, 3),
        );
        assert_ne!(plain, predict);
        assert_ne!(plain, scaled);
        assert_eq!(matrix.len(), 3);
    }

    #[test]
    fn key_ids_are_content_addressed() {
        let w = presets::tiny();
        let mut a = RunMatrix::new();
        let mut b = RunMatrix::new();
        // Plan the same two runs in opposite orders from separate matrices.
        a.standalone(&w, PrefetcherConfig::None, 4, Scale::Test, 7);
        a.standalone(&w, PrefetcherConfig::next_line(), 4, Scale::Test, 7);
        b.standalone(&w, PrefetcherConfig::next_line(), 4, Scale::Test, 7);
        b.standalone(&w, PrefetcherConfig::None, 4, Scale::Test, 7);

        // Content-addressing: ids match per key even across processes (here,
        // matrices), and the fingerprint is plan-order independent.
        assert_eq!(a.key_ids()[0], b.key_ids()[1]);
        assert_eq!(a.key_ids()[1], b.key_ids()[0]);
        assert_ne!(a.key_ids()[0], a.key_ids()[1]);
        assert_eq!(a.fingerprint(), b.fingerprint());

        // Different sweeps get different fingerprints.
        let mut c = RunMatrix::new();
        c.standalone(&w, PrefetcherConfig::None, 4, Scale::Test, 7);
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn canonical_order_is_planning_order_independent() {
        let w = presets::tiny();
        let mut a = RunMatrix::new();
        let mut b = RunMatrix::new();
        let prefetchers = [
            PrefetcherConfig::None,
            PrefetcherConfig::next_line(),
            PrefetcherConfig::pif_2k(),
        ];
        for p in prefetchers {
            a.standalone(&w, p, 4, Scale::Test, 7);
        }
        for p in prefetchers.iter().rev() {
            b.standalone(&w, *p, 4, Scale::Test, 7);
        }
        let canonical_a: Vec<RunKeyId> = a
            .canonical_order()
            .into_iter()
            .map(|slot| a.key_ids()[slot])
            .collect();
        let canonical_b: Vec<RunKeyId> = b
            .canonical_order()
            .into_iter()
            .map(|slot| b.key_ids()[slot])
            .collect();
        assert_eq!(canonical_a, canonical_b);
    }

    #[test]
    fn hex_ids_round_trip_through_strings_and_serde() {
        let w = presets::tiny();
        let mut matrix = RunMatrix::new();
        matrix.standalone(&w, PrefetcherConfig::None, 2, Scale::Test, 1);
        let id = matrix.key_ids()[0];
        assert_eq!(id.to_string().len(), 16);
        assert_eq!(id.to_string().parse::<RunKeyId>(), Ok(id));
        assert_eq!(RunKeyId::from_value(&id.to_value()), Ok(id));
        assert!("xyz".parse::<RunKeyId>().is_err());
        assert!("0123".parse::<RunKeyId>().is_err());

        let fp = matrix.fingerprint();
        assert_eq!(fp.to_string().parse::<MatrixFingerprint>(), Ok(fp));
    }

    #[test]
    fn keys_serialize_for_the_reproduce_manifest() {
        let w = presets::tiny();
        let mut matrix = RunMatrix::new();
        let _ = matrix.standalone(&w, PrefetcherConfig::shift_virtualized(), 2, Scale::Test, 5);
        assert_eq!(matrix.keys().len(), 1);
        let json = serde::json::to_string(&matrix.keys()[0]);
        assert!(json.contains("\"config\""), "got {json}");
        assert!(json.contains("\"Shift\""), "got {json}");
    }

    #[test]
    fn keys_round_trip_through_json() {
        let w = presets::tiny();
        let mut matrix = RunMatrix::new();
        let _ = matrix.standalone(&w, PrefetcherConfig::shift_virtualized(), 2, Scale::Test, 5);
        let key = &matrix.keys()[0];
        let back: RunKey = json::from_str(&key.canonical_json()).expect("round trip");
        assert_eq!(&back, key);
        assert_eq!(back.id(), key.id());
    }

    #[test]
    fn empty_matrix_executes_to_empty_outcomes() {
        let matrix = RunMatrix::new();
        assert!(matrix.is_empty());
        let outcomes = matrix.execute();
        assert!(outcomes.is_empty());
        assert_eq!(outcomes.len(), 0);
    }

    #[test]
    fn parallel_map_preserves_item_order() {
        let items: Vec<u64> = (0..103).collect();
        let doubled = parallel_map(&items, |&x| x * 2);
        assert_eq!(doubled, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
        let singleton = parallel_map(&[42u64], |&x| x + 1);
        assert_eq!(singleton, vec![43]);
        let empty: Vec<u64> = parallel_map(&[] as &[u64], |&x| x);
        assert!(empty.is_empty());
    }
}
