//! Cost-model-driven run scheduling: rank planned runs by estimated work so
//! queue workers can claim **biggest-first**, weighted by their own measured
//! throughput.
//!
//! The elastic work queue ([`crate::shard`]) historically handed out runs in
//! canonical key order — an order chosen for *stability*, not for packing.
//! With heterogeneous fleets that is a real makespan problem: a slow worker
//! that claims a paper-scale many-core run last forces every fast worker to
//! idle while it finishes. The classic fix (LPT — longest processing time
//! first) needs a per-run cost estimate, which this module provides:
//!
//! * [`RunCost`] — the scalar estimate, in *weighted fetch units*: the run's
//!   total simulated fetches (warmup + measured, times cores) multiplied by a
//!   prefetcher-class weight. Costs are totally ordered and deterministic
//!   functions of the [`RunKey`], so every worker computes the same ranking
//!   without coordination.
//! * [`CostModel`] — the calibration table behind the estimate. Defaults come
//!   from the committed `docs/bench/BENCH_PR6.json` microbenchmarks (425.9
//!   ns/fetch baseline; SHIFT runs ~1.43× slower per fetch); pass a newer
//!   `BENCH_*.json` to [`CostModel::from_bench_json`] to recalibrate.
//! * [`SchedulePolicy`] — the knob the [`Execution`](crate::Execution)
//!   builder and `SHIFT_SCHED_POLICY` expose: keep the stable canonical order
//!   or claim cost-ranked biggest-first.
//! * [`rank_by_cost`] — the ranking itself: slots sorted by cost descending,
//!   ties broken by [`RunKeyId`](crate::RunKeyId) ascending so the order is
//!   a total order and identical on every worker.
//!
//! Ordering **never** affects results: outcomes are keyed by run identity and
//! every simulation is deterministic in its key, so a cost-ordered drain
//! merges byte-identically to a serial one (locked by the `schedule`
//! integration tests).

use std::fmt;
use std::io;
use std::path::Path;
use std::str::FromStr;
use std::time::Duration;

use serde::{json, Deserialize, Serialize, Value};

use crate::config::PrefetcherConfig;
use crate::matrix::{RunKey, RunMatrix};

/// Estimated work of one planned run, in weighted fetch units.
///
/// The unit is "baseline-equivalent simulated fetches": total fetches the run
/// will simulate, scaled by how much slower its prefetcher class is per fetch
/// than the no-prefetch baseline. Costs compare across runs of any scale,
/// core count, and prefetcher, and a worker's throughput in these same units
/// (see the `rate` field of lock records) turns a cost into an estimated
/// duration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RunCost(u64);

impl RunCost {
    /// A cost of exactly `units` weighted fetch units.
    pub fn from_units(units: u64) -> Self {
        RunCost(units)
    }

    /// The cost in weighted fetch units.
    pub fn units(self) -> u64 {
        self.0
    }

    /// Estimated wall-clock duration on a worker draining `rate` weighted
    /// fetch units per second. `None` if the rate is zero (unknown).
    pub fn duration_at(self, rate: u64) -> Option<Duration> {
        if rate == 0 {
            return None;
        }
        Some(Duration::from_secs_f64(self.0 as f64 / rate as f64))
    }
}

impl fmt::Display for RunCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}wfu", self.0)
    }
}

/// Calibration table mapping a [`RunKey`] to a [`RunCost`].
///
/// The model is deliberately simple — `fetches × cores × class_weight` — so
/// it is a pure function of the key and identical on every worker. The
/// per-class weights capture the measured per-fetch slowdown of each
/// prefetcher class relative to the baseline engine.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Measured baseline simulation speed, in nanoseconds per fetch (the
    /// `engine/step_Baseline` microbenchmark).
    pub base_ns_per_fetch: f64,
    /// Per-fetch weight of next-line prefetching (near-free lookups).
    pub next_line_weight: f64,
    /// Per-fetch weight of PIF (per-core history lookups on every miss).
    pub pif_weight: f64,
    /// Per-fetch weight of virtualized SHIFT (the `engine/step_SHIFT` /
    /// `engine/step_Baseline` throughput ratio).
    pub shift_weight: f64,
    /// Per-fetch weight of idealized zero-latency SHIFT (no LLC traffic).
    pub shift_zero_latency_weight: f64,
    /// Per-fetch weight of dedicated-storage SHIFT.
    pub shift_dedicated_weight: f64,
}

impl Default for CostModel {
    /// Calibration committed from `docs/bench/BENCH_PR6.json`:
    /// `engine/step_Baseline` at 2,347,833 fetches/s (425.9 ns/fetch),
    /// `engine/step_SHIFT` at 1,638,388 fetches/s (weight 1.433), and PIF
    /// interpolated from the `lookup/pif_on_access_miss` /
    /// `lookup/shift_on_access_miss` latency ratio.
    fn default() -> Self {
        CostModel {
            base_ns_per_fetch: 425.9,
            next_line_weight: 1.05,
            pif_weight: 1.25,
            shift_weight: 1.433,
            shift_zero_latency_weight: 1.35,
            shift_dedicated_weight: 1.40,
        }
    }
}

impl CostModel {
    /// Recalibrates the model from a committed `BENCH_*.json` benchmark
    /// artifact (the format `shift-bench bench --json` writes: a
    /// `data.components[]` table of `{group, name, ns_per_op, per_sec}`
    /// rows).
    ///
    /// Uses `engine/step_Baseline` for the base ns/fetch, the
    /// `engine/step_SHIFT` throughput ratio for the SHIFT weight, and the
    /// miss-path lookup latency ratio for the PIF weight. Components that are
    /// missing keep their [`CostModel::default`] values, so a partial table
    /// still calibrates what it can.
    ///
    /// # Errors
    ///
    /// Returns an error if the file cannot be read or is not valid JSON.
    pub fn from_bench_json(path: &Path) -> io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        let doc = json::parse(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{path:?}: {e}")))?;
        let mut model = CostModel::default();
        let components = doc
            .get("data")
            .and_then(|d| d.get("components"))
            .and_then(|c| match c {
                Value::Seq(items) => Some(items.as_slice()),
                _ => None,
            })
            .unwrap_or(&[]);
        let field = |group: &str, name: &str, key: &str| -> Option<f64> {
            components.iter().find_map(|c| {
                let g = c.get("group")?.as_str()?;
                let n = c.get("name")?.as_str()?;
                if g == group && n == name {
                    c.get(key)?.as_f64()
                } else {
                    None
                }
            })
        };
        let base_per_sec = field("engine", "step_Baseline", "per_sec");
        if let Some(per_sec) = base_per_sec.filter(|&v| v > 0.0) {
            model.base_ns_per_fetch = 1e9 / per_sec;
        }
        if let (Some(base), Some(shift)) = (
            base_per_sec.filter(|&v| v > 0.0),
            field("engine", "step_SHIFT", "per_sec").filter(|&v| v > 0.0),
        ) {
            model.shift_weight = (base / shift).max(1.0);
            // Idealized/dedicated SHIFT scale with the virtualized weight:
            // same history engine, less (zero-latency) or equal LLC pressure.
            model.shift_zero_latency_weight = 1.0 + (model.shift_weight - 1.0) * 0.8;
            model.shift_dedicated_weight = 1.0 + (model.shift_weight - 1.0) * 0.93;
        }
        if let (Some(pif_ns), Some(shift_ns)) = (
            field("lookup", "pif_on_access_miss", "ns_per_op").filter(|&v| v > 0.0),
            field("lookup", "shift_on_access_miss", "ns_per_op").filter(|&v| v > 0.0),
        ) {
            // PIF's per-fetch overhead is the same miss path with a cheaper
            // lookup: scale the SHIFT overhead by the lookup latency ratio.
            model.pif_weight = 1.0 + (model.shift_weight - 1.0) * (pif_ns / shift_ns);
        }
        Ok(model)
    }

    /// Total simulated fetches of the run: (warmup + measured) × cores. This
    /// is the scale-and-width part of the cost, before class weighting.
    pub fn estimated_fetches(&self, key: &RunKey) -> u64 {
        let scale = key.options().scale;
        let per_core = scale.fetches_per_core() + scale.warmup_fetches_per_core();
        per_core as u64 * u64::from(key.config().cores)
    }

    /// The per-fetch weight of the run's prefetcher class relative to the
    /// no-prefetch baseline.
    pub fn class_weight(&self, prefetcher: &PrefetcherConfig) -> f64 {
        match prefetcher {
            PrefetcherConfig::None => 1.0,
            PrefetcherConfig::NextLine { .. } => self.next_line_weight,
            PrefetcherConfig::Pif(_) | PrefetcherConfig::GatedPif { .. } => self.pif_weight,
            PrefetcherConfig::Shift { mode, .. }
            | PrefetcherConfig::ThrottledShift { mode, .. } => self.shift_mode_weight(*mode),
            // Fallback/adaptive hybrids run both component hooks per fetch:
            // the SHIFT cost plus the (small) next-line overhead.
            PrefetcherConfig::ShiftNextLine { mode, .. }
            | PrefetcherConfig::AdaptiveNlShift { mode, .. } => {
                self.shift_mode_weight(*mode) + (self.next_line_weight - 1.0).max(0.0)
            }
        }
    }

    fn shift_mode_weight(&self, mode: shift_core::ShiftMode) -> f64 {
        use shift_core::ShiftMode;
        match mode {
            ShiftMode::Virtualized => self.shift_weight,
            ShiftMode::Dedicated { zero_latency: true } => self.shift_zero_latency_weight,
            ShiftMode::Dedicated {
                zero_latency: false,
            } => self.shift_dedicated_weight,
        }
    }

    /// The estimated cost of one planned run, in weighted fetch units.
    pub fn cost(&self, key: &RunKey) -> RunCost {
        let weighted =
            self.estimated_fetches(key) as f64 * self.class_weight(&key.config().prefetcher);
        RunCost(weighted.round() as u64)
    }

    /// Estimated single-thread wall-clock duration of the run at the
    /// calibrated base speed (used when a worker has no measured rate yet).
    pub fn estimated_duration(&self, key: &RunKey) -> Duration {
        let nanos = self.cost(key).units() as f64 * self.base_ns_per_fetch;
        Duration::from_nanos(nanos.round() as u64)
    }

    /// The calibrated reference throughput, in weighted fetch units per
    /// second: what a single un-throttled worker thread is expected to drain.
    pub fn reference_rate(&self) -> u64 {
        if self.base_ns_per_fetch <= 0.0 {
            return 0;
        }
        (1e9 / self.base_ns_per_fetch).round() as u64
    }
}

/// In what order queue workers claim runs (and in-memory executors pack
/// them).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchedulePolicy {
    /// Stable canonical key order — the pre-cost-model behavior, and the
    /// order every cross-process enumeration (shards, manifests) uses.
    #[default]
    Canonical,
    /// Biggest-first by [`RunCost`] (LPT packing), with slow workers
    /// deferring runs whose estimated duration exceeds the configured
    /// slowness cutoff. Merged results are byte-identical to canonical
    /// order; only the claim order and makespan change.
    CostOrdered,
}

impl SchedulePolicy {
    /// The lowercase token used by `SHIFT_SCHED_POLICY` and the decision log.
    pub fn as_str(self) -> &'static str {
        match self {
            SchedulePolicy::Canonical => "canonical",
            SchedulePolicy::CostOrdered => "cost-ordered",
        }
    }
}

impl fmt::Display for SchedulePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for SchedulePolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "canonical" => Ok(SchedulePolicy::Canonical),
            "cost" | "cost-ordered" | "cost_ordered" => Ok(SchedulePolicy::CostOrdered),
            other => Err(format!(
                "unknown schedule policy `{other}` (expected `canonical` or `cost`)"
            )),
        }
    }
}

/// Plan-order slot indices ranked for claiming: cost **descending**, ties
/// broken by [`RunKeyId`](crate::RunKeyId) **ascending**.
///
/// The tie-break makes the ranking a total order over distinct runs (key ids
/// are unique within a matrix), so every worker — with no coordination —
/// computes the identical claim order from the same plan.
pub fn rank_by_cost(model: &CostModel, matrix: &RunMatrix) -> Vec<usize> {
    let keys = matrix.keys();
    let ids = matrix.key_ids();
    let mut order: Vec<usize> = (0..keys.len()).collect();
    order.sort_by_key(|&slot| (std::cmp::Reverse(model.cost(&keys[slot])), ids[slot]));
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RunMatrix;
    use shift_trace::{presets, Scale};

    #[test]
    fn cost_scales_with_cores_scale_and_class() {
        let model = CostModel::default();
        let w = presets::tiny();
        let mut matrix = RunMatrix::new();
        let _ = matrix.standalone(&w, PrefetcherConfig::None, 2, Scale::Test, 1);
        let _ = matrix.standalone(&w, PrefetcherConfig::None, 8, Scale::Test, 1);
        let _ = matrix.standalone(&w, PrefetcherConfig::shift_virtualized(), 2, Scale::Test, 1);
        let keys = matrix.keys(); // slot order == plan order
        assert!(
            model.cost(&keys[1]) > model.cost(&keys[0]),
            "more cores cost more"
        );
        assert!(
            model.cost(&keys[2]) > model.cost(&keys[0]),
            "SHIFT costs more than baseline"
        );
        // 4× the cores is exactly 4× the cost within a class.
        assert_eq!(
            model.cost(&keys[1]).units(),
            model.cost(&keys[0]).units() * 4
        );
    }

    #[test]
    fn default_model_matches_committed_bench_numbers() {
        let model = CostModel::default();
        assert!((model.base_ns_per_fetch - 425.9).abs() < 0.1);
        assert!((model.shift_weight - 1.433).abs() < 0.01);
        assert!(model.reference_rate() > 2_000_000);
    }

    #[test]
    fn from_bench_json_recalibrates_from_committed_table() {
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../docs/bench/BENCH_PR6.json");
        let model = CostModel::from_bench_json(&path).expect("committed bench table parses");
        // engine/step_Baseline: 2,347,832.7 fetches/s → ~425.9 ns/fetch.
        assert!((model.base_ns_per_fetch - 425.9).abs() < 0.5, "{model:?}");
        // step_Baseline / step_SHIFT throughput ratio → ~1.433.
        assert!((model.shift_weight - 1.433).abs() < 0.01, "{model:?}");
        // PIF interpolates below SHIFT via the lookup latency ratio.
        assert!(model.pif_weight > 1.0 && model.pif_weight < model.shift_weight);
    }

    #[test]
    fn missing_bench_file_errors_and_garbage_is_invalid_data() {
        assert!(CostModel::from_bench_json(Path::new("/nonexistent/bench.json")).is_err());
        let dir = std::env::temp_dir().join("shift-schedule-badjson");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.json");
        std::fs::write(&path, "not json").unwrap();
        let err = CostModel::from_bench_json(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn policy_parses_and_displays() {
        assert_eq!(
            "canonical".parse::<SchedulePolicy>(),
            Ok(SchedulePolicy::Canonical)
        );
        assert_eq!(
            "cost".parse::<SchedulePolicy>(),
            Ok(SchedulePolicy::CostOrdered)
        );
        assert_eq!(
            "Cost-Ordered".parse::<SchedulePolicy>(),
            Ok(SchedulePolicy::CostOrdered)
        );
        assert!("fastest".parse::<SchedulePolicy>().is_err());
        assert_eq!(SchedulePolicy::CostOrdered.to_string(), "cost-ordered");
        assert_eq!(SchedulePolicy::default(), SchedulePolicy::Canonical);
    }

    #[test]
    fn duration_estimates_follow_rate() {
        let cost = RunCost::from_units(1_000_000);
        assert_eq!(cost.duration_at(0), None);
        let d = cost.duration_at(500_000).unwrap();
        assert_eq!(d, Duration::from_secs(2));
        assert_eq!(cost.to_string(), "1000000wfu");
    }
}
