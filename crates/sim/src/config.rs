//! System configuration (Table I) and simulation options.

use serde::{Deserialize, Serialize};
use shift_cache::{CacheConfig, LlcConfig};
use shift_core::{AdaptConfig, GateConfig, HistoryPortConfig, PifConfig, ShiftMode};
use shift_cpu::CoreKind;
use shift_noc::MeshConfig;
use shift_trace::Scale;

/// Which instruction prefetcher the simulated CMP uses.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum PrefetcherConfig {
    /// No instruction prefetching (the baseline all speedups are relative to).
    None,
    /// Next-line prefetcher of the given degree.
    NextLine {
        /// Number of sequential blocks prefetched per access.
        degree: u64,
    },
    /// Proactive Instruction Fetch with per-core history.
    Pif(PifConfig),
    /// Shared History Instruction Fetch.
    Shift {
        /// Shared history capacity in spatial region records.
        history_records: usize,
        /// Storage mode (dedicated, zero-latency, or LLC-virtualized).
        mode: ShiftMode,
    },
    /// Hybrid: SHIFT primary with a next-line fallback (the fallback fires
    /// only on fetches where SHIFT produced no candidates).
    ShiftNextLine {
        /// Shared history capacity in spatial region records.
        history_records: usize,
        /// Storage mode of the SHIFT primary.
        mode: ShiftMode,
        /// Next-line degree of the fallback.
        degree: u64,
    },
    /// Hybrid: PIF behind a per-core stream-confidence gate.
    GatedPif {
        /// The wrapped PIF configuration.
        config: PifConfig,
        /// The confidence-gate parameters.
        gate: GateConfig,
    },
    /// Hybrid: per-core adaptive selection between next-line (conservative)
    /// and SHIFT (aggressive) on observed warm-up miss rate.
    AdaptiveNlShift {
        /// Shared history capacity of the SHIFT side.
        history_records: usize,
        /// Storage mode of the SHIFT side.
        mode: ShiftMode,
        /// The adaptation-window parameters.
        adapt: AdaptConfig,
    },
    /// SHIFT behind a bandwidth-throttled shared history port (the
    /// degradation-under-contention scenario).
    ThrottledShift {
        /// Shared history capacity in spatial region records.
        history_records: usize,
        /// Storage mode of the throttled SHIFT.
        mode: ShiftMode,
        /// The history-port bandwidth model.
        port: HistoryPortConfig,
    },
}

impl PrefetcherConfig {
    /// The paper's PIF_32K configuration.
    pub fn pif_32k() -> Self {
        PrefetcherConfig::Pif(PifConfig::pif_32k())
    }

    /// The equal-storage PIF_2K configuration.
    pub fn pif_2k() -> Self {
        PrefetcherConfig::Pif(PifConfig::pif_2k())
    }

    /// The paper's virtualized SHIFT configuration (32 K shared records in
    /// the LLC).
    pub fn shift_virtualized() -> Self {
        PrefetcherConfig::Shift {
            history_records: 32 * 1024,
            mode: ShiftMode::Virtualized,
        }
    }

    /// The idealized zero-latency SHIFT configuration.
    pub fn shift_zero_latency() -> Self {
        PrefetcherConfig::Shift {
            history_records: 32 * 1024,
            mode: ShiftMode::Dedicated { zero_latency: true },
        }
    }

    /// The dedicated-storage SHIFT baseline of §4.1.
    pub fn shift_dedicated() -> Self {
        PrefetcherConfig::Shift {
            history_records: 32 * 1024,
            mode: ShiftMode::Dedicated {
                zero_latency: false,
            },
        }
    }

    /// A next-line prefetcher of degree 1.
    pub fn next_line() -> Self {
        PrefetcherConfig::NextLine { degree: 1 }
    }

    /// Hybrid: virtualized SHIFT with a degree-1 next-line fallback.
    pub fn shift_next_line() -> Self {
        PrefetcherConfig::ShiftNextLine {
            history_records: 32 * 1024,
            mode: ShiftMode::Virtualized,
            degree: 1,
        }
    }

    /// Hybrid: PIF_32K behind the default confidence gate.
    pub fn gated_pif_32k() -> Self {
        PrefetcherConfig::GatedPif {
            config: PifConfig::pif_32k(),
            gate: GateConfig::default_gate(),
        }
    }

    /// Hybrid: per-core adaptive next-line/SHIFT selection with the default
    /// adaptation window.
    pub fn adaptive_nl_shift() -> Self {
        PrefetcherConfig::AdaptiveNlShift {
            history_records: 32 * 1024,
            mode: ShiftMode::Virtualized,
            adapt: AdaptConfig::default_adapt(),
        }
    }

    /// Virtualized SHIFT behind a history port limited to
    /// `candidates_per_window` prefetch candidates per 64-access window.
    pub fn shift_throttled(candidates_per_window: u32) -> Self {
        PrefetcherConfig::ThrottledShift {
            history_records: 32 * 1024,
            mode: ShiftMode::Virtualized,
            port: HistoryPortConfig::per_64_accesses(candidates_per_window),
        }
    }

    /// The composed designs the hybrid-shootout experiment compares against
    /// the paper's standalone suite (throttled SHIFT is swept separately).
    pub fn hybrid_suite() -> Vec<PrefetcherConfig> {
        vec![
            PrefetcherConfig::shift_next_line(),
            PrefetcherConfig::gated_pif_32k(),
            PrefetcherConfig::adaptive_nl_shift(),
        ]
    }

    /// Human-readable label used in reports and figures.
    pub fn label(&self) -> String {
        match self {
            PrefetcherConfig::None => "Baseline".to_owned(),
            PrefetcherConfig::NextLine { .. } => "NextLine".to_owned(),
            PrefetcherConfig::Pif(cfg) => cfg.design_name(),
            PrefetcherConfig::Shift { mode, .. } => match mode {
                ShiftMode::Virtualized => "SHIFT".to_owned(),
                ShiftMode::Dedicated { zero_latency: true } => "ZeroLat-SHIFT".to_owned(),
                ShiftMode::Dedicated {
                    zero_latency: false,
                } => "SHIFT-dedicated".to_owned(),
            },
            PrefetcherConfig::ShiftNextLine { .. } => "SHIFT+NL".to_owned(),
            PrefetcherConfig::GatedPif { config, .. } => {
                format!("Gated-{}", config.design_name())
            }
            PrefetcherConfig::AdaptiveNlShift { .. } => "Adaptive-NL/SHIFT".to_owned(),
            PrefetcherConfig::ThrottledShift { port, .. } => {
                format!("SHIFT@bw{}", port.candidates_per_window)
            }
        }
    }

    /// The five configurations Figure 8 compares, in the paper's order.
    pub fn figure8_suite() -> Vec<PrefetcherConfig> {
        vec![
            PrefetcherConfig::next_line(),
            PrefetcherConfig::pif_2k(),
            PrefetcherConfig::pif_32k(),
            PrefetcherConfig::shift_zero_latency(),
            PrefetcherConfig::shift_virtualized(),
        ]
    }
}

/// The full CMP configuration (Table I).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CmpConfig {
    /// Number of cores (16 in the paper).
    pub cores: u16,
    /// Core microarchitecture.
    pub core_kind: CoreKind,
    /// L1 instruction cache geometry.
    pub l1i: CacheConfig,
    /// L1 data cache geometry.
    pub l1d: CacheConfig,
    /// Shared LLC geometry.
    pub llc: LlcConfig,
    /// Mesh interconnect geometry.
    pub mesh: MeshConfig,
    /// Instruction prefetcher.
    pub prefetcher: PrefetcherConfig,
}

impl CmpConfig {
    /// The paper's 16-core configuration with the given prefetcher, scaled to
    /// `cores` cores (LLC capacity and mesh size scale with the core count).
    pub fn micro13(cores: u16, prefetcher: PrefetcherConfig) -> Self {
        assert!(cores > 0, "CMP needs at least one core");
        CmpConfig {
            cores,
            core_kind: CoreKind::LeanOoO,
            l1i: CacheConfig::l1i_micro13(),
            l1d: CacheConfig::l1d_micro13(),
            llc: LlcConfig::micro13(cores as usize),
            mesh: if cores == 16 {
                MeshConfig::micro13()
            } else {
                MeshConfig::for_tiles(cores as usize)
            },
            prefetcher,
        }
    }

    /// Changes the core kind (used by the performance-density study).
    #[must_use]
    pub fn with_core_kind(mut self, kind: CoreKind) -> Self {
        self.core_kind = kind;
        self
    }

    /// Changes the prefetcher.
    #[must_use]
    pub fn with_prefetcher(mut self, prefetcher: PrefetcherConfig) -> Self {
        self.prefetcher = prefetcher;
        self
    }
}

/// Options controlling one simulation run.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SimOptions {
    /// Trace length per core.
    pub scale: Scale,
    /// Seed for workload interleaving and the miss-elimination lottery.
    pub seed: u64,
    /// If `true`, prefetches are predicted but never installed in the cache
    /// (the Figure 6 methodology).
    pub prediction_only: bool,
    /// If set, each instruction-cache miss is converted into a hit with this
    /// probability (the Figure 1 methodology).
    pub miss_elimination_probability: Option<f64>,
}

impl SimOptions {
    /// Creates default options for a given scale and seed.
    pub fn new(scale: Scale, seed: u64) -> Self {
        SimOptions {
            scale,
            seed,
            prediction_only: false,
            miss_elimination_probability: None,
        }
    }

    /// Enables prediction-only mode.
    #[must_use]
    pub fn prediction_only(mut self) -> Self {
        self.prediction_only = true;
        self
    }

    /// Enables probabilistic miss elimination with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[must_use]
    pub fn with_miss_elimination(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.miss_elimination_probability = Some(p);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micro13_matches_table1() {
        let cfg = CmpConfig::micro13(16, PrefetcherConfig::None);
        assert_eq!(cfg.cores, 16);
        assert_eq!(cfg.core_kind, CoreKind::LeanOoO);
        assert_eq!(cfg.l1i.capacity_bytes, 32 * 1024);
        assert_eq!(cfg.llc.total_bytes, 8 * 1024 * 1024);
        assert_eq!(cfg.mesh.tiles(), 16);
    }

    #[test]
    fn figure8_suite_has_five_configs_in_order() {
        let suite = PrefetcherConfig::figure8_suite();
        let labels: Vec<_> = suite.iter().map(|c| c.label()).collect();
        assert_eq!(
            labels,
            vec!["NextLine", "PIF_2K", "PIF_32K", "ZeroLat-SHIFT", "SHIFT"]
        );
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(PrefetcherConfig::None.label(), "Baseline");
        assert_eq!(
            PrefetcherConfig::shift_dedicated().label(),
            "SHIFT-dedicated"
        );
    }

    #[test]
    fn hybrid_suite_labels_are_stable() {
        let labels: Vec<_> = PrefetcherConfig::hybrid_suite()
            .iter()
            .map(|c| c.label())
            .collect();
        assert_eq!(
            labels,
            vec!["SHIFT+NL", "Gated-PIF_32K", "Adaptive-NL/SHIFT"]
        );
        assert_eq!(PrefetcherConfig::shift_throttled(4).label(), "SHIFT@bw4");
    }

    #[test]
    fn hybrid_configs_serialize_distinctly_from_base_kinds() {
        // RunKey content addressing hashes the serde form: the hybrid
        // variants must not collide with (or perturb) the existing arms.
        use serde::json;
        let virt = json::to_string(&PrefetcherConfig::shift_virtualized());
        let hybrid = json::to_string(&PrefetcherConfig::shift_next_line());
        assert_ne!(virt, hybrid);
        for config in PrefetcherConfig::hybrid_suite() {
            let text = json::to_string(&config);
            let back: PrefetcherConfig = json::from_str(&text).unwrap();
            assert_eq!(back, config);
        }
    }

    #[test]
    fn options_builders_set_flags() {
        let opts = SimOptions::new(Scale::Test, 1)
            .prediction_only()
            .with_miss_elimination(0.5);
        assert!(opts.prediction_only);
        assert_eq!(opts.miss_elimination_probability, Some(0.5));
    }

    #[test]
    #[should_panic(expected = "probability must be in")]
    fn bad_probability_rejected() {
        let _ = SimOptions::new(Scale::Test, 1).with_miss_elimination(1.5);
    }

    #[test]
    fn non_16_core_config_scales_mesh_and_llc() {
        let cfg = CmpConfig::micro13(4, PrefetcherConfig::None);
        assert!(cfg.mesh.tiles() >= 4);
        assert_eq!(cfg.llc.banks, 4);
        assert_eq!(cfg.llc.total_bytes, 4 * 512 * 1024);
    }
}
