//! The **merge** stage of the sweep pipeline: durable per-run outcomes and
//! the store that loads them back into [`RunOutcomes`].
//!
//! A shard ([`crate::shard`]) persists every completed run as one JSON
//! *outcome file* named by the run's content-addressed [`RunKeyId`]. The
//! file is self-describing:
//!
//! ```json
//! {
//!   "schema": 1,
//!   "results": 1,
//!   "matrix": "<16-hex MatrixFingerprint of the planned sweep>",
//!   "key_id": "<16-hex RunKeyId>",
//!   "key": { ...the full RunKey... },
//!   "result": { ...the RunResult... }
//! }
//! ```
//!
//! `results` records the [`RESULTS_VERSION`] the producing binary was built
//! with; files stamped with a different version (including pre-versioning
//! files, which read back as version 0) are *stale* — every reader treats
//! them as cache misses and re-executes the run rather than reusing numbers
//! a result-changing deploy has invalidated.
//!
//! [`RunStore::load`] scans one or more shard directories, verifies every
//! file against the locally planned matrix — same fingerprint, known key id,
//! byte-identical embedded key, exactly one file per planned run — and
//! assembles the results into the same [`RunOutcomes`] an in-process
//! [`RunMatrix::execute`](crate::RunMatrix::execute) would have produced.
//! Foreign sweeps, duplicate keys, and missing runs are rejected with
//! typed [`StoreError`]s rather than silently merged.
//!
//! # The outcome directory as a cache
//!
//! Strict loading treats an outcome directory as *the durable state of one
//! sweep*; [`RunStore::load_partial`] treats it as a *cache of individual
//! runs* instead. It accepts any outcome file whose embedded key JSON is
//! byte-identical to a key in the locally planned matrix — regardless of the
//! recorded [`MatrixFingerprint`] — and reports which planned runs are still
//! missing, so a changed plan (one figure added, one sweep point removed)
//! re-executes only its delta.
//!
//! **Reuse-safety argument.** A [`RunKey`] is, by construction, *everything*
//! that determines a run's [`RunResult`] (full CMP config, options, workload
//! assignment — see [`RunKey`]'s docs), and simulations are deterministic in
//! their key. Therefore an outcome whose embedded canonical key JSON equals
//! the planned key's byte-for-byte would be reproduced bit-identically by
//! re-executing the run, and substituting the cached result is sound. The
//! matrix fingerprint certifies something different — that a directory
//! *completely covers one specific sweep* — which is why the strict
//! [`RunStore::load`] keeps enforcing it while per-key reuse ignores it.
//!
//! # Claim locks
//!
//! Work-queue execution ([`Execution::queue`](crate::Execution::queue))
//! coordinates
//! workers through `claim-<RunKeyId>.lock` files in the same directory; the
//! file names are reserved here (next to the outcome-file schema) so every
//! consumer agrees on the directory layout. Lock files are transient: a
//! drained queue leaves none behind, and both [`RunStore::load`] and
//! [`RunStore::load_partial`] ignore them except to improve the diagnostic
//! when runs are missing ([`StoreError::ActiveLocks`]).

use std::fmt;
use std::fs;
use std::io;
use std::ops::Index;
use std::path::{Path, PathBuf};

use serde::{json, Deserialize, Serialize, Value};

use crate::matrix::{MatrixFingerprint, RunHandle, RunKey, RunKeyId, RunMatrix};
use crate::results::{RunResult, RESULTS_VERSION};

/// Version tag of the outcome-file layout; bump when fields change meaning.
/// (Result *semantics* are versioned separately by [`RESULTS_VERSION`].)
pub const OUTCOME_SCHEMA: u32 = 1;

/// Results of a [`RunMatrix`] execution, indexed by
/// [`RunHandle`].
///
/// Outcomes are deliberately decoupled from *how* the runs executed: a
/// single-process [`RunMatrix::execute`](crate::RunMatrix::execute), a
/// resumed multi-machine shard sweep merged by [`RunStore::load`], or any
/// mix — all produce bit-identical `RunOutcomes` for the same plan.
#[derive(Clone, Debug)]
pub struct RunOutcomes {
    matrix: u64,
    results: Vec<RunResult>,
}

impl RunOutcomes {
    /// Outcomes for the matrix with process-local id `matrix`, one result per
    /// plan slot in plan order.
    pub(crate) fn from_results(matrix: u64, results: Vec<RunResult>) -> Self {
        RunOutcomes { matrix, results }
    }

    /// The result of the given planned run.
    ///
    /// # Panics
    ///
    /// Panics with a diagnostic if `handle` was planned by a *different*
    /// [`RunMatrix`] (see the invariant on [`RunHandle`]),
    /// or if it was planned after this matrix executed. Use
    /// [`RunOutcomes::try_get`] for a checked lookup.
    pub fn get(&self, handle: RunHandle) -> &RunResult {
        assert_eq!(
            handle.matrix, self.matrix,
            "RunHandle was planned by RunMatrix #{} but these outcomes were executed \
             from RunMatrix #{}; handles are only valid against outcomes of the \
             matrix that planned them",
            handle.matrix, self.matrix,
        );
        self.results.get(handle.slot).unwrap_or_else(|| {
            panic!(
                "RunHandle #{} was planned after RunMatrix #{} executed \
                 (outcomes hold {} runs); re-execute the matrix after planning",
                handle.slot,
                self.matrix,
                self.results.len(),
            )
        })
    }

    /// Checked lookup: `None` if `handle` belongs to a different matrix or
    /// was planned after this matrix executed.
    pub fn try_get(&self, handle: RunHandle) -> Option<&RunResult> {
        if handle.matrix != self.matrix {
            return None;
        }
        self.results.get(handle.slot)
    }

    /// Number of executed runs.
    pub fn len(&self) -> usize {
        self.results.len()
    }

    /// `true` if the matrix was empty.
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }
}

impl Index<RunHandle> for RunOutcomes {
    type Output = RunResult;

    fn index(&self, handle: RunHandle) -> &RunResult {
        self.get(handle)
    }
}

/// Why loading or merging outcome files failed.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem error reading a directory or file.
    Io(io::Error),
    /// A file that should be an outcome file did not parse or failed an
    /// integrity check (bad schema, key hash mismatch, …).
    Malformed {
        /// The offending file.
        path: PathBuf,
        /// What was wrong with it.
        reason: String,
    },
    /// An outcome file was executed for a different sweep than the one
    /// being merged (mismatched [`MatrixFingerprint`]).
    ForeignMatrix {
        /// The offending file.
        path: PathBuf,
        /// Fingerprint of the locally planned matrix.
        expected: MatrixFingerprint,
        /// Fingerprint recorded in the file.
        found: MatrixFingerprint,
    },
    /// An outcome file carries the right fingerprint but a key the local
    /// plan does not contain (corruption, or a hand-edited file).
    UnknownKey {
        /// The offending file.
        path: PathBuf,
        /// The unplanned key id.
        key_id: RunKeyId,
    },
    /// Two loaded files claim the same run (overlapping shard directories,
    /// or the same directory merged twice).
    DuplicateKey {
        /// The run claimed twice.
        key_id: RunKeyId,
        /// The file loaded first.
        first: PathBuf,
        /// The file that collided with it.
        second: PathBuf,
    },
    /// After loading every directory, some planned runs had no outcome —
    /// a shard is missing or did not finish.
    MissingRuns {
        /// Canonically ordered ids of the runs without outcomes.
        missing: Vec<RunKeyId>,
        /// Total planned runs.
        planned: usize,
    },
    /// Some planned runs only have outcome files stamped with a different
    /// [`RESULTS_VERSION`]: a result-changing deploy invalidated them, and
    /// the strict merge refuses to splice old numbers into a new sweep.
    /// Re-execute the stale runs (shard resume and queue workers do so
    /// automatically) and merge again.
    StaleResults {
        /// Stale outcome files for runs that have no current outcome, sorted.
        paths: Vec<PathBuf>,
        /// The results version this binary produces.
        expected: u32,
        /// Total runs without current outcomes (stale or absent).
        missing: usize,
        /// Total planned runs.
        planned: usize,
    },
    /// Some planned runs have no outcome but *do* have claim lock files:
    /// a queue worker is still executing them (merge too early), or workers
    /// died holding claims (the locks become reclaimable once the TTL
    /// expires — see [`QueueConfig::lock_ttl`](crate::QueueConfig)).
    ActiveLocks {
        /// Lock files found for missing runs, sorted.
        locks: Vec<PathBuf>,
        /// Total runs without outcomes (locked or not).
        missing: usize,
        /// Total planned runs.
        planned: usize,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "outcome store I/O error: {e}"),
            StoreError::Malformed { path, reason } => {
                write!(f, "malformed outcome file {}: {reason}", path.display())
            }
            StoreError::ForeignMatrix {
                path,
                expected,
                found,
            } => write!(
                f,
                "outcome file {} belongs to a different sweep: planned matrix {expected}, \
                 file records {found} (check SHIFT_SCALE/SHIFT_CORES/SHIFT_WORKLOADS match \
                 the sharding run)",
                path.display()
            ),
            StoreError::UnknownKey { path, key_id } => write!(
                f,
                "outcome file {} records run {key_id}, which the planned matrix does not \
                 contain",
                path.display()
            ),
            StoreError::DuplicateKey {
                key_id,
                first,
                second,
            } => write!(
                f,
                "run {key_id} has two outcome files: {} and {} (same shard directory merged \
                 twice, or overlapping shards)",
                first.display(),
                second.display()
            ),
            StoreError::MissingRuns { missing, planned } => {
                write!(
                    f,
                    "merge is missing {} of {planned} planned runs (a shard did not run or \
                     did not finish); first missing: {}",
                    missing.len(),
                    missing
                        .first()
                        .map_or_else(|| "-".to_owned(), ToString::to_string)
                )
            }
            StoreError::StaleResults {
                paths,
                expected,
                missing,
                planned,
            } => write!(
                f,
                "merge is missing {missing} of {planned} planned runs, and {} of them only \
                 have outcome files from an older results version (current is {expected}); \
                 a result-changing deploy invalidated them — re-run the shard or queue \
                 workers to re-execute, then merge again; first stale: {}",
                paths.len(),
                paths
                    .first()
                    .map_or_else(|| "-".to_owned(), |p| p.display().to_string())
            ),
            StoreError::ActiveLocks {
                locks,
                missing,
                planned,
            } => write!(
                f,
                "merge is missing {missing} of {planned} planned runs and found {} claim \
                 lock file(s) for them — queue workers are still draining this directory \
                 (merge after they exit), or died holding claims (re-run a worker; stale \
                 locks are reclaimed after the TTL); first lock: {}",
                locks.len(),
                locks
                    .first()
                    .map_or_else(|| "-".to_owned(), |p| p.display().to_string())
            ),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// One parsed outcome file.
#[derive(Clone, Debug)]
pub struct OutcomeRecord {
    /// [`RESULTS_VERSION`] the producing binary was built with (0 for files
    /// written before versioning existed — always stale).
    pub results_version: u32,
    /// Fingerprint of the sweep the run was executed for.
    pub matrix: MatrixFingerprint,
    /// Content-addressed id of the run.
    pub key_id: RunKeyId,
    /// The embedded key's canonical JSON (compared byte-for-byte against the
    /// planned key, so a 64-bit id collision cannot smuggle in a wrong run).
    pub key_json: String,
    /// The run's result.
    pub result: RunResult,
}

/// File name of the outcome for `key_id` inside a shard directory.
pub fn outcome_file_name(key_id: RunKeyId) -> String {
    format!("run-{key_id}.json")
}

/// File name of the queue claim lock for `key_id` inside an outcome
/// directory (see [`crate::shard`] for the claim protocol).
pub fn lock_file_name(key_id: RunKeyId) -> String {
    format!("claim-{key_id}.lock")
}

/// Version tag of the claim-lock layout; bump when fields change meaning.
pub const LOCK_SCHEMA: u32 = 1;

/// One parsed claim lock file: who claimed a run, and when.
///
/// The contents are *informational* (operator diagnostics, staleness
/// assessment); the lock's mutual-exclusion property comes entirely from the
/// atomicity of its exclusive creation, never from what is in it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LockRecord {
    /// The claimed run.
    pub key_id: RunKeyId,
    /// Free-form id of the claiming worker (host/pid style).
    pub worker: String,
    /// When the claim was taken, as seconds since the Unix epoch *on the
    /// claiming worker's clock*. Staleness checks compare it against the
    /// reader's clock, so the reclaim TTL must comfortably exceed any
    /// cross-machine clock skew.
    pub claimed_unix: u64,
    /// The claiming worker's measured drain rate, in weighted fetch units
    /// per second (see [`crate::schedule::RunCost`]), if it has completed at
    /// least one run. Heartbeats re-stamp it, and a restarted worker reads
    /// its own leftover locks to recover calibration across crashes.
    pub rate: Option<u64>,
}

impl LockRecord {
    /// The lock's serialized form (compact JSON).
    pub(crate) fn to_json(&self) -> String {
        let mut fields = vec![
            ("schema".to_owned(), LOCK_SCHEMA.to_value()),
            ("key_id".to_owned(), self.key_id.to_value()),
            ("worker".to_owned(), self.worker.to_value()),
            ("claimed_unix".to_owned(), self.claimed_unix.to_value()),
        ];
        if let Some(rate) = self.rate {
            fields.push(("rate".to_owned(), rate.to_value()));
        }
        json::to_string(&Value::Map(fields))
    }
}

/// Parses one claim lock file.
///
/// # Errors
///
/// [`StoreError::Io`] if the file is unreadable, [`StoreError::Malformed`]
/// if it does not parse or has the wrong schema. A half-written lock (the
/// claiming worker died between creating and filling it) parses as
/// malformed; the queue's staleness check falls back to the file's mtime in
/// that case rather than failing.
pub fn read_lock(path: &Path) -> Result<LockRecord, StoreError> {
    let malformed = |reason: String| StoreError::Malformed {
        path: path.to_path_buf(),
        reason,
    };
    let text = fs::read_to_string(path)?;
    let doc = json::parse(&text).map_err(|e| malformed(e.to_string()))?;
    let read_field = |name: &str| {
        doc.get(name)
            .ok_or_else(|| malformed(format!("missing `{name}` field")))
    };
    let schema = u32::from_value(read_field("schema")?)
        .map_err(|e| malformed(format!("bad `schema`: {e}")))?;
    if schema != LOCK_SCHEMA {
        return Err(malformed(format!(
            "lock schema {schema} is not the supported {LOCK_SCHEMA}"
        )));
    }
    Ok(LockRecord {
        key_id: RunKeyId::from_value(read_field("key_id")?)
            .map_err(|e| malformed(format!("bad `key_id`: {e}")))?,
        worker: String::from_value(read_field("worker")?)
            .map_err(|e| malformed(format!("bad `worker`: {e}")))?,
        claimed_unix: u64::from_value(read_field("claimed_unix")?)
            .map_err(|e| malformed(format!("bad `claimed_unix`: {e}")))?,
        // Optional: locks from workers that have not completed a run yet (or
        // were written before rate persistence existed) simply omit it.
        rate: match doc.get("rate") {
            Some(v) => Some(u64::from_value(v).map_err(|e| malformed(format!("bad `rate`: {e}")))?),
            None => None,
        },
    })
}

/// Process-wide counter making concurrent writers' temp files distinct.
static NEXT_TMP: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Writes one run's outcome under `dir`, atomically (write to a temp file,
/// then rename), so a killed shard never leaves a half-written outcome that
/// a resume or merge would trip over.
///
/// The temp name is unique per writer (pid + counter): two workers racing
/// to persist the same run — possible after an over-eager queue reclaim, or
/// when several reusing workers seed one directory — each complete their
/// own write, and whichever rename lands last wins with byte-identical
/// content. A shared temp name would instead let one writer rename the
/// other's half-written file into place.
pub(crate) fn write_outcome(
    dir: &Path,
    fingerprint: MatrixFingerprint,
    key: &RunKey,
    result: &RunResult,
) -> io::Result<()> {
    let key_id = key.id();
    let doc = Value::Map(vec![
        ("schema".to_owned(), OUTCOME_SCHEMA.to_value()),
        ("results".to_owned(), RESULTS_VERSION.to_value()),
        ("matrix".to_owned(), fingerprint.to_value()),
        ("key_id".to_owned(), key_id.to_value()),
        ("key".to_owned(), key.to_value()),
        ("result".to_owned(), result.to_value()),
    ]);
    let final_path = dir.join(outcome_file_name(key_id));
    let tmp_path = dir.join(format!(
        ".tmp-{key_id}-{}-{}.json",
        std::process::id(),
        NEXT_TMP.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ));
    fs::write(&tmp_path, json::to_string_pretty(&doc))?;
    fs::rename(&tmp_path, &final_path)
}

/// `true` if `path` holds a valid, reusable outcome for `key` executed
/// under `fingerprint` (parses, current results version, right sweep,
/// byte-identical embedded key). The one definition of "this run is done"
/// shared by shard resume, queue claims, and reuse seeding — so a
/// results-version bump makes all of them re-execute automatically.
pub(crate) fn outcome_is_valid(path: &Path, fingerprint: MatrixFingerprint, key: &RunKey) -> bool {
    match read_outcome(path) {
        Ok(record) => {
            record.results_version == RESULTS_VERSION
                && record.matrix == fingerprint
                && record.key_json == key.canonical_json()
        }
        Err(_) => false,
    }
}

/// Parses and integrity-checks one outcome file.
///
/// # Errors
///
/// [`StoreError::Io`] if the file is unreadable, [`StoreError::Malformed`]
/// if it does not parse, has the wrong schema, or its embedded key does not
/// hash to its recorded `key_id`.
pub fn read_outcome(path: &Path) -> Result<OutcomeRecord, StoreError> {
    let malformed = |reason: String| StoreError::Malformed {
        path: path.to_path_buf(),
        reason,
    };
    let text = fs::read_to_string(path)?;
    let doc = json::parse(&text).map_err(|e| malformed(e.to_string()))?;
    let read_field = |name: &str| {
        doc.get(name)
            .ok_or_else(|| malformed(format!("missing `{name}` field")))
    };

    let schema = u32::from_value(read_field("schema")?)
        .map_err(|e| malformed(format!("bad `schema`: {e}")))?;
    if schema != OUTCOME_SCHEMA {
        return Err(malformed(format!(
            "outcome schema {schema} is not the supported {OUTCOME_SCHEMA}"
        )));
    }
    // Absent on files written before result versioning existed: version 0,
    // which never equals the current version — such files parse fine (the
    // operator can still inspect them) but are stale for every reuse path.
    let results_version = match doc.get("results") {
        Some(value) => {
            u32::from_value(value).map_err(|e| malformed(format!("bad `results`: {e}")))?
        }
        None => 0,
    };
    let matrix = MatrixFingerprint::from_value(read_field("matrix")?)
        .map_err(|e| malformed(format!("bad `matrix`: {e}")))?;
    let key_id = RunKeyId::from_value(read_field("key_id")?)
        .map_err(|e| malformed(format!("bad `key_id`: {e}")))?;
    let key_value = read_field("key")?;
    let key: RunKey =
        RunKey::from_value(key_value).map_err(|e| malformed(format!("bad `key`: {e}")))?;
    if key.id() != key_id {
        return Err(malformed(format!(
            "embedded key hashes to {}, file claims {key_id}",
            key.id()
        )));
    }
    let result = RunResult::from_value(read_field("result")?)
        .map_err(|e| malformed(format!("bad `result`: {e}")))?;
    Ok(OutcomeRecord {
        results_version,
        matrix,
        key_id,
        key_json: key.canonical_json(),
        result,
    })
}

/// A set of shard directories holding outcome files for one sweep.
///
/// The store is the bridge from durable shard state back to in-memory
/// [`RunOutcomes`]: re-plan the same matrix locally, point the store at the
/// directories the shards filled, and [`RunStore::load`] hands every
/// [`RunHandle`] its result as if the whole sweep had run in this process.
#[derive(Clone, Debug)]
pub struct RunStore {
    dirs: Vec<PathBuf>,
}

impl RunStore {
    /// A store over the given shard directories (order does not matter).
    pub fn new(dirs: impl IntoIterator<Item = impl Into<PathBuf>>) -> Self {
        RunStore {
            dirs: dirs.into_iter().map(Into::into).collect(),
        }
    }

    /// The directories this store reads.
    pub fn dirs(&self) -> &[PathBuf] {
        &self.dirs
    }

    /// Loads and merges every outcome file into outcomes for `matrix`.
    ///
    /// # Errors
    ///
    /// Rejects files from a different sweep ([`StoreError::ForeignMatrix`]),
    /// unplanned or integrity-failing files ([`StoreError::UnknownKey`],
    /// [`StoreError::Malformed`]), more than one file per run
    /// ([`StoreError::DuplicateKey`]), and incomplete coverage
    /// ([`StoreError::MissingRuns`]). Files stamped with a different
    /// [`RESULTS_VERSION`] are *cache misses*, not integrity failures: they
    /// are skipped, and if that leaves runs uncovered the merge fails with
    /// [`StoreError::StaleResults`] telling the operator to re-execute
    /// rather than wipe.
    pub fn load(&self, matrix: &RunMatrix) -> Result<RunOutcomes, StoreError> {
        let fingerprint = matrix.fingerprint();
        let slot_of = |key_id: RunKeyId| -> Option<usize> {
            matrix.key_ids().iter().position(|&id| id == key_id)
        };
        let mut results: Vec<Option<(RunResult, PathBuf)>> = vec![None; matrix.len()];
        let mut stale: Vec<(RunKeyId, PathBuf)> = Vec::new();

        for dir in &self.dirs {
            for path in outcome_paths(dir)? {
                let record = read_outcome(&path)?;
                if record.results_version != RESULTS_VERSION {
                    stale.push((record.key_id, path));
                    continue;
                }
                if record.matrix != fingerprint {
                    return Err(StoreError::ForeignMatrix {
                        path,
                        expected: fingerprint,
                        found: record.matrix,
                    });
                }
                let slot = slot_of(record.key_id).ok_or_else(|| StoreError::UnknownKey {
                    path: path.clone(),
                    key_id: record.key_id,
                })?;
                if record.key_json != matrix.keys()[slot].canonical_json() {
                    return Err(StoreError::Malformed {
                        path,
                        reason: format!(
                            "embedded key collides with planned run {} but differs from it",
                            record.key_id
                        ),
                    });
                }
                if let Some((_, first)) = &results[slot] {
                    return Err(StoreError::DuplicateKey {
                        key_id: record.key_id,
                        first: first.clone(),
                        second: path,
                    });
                }
                results[slot] = Some((record.result, path));
            }
        }

        let missing: Vec<RunKeyId> = matrix
            .canonical_order()
            .into_iter()
            .filter(|&slot| results[slot].is_none())
            .map(|slot| matrix.key_ids()[slot])
            .collect();
        if !missing.is_empty() {
            // Prefer the most actionable diagnosis: runs whose only outcome
            // is a stale-version file need re-execution, not a missing-shard
            // hunt.
            let mut stale_paths: Vec<PathBuf> = stale
                .into_iter()
                .filter(|(key_id, _)| missing.contains(key_id))
                .map(|(_, path)| path)
                .collect();
            if !stale_paths.is_empty() {
                stale_paths.sort();
                return Err(StoreError::StaleResults {
                    paths: stale_paths,
                    expected: RESULTS_VERSION,
                    missing: missing.len(),
                    planned: matrix.len(),
                });
            }
            // If the incomplete runs are claim-locked, say so — the operator
            // is merging under live (or dead) queue workers, which has a
            // different fix than a shard that never ran.
            let mut locks: Vec<PathBuf> = Vec::new();
            for dir in &self.dirs {
                for &key_id in &missing {
                    let lock = dir.join(lock_file_name(key_id));
                    if lock.exists() {
                        locks.push(lock);
                    }
                }
            }
            if !locks.is_empty() {
                locks.sort();
                return Err(StoreError::ActiveLocks {
                    locks,
                    missing: missing.len(),
                    planned: matrix.len(),
                });
            }
            return Err(StoreError::MissingRuns {
                missing,
                planned: matrix.len(),
            });
        }
        Ok(RunOutcomes::from_results(
            matrix.local_id(),
            results
                .into_iter()
                .map(|entry| entry.expect("missing runs checked above").0)
                .collect(),
        ))
    }

    /// Loads every outcome file *reusable under `matrix`*, ignoring matrix
    /// fingerprints: the incremental half of the outcome cache.
    ///
    /// A file is reusable iff its embedded key's canonical JSON is
    /// byte-identical to a planned key's (see the
    /// [reuse-safety argument](self#the-outcome-directory-as-a-cache)); the
    /// content-addressed [`RunKeyId`] is only the lookup accelerator, never
    /// the authority. Everything else is tolerated rather than rejected —
    /// this is a cache probe, not an integrity check of one sweep:
    ///
    /// * files for keys the plan does not contain are skipped (counted in
    ///   [`PartialLoad::skipped_foreign`]) — they belong to other sweeps
    ///   sharing the cache;
    /// * files stamped with a different [`RESULTS_VERSION`] are skipped
    ///   (counted in [`PartialLoad::skipped_stale`]) — a result-changing
    ///   deploy invalidated them, so their runs re-execute;
    /// * malformed or truncated files are skipped (paths collected in
    ///   [`PartialLoad::skipped_malformed`]) — the run simply re-executes;
    /// * a key present in several files (same dir listed twice, overlapping
    ///   caches) reuses the first in sorted order — byte-identical keys
    ///   guarantee the recorded results agree.
    ///
    /// # Errors
    ///
    /// Only filesystem errors ([`StoreError::Io`]) propagate.
    pub fn load_partial(&self, matrix: &RunMatrix) -> Result<PartialLoad, StoreError> {
        let slot_of = |key_id: RunKeyId| -> Option<usize> {
            matrix.key_ids().iter().position(|&id| id == key_id)
        };
        let mut results: Vec<Option<RunResult>> = vec![None; matrix.len()];
        let mut scanned = 0usize;
        let mut skipped_foreign = 0usize;
        let mut skipped_stale = 0usize;
        let mut skipped_malformed: Vec<PathBuf> = Vec::new();

        for dir in &self.dirs {
            for path in outcome_paths(dir)? {
                scanned += 1;
                let record = match read_outcome(&path) {
                    Ok(record) => record,
                    Err(StoreError::Io(e)) => return Err(StoreError::Io(e)),
                    Err(_) => {
                        skipped_malformed.push(path);
                        continue;
                    }
                };
                if record.results_version != RESULTS_VERSION {
                    skipped_stale += 1;
                    continue;
                }
                let Some(slot) = slot_of(record.key_id) else {
                    skipped_foreign += 1;
                    continue;
                };
                if record.key_json != matrix.keys()[slot].canonical_json() {
                    // A 64-bit id collision with a *different* key: not ours.
                    skipped_foreign += 1;
                    continue;
                }
                if results[slot].is_none() {
                    results[slot] = Some(record.result);
                }
            }
        }

        let reused = results.iter().filter(|r| r.is_some()).count();
        Ok(PartialLoad {
            matrix_id: matrix.local_id(),
            results,
            scanned,
            reused,
            skipped_foreign,
            skipped_stale,
            skipped_malformed,
        })
    }
}

/// What [`RunStore::load_partial`] recovered from the cache: per-slot hits
/// for one planned [`RunMatrix`], plus what the scan skipped.
///
/// Feed it to [`Execution::reuse`](crate::Execution::reuse) to run only the
/// missing slots, or to [`seed_outcomes`] to persist the hits into a fresh
/// outcome directory under the new plan's fingerprint.
#[derive(Clone, Debug)]
pub struct PartialLoad {
    /// The planning matrix's process-local id; delta execution asserts it.
    matrix_id: u64,
    /// One slot per planned run, in plan order; `Some` where the cache hit.
    results: Vec<Option<RunResult>>,
    /// Outcome files examined across all directories.
    pub scanned: usize,
    /// Planned runs with a reusable cached result.
    pub reused: usize,
    /// Valid outcome files whose key the plan does not contain.
    pub skipped_foreign: usize,
    /// Outcome files stamped with a different [`RESULTS_VERSION`] — cache
    /// misses from a result-changing deploy; their runs re-execute.
    pub skipped_stale: usize,
    /// Files that did not parse or failed integrity checks — their runs
    /// re-execute; surface these to the operator, silent corruption is how
    /// caches rot.
    pub skipped_malformed: Vec<PathBuf>,
}

impl PartialLoad {
    /// The cached result for plan-order `slot`, if the cache hit.
    pub fn hit(&self, slot: usize) -> Option<&RunResult> {
        self.results.get(slot).and_then(Option::as_ref)
    }

    /// Plan-order slots with no cached result, in canonical order — the
    /// delta a reusing run must still execute.
    pub fn missing_slots(&self, matrix: &RunMatrix) -> Vec<usize> {
        assert_eq!(
            self.matrix_id,
            matrix.local_id(),
            "PartialLoad was probed against a different RunMatrix"
        );
        matrix
            .canonical_order()
            .into_iter()
            .filter(|&slot| self.results[slot].is_none())
            .collect()
    }

    /// The matrix id this load was probed against (same-matrix assertions).
    pub(crate) fn matrix_id(&self) -> u64 {
        self.matrix_id
    }

    /// Consumes the load into its per-slot results (plan order).
    pub(crate) fn into_results(self) -> Vec<Option<RunResult>> {
        self.results
    }
}

/// Persists every cache hit of `partial` into `dir` as a regular outcome
/// file under **`matrix`'s own fingerprint**, skipping runs whose valid
/// outcome is already present. Returns how many files it wrote.
///
/// This is how `--reuse OLD --outcomes NEW` composes with every execution
/// mode: after seeding, `NEW` looks exactly as if the reused runs had been
/// executed into it, so shard resume, queue draining, and the strict
/// [`RunStore::load`] all work unchanged on top.
///
/// # Panics
///
/// Panics if `partial` was probed against a different matrix.
///
/// # Errors
///
/// Propagates filesystem errors creating `dir` or writing outcome files.
pub fn seed_outcomes(matrix: &RunMatrix, partial: &PartialLoad, dir: &Path) -> io::Result<usize> {
    let all: Vec<usize> = (0..matrix.len()).collect();
    seed_outcome_slots(matrix, partial, dir, &all)
}

/// [`seed_outcomes`] restricted to the given plan-order `slots` — how a
/// `K/N` shard seeds only the slice it owns, so the per-shard directories
/// stay disjoint and the strict merge's duplicate check keeps its teeth.
pub(crate) fn seed_outcome_slots(
    matrix: &RunMatrix,
    partial: &PartialLoad,
    dir: &Path,
    slots: &[usize],
) -> io::Result<usize> {
    assert_eq!(
        partial.matrix_id(),
        matrix.local_id(),
        "PartialLoad was probed against a different RunMatrix"
    );
    fs::create_dir_all(dir)?;
    let fingerprint = matrix.fingerprint();
    let mut written = 0usize;
    for &slot in slots {
        let Some(result) = partial.hit(slot) else {
            continue;
        };
        let key = &matrix.keys()[slot];
        let path = dir.join(outcome_file_name(matrix.key_ids()[slot]));
        if outcome_is_valid(&path, fingerprint, key) {
            continue;
        }
        write_outcome(dir, fingerprint, key, result)?;
        written += 1;
    }
    Ok(written)
}

/// The outcome files under `dir`, sorted by name for deterministic error
/// reporting. Non-outcome files (temp files, manifests, stray editors) are
/// ignored.
fn outcome_paths(dir: &Path) -> Result<Vec<PathBuf>, StoreError> {
    let mut paths = Vec::new();
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name.starts_with("run-") && name.ends_with(".json") {
            paths.push(path);
        }
    }
    paths.sort();
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PrefetcherConfig;
    use shift_trace::{presets, Scale};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("shift-store-test-{tag}"));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    #[test]
    fn outcome_files_round_trip() {
        let dir = temp_dir("round-trip");
        let mut matrix = RunMatrix::new();
        let w = presets::tiny();
        let handle = matrix.standalone(&w, PrefetcherConfig::None, 2, Scale::Test, 5);
        let outcomes = crate::Execution::new(&matrix)
            .serial()
            .run()
            .unwrap()
            .into_outcomes();

        write_outcome(
            &dir,
            matrix.fingerprint(),
            &matrix.keys()[0],
            &outcomes[handle],
        )
        .expect("write outcome");
        let path = dir.join(outcome_file_name(matrix.key_ids()[0]));
        let record = read_outcome(&path).expect("read outcome");
        assert_eq!(record.matrix, matrix.fingerprint());
        assert_eq!(record.key_id, matrix.key_ids()[0]);
        assert_eq!(record.result, outcomes[handle]);

        let merged = RunStore::new([&dir]).load(&matrix).expect("merge");
        assert_eq!(merged[handle], outcomes[handle]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_files_are_rejected_with_reasons() {
        let dir = temp_dir("corrupt");
        let mut matrix = RunMatrix::new();
        let w = presets::tiny();
        let handle = matrix.standalone(&w, PrefetcherConfig::None, 2, Scale::Test, 5);
        let outcomes = crate::Execution::new(&matrix)
            .serial()
            .run()
            .unwrap()
            .into_outcomes();
        write_outcome(
            &dir,
            matrix.fingerprint(),
            &matrix.keys()[0],
            &outcomes[handle],
        )
        .unwrap();
        let path = dir.join(outcome_file_name(matrix.key_ids()[0]));

        // Truncated JSON.
        let original = fs::read_to_string(&path).unwrap();
        fs::write(&path, &original[..original.len() / 2]).unwrap();
        assert!(matches!(
            read_outcome(&path),
            Err(StoreError::Malformed { .. })
        ));

        // key_id that does not match the embedded key.
        let tampered = original.replace(
            &format!("\"key_id\": \"{}\"", matrix.key_ids()[0]),
            "\"key_id\": \"0000000000000000\"",
        );
        assert_ne!(tampered, original);
        fs::write(&path, tampered).unwrap();
        let err = read_outcome(&path).unwrap_err();
        assert!(err.to_string().contains("hashes to"), "{err}");

        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_results_version_is_a_cache_miss() {
        let dir = temp_dir("stale-version");
        let mut matrix = RunMatrix::new();
        let w = presets::tiny();
        let handle = matrix.standalone(&w, PrefetcherConfig::None, 2, Scale::Test, 5);
        let outcomes = crate::Execution::new(&matrix)
            .serial()
            .run()
            .unwrap()
            .into_outcomes();
        write_outcome(
            &dir,
            matrix.fingerprint(),
            &matrix.keys()[0],
            &outcomes[handle],
        )
        .unwrap();
        let path = dir.join(outcome_file_name(matrix.key_ids()[0]));

        // Rewrite the file as if an older deploy had produced it.
        let original = fs::read_to_string(&path).unwrap();
        let old_version =
            original.replace(&format!("\"results\": {RESULTS_VERSION}"), "\"results\": 0");
        assert_ne!(old_version, original, "results stamp must be in the file");
        fs::write(&path, &old_version).unwrap();

        // The file still parses — operators can inspect old outcomes…
        let record = read_outcome(&path).expect("stale files stay readable");
        assert_eq!(record.results_version, 0);

        // …but every reuse path treats it as a miss.
        let err = RunStore::new([&dir]).load(&matrix).unwrap_err();
        assert!(
            matches!(err, StoreError::StaleResults { .. }),
            "strict merge must diagnose staleness, got: {err}"
        );
        let partial = RunStore::new([&dir]).load_partial(&matrix).unwrap();
        assert_eq!(partial.reused, 0);
        assert_eq!(partial.skipped_stale, 1);
        assert_eq!(partial.missing_slots(&matrix).len(), 1);

        // Shard resume re-executes and re-stamps instead of trusting it.
        let report =
            crate::shard::shard_inner(&matrix, crate::shard::ShardSpec::full(), &dir, 1).unwrap();
        assert_eq!(report.executed, 1, "stale outcome must re-run");
        assert_eq!(
            read_outcome(&path).unwrap().results_version,
            RESULTS_VERSION
        );
        let merged = RunStore::new([&dir]).load(&matrix).expect("fresh merge");
        assert_eq!(merged[handle], outcomes[handle]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pre_versioning_files_read_as_version_zero() {
        let dir = temp_dir("pre-versioning");
        let mut matrix = RunMatrix::new();
        let w = presets::tiny();
        let handle = matrix.standalone(&w, PrefetcherConfig::None, 2, Scale::Test, 5);
        let outcomes = crate::Execution::new(&matrix)
            .serial()
            .run()
            .unwrap()
            .into_outcomes();
        write_outcome(
            &dir,
            matrix.fingerprint(),
            &matrix.keys()[0],
            &outcomes[handle],
        )
        .unwrap();
        let path = dir.join(outcome_file_name(matrix.key_ids()[0]));

        // Strip the `results` field entirely: the PR 5-era file layout.
        let original = fs::read_to_string(&path).unwrap();
        let legacy: String = original
            .lines()
            .filter(|line| !line.contains("\"results\""))
            .collect::<Vec<_>>()
            .join("\n");
        assert_ne!(legacy, original);
        fs::write(&path, &legacy).unwrap();

        assert_eq!(read_outcome(&path).unwrap().results_version, 0);
        let partial = RunStore::new([&dir]).load_partial(&matrix).unwrap();
        assert_eq!(partial.reused, 0);
        assert_eq!(partial.skipped_stale, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn temp_and_stray_files_are_ignored() {
        let dir = temp_dir("stray");
        let mut matrix = RunMatrix::new();
        let w = presets::tiny();
        let handle = matrix.standalone(&w, PrefetcherConfig::None, 2, Scale::Test, 5);
        let outcomes = crate::Execution::new(&matrix)
            .serial()
            .run()
            .unwrap()
            .into_outcomes();
        write_outcome(
            &dir,
            matrix.fingerprint(),
            &matrix.keys()[0],
            &outcomes[handle],
        )
        .unwrap();
        // A crashed writer's temp file and unrelated clutter must not break
        // the merge.
        fs::write(dir.join(".tmp-dead.json"), "{").unwrap();
        fs::write(dir.join("notes.txt"), "scratch").unwrap();
        let merged = RunStore::new([&dir]).load(&matrix).expect("merge");
        assert_eq!(merged.len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }
}
