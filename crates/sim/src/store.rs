//! The **merge** stage of the sweep pipeline: durable per-run outcomes and
//! the store that loads them back into [`RunOutcomes`].
//!
//! A shard ([`crate::shard`]) persists every completed run as one JSON
//! *outcome file* named by the run's content-addressed [`RunKeyId`]. The
//! file is self-describing:
//!
//! ```json
//! {
//!   "schema": 1,
//!   "matrix": "<16-hex MatrixFingerprint of the planned sweep>",
//!   "key_id": "<16-hex RunKeyId>",
//!   "key": { ...the full RunKey... },
//!   "result": { ...the RunResult... }
//! }
//! ```
//!
//! [`RunStore::load`] scans one or more shard directories, verifies every
//! file against the locally planned matrix — same fingerprint, known key id,
//! byte-identical embedded key, exactly one file per planned run — and
//! assembles the results into the same [`RunOutcomes`] an in-process
//! [`RunMatrix::execute`](crate::RunMatrix::execute) would have produced.
//! Foreign sweeps, duplicate keys, and missing runs are rejected with
//! typed [`StoreError`]s rather than silently merged.

use std::fmt;
use std::fs;
use std::io;
use std::ops::Index;
use std::path::{Path, PathBuf};

use serde::{json, Deserialize, Serialize, Value};

use crate::matrix::{MatrixFingerprint, RunHandle, RunKey, RunKeyId, RunMatrix};
use crate::results::RunResult;

/// Version tag of the outcome-file layout; bump when fields change meaning.
pub const OUTCOME_SCHEMA: u32 = 1;

/// Results of a [`RunMatrix`] execution, indexed by
/// [`RunHandle`].
///
/// Outcomes are deliberately decoupled from *how* the runs executed: a
/// single-process [`RunMatrix::execute`](crate::RunMatrix::execute), a
/// resumed multi-machine shard sweep merged by [`RunStore::load`], or any
/// mix — all produce bit-identical `RunOutcomes` for the same plan.
#[derive(Clone, Debug)]
pub struct RunOutcomes {
    matrix: u64,
    results: Vec<RunResult>,
}

impl RunOutcomes {
    /// Outcomes for the matrix with process-local id `matrix`, one result per
    /// plan slot in plan order.
    pub(crate) fn from_results(matrix: u64, results: Vec<RunResult>) -> Self {
        RunOutcomes { matrix, results }
    }

    /// The result of the given planned run.
    ///
    /// # Panics
    ///
    /// Panics with a diagnostic if `handle` was planned by a *different*
    /// [`RunMatrix`] (see the invariant on [`RunHandle`]),
    /// or if it was planned after this matrix executed. Use
    /// [`RunOutcomes::try_get`] for a checked lookup.
    pub fn get(&self, handle: RunHandle) -> &RunResult {
        assert_eq!(
            handle.matrix, self.matrix,
            "RunHandle was planned by RunMatrix #{} but these outcomes were executed \
             from RunMatrix #{}; handles are only valid against outcomes of the \
             matrix that planned them",
            handle.matrix, self.matrix,
        );
        self.results.get(handle.slot).unwrap_or_else(|| {
            panic!(
                "RunHandle #{} was planned after RunMatrix #{} executed \
                 (outcomes hold {} runs); re-execute the matrix after planning",
                handle.slot,
                self.matrix,
                self.results.len(),
            )
        })
    }

    /// Checked lookup: `None` if `handle` belongs to a different matrix or
    /// was planned after this matrix executed.
    pub fn try_get(&self, handle: RunHandle) -> Option<&RunResult> {
        if handle.matrix != self.matrix {
            return None;
        }
        self.results.get(handle.slot)
    }

    /// Number of executed runs.
    pub fn len(&self) -> usize {
        self.results.len()
    }

    /// `true` if the matrix was empty.
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }
}

impl Index<RunHandle> for RunOutcomes {
    type Output = RunResult;

    fn index(&self, handle: RunHandle) -> &RunResult {
        self.get(handle)
    }
}

/// Why loading or merging outcome files failed.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem error reading a directory or file.
    Io(io::Error),
    /// A file that should be an outcome file did not parse or failed an
    /// integrity check (bad schema, key hash mismatch, …).
    Malformed {
        /// The offending file.
        path: PathBuf,
        /// What was wrong with it.
        reason: String,
    },
    /// An outcome file was executed for a different sweep than the one
    /// being merged (mismatched [`MatrixFingerprint`]).
    ForeignMatrix {
        /// The offending file.
        path: PathBuf,
        /// Fingerprint of the locally planned matrix.
        expected: MatrixFingerprint,
        /// Fingerprint recorded in the file.
        found: MatrixFingerprint,
    },
    /// An outcome file carries the right fingerprint but a key the local
    /// plan does not contain (corruption, or a hand-edited file).
    UnknownKey {
        /// The offending file.
        path: PathBuf,
        /// The unplanned key id.
        key_id: RunKeyId,
    },
    /// Two loaded files claim the same run (overlapping shard directories,
    /// or the same directory merged twice).
    DuplicateKey {
        /// The run claimed twice.
        key_id: RunKeyId,
        /// The file loaded first.
        first: PathBuf,
        /// The file that collided with it.
        second: PathBuf,
    },
    /// After loading every directory, some planned runs had no outcome —
    /// a shard is missing or did not finish.
    MissingRuns {
        /// Canonically ordered ids of the runs without outcomes.
        missing: Vec<RunKeyId>,
        /// Total planned runs.
        planned: usize,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "outcome store I/O error: {e}"),
            StoreError::Malformed { path, reason } => {
                write!(f, "malformed outcome file {}: {reason}", path.display())
            }
            StoreError::ForeignMatrix {
                path,
                expected,
                found,
            } => write!(
                f,
                "outcome file {} belongs to a different sweep: planned matrix {expected}, \
                 file records {found} (check SHIFT_SCALE/SHIFT_CORES/SHIFT_WORKLOADS match \
                 the sharding run)",
                path.display()
            ),
            StoreError::UnknownKey { path, key_id } => write!(
                f,
                "outcome file {} records run {key_id}, which the planned matrix does not \
                 contain",
                path.display()
            ),
            StoreError::DuplicateKey {
                key_id,
                first,
                second,
            } => write!(
                f,
                "run {key_id} has two outcome files: {} and {} (same shard directory merged \
                 twice, or overlapping shards)",
                first.display(),
                second.display()
            ),
            StoreError::MissingRuns { missing, planned } => {
                write!(
                    f,
                    "merge is missing {} of {planned} planned runs (a shard did not run or \
                     did not finish); first missing: {}",
                    missing.len(),
                    missing
                        .first()
                        .map_or_else(|| "-".to_owned(), ToString::to_string)
                )
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// One parsed outcome file.
#[derive(Clone, Debug)]
pub struct OutcomeRecord {
    /// Fingerprint of the sweep the run was executed for.
    pub matrix: MatrixFingerprint,
    /// Content-addressed id of the run.
    pub key_id: RunKeyId,
    /// The embedded key's canonical JSON (compared byte-for-byte against the
    /// planned key, so a 64-bit id collision cannot smuggle in a wrong run).
    pub key_json: String,
    /// The run's result.
    pub result: RunResult,
}

/// File name of the outcome for `key_id` inside a shard directory.
pub fn outcome_file_name(key_id: RunKeyId) -> String {
    format!("run-{key_id}.json")
}

/// Writes one run's outcome under `dir`, atomically (write to a temp file,
/// then rename), so a killed shard never leaves a half-written outcome that
/// a resume or merge would trip over.
pub(crate) fn write_outcome(
    dir: &Path,
    fingerprint: MatrixFingerprint,
    key: &RunKey,
    result: &RunResult,
) -> io::Result<()> {
    let key_id = key.id();
    let doc = Value::Map(vec![
        ("schema".to_owned(), OUTCOME_SCHEMA.to_value()),
        ("matrix".to_owned(), fingerprint.to_value()),
        ("key_id".to_owned(), key_id.to_value()),
        ("key".to_owned(), key.to_value()),
        ("result".to_owned(), result.to_value()),
    ]);
    let final_path = dir.join(outcome_file_name(key_id));
    let tmp_path = dir.join(format!(".tmp-{key_id}.json"));
    fs::write(&tmp_path, json::to_string_pretty(&doc))?;
    fs::rename(&tmp_path, &final_path)
}

/// Parses and integrity-checks one outcome file.
///
/// # Errors
///
/// [`StoreError::Io`] if the file is unreadable, [`StoreError::Malformed`]
/// if it does not parse, has the wrong schema, or its embedded key does not
/// hash to its recorded `key_id`.
pub fn read_outcome(path: &Path) -> Result<OutcomeRecord, StoreError> {
    let malformed = |reason: String| StoreError::Malformed {
        path: path.to_path_buf(),
        reason,
    };
    let text = fs::read_to_string(path)?;
    let doc = json::parse(&text).map_err(|e| malformed(e.to_string()))?;
    let read_field = |name: &str| {
        doc.get(name)
            .ok_or_else(|| malformed(format!("missing `{name}` field")))
    };

    let schema = u32::from_value(read_field("schema")?)
        .map_err(|e| malformed(format!("bad `schema`: {e}")))?;
    if schema != OUTCOME_SCHEMA {
        return Err(malformed(format!(
            "outcome schema {schema} is not the supported {OUTCOME_SCHEMA}"
        )));
    }
    let matrix = MatrixFingerprint::from_value(read_field("matrix")?)
        .map_err(|e| malformed(format!("bad `matrix`: {e}")))?;
    let key_id = RunKeyId::from_value(read_field("key_id")?)
        .map_err(|e| malformed(format!("bad `key_id`: {e}")))?;
    let key_value = read_field("key")?;
    let key: RunKey =
        RunKey::from_value(key_value).map_err(|e| malformed(format!("bad `key`: {e}")))?;
    if key.id() != key_id {
        return Err(malformed(format!(
            "embedded key hashes to {}, file claims {key_id}",
            key.id()
        )));
    }
    let result = RunResult::from_value(read_field("result")?)
        .map_err(|e| malformed(format!("bad `result`: {e}")))?;
    Ok(OutcomeRecord {
        matrix,
        key_id,
        key_json: key.canonical_json(),
        result,
    })
}

/// A set of shard directories holding outcome files for one sweep.
///
/// The store is the bridge from durable shard state back to in-memory
/// [`RunOutcomes`]: re-plan the same matrix locally, point the store at the
/// directories the shards filled, and [`RunStore::load`] hands every
/// [`RunHandle`] its result as if the whole sweep had run in this process.
#[derive(Clone, Debug)]
pub struct RunStore {
    dirs: Vec<PathBuf>,
}

impl RunStore {
    /// A store over the given shard directories (order does not matter).
    pub fn new(dirs: impl IntoIterator<Item = impl Into<PathBuf>>) -> Self {
        RunStore {
            dirs: dirs.into_iter().map(Into::into).collect(),
        }
    }

    /// The directories this store reads.
    pub fn dirs(&self) -> &[PathBuf] {
        &self.dirs
    }

    /// Loads and merges every outcome file into outcomes for `matrix`.
    ///
    /// # Errors
    ///
    /// Rejects files from a different sweep ([`StoreError::ForeignMatrix`]),
    /// unplanned or integrity-failing files ([`StoreError::UnknownKey`],
    /// [`StoreError::Malformed`]), more than one file per run
    /// ([`StoreError::DuplicateKey`]), and incomplete coverage
    /// ([`StoreError::MissingRuns`]).
    pub fn load(&self, matrix: &RunMatrix) -> Result<RunOutcomes, StoreError> {
        let fingerprint = matrix.fingerprint();
        let slot_of = |key_id: RunKeyId| -> Option<usize> {
            matrix.key_ids().iter().position(|&id| id == key_id)
        };
        let mut results: Vec<Option<(RunResult, PathBuf)>> = vec![None; matrix.len()];

        for dir in &self.dirs {
            for path in outcome_paths(dir)? {
                let record = read_outcome(&path)?;
                if record.matrix != fingerprint {
                    return Err(StoreError::ForeignMatrix {
                        path,
                        expected: fingerprint,
                        found: record.matrix,
                    });
                }
                let slot = slot_of(record.key_id).ok_or_else(|| StoreError::UnknownKey {
                    path: path.clone(),
                    key_id: record.key_id,
                })?;
                if record.key_json != matrix.keys()[slot].canonical_json() {
                    return Err(StoreError::Malformed {
                        path,
                        reason: format!(
                            "embedded key collides with planned run {} but differs from it",
                            record.key_id
                        ),
                    });
                }
                if let Some((_, first)) = &results[slot] {
                    return Err(StoreError::DuplicateKey {
                        key_id: record.key_id,
                        first: first.clone(),
                        second: path,
                    });
                }
                results[slot] = Some((record.result, path));
            }
        }

        let missing: Vec<RunKeyId> = matrix
            .canonical_order()
            .into_iter()
            .filter(|&slot| results[slot].is_none())
            .map(|slot| matrix.key_ids()[slot])
            .collect();
        if !missing.is_empty() {
            return Err(StoreError::MissingRuns {
                missing,
                planned: matrix.len(),
            });
        }
        Ok(RunOutcomes::from_results(
            matrix.local_id(),
            results
                .into_iter()
                .map(|entry| entry.expect("missing runs checked above").0)
                .collect(),
        ))
    }
}

/// The outcome files under `dir`, sorted by name for deterministic error
/// reporting. Non-outcome files (temp files, manifests, stray editors) are
/// ignored.
fn outcome_paths(dir: &Path) -> Result<Vec<PathBuf>, StoreError> {
    let mut paths = Vec::new();
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name.starts_with("run-") && name.ends_with(".json") {
            paths.push(path);
        }
    }
    paths.sort();
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PrefetcherConfig;
    use shift_trace::{presets, Scale};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("shift-store-test-{tag}"));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    #[test]
    fn outcome_files_round_trip() {
        let dir = temp_dir("round-trip");
        let mut matrix = RunMatrix::new();
        let w = presets::tiny();
        let handle = matrix.standalone(&w, PrefetcherConfig::None, 2, Scale::Test, 5);
        let outcomes = matrix.execute_serial();

        write_outcome(
            &dir,
            matrix.fingerprint(),
            &matrix.keys()[0],
            &outcomes[handle],
        )
        .expect("write outcome");
        let path = dir.join(outcome_file_name(matrix.key_ids()[0]));
        let record = read_outcome(&path).expect("read outcome");
        assert_eq!(record.matrix, matrix.fingerprint());
        assert_eq!(record.key_id, matrix.key_ids()[0]);
        assert_eq!(record.result, outcomes[handle]);

        let merged = RunStore::new([&dir]).load(&matrix).expect("merge");
        assert_eq!(merged[handle], outcomes[handle]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_files_are_rejected_with_reasons() {
        let dir = temp_dir("corrupt");
        let mut matrix = RunMatrix::new();
        let w = presets::tiny();
        let handle = matrix.standalone(&w, PrefetcherConfig::None, 2, Scale::Test, 5);
        let outcomes = matrix.execute_serial();
        write_outcome(
            &dir,
            matrix.fingerprint(),
            &matrix.keys()[0],
            &outcomes[handle],
        )
        .unwrap();
        let path = dir.join(outcome_file_name(matrix.key_ids()[0]));

        // Truncated JSON.
        let original = fs::read_to_string(&path).unwrap();
        fs::write(&path, &original[..original.len() / 2]).unwrap();
        assert!(matches!(
            read_outcome(&path),
            Err(StoreError::Malformed { .. })
        ));

        // key_id that does not match the embedded key.
        let tampered = original.replace(
            &format!("\"key_id\": \"{}\"", matrix.key_ids()[0]),
            "\"key_id\": \"0000000000000000\"",
        );
        assert_ne!(tampered, original);
        fs::write(&path, tampered).unwrap();
        let err = read_outcome(&path).unwrap_err();
        assert!(err.to_string().contains("hashes to"), "{err}");

        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn temp_and_stray_files_are_ignored() {
        let dir = temp_dir("stray");
        let mut matrix = RunMatrix::new();
        let w = presets::tiny();
        let handle = matrix.standalone(&w, PrefetcherConfig::None, 2, Scale::Test, 5);
        let outcomes = matrix.execute_serial();
        write_outcome(
            &dir,
            matrix.fingerprint(),
            &matrix.keys()[0],
            &outcomes[handle],
        )
        .unwrap();
        // A crashed writer's temp file and unrelated clutter must not break
        // the merge.
        fs::write(dir.join(".tmp-dead.json"), "{").unwrap();
        fs::write(dir.join("notes.txt"), "scratch").unwrap();
        let merged = RunStore::new([&dir]).load(&matrix).expect("merge");
        assert_eq!(merged.len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }
}
