//! The sweep engine: deduplicated run matrices executed across all cores.
//!
//! The paper's evaluation is a large matrix of (workload × prefetcher ×
//! scale × seed) simulations, and several figures share runs — most notably
//! the no-prefetch baseline, which every speedup is normalized against. This
//! module gives all experiment drivers one way to declare such a sweep:
//!
//! 1. **Plan** — add runs to a [`RunMatrix`]. Each call returns a cheap
//!    [`RunHandle`]; adding a run whose full configuration (CMP config,
//!    options, and workload assignment) matches an already-planned run
//!    returns the *existing* handle, so shared runs — e.g. a baseline used
//!    by five prefetcher comparisons — are simulated exactly once.
//! 2. **Execute** — [`RunMatrix::execute`] runs all planned simulations on a
//!    pool of worker threads (one per available core by default, overridable
//!    with the `SHIFT_THREADS` environment variable) and returns
//!    [`RunOutcomes`] indexed by the handles.
//! 3. **Consume** — look up each run's [`RunResult`] by handle and derive
//!    the figure's rows.
//!
//! Every simulation is fully deterministic in its key (the only randomness
//! comes from generators seeded by [`SimOptions::seed`]), so the parallel
//! execution is bit-identical to [`RunMatrix::execute_serial`] — a property
//! locked in by the `runner` integration tests.
//!
//! # Example
//!
//! ```
//! use shift_sim::{PrefetcherConfig, RunMatrix};
//! use shift_trace::{presets, Scale};
//!
//! let mut matrix = RunMatrix::new();
//! let workload = presets::tiny();
//! let baseline = matrix.standalone(&workload, PrefetcherConfig::None, 4, Scale::Test, 42);
//! let shift = matrix.standalone(&workload, PrefetcherConfig::shift_virtualized(), 4, Scale::Test, 42);
//! // Re-planning an identical run is free: it returns the same handle.
//! assert_eq!(baseline, matrix.standalone(&workload, PrefetcherConfig::None, 4, Scale::Test, 42));
//! assert_eq!(matrix.len(), 2);
//!
//! let outcomes = matrix.execute();
//! assert!(outcomes[shift].speedup_over(&outcomes[baseline]) > 1.0);
//! ```

use std::ops::Index;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};
use shift_trace::{ConsolidationSpec, Scale, WorkloadSpec};

use crate::config::{CmpConfig, PrefetcherConfig, SimOptions};
use crate::results::RunResult;
use crate::system::Simulation;

/// Process-wide matrix id source, so a handle can prove which matrix planned
/// it (see [`RunHandle`]).
static NEXT_MATRIX_ID: AtomicU64 = AtomicU64::new(0);

/// Handle to one planned run in a [`RunMatrix`]; index into the matrix's
/// [`RunOutcomes`] to get its [`RunResult`].
///
/// # Invariant
///
/// A handle is only valid against [`RunOutcomes`] executed from the *same*
/// matrix that planned it. Handles carry the id of their planning matrix, so
/// resolving one against a different matrix's outcomes panics with a
/// diagnostic (or returns `None` from [`RunOutcomes::try_get`]) instead of
/// silently reading another plan's result.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RunHandle {
    matrix: u64,
    slot: usize,
}

/// The identity of one simulation run: everything that determines its result.
///
/// Two runs with equal keys produce bit-identical [`RunResult`]s, so the
/// planner simulates only one of them. The key covers the full CMP
/// configuration (including the prefetcher), the simulation options (scale,
/// seed, prediction-only and miss-elimination modes), and the complete
/// workload-to-core assignment — equality is plain structural equality over
/// all of them. Keys serialize (the `reproduce` driver records the planned
/// matrix alongside its artifacts).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunKey {
    config: CmpConfig,
    options: SimOptions,
    consolidation: ConsolidationSpec,
}

impl RunKey {
    fn of(sim: &Simulation) -> Self {
        RunKey {
            config: *sim.config(),
            options: *sim.options(),
            consolidation: sim.consolidation().clone(),
        }
    }
}

/// A deduplicated plan of simulation runs, executed in parallel.
///
/// See the [module documentation](self) for the plan / execute / consume
/// workflow. The full pipeline — plan a sweep, execute it once, write the
/// derived figure as a machine-readable artifact — looks like this:
///
/// ```
/// use shift_report::{Artifact, Check, Reference, Table};
/// use shift_sim::{PrefetcherConfig, RunMatrix};
/// use shift_trace::{presets, Scale};
///
/// // Plan: identical keys deduplicate, so the baseline is simulated once
/// // no matter how many comparisons reference it.
/// let mut matrix = RunMatrix::new();
/// let workload = presets::tiny();
/// let baseline = matrix.standalone(&workload, PrefetcherConfig::None, 2, Scale::Test, 7);
/// let shift = matrix.standalone(
///     &workload,
///     PrefetcherConfig::shift_virtualized(),
///     2,
///     Scale::Test,
///     7,
/// );
///
/// // Execute: one parallel sweep over all planned runs.
/// let outcomes = matrix.execute();
/// let speedup = outcomes[shift].speedup_over(&outcomes[baseline]);
///
/// // Artifact-write: JSON (full result tree), CSV, and markdown, plus a
/// // reference check against the paper's value.
/// let mut table = Table::new(["workload", "speedup"]);
/// table.push_row([workload.name.as_str(), &format!("{speedup:.3}")]);
/// let artifact = Artifact::new("quick", "SHIFT speedup", &outcomes[shift], table)
///     .with_reference(Reference::new("speedup", speedup, Check::at_least(1.0)));
/// let dir = std::env::temp_dir().join("shift-runner-doctest");
/// let paths = artifact.write_to(&dir).unwrap();
/// assert_eq!(paths.len(), 3);
/// # std::fs::remove_dir_all(&dir).unwrap();
/// ```
#[derive(Debug)]
pub struct RunMatrix {
    id: u64,
    plans: Vec<Simulation>,
    keys: Vec<RunKey>,
}

impl Default for RunMatrix {
    fn default() -> Self {
        RunMatrix::new()
    }
}

impl RunMatrix {
    /// An empty matrix.
    pub fn new() -> Self {
        RunMatrix {
            id: NEXT_MATRIX_ID.fetch_add(1, Ordering::Relaxed),
            plans: Vec::new(),
            keys: Vec::new(),
        }
    }

    /// Plans a standalone-workload run on the paper's CMP
    /// ([`CmpConfig::micro13`]) with the given prefetcher.
    pub fn standalone(
        &mut self,
        workload: &WorkloadSpec,
        prefetcher: PrefetcherConfig,
        cores: u16,
        scale: Scale,
        seed: u64,
    ) -> RunHandle {
        self.standalone_with(
            CmpConfig::micro13(cores, prefetcher),
            workload,
            SimOptions::new(scale, seed),
        )
    }

    /// Plans a standalone-workload run with an explicit CMP configuration and
    /// options (core-kind overrides, prediction-only mode, …).
    pub fn standalone_with(
        &mut self,
        config: CmpConfig,
        workload: &WorkloadSpec,
        options: SimOptions,
    ) -> RunHandle {
        self.plan(Simulation::standalone(config, workload.clone(), options))
    }

    /// Plans a consolidated run of several workloads sharing the CMP.
    ///
    /// # Panics
    ///
    /// Panics if the consolidation spec's core count differs from the CMP's.
    pub fn consolidated(
        &mut self,
        config: CmpConfig,
        consolidation: &ConsolidationSpec,
        options: SimOptions,
    ) -> RunHandle {
        self.plan(Simulation::consolidated(
            config,
            consolidation.clone(),
            options,
        ))
    }

    /// Plans an arbitrary pre-built simulation.
    ///
    /// Deduplication is a linear scan over the planned keys: matrices hold at
    /// most a few hundred runs, and each key comparison is far cheaper than
    /// the seconds-to-minutes simulation it saves.
    pub fn plan(&mut self, sim: Simulation) -> RunHandle {
        let key = RunKey::of(&sim);
        if let Some(existing) = self.keys.iter().position(|k| *k == key) {
            return RunHandle {
                matrix: self.id,
                slot: existing,
            };
        }
        let slot = self.plans.len();
        self.plans.push(sim);
        self.keys.push(key);
        RunHandle {
            matrix: self.id,
            slot,
        }
    }

    /// The deduplicated keys of every planned run, in plan order.
    pub fn keys(&self) -> &[RunKey] {
        &self.keys
    }

    /// Number of distinct runs planned (after deduplication).
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// `true` if no runs are planned.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }

    /// Executes every planned run across the default worker-thread count:
    /// the `SHIFT_THREADS` environment variable if set, otherwise one thread
    /// per available hardware core.
    pub fn execute(&self) -> RunOutcomes {
        self.execute_with_threads(default_threads())
    }

    /// Executes every planned run on the calling thread, in plan order.
    pub fn execute_serial(&self) -> RunOutcomes {
        self.execute_with_threads(1)
    }

    /// Executes every planned run on exactly `threads` worker threads.
    ///
    /// Results are keyed by plan position, so the outcome is independent of
    /// which worker runs which simulation: for the same matrix, any thread
    /// count yields bit-identical [`RunOutcomes`].
    pub fn execute_with_threads(&self, threads: usize) -> RunOutcomes {
        RunOutcomes {
            matrix: self.id,
            results: parallel_map_with_threads(&self.plans, threads, Simulation::run),
        }
    }
}

/// Results of a [`RunMatrix`] execution, indexed by [`RunHandle`].
#[derive(Clone, Debug)]
pub struct RunOutcomes {
    matrix: u64,
    results: Vec<RunResult>,
}

impl RunOutcomes {
    /// The result of the given planned run.
    ///
    /// # Panics
    ///
    /// Panics with a diagnostic if `handle` was planned by a *different*
    /// [`RunMatrix`] (see the invariant on [`RunHandle`]), or if it was
    /// planned after this matrix executed. Use [`RunOutcomes::try_get`] for a
    /// checked lookup.
    pub fn get(&self, handle: RunHandle) -> &RunResult {
        assert_eq!(
            handle.matrix, self.matrix,
            "RunHandle was planned by RunMatrix #{} but these outcomes were executed \
             from RunMatrix #{}; handles are only valid against outcomes of the \
             matrix that planned them",
            handle.matrix, self.matrix,
        );
        self.results.get(handle.slot).unwrap_or_else(|| {
            panic!(
                "RunHandle #{} was planned after RunMatrix #{} executed \
                 (outcomes hold {} runs); re-execute the matrix after planning",
                handle.slot,
                self.matrix,
                self.results.len(),
            )
        })
    }

    /// Checked lookup: `None` if `handle` belongs to a different matrix or
    /// was planned after this matrix executed.
    pub fn try_get(&self, handle: RunHandle) -> Option<&RunResult> {
        if handle.matrix != self.matrix {
            return None;
        }
        self.results.get(handle.slot)
    }

    /// Number of executed runs.
    pub fn len(&self) -> usize {
        self.results.len()
    }

    /// `true` if the matrix was empty.
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }
}

impl Index<RunHandle> for RunOutcomes {
    type Output = RunResult;

    fn index(&self, handle: RunHandle) -> &RunResult {
        self.get(handle)
    }
}

/// Default worker-thread count: `SHIFT_THREADS` if set to a positive integer,
/// otherwise the number of available hardware threads.
pub fn default_threads() -> usize {
    if let Ok(value) = std::env::var("SHIFT_THREADS") {
        if let Ok(n) = value.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
        eprintln!("ignoring invalid SHIFT_THREADS `{value}`");
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Applies `f` to every item on the default worker-thread pool, returning the
/// outputs in item order.
///
/// This is the same executor [`RunMatrix`] uses, exposed for sweeps that are
/// not plain `Simulation::run` calls (the commonality opportunity study, the
/// storage-table arithmetic).
pub fn parallel_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    parallel_map_with_threads(items, default_threads(), f)
}

fn parallel_map_with_threads<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let n = items.len();
    let workers = threads.clamp(1, n.max(1));
    if workers == 1 {
        return items.iter().map(f).collect();
    }

    // Work-stealing by atomic counter: each worker claims the next unclaimed
    // item and writes its result into that item's dedicated slot, so the
    // output order (and therefore determinism) never depends on scheduling.
    let slots: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let output = f(&items[i]);
                *slots[i].lock().expect("result slot poisoned") = Some(output);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker completed every claimed item")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use shift_trace::presets;

    #[test]
    fn identical_plans_deduplicate_to_one_run() {
        let mut matrix = RunMatrix::new();
        let w = presets::tiny();
        let a = matrix.standalone(&w, PrefetcherConfig::None, 4, Scale::Test, 7);
        let b = matrix.standalone(&w, PrefetcherConfig::None, 4, Scale::Test, 7);
        assert_eq!(a, b);
        assert_eq!(matrix.len(), 1);

        // Any differing component of the key is a distinct run.
        let c = matrix.standalone(&w, PrefetcherConfig::None, 4, Scale::Test, 8);
        let d = matrix.standalone(&w, PrefetcherConfig::next_line(), 4, Scale::Test, 7);
        let e = matrix.standalone(&w, PrefetcherConfig::None, 8, Scale::Test, 7);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert_ne!(a, e);
        assert_eq!(matrix.len(), 4);
    }

    #[test]
    fn options_and_workload_identity_are_part_of_the_key() {
        let mut matrix = RunMatrix::new();
        let w = presets::tiny();
        let config = CmpConfig::micro13(4, PrefetcherConfig::pif_32k());
        let plain = matrix.standalone_with(config, &w, SimOptions::new(Scale::Test, 3));
        let predict = matrix.standalone_with(
            config,
            &w,
            SimOptions::new(Scale::Test, 3).prediction_only(),
        );
        let scaled = matrix.standalone_with(
            config,
            &w.clone().scaled_footprint(0.5),
            SimOptions::new(Scale::Test, 3),
        );
        assert_ne!(plain, predict);
        assert_ne!(plain, scaled);
        assert_eq!(matrix.len(), 3);
    }

    #[test]
    fn outcomes_are_indexed_by_handle() {
        let mut matrix = RunMatrix::new();
        let w = presets::tiny();
        let baseline = matrix.standalone(&w, PrefetcherConfig::None, 2, Scale::Test, 5);
        let nl = matrix.standalone(&w, PrefetcherConfig::next_line(), 2, Scale::Test, 5);
        let outcomes = matrix.execute_with_threads(2);
        assert_eq!(outcomes.len(), 2);
        assert_eq!(outcomes[baseline].prefetcher, "Baseline");
        assert_eq!(outcomes[nl].prefetcher, "NextLine");
        assert!(outcomes[nl].speedup_over(&outcomes[baseline]) > 1.0);
    }

    #[test]
    fn handle_from_another_matrix_is_rejected() {
        let w = presets::tiny();
        let mut a = RunMatrix::new();
        let mut b = RunMatrix::new();
        let handle_a = a.standalone(&w, PrefetcherConfig::None, 2, Scale::Test, 5);
        let handle_b = b.standalone(&w, PrefetcherConfig::None, 2, Scale::Test, 5);
        // Same plan, but the handles are not interchangeable across matrices.
        assert_ne!(handle_a, handle_b);
        let outcomes_b = b.execute_serial();
        assert!(outcomes_b.try_get(handle_b).is_some());
        assert!(outcomes_b.try_get(handle_a).is_none());
    }

    #[test]
    #[should_panic(expected = "matrix that planned them")]
    fn get_with_foreign_handle_panics_with_diagnostic() {
        let w = presets::tiny();
        let mut a = RunMatrix::new();
        let mut b = RunMatrix::new();
        let handle_a = a.standalone(&w, PrefetcherConfig::None, 2, Scale::Test, 5);
        let _ = b.standalone(&w, PrefetcherConfig::None, 2, Scale::Test, 5);
        let outcomes_b = b.execute_serial();
        let _ = outcomes_b.get(handle_a);
    }

    #[test]
    #[should_panic(expected = "planned after")]
    fn get_with_late_planned_handle_panics_with_diagnostic() {
        let w = presets::tiny();
        let mut matrix = RunMatrix::new();
        let _ = matrix.standalone(&w, PrefetcherConfig::None, 2, Scale::Test, 5);
        let outcomes = matrix.execute_serial();
        let late = matrix.standalone(&w, PrefetcherConfig::next_line(), 2, Scale::Test, 5);
        assert!(outcomes.try_get(late).is_none());
        let _ = outcomes.get(late);
    }

    #[test]
    fn keys_serialize_for_the_reproduce_manifest() {
        let w = presets::tiny();
        let mut matrix = RunMatrix::new();
        let _ = matrix.standalone(&w, PrefetcherConfig::shift_virtualized(), 2, Scale::Test, 5);
        assert_eq!(matrix.keys().len(), 1);
        let json = serde::json::to_string(&matrix.keys()[0]);
        assert!(json.contains("\"config\""), "got {json}");
        assert!(json.contains("\"Shift\""), "got {json}");
    }

    #[test]
    fn empty_matrix_executes_to_empty_outcomes() {
        let matrix = RunMatrix::new();
        assert!(matrix.is_empty());
        let outcomes = matrix.execute();
        assert!(outcomes.is_empty());
        assert_eq!(outcomes.len(), 0);
    }

    #[test]
    fn parallel_map_preserves_item_order() {
        let items: Vec<u64> = (0..103).collect();
        let doubled = parallel_map(&items, |&x| x * 2);
        assert_eq!(doubled, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
        let singleton = parallel_map(&[42u64], |&x| x + 1);
        assert_eq!(singleton, vec![43]);
        let empty: Vec<u64> = parallel_map(&[] as &[u64], |&x| x);
        assert!(empty.is_empty());
    }
}
