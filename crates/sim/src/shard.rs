//! The **execute** stage of the sweep pipeline: running a deterministic
//! slice of a [`RunMatrix`] with durable, resumable per-run outcomes.
//!
//! A [`ShardSpec`] `k/N` selects every run whose rank in the matrix's
//! canonical ordering is congruent to `k − 1` modulo `N` — a partition, so
//! the `N` shards of a matrix are disjoint and cover it exactly, and every
//! process that plans the same sweep computes the same slices.
//! Shard execution ([`Execution::shard`](crate::Execution::shard)) simulates
//! the slice on the local worker pool and writes each completed run as a
//! keyed outcome file (see [`crate::store`] for the schema) the moment it
//! finishes.
//!
//! Execution is *resumable*: a run whose valid outcome file already exists
//! is skipped, so re-running a shard after a crash (or preemption, or a CI
//! retry) only simulates what is still missing and converges to the same
//! bit-identical directory contents. Outcome files are written atomically
//! (temp file + rename), so a kill mid-write never corrupts the store.
//!
//! The trivial `1/1` shard ([`ShardSpec::full`]) makes single-process
//! execution just a special case of the same protocol.
//!
//! # Elastic execution: the work queue
//!
//! Static `K/N` slices assume the `N` hosts are equal; when they are not,
//! the sweep drains at the pace of the slowest shard. Queue execution
//! ([`Execution::queue`](crate::Execution::queue)) is the elastic
//! alternative: every worker sees the *whole* matrix and claims the next
//! unowned run through an atomic lock file in the shared outcome directory,
//! so fast hosts simply claim more runs and the queue drains at the
//! aggregate pace. The claim protocol and its invariants are documented on
//! `queue_inner` (and in `docs/SWEEP.md`); the directory layout (outcome
//! files, lock files) is owned by [`crate::store`].
//!
//! # Incremental execution: the delta
//!
//! `Execution::new(&matrix).reuse(partial)` closes the loop on outcome
//! reuse: probe an old directory with
//! [`RunStore::load_partial`](crate::store::RunStore::load_partial), then
//! execute only the planned runs the cache missed. Combined with
//! [`seed_outcomes`](crate::store::seed_outcomes) this turns any outcome
//! directory into a cross-sweep simulation cache.
//!
//! # Entry point
//!
//! Every execution mode — serial, threaded, shard slice, elastic queue,
//! cached delta — is driven through the [`Execution`](crate::Execution)
//! builder ([`crate::execution`]), which also owns the scheduling policy,
//! cost calibration, and the unified
//! [`ExecutionReport`](crate::ExecutionReport). The `execute_*` free
//! functions that used to live here (and the legacy per-mode `QueueReport`)
//! were deprecated once every in-tree caller migrated, and have been
//! removed; this module now exports only the building blocks the builder
//! composes (specs, configs, reports, observers, cancellation).

use std::fmt;
use std::io;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, SystemTime, UNIX_EPOCH};

use crate::matrix::{parallel_map_with_threads, MatrixFingerprint, RunKeyId, RunMatrix};
use crate::results::RunResult;
use crate::schedule::{rank_by_cost, CostModel, RunCost, SchedulePolicy};
use crate::store::{
    lock_file_name, outcome_file_name, outcome_is_valid, read_lock, write_outcome, LockRecord,
    PartialLoad, RunOutcomes,
};

/// Which slice of a sweep this process executes: shard `index` of `total`
/// (1-based, so the CLI spelling `--shard 2/4` reads naturally).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ShardSpec {
    index: usize,
    total: usize,
}

impl ShardSpec {
    /// Shard `index` of `total`.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= index <= total`.
    pub fn new(index: usize, total: usize) -> Self {
        assert!(total >= 1, "shard total must be at least 1");
        assert!(
            (1..=total).contains(&index),
            "shard index must be in 1..={total}, got {index}"
        );
        ShardSpec { index, total }
    }

    /// The whole matrix as one shard (`1/1`): single-process execution.
    pub fn full() -> Self {
        ShardSpec { index: 1, total: 1 }
    }

    /// Parses the CLI spelling `K/N` (e.g. `2/4`).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for anything but `K/N` with
    /// `1 <= K <= N`.
    pub fn parse(text: &str) -> Result<Self, String> {
        let (index, total) = text
            .split_once('/')
            .ok_or_else(|| format!("shard spec must be K/N (e.g. 2/4), got `{text}`"))?;
        let index: usize = index
            .trim()
            .parse()
            .map_err(|_| format!("bad shard index in `{text}`"))?;
        let total: usize = total
            .trim()
            .parse()
            .map_err(|_| format!("bad shard total in `{text}`"))?;
        if total == 0 || !(1..=total).contains(&index) {
            return Err(format!(
                "shard index must be in 1..={total}, got {index} (from `{text}`)"
            ));
        }
        Ok(ShardSpec { index, total })
    }

    /// This shard's 1-based index.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Total number of shards the sweep is split into.
    pub fn total(&self) -> usize {
        self.total
    }

    /// `true` if this is the whole-matrix shard `1/1`.
    pub fn is_full(&self) -> bool {
        self.total == 1
    }

    /// `true` if the run at canonical `rank` belongs to this shard.
    ///
    /// Round-robin over canonical ranks balances the slice sizes to within
    /// one run and keeps any locality in the canonical ordering (e.g. all
    /// scales of one workload) spread across shards.
    pub fn selects(&self, rank: usize) -> bool {
        rank % self.total == self.index - 1
    }
}

impl fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.total)
    }
}

impl FromStr for ShardSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        ShardSpec::parse(s)
    }
}

/// How much of a shard's slice ran versus resumed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardReport {
    /// The executed shard.
    pub spec: ShardSpec,
    /// Runs in this shard's slice of the matrix.
    pub planned: usize,
    /// Runs simulated by this invocation.
    pub executed: usize,
    /// Runs skipped because a valid outcome file already existed (resume
    /// after a crash or a previous partial invocation).
    pub resumed: usize,
}

/// The shard executor behind the [`Execution`](crate::Execution) builder's
/// durable modes.
pub(crate) fn shard_inner(
    matrix: &RunMatrix,
    spec: ShardSpec,
    dir: &Path,
    threads: usize,
) -> io::Result<ShardReport> {
    std::fs::create_dir_all(dir)?;
    let fingerprint = matrix.fingerprint();
    let slots: Vec<usize> = matrix
        .canonical_order()
        .into_iter()
        .enumerate()
        .filter(|&(rank, _)| spec.selects(rank))
        .map(|(_, slot)| slot)
        .collect();

    // Each worker claims a run, resumes it from disk if a valid outcome is
    // already there, simulates and persists it otherwise. Results land in
    // slot order regardless of scheduling (see `parallel_map`), so the
    // report is deterministic too.
    let ran: Vec<Result<bool, String>> = parallel_map_with_threads(&slots, threads, |&slot| {
        let key = &matrix.keys()[slot];
        let path = dir.join(outcome_file_name(matrix.key_ids()[slot]));
        if outcome_is_valid(&path, fingerprint, key) {
            return Ok(false);
        }
        // Missing, unreadable, foreign, or stale: (re-)execute and overwrite.
        let result = matrix.simulation(slot).run();
        write_outcome(dir, fingerprint, key, &result).map_err(|e| {
            format!(
                "failed to write outcome {} under {}: {e}",
                matrix.key_ids()[slot],
                dir.display()
            )
        })?;
        Ok(true)
    });

    let mut executed = 0usize;
    let mut resumed = 0usize;
    for entry in ran {
        match entry {
            Ok(true) => executed += 1,
            Ok(false) => resumed += 1,
            Err(message) => return Err(io::Error::other(message)),
        }
    }
    Ok(ShardReport {
        spec,
        planned: slots.len(),
        executed,
        resumed,
    })
}

/// Seconds since the Unix epoch on this machine's clock (0 if the clock is
/// before the epoch — staleness checks degrade to "always stale" then,
/// which errs toward re-execution, the safe direction).
fn unix_now() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| d.as_secs())
}

/// Process-wide worker-id counter so concurrent in-process queue workers
/// (tests, multi-worker drivers) get distinct identities.
static NEXT_WORKER: AtomicU64 = AtomicU64::new(0);

/// How one work-queue worker identifies itself and times the lock protocol.
#[derive(Clone, Debug)]
pub struct QueueConfig {
    /// Worker id recorded in claim locks. Diagnostics only — mutual
    /// exclusion never depends on it. Restricted to filename-safe
    /// characters (it also names reclaim temp files).
    pub worker: String,
    /// Age past which another worker's claim counts as abandoned and may be
    /// reclaimed. Live workers re-stamp their claims every poll tick (see
    /// [`LockHeartbeat`]), so this only needs to comfortably exceed the
    /// [`QueueConfig::poll`] interval plus any cross-machine clock skew —
    /// *not* the longest single simulation. Too small still risks duplicate
    /// execution (wasteful but safe — outcomes are idempotent and
    /// bit-identical), too large delays recovery after a worker dies.
    pub lock_ttl: Duration,
    /// Sleep between passes while every remaining run is claimed by live
    /// workers; also the interval at which this worker's own claims are
    /// heartbeat-refreshed while simulating.
    pub poll: Duration,
    /// `true` (the operator default): keep polling until the whole matrix
    /// has outcomes, so a worker returning success means the sweep is
    /// complete. `false`: return as soon as nothing more is claimable,
    /// reporting [`ExecutionReport::complete`](crate::ExecutionReport)
    /// accordingly.
    pub wait: bool,
    /// In what order this worker walks the not-yet-done runs when claiming.
    /// [`SchedulePolicy::CostOrdered`] claims biggest-first by [`RunCost`]
    /// (see [`crate::schedule`]); the default keeps the stable canonical
    /// order. Either way every run is eventually claimed — the policy only
    /// changes claim order and makespan, never results.
    pub policy: SchedulePolicy,
    /// Seed for this worker's measured drain rate, in weighted fetch units
    /// per second (`None`: unknown until the first run completes, unless a
    /// leftover lock from a previous incarnation of the same worker id holds
    /// a persisted rate). Lets operators pre-calibrate known-slow hosts.
    pub initial_rate: Option<u64>,
    /// Under [`SchedulePolicy::CostOrdered`], a worker whose measured rate
    /// predicts a run will take longer than this *defers* it — walks past it
    /// to cheaper runs, returning to it only when nothing cheaper is left.
    /// Fast workers are unaffected (their estimates stay under the cutoff),
    /// so the biggest runs land on the fastest hosts. Deferral never skips a
    /// run permanently: a lone slow worker still drains the whole queue.
    pub slow_cutoff: Duration,
    /// Artificial per-weighted-fetch-unit slowdown in nanoseconds, slept
    /// after each simulated run while its claim is still heartbeat-fresh.
    /// `0` (the default) disables it. This exists to emulate a slow host in
    /// tests and CI makespan experiments deterministically.
    pub throttle_ns_per_unit: u64,
}

impl QueueConfig {
    /// Default reclaim TTL: one hour. With heartbeats a live claim is
    /// re-stamped every poll tick, so much smaller TTLs (seconds, not the
    /// longest run) are safe when faster dead-worker recovery matters;
    /// the conservative default favors never reclaiming a live claim even
    /// under extreme clock skew. Override with [`QueueConfig::from_env`]'s
    /// `SHIFT_QUEUE_TTL` or directly.
    pub const DEFAULT_TTL: Duration = Duration::from_secs(3600);

    /// A worker named `worker` with default timing (TTL
    /// [`QueueConfig::DEFAULT_TTL`], 500 ms poll, wait-until-complete).
    /// Non-filename-safe characters in the name are replaced with `_`.
    pub fn new(worker: impl Into<String>) -> Self {
        let worker: String = worker
            .into()
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        QueueConfig {
            worker,
            lock_ttl: Self::DEFAULT_TTL,
            poll: Duration::from_millis(500),
            wait: true,
            policy: SchedulePolicy::default(),
            initial_rate: None,
            slow_cutoff: Self::DEFAULT_SLOW_CUTOFF,
            throttle_ns_per_unit: 0,
        }
    }

    /// Default slowness cutoff: five minutes. At the calibrated baseline
    /// rate (~2.3 M weighted fetch units/s) this is far above any paper-scale
    /// run, so only a genuinely slow (or throttled) worker ever defers.
    pub const DEFAULT_SLOW_CUTOFF: Duration = Duration::from_secs(300);

    /// A worker with a generated id (`pid<pid>-w<n>`) and knobs from the
    /// environment:
    ///
    /// * `SHIFT_QUEUE_TTL` — reclaim TTL in seconds (default
    ///   [`QueueConfig::DEFAULT_TTL`]);
    /// * `SHIFT_SCHED_POLICY` — `canonical` or `cost` (claim ordering);
    /// * `SHIFT_QUEUE_RATE` — initial rate estimate, weighted fetch units/s;
    /// * `SHIFT_QUEUE_CUTOFF` — slowness cutoff in seconds;
    /// * `SHIFT_QUEUE_THROTTLE` — artificial slowdown, ns per weighted
    ///   fetch unit (test/CI instrumentation).
    pub fn from_env() -> Self {
        let mut config = QueueConfig::new(format!(
            "pid{}-w{}",
            std::process::id(),
            NEXT_WORKER.fetch_add(1, Ordering::Relaxed)
        ));
        if let Ok(value) = std::env::var("SHIFT_QUEUE_TTL") {
            match value.trim().parse::<u64>() {
                Ok(secs) => config.lock_ttl = Duration::from_secs(secs),
                Err(_) => eprintln!("ignoring invalid SHIFT_QUEUE_TTL `{value}`"),
            }
        }
        if let Ok(value) = std::env::var("SHIFT_SCHED_POLICY") {
            match value.parse::<SchedulePolicy>() {
                Ok(policy) => config.policy = policy,
                Err(e) => eprintln!("ignoring invalid SHIFT_SCHED_POLICY: {e}"),
            }
        }
        if let Ok(value) = std::env::var("SHIFT_QUEUE_RATE") {
            match value.trim().parse::<u64>() {
                Ok(rate) if rate > 0 => config.initial_rate = Some(rate),
                _ => eprintln!("ignoring invalid SHIFT_QUEUE_RATE `{value}`"),
            }
        }
        if let Ok(value) = std::env::var("SHIFT_QUEUE_CUTOFF") {
            match value.trim().parse::<u64>() {
                Ok(secs) => config.slow_cutoff = Duration::from_secs(secs),
                Err(_) => eprintln!("ignoring invalid SHIFT_QUEUE_CUTOFF `{value}`"),
            }
        }
        if let Ok(value) = std::env::var("SHIFT_QUEUE_THROTTLE") {
            match value.trim().parse::<u64>() {
                Ok(ns) => config.throttle_ns_per_unit = ns,
                Err(_) => eprintln!("ignoring invalid SHIFT_QUEUE_THROTTLE `{value}`"),
            }
        }
        config
    }
}

/// Cooperative cancellation handle for library-embedded executors.
///
/// Long-running hosts (the `shift-serve` daemon, notebooks, schedulers)
/// share a clone of the token with
/// [`Execution::cancel`](crate::Execution::cancel) and call
/// [`CancelToken::cancel`] to stop the drain at the next safe point: workers
/// finish the run they have claimed — releasing its lock and persisting its
/// outcome, so nothing is orphaned — and then return with
/// [`ExecutionReport::complete`](crate::ExecutionReport) `false` instead of
/// claiming further runs.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// `true` once any clone has requested cancellation.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// One progress event from an observed queue drain
/// ([`Execution::observer`](crate::Execution::observer)).
///
/// Events are emitted from worker threads as they happen, so an observer
/// sees them in real execution order (and must be [`Sync`]). Every planned
/// run produces exactly one terminal event per worker that proves it done —
/// [`RunEvent::Executed`] on the worker that simulated it,
/// [`RunEvent::AlreadyDone`] on workers that found it finished.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunEvent {
    /// This worker claimed the run and is about to simulate it. Carries the
    /// scheduler's reasoning — together these fields are the claim's
    /// decision-log entry: *this* run was picked because it sat at `rank` in
    /// the policy ordering, cost `cost`, and the worker was draining at
    /// `worker_rate`.
    Claimed {
        /// The claimed run.
        key_id: RunKeyId,
        /// The run's estimated cost under the active [`CostModel`].
        cost: RunCost,
        /// The run's position in the full-matrix claim ordering of the
        /// active [`SchedulePolicy`] (0 = claimed first).
        rank: usize,
        /// The worker's measured drain rate in weighted fetch units per
        /// second at claim time; `None` before its first completed run.
        worker_rate: Option<u64>,
    },
    /// This worker finished simulating the run and persisted its outcome.
    Executed {
        /// The completed run.
        key_id: RunKeyId,
    },
    /// A valid outcome for the run already existed (another worker, a
    /// previous invocation, or a seeded cache hit).
    AlreadyDone {
        /// The already-complete run.
        key_id: RunKeyId,
    },
    /// This worker reclaimed a stale claim left by a dead worker.
    Reclaimed {
        /// The run whose stale lock was reclaimed.
        key_id: RunKeyId,
    },
}

impl RunEvent {
    /// The run this event is about.
    pub fn key_id(&self) -> RunKeyId {
        match *self {
            RunEvent::Claimed { key_id, .. }
            | RunEvent::Executed { key_id }
            | RunEvent::AlreadyDone { key_id }
            | RunEvent::Reclaimed { key_id } => key_id,
        }
    }
}

/// Receives [`RunEvent`]s from an observed queue drain. Implemented for any
/// `Fn(RunEvent) + Sync` closure, so ad-hoc observers need no newtype.
pub trait RunObserver: Sync {
    /// Called once per event, from the worker thread that produced it.
    fn on_event(&self, event: RunEvent);
}

impl<F: Fn(RunEvent) + Sync> RunObserver for F {
    fn on_event(&self, event: RunEvent) {
        self(event);
    }
}

/// What happened when a worker tried to claim one run.
enum Claim {
    /// This worker took the claim and simulated the run.
    Executed { reclaimed: bool },
    /// A valid outcome already existed (another worker, or a previous run).
    AlreadyDone,
    /// Another live worker holds the claim.
    Blocked,
}

/// How a claim lock held by someone else looks to a contender.
enum LockState {
    /// The lock vanished (owner finished or was reclaimed): retry.
    Gone,
    /// Claimed recently enough to be presumed live.
    Fresh,
    /// Older than the TTL: the owner is presumed dead; reclaim.
    Stale,
}

/// Assesses another worker's lock: prefer the claim timestamp embedded in
/// the lock, falling back to file mtime when the lock is half-written or
/// unreadable (the owner died between creating and filling it).
fn lock_state(path: &Path, ttl: Duration) -> LockState {
    match read_lock(path) {
        Ok(record) => {
            if unix_now() >= record.claimed_unix.saturating_add(ttl.as_secs()) {
                LockState::Stale
            } else {
                LockState::Fresh
            }
        }
        Err(crate::store::StoreError::Io(e)) if e.kind() == io::ErrorKind::NotFound => {
            LockState::Gone
        }
        Err(_) => match std::fs::metadata(path).and_then(|m| m.modified()) {
            // `elapsed` errs when mtime is in the future (clock skew):
            // treat as fresh — never reclaim on skew alone.
            Ok(mtime) => match mtime.elapsed() {
                Ok(age) if age >= ttl => LockState::Stale,
                _ => LockState::Fresh,
            },
            Err(e) if e.kind() == io::ErrorKind::NotFound => LockState::Gone,
            Err(_) => LockState::Fresh,
        },
    }
}

/// Keeps a claim lock *fresh* while its owner executes a long run.
///
/// Spawned by the queue drain's claim path right after a lock is taken,
/// and dropped (stopping the refresher thread) as soon as the simulation
/// finishes: every `interval` the background thread rewrites the lock with a
/// current `claimed_unix`, refreshing both the embedded timestamp and the
/// file mtime that half-written locks are judged by. With heartbeats in
/// place, a lock only goes stale when its owner has actually stopped — so
/// [`QueueConfig::lock_ttl`] (`SHIFT_QUEUE_TTL`) needs to exceed only the
/// heartbeat interval plus clock skew, not the longest single run.
///
/// The refresher never *creates* the lock file: if a contender reclaimed it
/// (rename-based, see `queue_inner`) or the owner already released it,
/// recreating the path would orphan the slot until the TTL expired again.
/// A refresh that finds the file gone is simply skipped.
///
/// Public so external long-running executors that speak the claim protocol
/// directly (and tests) can keep their claims alive the same way.
#[derive(Debug)]
pub struct LockHeartbeat {
    stop: Arc<(Mutex<bool>, Condvar)>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl LockHeartbeat {
    /// Starts refreshing the lock at `path` every `interval` until dropped.
    /// `key_id` and `worker` are rewritten into the lock on every beat.
    pub fn spawn(path: PathBuf, key_id: RunKeyId, worker: String, interval: Duration) -> Self {
        Self::spawn_with_rate(path, key_id, worker, interval, Arc::new(AtomicU64::new(0)))
    }

    /// [`LockHeartbeat::spawn`], additionally re-stamping the owner's
    /// current measured drain rate (read from `rate`; 0 means unknown and
    /// is omitted) into the lock on every beat. Persisting the rate through
    /// the lock is what lets a restarted worker recover its calibration by
    /// reading its own leftover claims.
    pub fn spawn_with_rate(
        path: PathBuf,
        key_id: RunKeyId,
        worker: String,
        interval: Duration,
        rate: Arc<AtomicU64>,
    ) -> Self {
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let signal = Arc::clone(&stop);
        let thread = std::thread::spawn(move || {
            let (flag, wake) = &*signal;
            let mut stopped = flag.lock().expect("heartbeat flag poisoned");
            loop {
                let (guard, _) = wake
                    .wait_timeout(stopped, interval)
                    .expect("heartbeat flag poisoned");
                stopped = guard;
                if *stopped {
                    return;
                }
                let measured = rate.load(Ordering::Relaxed);
                refresh_lock(&path, key_id, &worker, (measured > 0).then_some(measured));
            }
        });
        LockHeartbeat {
            stop,
            thread: Some(thread),
        }
    }
}

impl Drop for LockHeartbeat {
    fn drop(&mut self) {
        let (flag, wake) = &*self.stop;
        *flag.lock().expect("heartbeat flag poisoned") = true;
        wake.notify_all();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// One heartbeat: rewrite the existing lock with a current timestamp.
/// Truncate-in-place on an already-open handle, never create — see
/// [`LockHeartbeat`] for why resurrection would be harmful. A reader racing
/// the rewrite can observe a half-written lock; it falls back to the file
/// mtime, which the rewrite also refreshed, so the claim still reads fresh.
fn refresh_lock(path: &Path, key_id: RunKeyId, worker: &str, rate: Option<u64>) {
    let record = LockRecord {
        key_id,
        worker: worker.to_owned(),
        claimed_unix: unix_now(),
        rate,
    };
    if let Ok(mut file) = std::fs::OpenOptions::new()
        .write(true)
        .truncate(true)
        .open(path)
    {
        let _ = file.write_all(record.to_json().as_bytes());
    }
}

/// Everything shared by every claim attempt of one queue drain: the plan,
/// the directory, the worker's configuration, the scheduler state, and the
/// embedding hooks.
struct DrainCtx<'a> {
    matrix: &'a RunMatrix,
    fingerprint: MatrixFingerprint,
    dir: &'a Path,
    config: &'a QueueConfig,
    observer: &'a dyn RunObserver,
    cancel: &'a CancelToken,
    /// Per-slot estimated cost under the active model (plan order).
    costs: &'a [RunCost],
    /// Per-slot rank in the full-matrix claim ordering of the active policy.
    ranks: &'a [usize],
    /// This worker's measured drain rate in weighted fetch units per second
    /// (0 = unknown). Shared with every worker thread and the heartbeats.
    rate: &'a Arc<AtomicU64>,
}

impl DrainCtx<'_> {
    /// The worker's current rate, `None` while still unmeasured.
    fn current_rate(&self) -> Option<u64> {
        let rate = self.rate.load(Ordering::Relaxed);
        (rate > 0).then_some(rate)
    }

    /// Folds one completed run into the worker's measured rate: the first
    /// sample is taken as-is, later samples are blended half-and-half with
    /// the running estimate so the rate tracks drift without whiplashing on
    /// one outlier run.
    fn record_rate(&self, cost: RunCost, elapsed: Duration) {
        let secs = elapsed.as_secs_f64();
        if secs <= 0.0 {
            return;
        }
        let sample = (cost.units() as f64 / secs).round().max(1.0) as u64;
        let previous = self.rate.load(Ordering::Relaxed);
        let blended = if previous == 0 {
            sample
        } else {
            previous / 2 + sample / 2
        };
        self.rate.store(blended.max(1), Ordering::Relaxed);
    }
}

/// Tries to claim and execute the run in plan-order `slot`.
///
/// The claim sequence (each step atomic on POSIX filesystems):
///
/// 1. if a valid outcome exists, the run is done — no claim needed;
/// 2. create `claim-<id>.lock` with `O_CREAT|O_EXCL` — exclusive creation
///    is the entire mutual-exclusion mechanism;
/// 3. re-check the outcome (another worker may have finished between 1 and
///    2), then simulate — with a [`LockHeartbeat`] refreshing the lock every
///    poll tick so the claim never looks stale while the run is live — and
///    write the outcome (temp file + rename), then remove the lock;
/// 4. on a lost creation race: a fresh foreign lock blocks; a stale one is
///    reclaimed by *renaming* it to a worker-unique name — exactly one
///    contender wins the rename — and retrying from step 1.
fn claim_one(ctx: &DrainCtx<'_>, slot: usize) -> io::Result<Claim> {
    let DrainCtx {
        matrix,
        fingerprint,
        dir,
        config,
        observer,
        ..
    } = *ctx;
    let key = &matrix.keys()[slot];
    let key_id = matrix.key_ids()[slot];
    let outcome = dir.join(outcome_file_name(key_id));
    let lock = dir.join(lock_file_name(key_id));
    let mut reclaimed = false;
    loop {
        if outcome_is_valid(&outcome, fingerprint, key) {
            observer.on_event(RunEvent::AlreadyDone { key_id });
            return Ok(Claim::AlreadyDone);
        }
        match std::fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&lock)
        {
            Ok(mut file) => {
                let record = LockRecord {
                    key_id,
                    worker: config.worker.clone(),
                    claimed_unix: unix_now(),
                    rate: ctx.current_rate(),
                };
                // Best-effort: an empty lock still excludes; readers fall
                // back to its mtime for staleness.
                let _ = file.write_all(record.to_json().as_bytes());
                drop(file);
                // Double-check: the run may have completed between the
                // validity check and our claim.
                if outcome_is_valid(&outcome, fingerprint, key) {
                    let _ = std::fs::remove_file(&lock);
                    observer.on_event(RunEvent::AlreadyDone { key_id });
                    return Ok(Claim::AlreadyDone);
                }
                let cost = ctx.costs[slot];
                observer.on_event(RunEvent::Claimed {
                    key_id,
                    cost,
                    rank: ctx.ranks[slot],
                    worker_rate: ctx.current_rate(),
                });
                // Keep the claim visibly alive for the whole simulation, so
                // the TTL can be far shorter than the longest run.
                let heartbeat = LockHeartbeat::spawn_with_rate(
                    lock.clone(),
                    key_id,
                    config.worker.clone(),
                    config.poll,
                    Arc::clone(ctx.rate),
                );
                let started = std::time::Instant::now();
                let result = matrix.simulation(slot).run();
                if config.throttle_ns_per_unit > 0 {
                    // Emulated slow host: sleep in proportion to the run's
                    // cost, with the heartbeat still stamping the claim so
                    // it never looks abandoned.
                    std::thread::sleep(Duration::from_nanos(
                        cost.units().saturating_mul(config.throttle_ns_per_unit),
                    ));
                }
                ctx.record_rate(cost, started.elapsed());
                drop(heartbeat);
                let written = write_outcome(dir, fingerprint, key, &result);
                let _ = std::fs::remove_file(&lock);
                written?;
                observer.on_event(RunEvent::Executed { key_id });
                return Ok(Claim::Executed { reclaimed });
            }
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                match lock_state(&lock, config.lock_ttl) {
                    LockState::Gone => continue,
                    LockState::Fresh => return Ok(Claim::Blocked),
                    LockState::Stale => {
                        let tomb = dir.join(format!(".reclaim-{key_id}-{}", config.worker));
                        if std::fs::rename(&lock, &tomb).is_ok() {
                            let _ = std::fs::remove_file(&tomb);
                            reclaimed = true;
                            observer.on_event(RunEvent::Reclaimed { key_id });
                        }
                        // Rename lost ⇒ someone else reclaimed or the owner
                        // finished; either way, re-evaluate from the top.
                        continue;
                    }
                }
            }
            Err(e) => return Err(e),
        }
    }
}

/// Per-pass tallies of a queue worker.
#[derive(Default)]
struct PassStats {
    executed: usize,
    already: usize,
    reclaimed: usize,
    blocked: usize,
}

/// One pass over `candidates`: worker threads race down the list claiming
/// what they can. Runs proven complete (executed here, or found done) are
/// marked in `done` so later passes skip re-validating them — outcome
/// validity is monotonic, a valid file never becomes invalid.
fn queue_pass(
    ctx: &DrainCtx<'_>,
    threads: usize,
    candidates: &[usize],
    done: &[std::sync::atomic::AtomicBool],
) -> io::Result<PassStats> {
    let workers = threads.clamp(1, candidates.len().max(1));
    let cursor = std::sync::atomic::AtomicUsize::new(0);
    let stats = Mutex::new(PassStats::default());
    let failure: Mutex<Option<io::Error>> = Mutex::new(None);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                if ctx.cancel.is_cancelled() {
                    break;
                }
                if failure.lock().expect("failure flag poisoned").is_some() {
                    break;
                }
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(&slot) = candidates.get(i) else {
                    break;
                };
                match claim_one(ctx, slot) {
                    Ok(claim) => {
                        let mut stats = stats.lock().expect("stats poisoned");
                        match claim {
                            Claim::Executed { reclaimed } => {
                                done[slot].store(true, Ordering::Relaxed);
                                stats.executed += 1;
                                if reclaimed {
                                    stats.reclaimed += 1;
                                }
                            }
                            Claim::AlreadyDone => {
                                done[slot].store(true, Ordering::Relaxed);
                                stats.already += 1;
                            }
                            Claim::Blocked => stats.blocked += 1,
                        }
                    }
                    Err(e) => {
                        failure
                            .lock()
                            .expect("failure flag poisoned")
                            .get_or_insert(e);
                        break;
                    }
                }
            });
        }
    });
    if let Some(e) = failure.into_inner().expect("failure flag poisoned") {
        return Err(e);
    }
    Ok(stats.into_inner().expect("stats poisoned"))
}

/// Full tallies of one queue worker's drain, including outcomes it *found*
/// done rather than executed — what the unified
/// [`ExecutionReport`](crate::ExecutionReport) reports as reused.
pub(crate) struct QueueDrain {
    pub planned: usize,
    pub executed: usize,
    pub already: usize,
    pub reclaimed: usize,
    pub passes: usize,
    pub complete: bool,
}

/// Recovers a restarted worker's measured rate from its own leftover claim
/// locks: a worker that died (or was killed) mid-drain left locks whose
/// heartbeats persisted its last rate estimate, so its successor — same
/// operator-assigned worker id — resumes calibrated instead of cold.
fn recover_rate(dir: &Path, worker: &str) -> Option<u64> {
    let entries = std::fs::read_dir(dir).ok()?;
    let mut best: Option<u64> = None;
    for entry in entries.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if !(name.starts_with("claim-") && name.ends_with(".lock")) {
            continue;
        }
        if let Ok(record) = read_lock(&entry.path()) {
            if record.worker == worker {
                if let Some(rate) = record.rate {
                    best = Some(best.map_or(rate, |b| b.max(rate)));
                }
            }
        }
    }
    best
}

/// The queue executor behind the [`Execution`](crate::Execution) builder's
/// queue mode: full scheduler support (claim ordering policy, per-worker
/// rate measurement and recovery, slowness deferral) plus the extended
/// tallies.
///
/// Every participating worker (any number of processes on any number of
/// hosts sharing `dir`) drains the same planned matrix; each run executes
/// exactly once under cooperating workers, and at least once — always
/// converging to the same bit-identical outcome files — under crashes and
/// reclaims. The four-step claim sequence is documented in `docs/SWEEP.md`
/// (§ "The lock-file / reclaim protocol"); its invariants:
///
/// * **Mutual exclusion** comes from `O_CREAT|O_EXCL` lock creation; lock
///   *contents* are diagnostics only.
/// * **Crash safety**: outcomes are written atomically before the lock is
///   released, so a lock's absence plus an outcome's presence proves
///   completion; a killed worker leaves at most one lock, which goes stale
///   after [`QueueConfig::lock_ttl`] and is reclaimed by rename (exactly
///   one contender can win).
/// * **Idempotence**: runs are deterministic in their key, so even a
///   duplicate execution after an over-eager reclaim rewrites byte-identical
///   content.
pub(crate) fn queue_inner(
    matrix: &RunMatrix,
    dir: &Path,
    config: &QueueConfig,
    threads: usize,
    observer: &dyn RunObserver,
    cancel: &CancelToken,
    model: &CostModel,
) -> io::Result<QueueDrain> {
    std::fs::create_dir_all(dir)?;
    // The claim ordering is a pure function of the plan and the model, so
    // every worker computes the same ranking with no coordination.
    let order = match config.policy {
        SchedulePolicy::Canonical => matrix.canonical_order(),
        SchedulePolicy::CostOrdered => rank_by_cost(model, matrix),
    };
    let costs: Vec<RunCost> = matrix.keys().iter().map(|key| model.cost(key)).collect();
    let mut ranks = vec![0usize; matrix.len()];
    for (rank, &slot) in order.iter().enumerate() {
        ranks[slot] = rank;
    }
    let rate = Arc::new(AtomicU64::new(
        config
            .initial_rate
            .or_else(|| recover_rate(dir, &config.worker))
            .unwrap_or(0),
    ));
    let ctx = DrainCtx {
        matrix,
        fingerprint: matrix.fingerprint(),
        dir,
        config,
        observer,
        cancel,
        costs: &costs,
        ranks: &ranks,
        rate: &rate,
    };
    // Completion is monotonic, so it is remembered across passes: only
    // not-yet-done slots are (re-)examined, and `claim_one` performs the
    // actual on-disk validity check for those. Without this, an idle worker
    // would re-read and re-parse every completed outcome file on every
    // poll tick — painful on a large sweep over a network filesystem.
    let done: Vec<std::sync::atomic::AtomicBool> = (0..matrix.len())
        .map(|_| std::sync::atomic::AtomicBool::new(false))
        .collect();
    let mut report = QueueDrain {
        planned: matrix.len(),
        executed: 0,
        already: 0,
        reclaimed: 0,
        passes: 0,
        complete: false,
    };
    loop {
        if cancel.is_cancelled() {
            return Ok(report);
        }
        report.passes += 1;
        let mut candidates: Vec<usize> = order
            .iter()
            .copied()
            .filter(|&slot| !done[slot].load(Ordering::Relaxed))
            .collect();
        if candidates.is_empty() {
            report.complete = true;
            return Ok(report);
        }
        // Slowness deferral: once this worker has a measured rate, runs it
        // would hold for longer than the cutoff move to the back of *its*
        // claim order — fast contenders pick them up first, but nothing is
        // ever skipped outright, so a lone slow worker still completes.
        if config.policy == SchedulePolicy::CostOrdered {
            if let Some(rate) = ctx.current_rate() {
                let (mut preferred, deferred): (Vec<usize>, Vec<usize>) =
                    candidates.into_iter().partition(|&slot| {
                        costs[slot]
                            .duration_at(rate)
                            .is_none_or(|d| d <= config.slow_cutoff)
                    });
                preferred.extend(deferred);
                candidates = preferred;
            }
        }
        let stats = queue_pass(&ctx, threads, &candidates, &done)?;
        report.executed += stats.executed;
        report.already += stats.already;
        report.reclaimed += stats.reclaimed;
        if cancel.is_cancelled() {
            return Ok(report);
        }
        if stats.executed == 0 && stats.blocked > 0 {
            // Everything left is claimed by other live workers: wait for
            // them (their completion or their locks going stale both
            // unblock the next pass), or hand the tally back.
            if !config.wait {
                return Ok(report);
            }
            std::thread::sleep(config.poll);
        }
    }
}

/// Seeds only this shard's slice of `partial`'s cache hits into `dir`
/// (under `matrix`'s own fingerprint), returning how many files it wrote.
///
/// The slice restriction is what keeps `--reuse` composable with static
/// sharding: each of the `N` shard directories receives only the runs its
/// [`ShardSpec`] owns, so the directories stay disjoint and the strict
/// merge's [`DuplicateKey`](crate::store::StoreError::DuplicateKey) check
/// still catches genuinely overlapping shards. Use
/// [`seed_outcomes`](crate::store::seed_outcomes) (the
/// [`ShardSpec::full`] equivalent) for queue and single-directory modes,
/// where one directory holds the whole sweep.
///
/// # Panics
///
/// Panics if `partial` was probed against a different matrix.
///
/// # Errors
///
/// Propagates filesystem errors creating `dir` or writing outcome files.
pub fn seed_shard_outcomes(
    matrix: &RunMatrix,
    partial: &PartialLoad,
    dir: &Path,
    spec: ShardSpec,
) -> io::Result<usize> {
    let slots: Vec<usize> = matrix
        .canonical_order()
        .into_iter()
        .enumerate()
        .filter(|&(rank, _)| spec.selects(rank))
        .map(|(_, slot)| slot)
        .collect();
    crate::store::seed_outcome_slots(matrix, partial, dir, &slots)
}

/// Outcomes assembled from cache hits plus a freshly executed delta.
#[derive(Debug)]
pub struct DeltaReport {
    /// The complete outcomes for the planned matrix.
    pub outcomes: RunOutcomes,
    /// Runs answered from the cache ([`PartialLoad::reused`]).
    pub reused: usize,
    /// Runs this call simulated (the cache misses).
    pub executed: usize,
}

/// The delta executor behind the [`Execution`](crate::Execution) builder's
/// reuse mode: completes a [`PartialLoad`] in memory by executing only the
/// planned runs the cache missed, returning full [`RunOutcomes`]
/// indistinguishable from an end-to-end execution — the reuse-safety
/// argument in [`crate::store`] is what makes the splice sound. Panics if
/// `partial` was probed against a different matrix.
pub(crate) fn delta_inner(matrix: &RunMatrix, partial: PartialLoad, threads: usize) -> DeltaReport {
    let missing = partial.missing_slots(matrix);
    let fresh: Vec<RunResult> =
        parallel_map_with_threads(&missing, threads, |&slot| matrix.simulation(slot).run());
    let reused = partial.reused;
    let mut results = partial.into_results();
    for (&slot, result) in missing.iter().zip(fresh) {
        results[slot] = Some(result);
    }
    DeltaReport {
        outcomes: RunOutcomes::from_results(
            matrix.local_id(),
            results
                .into_iter()
                .map(|r| r.expect("hits plus delta cover every slot"))
                .collect(),
        ),
        reused,
        executed: missing.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PrefetcherConfig;
    use crate::store::{read_outcome, RunStore};
    use shift_trace::{presets, Scale};
    use std::fs;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("shift-shard-test-{tag}"));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn small_matrix() -> RunMatrix {
        let mut matrix = RunMatrix::new();
        let w = presets::tiny();
        for seed in [3u64, 4] {
            for p in [PrefetcherConfig::None, PrefetcherConfig::next_line()] {
                matrix.standalone(&w, p, 2, Scale::Test, seed);
            }
        }
        matrix
    }

    #[test]
    fn spec_parsing_and_selection() {
        assert_eq!(ShardSpec::parse("2/4"), Ok(ShardSpec::new(2, 4)));
        assert_eq!("1/1".parse::<ShardSpec>(), Ok(ShardSpec::full()));
        assert!(ShardSpec::parse("0/4").is_err());
        assert!(ShardSpec::parse("5/4").is_err());
        assert!(ShardSpec::parse("2").is_err());
        assert!(ShardSpec::parse("a/b").is_err());
        assert_eq!(ShardSpec::new(2, 4).to_string(), "2/4");

        // The N shards partition any rank range.
        for total in 1..=5usize {
            for rank in 0..23usize {
                let owners = (1..=total)
                    .filter(|&i| ShardSpec::new(i, total).selects(rank))
                    .count();
                assert_eq!(owners, 1, "rank {rank} of {total} shards");
            }
        }
    }

    #[test]
    #[should_panic(expected = "shard index must be in")]
    fn zero_index_rejected() {
        let _ = ShardSpec::new(0, 4);
    }

    #[test]
    fn full_shard_covers_the_matrix_and_resumes() {
        let dir = temp_dir("full");
        let matrix = small_matrix();
        let report = shard_inner(&matrix, ShardSpec::full(), &dir, 2).unwrap();
        assert_eq!(report.planned, matrix.len());
        assert_eq!(report.executed, matrix.len());
        assert_eq!(report.resumed, 0);

        // Second invocation: everything resumes, nothing re-runs, and the
        // directory contents are untouched.
        let before: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| {
                let p = e.unwrap().path();
                (p.clone(), fs::read_to_string(p).unwrap())
            })
            .collect();
        let again = shard_inner(&matrix, ShardSpec::full(), &dir, 2).unwrap();
        assert_eq!(again.executed, 0);
        assert_eq!(again.resumed, matrix.len());
        for (path, content) in before {
            assert_eq!(fs::read_to_string(path).unwrap(), content);
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn killed_shard_resumes_only_missing_runs() {
        let dir = temp_dir("resume");
        let matrix = small_matrix();
        shard_inner(&matrix, ShardSpec::full(), &dir, 1).unwrap();

        // Simulate a crash that lost two outcomes (plus a half-written temp
        // file the atomic rename protocol would have left behind).
        let mut outcome_files: Vec<PathBuf> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        outcome_files.sort();
        fs::remove_file(&outcome_files[0]).unwrap();
        fs::remove_file(&outcome_files[2]).unwrap();
        fs::write(dir.join(".tmp-dead.json"), "{\"schema\":").unwrap();

        let report = shard_inner(&matrix, ShardSpec::full(), &dir, 2).unwrap();
        assert_eq!(report.executed, 2);
        assert_eq!(report.resumed, matrix.len() - 2);

        // The converged directory still merges to a complete, valid sweep.
        let outcomes = RunStore::new([&dir]).load(&matrix).expect("merge");
        assert_eq!(outcomes.len(), matrix.len());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_outcome_is_re_executed() {
        let dir = temp_dir("corrupt");
        let matrix = small_matrix();
        shard_inner(&matrix, ShardSpec::full(), &dir, 1).unwrap();
        let victim = dir.join(outcome_file_name(matrix.key_ids()[0]));
        fs::write(&victim, "not json at all").unwrap();

        let report = shard_inner(&matrix, ShardSpec::full(), &dir, 1).unwrap();
        assert_eq!(report.executed, 1, "only the corrupt outcome re-runs");
        assert!(
            read_outcome(&victim).is_ok(),
            "overwritten with a valid file"
        );
        fs::remove_dir_all(&dir).unwrap();
    }
}
