//! The **execute** stage of the sweep pipeline: running a deterministic
//! slice of a [`RunMatrix`] with durable, resumable per-run outcomes.
//!
//! A [`ShardSpec`] `k/N` selects every run whose rank in the matrix's
//! canonical ordering is congruent to `k − 1` modulo `N` — a partition, so
//! the `N` shards of a matrix are disjoint and cover it exactly, and every
//! process that plans the same sweep computes the same slices.
//! [`execute_shard`] simulates the slice on the local worker pool and writes
//! each completed run as a keyed outcome file (see [`crate::store`] for the
//! schema) the moment it finishes.
//!
//! Execution is *resumable*: a run whose valid outcome file already exists
//! is skipped, so re-running a shard after a crash (or preemption, or a CI
//! retry) only simulates what is still missing and converges to the same
//! bit-identical directory contents. Outcome files are written atomically
//! (temp file + rename), so a kill mid-write never corrupts the store.
//!
//! The trivial `1/1` shard ([`ShardSpec::full`]) makes single-process
//! execution just a special case of the same protocol.

use std::fmt;
use std::io;
use std::path::Path;
use std::str::FromStr;

use crate::matrix::{default_threads, parallel_map_with_threads, RunMatrix};
use crate::store::{outcome_file_name, read_outcome, write_outcome};

/// Which slice of a sweep this process executes: shard `index` of `total`
/// (1-based, so the CLI spelling `--shard 2/4` reads naturally).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ShardSpec {
    index: usize,
    total: usize,
}

impl ShardSpec {
    /// Shard `index` of `total`.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= index <= total`.
    pub fn new(index: usize, total: usize) -> Self {
        assert!(total >= 1, "shard total must be at least 1");
        assert!(
            (1..=total).contains(&index),
            "shard index must be in 1..={total}, got {index}"
        );
        ShardSpec { index, total }
    }

    /// The whole matrix as one shard (`1/1`): single-process execution.
    pub fn full() -> Self {
        ShardSpec { index: 1, total: 1 }
    }

    /// Parses the CLI spelling `K/N` (e.g. `2/4`).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for anything but `K/N` with
    /// `1 <= K <= N`.
    pub fn parse(text: &str) -> Result<Self, String> {
        let (index, total) = text
            .split_once('/')
            .ok_or_else(|| format!("shard spec must be K/N (e.g. 2/4), got `{text}`"))?;
        let index: usize = index
            .trim()
            .parse()
            .map_err(|_| format!("bad shard index in `{text}`"))?;
        let total: usize = total
            .trim()
            .parse()
            .map_err(|_| format!("bad shard total in `{text}`"))?;
        if total == 0 || !(1..=total).contains(&index) {
            return Err(format!(
                "shard index must be in 1..={total}, got {index} (from `{text}`)"
            ));
        }
        Ok(ShardSpec { index, total })
    }

    /// This shard's 1-based index.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Total number of shards the sweep is split into.
    pub fn total(&self) -> usize {
        self.total
    }

    /// `true` if this is the whole-matrix shard `1/1`.
    pub fn is_full(&self) -> bool {
        self.total == 1
    }

    /// `true` if the run at canonical `rank` belongs to this shard.
    ///
    /// Round-robin over canonical ranks balances the slice sizes to within
    /// one run and keeps any locality in the canonical ordering (e.g. all
    /// scales of one workload) spread across shards.
    pub fn selects(&self, rank: usize) -> bool {
        rank % self.total == self.index - 1
    }
}

impl fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.total)
    }
}

impl FromStr for ShardSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        ShardSpec::parse(s)
    }
}

/// What [`execute_shard`] did: how much of the slice ran versus resumed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardReport {
    /// The executed shard.
    pub spec: ShardSpec,
    /// Runs in this shard's slice of the matrix.
    pub planned: usize,
    /// Runs simulated by this invocation.
    pub executed: usize,
    /// Runs skipped because a valid outcome file already existed (resume
    /// after a crash or a previous partial invocation).
    pub resumed: usize,
}

/// Executes this shard's slice of `matrix` into `dir` on the default worker
/// pool, skipping runs whose outcomes are already present.
///
/// # Errors
///
/// Propagates filesystem errors creating `dir` or writing outcome files.
pub fn execute_shard(matrix: &RunMatrix, spec: ShardSpec, dir: &Path) -> io::Result<ShardReport> {
    execute_shard_with_threads(matrix, spec, dir, default_threads())
}

/// [`execute_shard`] with an explicit worker-thread count.
///
/// # Errors
///
/// Propagates filesystem errors creating `dir` or writing outcome files.
pub fn execute_shard_with_threads(
    matrix: &RunMatrix,
    spec: ShardSpec,
    dir: &Path,
    threads: usize,
) -> io::Result<ShardReport> {
    std::fs::create_dir_all(dir)?;
    let fingerprint = matrix.fingerprint();
    let slots: Vec<usize> = matrix
        .canonical_order()
        .into_iter()
        .enumerate()
        .filter(|&(rank, _)| spec.selects(rank))
        .map(|(_, slot)| slot)
        .collect();

    // Each worker claims a run, resumes it from disk if a valid outcome is
    // already there, simulates and persists it otherwise. Results land in
    // slot order regardless of scheduling (see `parallel_map`), so the
    // report is deterministic too.
    let ran: Vec<Result<bool, String>> = parallel_map_with_threads(&slots, threads, |&slot| {
        let key = &matrix.keys()[slot];
        let path = dir.join(outcome_file_name(matrix.key_ids()[slot]));
        if path.exists() {
            if let Ok(record) = read_outcome(&path) {
                if record.matrix == fingerprint && record.key_json == key.canonical_json() {
                    return Ok(false);
                }
            }
            // Unreadable, foreign, or stale: re-execute and overwrite.
        }
        let result = matrix.simulation(slot).run();
        write_outcome(dir, fingerprint, key, &result).map_err(|e| {
            format!(
                "failed to write outcome {} under {}: {e}",
                matrix.key_ids()[slot],
                dir.display()
            )
        })?;
        Ok(true)
    });

    let mut executed = 0usize;
    let mut resumed = 0usize;
    for entry in ran {
        match entry {
            Ok(true) => executed += 1,
            Ok(false) => resumed += 1,
            Err(message) => return Err(io::Error::other(message)),
        }
    }
    Ok(ShardReport {
        spec,
        planned: slots.len(),
        executed,
        resumed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PrefetcherConfig;
    use crate::store::RunStore;
    use shift_trace::{presets, Scale};
    use std::fs;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("shift-shard-test-{tag}"));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn small_matrix() -> RunMatrix {
        let mut matrix = RunMatrix::new();
        let w = presets::tiny();
        for seed in [3u64, 4] {
            for p in [PrefetcherConfig::None, PrefetcherConfig::next_line()] {
                matrix.standalone(&w, p, 2, Scale::Test, seed);
            }
        }
        matrix
    }

    #[test]
    fn spec_parsing_and_selection() {
        assert_eq!(ShardSpec::parse("2/4"), Ok(ShardSpec::new(2, 4)));
        assert_eq!("1/1".parse::<ShardSpec>(), Ok(ShardSpec::full()));
        assert!(ShardSpec::parse("0/4").is_err());
        assert!(ShardSpec::parse("5/4").is_err());
        assert!(ShardSpec::parse("2").is_err());
        assert!(ShardSpec::parse("a/b").is_err());
        assert_eq!(ShardSpec::new(2, 4).to_string(), "2/4");

        // The N shards partition any rank range.
        for total in 1..=5usize {
            for rank in 0..23usize {
                let owners = (1..=total)
                    .filter(|&i| ShardSpec::new(i, total).selects(rank))
                    .count();
                assert_eq!(owners, 1, "rank {rank} of {total} shards");
            }
        }
    }

    #[test]
    #[should_panic(expected = "shard index must be in")]
    fn zero_index_rejected() {
        let _ = ShardSpec::new(0, 4);
    }

    #[test]
    fn full_shard_covers_the_matrix_and_resumes() {
        let dir = temp_dir("full");
        let matrix = small_matrix();
        let report = execute_shard_with_threads(&matrix, ShardSpec::full(), &dir, 2).unwrap();
        assert_eq!(report.planned, matrix.len());
        assert_eq!(report.executed, matrix.len());
        assert_eq!(report.resumed, 0);

        // Second invocation: everything resumes, nothing re-runs, and the
        // directory contents are untouched.
        let before: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| {
                let p = e.unwrap().path();
                (p.clone(), fs::read_to_string(p).unwrap())
            })
            .collect();
        let again = execute_shard_with_threads(&matrix, ShardSpec::full(), &dir, 2).unwrap();
        assert_eq!(again.executed, 0);
        assert_eq!(again.resumed, matrix.len());
        for (path, content) in before {
            assert_eq!(fs::read_to_string(path).unwrap(), content);
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn killed_shard_resumes_only_missing_runs() {
        let dir = temp_dir("resume");
        let matrix = small_matrix();
        execute_shard_with_threads(&matrix, ShardSpec::full(), &dir, 1).unwrap();

        // Simulate a crash that lost two outcomes (plus a half-written temp
        // file the atomic rename protocol would have left behind).
        let mut outcome_files: Vec<PathBuf> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        outcome_files.sort();
        fs::remove_file(&outcome_files[0]).unwrap();
        fs::remove_file(&outcome_files[2]).unwrap();
        fs::write(dir.join(".tmp-dead.json"), "{\"schema\":").unwrap();

        let report = execute_shard_with_threads(&matrix, ShardSpec::full(), &dir, 2).unwrap();
        assert_eq!(report.executed, 2);
        assert_eq!(report.resumed, matrix.len() - 2);

        // The converged directory still merges to a complete, valid sweep.
        let outcomes = RunStore::new([&dir]).load(&matrix).expect("merge");
        assert_eq!(outcomes.len(), matrix.len());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_outcome_is_re_executed() {
        let dir = temp_dir("corrupt");
        let matrix = small_matrix();
        execute_shard_with_threads(&matrix, ShardSpec::full(), &dir, 1).unwrap();
        let victim = dir.join(outcome_file_name(matrix.key_ids()[0]));
        fs::write(&victim, "not json at all").unwrap();

        let report = execute_shard_with_threads(&matrix, ShardSpec::full(), &dir, 1).unwrap();
        assert_eq!(report.executed, 1, "only the corrupt outcome re-runs");
        assert!(
            read_outcome(&victim).is_ok(),
            "overwritten with a valid file"
        );
        fs::remove_dir_all(&dir).unwrap();
    }
}
