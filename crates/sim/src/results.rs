//! Result types produced by simulation runs.

use serde::{Deserialize, Serialize};
use shift_cache::{CacheStats, TrafficStats};
use shift_types::AccessClass;

/// Version of the *result semantics* this binary produces.
///
/// Bump this constant in the same change that alters what any simulation
/// computes — a new or re-interpreted [`RunResult`] field, a model fix, any
/// deploy that intentionally re-blesses the golden files. Outcome files
/// record the version they were produced under, and every cache reader
/// (`RunStore::load`, `RunStore::load_partial`, shard resume, queue claims)
/// treats a mismatch as a cache miss, so `--reuse` and resumed sweeps
/// auto-invalidate across result-changing deploys instead of relying on an
/// operator remembering to wipe outcome directories.
///
/// Layout-only changes to the outcome *file* (renamed or re-typed JSON
/// fields) bump `shift_sim::store::OUTCOME_SCHEMA` instead; this constant is
/// about the meaning of the numbers, not their encoding.
pub const RESULTS_VERSION: u32 = 1;

/// Instruction-miss coverage accounting for one run.
///
/// "Covered" misses are baseline misses that the prefetcher turned into hits;
/// "uncovered" misses still reached the LLC; "overpredicted" blocks were
/// prefetched but evicted (discarded) before the core referenced them. All
/// three are normalized against the baseline miss count (covered +
/// uncovered), exactly as Figure 7 of the paper does.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoverageStats {
    /// Misses eliminated by prefetching.
    pub covered: u64,
    /// Misses that still occurred.
    pub uncovered: u64,
    /// Prefetched blocks discarded before use.
    pub overpredicted: u64,
    /// Misses that would have been predicted (prediction-only runs).
    pub predicted: u64,
}

impl CoverageStats {
    /// Baseline miss count this run is normalized against.
    pub fn baseline_misses(&self) -> u64 {
        self.covered + self.uncovered
    }

    /// Fraction of baseline misses eliminated.
    pub fn coverage(&self) -> f64 {
        let base = self.baseline_misses();
        if base == 0 {
            0.0
        } else {
            self.covered as f64 / base as f64
        }
    }

    /// Overpredicted blocks as a fraction of baseline misses.
    pub fn overprediction(&self) -> f64 {
        let base = self.baseline_misses();
        if base == 0 {
            0.0
        } else {
            self.overpredicted as f64 / base as f64
        }
    }

    /// Fraction of baseline misses predicted (prediction-only runs).
    pub fn predicted_fraction(&self) -> f64 {
        let base = self.baseline_misses();
        if base == 0 {
            0.0
        } else {
            self.predicted as f64 / base as f64
        }
    }

    /// Merges another run's coverage into this one.
    pub fn merge(&mut self, other: &CoverageStats) {
        self.covered += other.covered;
        self.uncovered += other.uncovered;
        self.overpredicted += other.overpredicted;
        self.predicted += other.predicted;
    }
}

/// Per-core measurement summary.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CoreResult {
    /// Retired instructions.
    pub instructions: u64,
    /// Instruction-block fetch events.
    pub fetches: u64,
    /// Total execution cycles (analytical timing model).
    pub cycles: f64,
    /// Instructions per cycle.
    pub ipc: f64,
    /// Raw (pre-overlap) instruction-fetch stall cycles accumulated.
    pub raw_fetch_stall_cycles: u64,
    /// Raw (pre-overlap) data stall cycles accumulated.
    pub raw_data_stall_cycles: u64,
    /// L1-I statistics.
    pub l1i: CacheStats,
    /// L1-D statistics.
    pub l1d: CacheStats,
    /// Coverage accounting for this core.
    pub coverage: CoverageStats,
}

/// Aggregate result of one simulation run.
///
/// Results serialize and deserialize losslessly (floats round-trip through
/// shortest formatting), which is what lets sharded sweeps persist each
/// run's outcome as JSON and merge bit-identically — see `shift_sim::store`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// Prefetcher label (e.g. `"SHIFT"`).
    pub prefetcher: String,
    /// Workload name(s).
    pub workloads: Vec<String>,
    /// Per-core results.
    pub per_core: Vec<CoreResult>,
    /// Aggregate coverage across cores.
    pub coverage: CoverageStats,
    /// LLC traffic broken down by class.
    pub llc_traffic: TrafficStats,
    /// Aggregate LLC hit/miss statistics.
    pub llc: CacheStats,
    /// Total NoC flit-hops carrying prefetcher-overhead traffic.
    pub overhead_flit_hops: u64,
    /// Total history-buffer LLC block accesses (reads + writes).
    pub history_block_accesses: u64,
    /// Total index-table updates/lookups issued to the LLC tag array.
    pub index_accesses: u64,
}

impl RunResult {
    /// System throughput: the sum of per-core IPCs (the paper's
    /// user-instructions-per-cycle throughput metric, summed over cores).
    pub fn throughput(&self) -> f64 {
        self.per_core.iter().map(|c| c.ipc).sum()
    }

    /// Average per-core cycles (used as the interval length for power
    /// estimates).
    pub fn mean_cycles(&self) -> f64 {
        if self.per_core.is_empty() {
            0.0
        } else {
            self.per_core.iter().map(|c| c.cycles).sum::<f64>() / self.per_core.len() as f64
        }
    }

    /// Total retired instructions across cores.
    pub fn total_instructions(&self) -> u64 {
        self.per_core.iter().map(|c| c.instructions).sum()
    }

    /// Aggregate L1-I misses per kilo-instruction.
    pub fn l1i_mpki(&self) -> f64 {
        let misses: u64 = self.per_core.iter().map(|c| c.l1i.misses).sum();
        let instr = self.total_instructions();
        if instr == 0 {
            0.0
        } else {
            misses as f64 * 1000.0 / instr as f64
        }
    }

    /// Speedup of this run over a baseline run (ratio of throughputs).
    pub fn speedup_over(&self, baseline: &RunResult) -> f64 {
        let base = baseline.throughput();
        if base == 0.0 {
            0.0
        } else {
            self.throughput() / base
        }
    }

    /// LLC traffic of `class` as a fraction of baseline demand traffic
    /// (the Figure 9 normalization).
    pub fn llc_overhead_ratio(&self, class: AccessClass) -> f64 {
        self.llc_traffic.overhead_ratio(class)
    }
}

/// Geometric mean of a set of positive values (the paper reports geometric
/// mean speedups).
///
/// Empty input and non-positive entries are rejected eagerly — `ln()` would
/// otherwise turn them into silently propagating NaN/-inf speedups.
///
/// # Panics
///
/// Panics if `values` is empty or contains non-positive (or NaN) entries.
pub fn geometric_mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geometric mean of empty set");
    assert!(
        values.iter().all(|&v| v > 0.0),
        "geometric mean requires positive values"
    );
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_fractions() {
        let c = CoverageStats {
            covered: 80,
            uncovered: 20,
            overpredicted: 15,
            predicted: 0,
        };
        assert_eq!(c.baseline_misses(), 100);
        assert!((c.coverage() - 0.8).abs() < 1e-12);
        assert!((c.overprediction() - 0.15).abs() < 1e-12);
    }

    #[test]
    fn empty_coverage_is_zero() {
        let c = CoverageStats::default();
        assert_eq!(c.coverage(), 0.0);
        assert_eq!(c.overprediction(), 0.0);
        assert_eq!(c.predicted_fraction(), 0.0);
    }

    #[test]
    fn merge_sums_fields() {
        let mut a = CoverageStats {
            covered: 1,
            uncovered: 2,
            overpredicted: 3,
            predicted: 4,
        };
        a.merge(&a.clone());
        assert_eq!(a.covered, 2);
        assert_eq!(a.predicted, 8);
    }

    #[test]
    fn geometric_mean_of_uniform_values_is_the_value() {
        assert!((geometric_mean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        let gm = geometric_mean(&[1.0, 4.0]);
        assert!((gm - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geometric_mean_rejects_zero() {
        let _ = geometric_mean(&[1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn geometric_mean_rejects_empty_input() {
        let _ = geometric_mean(&[]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geometric_mean_rejects_nan() {
        let _ = geometric_mean(&[1.0, f64::NAN]);
    }

    fn result_with_ipcs(ipcs: &[f64]) -> RunResult {
        RunResult {
            prefetcher: "test".into(),
            workloads: vec!["w".into()],
            per_core: ipcs
                .iter()
                .map(|&ipc| CoreResult {
                    instructions: 1000,
                    fetches: 100,
                    cycles: 1000.0 / ipc,
                    ipc,
                    raw_fetch_stall_cycles: 0,
                    raw_data_stall_cycles: 0,
                    l1i: CacheStats::default(),
                    l1d: CacheStats::default(),
                    coverage: CoverageStats::default(),
                })
                .collect(),
            coverage: CoverageStats::default(),
            llc_traffic: TrafficStats::new(),
            llc: CacheStats::default(),
            overhead_flit_hops: 0,
            history_block_accesses: 0,
            index_accesses: 0,
        }
    }

    #[test]
    fn throughput_and_speedup() {
        let base = result_with_ipcs(&[0.5, 0.5]);
        let better = result_with_ipcs(&[0.6, 0.6]);
        assert!((base.throughput() - 1.0).abs() < 1e-12);
        assert!((better.speedup_over(&base) - 1.2).abs() < 1e-12);
        assert!(base.mean_cycles() > 0.0);
        assert_eq!(base.total_instructions(), 2000);
    }

    #[test]
    fn results_round_trip_through_json_bit_identically() {
        // The shard store persists results as JSON; every field — including
        // the awkward f64s like 1000/0.7 — must come back bit-identical.
        let original = result_with_ipcs(&[0.7, 1.0 / 3.0, 2.0]);
        let json = serde::json::to_string(&original);
        let back: RunResult = serde::json::from_str(&json).expect("round trip");
        assert_eq!(back, original);
        for (a, b) in back.per_core.iter().zip(&original.per_core) {
            assert_eq!(a.cycles.to_bits(), b.cycles.to_bits());
            assert_eq!(a.ipc.to_bits(), b.ipc.to_bits());
        }
        assert_eq!(serde::json::to_string(&back), json);
    }
}
