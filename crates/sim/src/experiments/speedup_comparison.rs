//! Figure 8: speedup of NextLine, PIF_2K, PIF_32K, ZeroLat-SHIFT, and SHIFT
//! over the no-prefetching baseline, per workload.

use std::fmt;

use serde::{Deserialize, Serialize};
use shift_trace::{Scale, WorkloadSpec};

use crate::config::PrefetcherConfig;
use crate::experiments::run_standalone;
use crate::results::geometric_mean;

/// One workload's speedups.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SpeedupRow {
    /// Workload name.
    pub workload: String,
    /// `(prefetcher label, speedup over baseline)` in configuration order.
    pub speedups: Vec<(String, f64)>,
}

/// The Figure 8 result.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SpeedupComparisonResult {
    /// One row per workload.
    pub rows: Vec<SpeedupRow>,
    /// Geometric-mean speedup per configuration, in configuration order.
    pub geomean: Vec<(String, f64)>,
}

impl SpeedupComparisonResult {
    /// Geometric-mean speedup of the configuration with the given label.
    pub fn geomean_of(&self, label: &str) -> Option<f64> {
        self.geomean
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, s)| *s)
    }
}

impl fmt::Display for SpeedupComparisonResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 8: speedup over the no-prefetch baseline")?;
        write!(f, "{:<18}", "workload")?;
        for (label, _) in &self.geomean {
            write!(f, "{label:>15}")?;
        }
        writeln!(f)?;
        for row in &self.rows {
            write!(f, "{:<18}", row.workload)?;
            for (_, speedup) in &row.speedups {
                write!(f, "{speedup:>15.3}")?;
            }
            writeln!(f)?;
        }
        write!(f, "{:<18}", "Geo. Mean")?;
        for (_, speedup) in &self.geomean {
            write!(f, "{speedup:>15.3}")?;
        }
        writeln!(f)
    }
}

/// Runs Figure 8 with the paper's five configurations.
pub fn speedup_comparison(
    workloads: &[WorkloadSpec],
    cores: u16,
    scale: Scale,
    seed: u64,
) -> SpeedupComparisonResult {
    speedup_comparison_with(
        workloads,
        &PrefetcherConfig::figure8_suite(),
        cores,
        scale,
        seed,
    )
}

/// Runs the speedup comparison for an arbitrary configuration list.
pub fn speedup_comparison_with(
    workloads: &[WorkloadSpec],
    prefetchers: &[PrefetcherConfig],
    cores: u16,
    scale: Scale,
    seed: u64,
) -> SpeedupComparisonResult {
    assert!(!workloads.is_empty() && !prefetchers.is_empty());
    let mut rows = Vec::new();
    for workload in workloads {
        let baseline = run_standalone(workload, PrefetcherConfig::None, cores, scale, seed);
        let speedups = prefetchers
            .iter()
            .map(|p| {
                let run = run_standalone(workload, *p, cores, scale, seed);
                (p.label(), run.speedup_over(&baseline))
            })
            .collect();
        rows.push(SpeedupRow {
            workload: workload.name.clone(),
            speedups,
        });
    }
    let geomean = prefetchers
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let values: Vec<f64> = rows.iter().map(|r| r.speedups[i].1).collect();
            (p.label(), geometric_mean(&values))
        })
        .collect();
    SpeedupComparisonResult { rows, geomean }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shift_trace::presets;

    #[test]
    fn stream_prefetchers_outperform_baseline_and_next_line() {
        let result = speedup_comparison_with(
            &[presets::tiny()],
            &[
                PrefetcherConfig::next_line(),
                PrefetcherConfig::pif_32k(),
                PrefetcherConfig::shift_virtualized(),
            ],
            4,
            Scale::Test,
            21,
        );
        let nl = result.geomean_of("NextLine").unwrap();
        let pif = result.geomean_of("PIF_32K").unwrap();
        let shift = result.geomean_of("SHIFT").unwrap();
        assert!(nl > 1.0);
        assert!(pif > nl, "PIF_32K ({pif}) must beat next-line ({nl})");
        assert!(shift > nl, "SHIFT ({shift}) must beat next-line ({nl})");
        assert!(!result.to_string().is_empty());
    }
}
