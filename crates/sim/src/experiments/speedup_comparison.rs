//! Figure 8: speedup of NextLine, PIF_2K, PIF_32K, ZeroLat-SHIFT, and SHIFT
//! over the no-prefetching baseline, per workload.
//!
//! The paper's claim: SHIFT delivers a 1.19 geometric-mean speedup —
//! matching the idealized ZeroLat-SHIFT (1.20) and retaining most of
//! PIF_32K's benefit (1.21) — while NextLine reaches only 1.09 and the
//! equal-storage PIF_2K ≈1.10. Each [`SpeedupRow`] holds one workload's
//! `(label, speedup)` pairs in configuration order; the `geomean` column is
//! the figure's summary bar.

use std::fmt;

use serde::{Deserialize, Serialize};
use shift_trace::{Scale, WorkloadSpec};

use crate::config::PrefetcherConfig;
use crate::matrix::{RunHandle, RunMatrix};
use crate::results::geometric_mean;
use crate::store::RunOutcomes;

/// One workload's speedups.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SpeedupRow {
    /// Workload name.
    pub workload: String,
    /// `(prefetcher label, speedup over baseline)` in configuration order.
    pub speedups: Vec<(String, f64)>,
}

/// The Figure 8 result.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SpeedupComparisonResult {
    /// One row per workload.
    pub rows: Vec<SpeedupRow>,
    /// Geometric-mean speedup per configuration, in configuration order.
    pub geomean: Vec<(String, f64)>,
}

impl SpeedupComparisonResult {
    /// Geometric-mean speedup of the configuration with the given label.
    pub fn geomean_of(&self, label: &str) -> Option<f64> {
        self.geomean
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, s)| *s)
    }
}

impl fmt::Display for SpeedupComparisonResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 8: speedup over the no-prefetch baseline")?;
        write!(f, "{:<18}", "workload")?;
        for (label, _) in &self.geomean {
            write!(f, "{label:>15}")?;
        }
        writeln!(f)?;
        for row in &self.rows {
            write!(f, "{:<18}", row.workload)?;
            for (_, speedup) in &row.speedups {
                write!(f, "{speedup:>15.3}")?;
            }
            writeln!(f)?;
        }
        write!(f, "{:<18}", "Geo. Mean")?;
        for (_, speedup) in &self.geomean {
            write!(f, "{speedup:>15.3}")?;
        }
        writeln!(f)
    }
}

/// Runs Figure 8 with the paper's five configurations.
pub fn speedup_comparison(
    workloads: &[WorkloadSpec],
    cores: u16,
    scale: Scale,
    seed: u64,
) -> SpeedupComparisonResult {
    speedup_comparison_with(
        workloads,
        &PrefetcherConfig::figure8_suite(),
        cores,
        scale,
        seed,
    )
}

/// Runs the speedup comparison for an arbitrary configuration list.
///
/// The whole sweep is declared as one [`RunMatrix`], so the no-prefetch
/// baseline of each workload is simulated exactly once per (workload, cores,
/// scale, seed) — even if [`PrefetcherConfig::None`] also appears in
/// `prefetchers` — and all runs execute in parallel.
pub fn speedup_comparison_with(
    workloads: &[WorkloadSpec],
    prefetchers: &[PrefetcherConfig],
    cores: u16,
    scale: Scale,
    seed: u64,
) -> SpeedupComparisonResult {
    let mut matrix = RunMatrix::new();
    let plan = SpeedupComparisonPlan::plan(&mut matrix, workloads, prefetchers, cores, scale, seed);
    plan.collect(&matrix.execute())
}

/// The planned Figure 8 sweep: per workload, one baseline handle plus one
/// handle per prefetcher configuration.
#[derive(Clone, Debug)]
pub struct SpeedupComparisonPlan {
    workloads: Vec<String>,
    labels: Vec<String>,
    rows: Vec<(RunHandle, Vec<RunHandle>)>,
}

impl SpeedupComparisonPlan {
    /// Plans the (workload × {baseline ∪ prefetchers}) sweep into `matrix`.
    ///
    /// The no-prefetch baseline each speedup is normalized against is planned
    /// by key, so it is simulated exactly once per (workload, cores, scale,
    /// seed) — even if [`PrefetcherConfig::None`] also appears in
    /// `prefetchers`, and even if other figures plan the same baseline into
    /// the same matrix.
    pub fn plan(
        matrix: &mut RunMatrix,
        workloads: &[WorkloadSpec],
        prefetchers: &[PrefetcherConfig],
        cores: u16,
        scale: Scale,
        seed: u64,
    ) -> Self {
        assert!(!workloads.is_empty() && !prefetchers.is_empty());
        let rows = workloads
            .iter()
            .map(|workload| {
                let baseline =
                    matrix.standalone(workload, PrefetcherConfig::None, cores, scale, seed);
                let runs = prefetchers
                    .iter()
                    .map(|&p| matrix.standalone(workload, p, cores, scale, seed))
                    .collect();
                (baseline, runs)
            })
            .collect();
        SpeedupComparisonPlan {
            workloads: workloads.iter().map(|w| w.name.clone()).collect(),
            labels: prefetchers.iter().map(PrefetcherConfig::label).collect(),
            rows,
        }
    }

    /// Per-workload `(baseline, prefetcher runs)` handles, in plan order.
    pub fn rows(&self) -> &[(RunHandle, Vec<RunHandle>)] {
        &self.rows
    }

    /// Derives the Figure 8 result from the executed matrix.
    pub fn collect(&self, outcomes: &RunOutcomes) -> SpeedupComparisonResult {
        let rows: Vec<SpeedupRow> = self
            .workloads
            .iter()
            .zip(&self.rows)
            .map(|(workload, (baseline, runs))| SpeedupRow {
                workload: workload.clone(),
                speedups: self
                    .labels
                    .iter()
                    .zip(runs)
                    .map(|(label, &run)| {
                        (
                            label.clone(),
                            outcomes[run].speedup_over(&outcomes[*baseline]),
                        )
                    })
                    .collect(),
            })
            .collect();
        let geomean = self
            .labels
            .iter()
            .enumerate()
            .map(|(i, label)| {
                let values: Vec<f64> = rows.iter().map(|r| r.speedups[i].1).collect();
                (label.clone(), geometric_mean(&values))
            })
            .collect();
        SpeedupComparisonResult { rows, geomean }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shift_trace::presets;

    #[test]
    fn stream_prefetchers_outperform_baseline_and_next_line() {
        let result = speedup_comparison_with(
            &[presets::tiny()],
            &[
                PrefetcherConfig::next_line(),
                PrefetcherConfig::pif_32k(),
                PrefetcherConfig::shift_virtualized(),
            ],
            4,
            Scale::Test,
            21,
        );
        let nl = result.geomean_of("NextLine").unwrap();
        let pif = result.geomean_of("PIF_32K").unwrap();
        let shift = result.geomean_of("SHIFT").unwrap();
        assert!(nl > 1.0);
        assert!(pif > nl, "PIF_32K ({pif}) must beat next-line ({nl})");
        assert!(shift > nl, "SHIFT ({shift}) must beat next-line ({nl})");
        assert!(!result.to_string().is_empty());
    }

    #[test]
    fn baseline_is_planned_exactly_once_per_workload() {
        let workloads = vec![
            presets::tiny().with_region_index(0),
            presets::tiny().with_region_index(1),
        ];
        // The explicit `None` entry must collapse onto the baseline run that
        // the speedups are normalized against: 2 workloads × (1 baseline + 2
        // distinct prefetchers), not 2 × 4.
        let prefetchers = [
            PrefetcherConfig::None,
            PrefetcherConfig::next_line(),
            PrefetcherConfig::shift_virtualized(),
        ];
        let mut matrix = RunMatrix::new();
        let plan =
            SpeedupComparisonPlan::plan(&mut matrix, &workloads, &prefetchers, 4, Scale::Test, 21);
        assert_eq!(matrix.len(), 2 * 3);
        for (baseline, runs) in plan.rows() {
            assert_eq!(runs[0], *baseline, "None entry must reuse the baseline run");
        }

        // And the derived figure reports a speedup of exactly 1 for `None`.
        let result = speedup_comparison_with(&workloads, &prefetchers, 4, Scale::Test, 21);
        let none = result.geomean_of("Baseline").unwrap();
        assert!((none - 1.0).abs() < 1e-12, "baseline speedup {none}");
    }
}
