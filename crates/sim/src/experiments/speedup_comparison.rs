//! Figure 8: speedup of NextLine, PIF_2K, PIF_32K, ZeroLat-SHIFT, and SHIFT
//! over the no-prefetching baseline, per workload.

use std::fmt;

use serde::{Deserialize, Serialize};
use shift_trace::{Scale, WorkloadSpec};

use crate::config::PrefetcherConfig;
use crate::results::geometric_mean;
use crate::runner::{RunHandle, RunMatrix};

/// One workload's speedups.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SpeedupRow {
    /// Workload name.
    pub workload: String,
    /// `(prefetcher label, speedup over baseline)` in configuration order.
    pub speedups: Vec<(String, f64)>,
}

/// The Figure 8 result.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SpeedupComparisonResult {
    /// One row per workload.
    pub rows: Vec<SpeedupRow>,
    /// Geometric-mean speedup per configuration, in configuration order.
    pub geomean: Vec<(String, f64)>,
}

impl SpeedupComparisonResult {
    /// Geometric-mean speedup of the configuration with the given label.
    pub fn geomean_of(&self, label: &str) -> Option<f64> {
        self.geomean
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, s)| *s)
    }
}

impl fmt::Display for SpeedupComparisonResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 8: speedup over the no-prefetch baseline")?;
        write!(f, "{:<18}", "workload")?;
        for (label, _) in &self.geomean {
            write!(f, "{label:>15}")?;
        }
        writeln!(f)?;
        for row in &self.rows {
            write!(f, "{:<18}", row.workload)?;
            for (_, speedup) in &row.speedups {
                write!(f, "{speedup:>15.3}")?;
            }
            writeln!(f)?;
        }
        write!(f, "{:<18}", "Geo. Mean")?;
        for (_, speedup) in &self.geomean {
            write!(f, "{speedup:>15.3}")?;
        }
        writeln!(f)
    }
}

/// Runs Figure 8 with the paper's five configurations.
pub fn speedup_comparison(
    workloads: &[WorkloadSpec],
    cores: u16,
    scale: Scale,
    seed: u64,
) -> SpeedupComparisonResult {
    speedup_comparison_with(
        workloads,
        &PrefetcherConfig::figure8_suite(),
        cores,
        scale,
        seed,
    )
}

/// Runs the speedup comparison for an arbitrary configuration list.
///
/// The whole sweep is declared as one [`RunMatrix`], so the no-prefetch
/// baseline of each workload is simulated exactly once per (workload, cores,
/// scale, seed) — even if [`PrefetcherConfig::None`] also appears in
/// `prefetchers` — and all runs execute in parallel.
pub fn speedup_comparison_with(
    workloads: &[WorkloadSpec],
    prefetchers: &[PrefetcherConfig],
    cores: u16,
    scale: Scale,
    seed: u64,
) -> SpeedupComparisonResult {
    assert!(!workloads.is_empty() && !prefetchers.is_empty());
    let (matrix, plan) = plan(workloads, prefetchers, cores, scale, seed);
    let outcomes = matrix.execute();

    let rows: Vec<SpeedupRow> = workloads
        .iter()
        .zip(&plan)
        .map(|(workload, (baseline, runs))| SpeedupRow {
            workload: workload.name.clone(),
            speedups: prefetchers
                .iter()
                .zip(runs)
                .map(|(p, &run)| (p.label(), outcomes[run].speedup_over(&outcomes[*baseline])))
                .collect(),
        })
        .collect();
    let geomean = prefetchers
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let values: Vec<f64> = rows.iter().map(|r| r.speedups[i].1).collect();
            (p.label(), geometric_mean(&values))
        })
        .collect();
    SpeedupComparisonResult { rows, geomean }
}

/// Plans the sweep: per workload, one baseline handle plus one handle per
/// prefetcher configuration.
fn plan(
    workloads: &[WorkloadSpec],
    prefetchers: &[PrefetcherConfig],
    cores: u16,
    scale: Scale,
    seed: u64,
) -> (RunMatrix, Vec<(RunHandle, Vec<RunHandle>)>) {
    let mut matrix = RunMatrix::new();
    let plan = workloads
        .iter()
        .map(|workload| {
            let baseline = matrix.standalone(workload, PrefetcherConfig::None, cores, scale, seed);
            let runs = prefetchers
                .iter()
                .map(|&p| matrix.standalone(workload, p, cores, scale, seed))
                .collect();
            (baseline, runs)
        })
        .collect();
    (matrix, plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use shift_trace::presets;

    #[test]
    fn stream_prefetchers_outperform_baseline_and_next_line() {
        let result = speedup_comparison_with(
            &[presets::tiny()],
            &[
                PrefetcherConfig::next_line(),
                PrefetcherConfig::pif_32k(),
                PrefetcherConfig::shift_virtualized(),
            ],
            4,
            Scale::Test,
            21,
        );
        let nl = result.geomean_of("NextLine").unwrap();
        let pif = result.geomean_of("PIF_32K").unwrap();
        let shift = result.geomean_of("SHIFT").unwrap();
        assert!(nl > 1.0);
        assert!(pif > nl, "PIF_32K ({pif}) must beat next-line ({nl})");
        assert!(shift > nl, "SHIFT ({shift}) must beat next-line ({nl})");
        assert!(!result.to_string().is_empty());
    }

    #[test]
    fn baseline_is_planned_exactly_once_per_workload() {
        let workloads = vec![
            presets::tiny().with_region_index(0),
            presets::tiny().with_region_index(1),
        ];
        // The explicit `None` entry must collapse onto the baseline run that
        // the speedups are normalized against: 2 workloads × (1 baseline + 2
        // distinct prefetchers), not 2 × 4.
        let prefetchers = [
            PrefetcherConfig::None,
            PrefetcherConfig::next_line(),
            PrefetcherConfig::shift_virtualized(),
        ];
        let (matrix, plan) = super::plan(&workloads, &prefetchers, 4, Scale::Test, 21);
        assert_eq!(matrix.len(), 2 * 3);
        for (baseline, runs) in &plan {
            assert_eq!(runs[0], *baseline, "None entry must reuse the baseline run");
        }

        // And the derived figure reports a speedup of exactly 1 for `None`.
        let result = speedup_comparison_with(&workloads, &prefetchers, 4, Scale::Test, 21);
        let none = result.geomean_of("Baseline").unwrap();
        assert!((none - 1.0).abs() < 1e-12, "baseline speedup {none}");
    }
}
