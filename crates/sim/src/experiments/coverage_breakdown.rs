//! Figure 7: instruction misses covered, uncovered, and overpredicted, per
//! workload, for PIF_2K, PIF_32K, and SHIFT.
//!
//! The paper's claim: the equal-storage PIF_2K collapses to ≈53 % average
//! coverage because 2 K records cannot hold a server instruction working
//! set, while PIF_32K reaches ≈92 % and SHIFT — one shared 32 K-record
//! history for all 16 cores — keeps ≈81 % at a fraction of the storage.
//! Coverage fractions are normalized against each run's baseline miss count
//! (covered + uncovered), as in the figure.

use std::fmt;

use serde::{Deserialize, Serialize};
use shift_trace::{Scale, WorkloadSpec};

use crate::config::PrefetcherConfig;
use crate::matrix::{RunHandle, RunMatrix};
use crate::results::CoverageStats;
use crate::store::RunOutcomes;

/// Coverage breakdown of one (workload, prefetcher) pair.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CoverageCell {
    /// Prefetcher label.
    pub prefetcher: String,
    /// Coverage accounting, normalized via [`CoverageStats`] accessors.
    pub coverage: CoverageStats,
}

/// One workload's row of Figure 7.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CoverageRow {
    /// Workload name.
    pub workload: String,
    /// One cell per prefetcher configuration, in the order given to
    /// [`coverage_breakdown`].
    pub cells: Vec<CoverageCell>,
}

/// The Figure 7 result.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CoverageBreakdownResult {
    /// One row per workload.
    pub rows: Vec<CoverageRow>,
}

impl CoverageBreakdownResult {
    /// Average coverage fraction of the given prefetcher label across
    /// workloads.
    pub fn average_coverage(&self, prefetcher: &str) -> f64 {
        let values: Vec<f64> = self
            .rows
            .iter()
            .flat_map(|r| r.cells.iter())
            .filter(|c| c.prefetcher == prefetcher)
            .map(|c| c.coverage.coverage())
            .collect();
        if values.is_empty() {
            0.0
        } else {
            values.iter().sum::<f64>() / values.len() as f64
        }
    }

    /// Average overprediction fraction of the given prefetcher label.
    pub fn average_overprediction(&self, prefetcher: &str) -> f64 {
        let values: Vec<f64> = self
            .rows
            .iter()
            .flat_map(|r| r.cells.iter())
            .filter(|c| c.prefetcher == prefetcher)
            .map(|c| c.coverage.overprediction())
            .collect();
        if values.is_empty() {
            0.0
        } else {
            values.iter().sum::<f64>() / values.len() as f64
        }
    }
}

impl fmt::Display for CoverageBreakdownResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 7: L1-I misses covered / uncovered / overpredicted (% of baseline misses)"
        )?;
        for row in &self.rows {
            writeln!(f, "{}:", row.workload)?;
            for cell in &row.cells {
                writeln!(
                    f,
                    "  {:<14} covered {:>5.1}%  uncovered {:>5.1}%  overpredicted {:>5.1}%",
                    cell.prefetcher,
                    cell.coverage.coverage() * 100.0,
                    (1.0 - cell.coverage.coverage()) * 100.0,
                    cell.coverage.overprediction() * 100.0
                )?;
            }
        }
        Ok(())
    }
}

/// Runs the Figure 7 experiment with the paper's three configurations
/// (PIF_2K, PIF_32K, SHIFT).
pub fn coverage_breakdown(
    workloads: &[WorkloadSpec],
    cores: u16,
    scale: Scale,
    seed: u64,
) -> CoverageBreakdownResult {
    coverage_breakdown_with(
        workloads,
        &[
            PrefetcherConfig::pif_2k(),
            PrefetcherConfig::pif_32k(),
            PrefetcherConfig::shift_virtualized(),
        ],
        cores,
        scale,
        seed,
    )
}

/// Runs the Figure 7 experiment with an arbitrary prefetcher list.
///
/// The (workload × prefetcher) grid is declared as one [`RunMatrix`] and
/// executed in parallel; duplicate grid cells collapse to a single run.
pub fn coverage_breakdown_with(
    workloads: &[WorkloadSpec],
    prefetchers: &[PrefetcherConfig],
    cores: u16,
    scale: Scale,
    seed: u64,
) -> CoverageBreakdownResult {
    let mut matrix = RunMatrix::new();
    let plan = CoverageBreakdownPlan::plan(&mut matrix, workloads, prefetchers, cores, scale, seed);
    plan.collect(&matrix.execute())
}

/// The planned Figure 7 grid: one run per (workload, prefetcher) cell.
#[derive(Clone, Debug)]
pub struct CoverageBreakdownPlan {
    workloads: Vec<String>,
    labels: Vec<String>,
    grid: Vec<Vec<RunHandle>>,
}

impl CoverageBreakdownPlan {
    /// Plans the (workload × prefetcher) grid into `matrix`; duplicate cells
    /// (and cells shared with other figures) collapse to a single run.
    pub fn plan(
        matrix: &mut RunMatrix,
        workloads: &[WorkloadSpec],
        prefetchers: &[PrefetcherConfig],
        cores: u16,
        scale: Scale,
        seed: u64,
    ) -> Self {
        let grid = workloads
            .iter()
            .map(|w| {
                prefetchers
                    .iter()
                    .map(|&p| matrix.standalone(w, p, cores, scale, seed))
                    .collect()
            })
            .collect();
        CoverageBreakdownPlan {
            workloads: workloads.iter().map(|w| w.name.clone()).collect(),
            labels: prefetchers.iter().map(PrefetcherConfig::label).collect(),
            grid,
        }
    }

    /// Derives the Figure 7 result from the executed matrix.
    pub fn collect(&self, outcomes: &RunOutcomes) -> CoverageBreakdownResult {
        let rows = self
            .workloads
            .iter()
            .zip(&self.grid)
            .map(|(workload, handles)| CoverageRow {
                workload: workload.clone(),
                cells: self
                    .labels
                    .iter()
                    .zip(handles)
                    .map(|(label, &handle)| CoverageCell {
                        prefetcher: label.clone(),
                        coverage: outcomes[handle].coverage,
                    })
                    .collect(),
            })
            .collect();
        CoverageBreakdownResult { rows }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shift_trace::presets;

    #[test]
    fn shift_and_pif32k_beat_pif2k_on_tiny_workload() {
        // The tiny workload's footprint is small, so use proportionally tiny
        // history budgets to exercise the capacity effect quickly.
        let result = coverage_breakdown_with(
            &[presets::tiny()],
            &[
                PrefetcherConfig::Pif(shift_core::PifConfig::with_history_records(64)),
                PrefetcherConfig::pif_32k(),
                PrefetcherConfig::shift_virtualized(),
            ],
            4,
            Scale::Test,
            9,
        );
        let cells = &result.rows[0].cells;
        let pif_small = cells[0].coverage.coverage();
        let pif_large = cells[1].coverage.coverage();
        let shift = cells[2].coverage.coverage();
        assert!(
            pif_large > pif_small,
            "large history must cover more ({pif_large} vs {pif_small})"
        );
        assert!(
            shift > pif_small,
            "SHIFT must beat the small per-core history"
        );
        assert!(result.average_coverage("PIF_32K") > 0.0);
        assert!(result.average_overprediction("SHIFT") < 1.0);
        assert!(!result.to_string().is_empty());
    }
}
