//! Figure 1: speedup as a function of the fraction of instruction cache
//! misses eliminated.
//!
//! Each instruction cache miss is converted into a hit with a configurable
//! probability; 100 % elimination corresponds to a perfect L1-I. The paper
//! finds a linear relationship reaching ≈31 % average speedup at 100 %.

use std::fmt;

use serde::{Deserialize, Serialize};
use shift_trace::{Scale, WorkloadSpec};

use crate::config::{CmpConfig, PrefetcherConfig, SimOptions};
use crate::results::geometric_mean;
use crate::system::Simulation;

/// One workload's speedup series.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EliminationSeries {
    /// Workload name.
    pub workload: String,
    /// `(fraction eliminated, speedup)` points.
    pub points: Vec<(f64, f64)>,
}

/// The Figure 1 result: one series per workload plus the geometric mean.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EliminationResult {
    /// Per-workload series.
    pub series: Vec<EliminationSeries>,
    /// Geometric-mean series across workloads.
    pub geomean: Vec<(f64, f64)>,
}

impl EliminationResult {
    /// Speedup of the geometric-mean series at full (100 %) elimination.
    pub fn perfect_cache_speedup(&self) -> f64 {
        self.geomean
            .iter()
            .rev()
            .find(|(f, _)| (*f - 1.0).abs() < 1e-9)
            .map(|(_, s)| *s)
            .unwrap_or(1.0)
    }
}

impl fmt::Display for EliminationResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 1: speedup vs. instruction cache misses eliminated")?;
        write!(f, "{:<18}", "workload")?;
        if let Some(first) = self.series.first() {
            for (frac, _) in &first.points {
                write!(f, "{:>8}", format!("{:.0}%", frac * 100.0))?;
            }
        }
        writeln!(f)?;
        for s in &self.series {
            write!(f, "{:<18}", s.workload)?;
            for (_, speedup) in &s.points {
                write!(f, "{speedup:>8.3}")?;
            }
            writeln!(f)?;
        }
        write!(f, "{:<18}", "Geo. Mean")?;
        for (_, speedup) in &self.geomean {
            write!(f, "{speedup:>8.3}")?;
        }
        writeln!(f)
    }
}

/// Runs the Figure 1 experiment over `fractions` (e.g. `[0.0, 0.1, …, 1.0]`).
pub fn probabilistic_elimination(
    workloads: &[WorkloadSpec],
    fractions: &[f64],
    cores: u16,
    scale: Scale,
    seed: u64,
) -> EliminationResult {
    assert!(!workloads.is_empty(), "need at least one workload");
    assert!(!fractions.is_empty(), "need at least one elimination point");
    let mut series = Vec::new();
    for workload in workloads {
        let config = CmpConfig::micro13(cores, PrefetcherConfig::None);
        let baseline =
            Simulation::standalone(config, workload.clone(), SimOptions::new(scale, seed)).run();
        let mut points = Vec::new();
        for &frac in fractions {
            let speedup = if frac == 0.0 {
                1.0
            } else {
                let options = SimOptions::new(scale, seed).with_miss_elimination(frac);
                let run = Simulation::standalone(config, workload.clone(), options).run();
                run.speedup_over(&baseline)
            };
            points.push((frac, speedup));
        }
        series.push(EliminationSeries {
            workload: workload.name.clone(),
            points,
        });
    }
    let geomean = fractions
        .iter()
        .enumerate()
        .map(|(i, &frac)| {
            let speedups: Vec<f64> = series.iter().map(|s| s.points[i].1).collect();
            (frac, geometric_mean(&speedups))
        })
        .collect();
    EliminationResult { series, geomean }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shift_trace::presets;

    #[test]
    fn speedup_grows_with_elimination_fraction() {
        let workloads = vec![presets::tiny()];
        let result = probabilistic_elimination(&workloads, &[0.0, 0.5, 1.0], 2, Scale::Test, 11);
        let points = &result.series[0].points;
        assert_eq!(points.len(), 3);
        assert!((points[0].1 - 1.0).abs() < 1e-9);
        assert!(points[1].1 > 1.0, "half elimination must speed up");
        assert!(points[2].1 > points[1].1, "full elimination fastest");
        assert!(result.perfect_cache_speedup() > 1.0);
        assert!(!result.to_string().is_empty());
    }
}
