//! Figure 1: speedup as a function of the fraction of instruction cache
//! misses eliminated.
//!
//! Each instruction cache miss is converted into a hit with a configurable
//! probability; 100 % elimination corresponds to a perfect L1-I. The paper
//! finds a linear relationship reaching ≈31 % average speedup at 100 %.

use std::fmt;

use serde::{Deserialize, Serialize};
use shift_trace::{Scale, WorkloadSpec};

use crate::config::{CmpConfig, PrefetcherConfig, SimOptions};
use crate::matrix::{RunHandle, RunMatrix};
use crate::results::geometric_mean;
use crate::store::RunOutcomes;

/// One workload's speedup series.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EliminationSeries {
    /// Workload name.
    pub workload: String,
    /// `(fraction eliminated, speedup)` points.
    pub points: Vec<(f64, f64)>,
}

/// The Figure 1 result: one series per workload plus the geometric mean.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EliminationResult {
    /// Per-workload series.
    pub series: Vec<EliminationSeries>,
    /// Geometric-mean series across workloads.
    pub geomean: Vec<(f64, f64)>,
}

impl EliminationResult {
    /// Speedup of the geometric-mean series at full (100 %) elimination.
    pub fn perfect_cache_speedup(&self) -> f64 {
        self.geomean
            .iter()
            .rev()
            .find(|(f, _)| (*f - 1.0).abs() < 1e-9)
            .map(|(_, s)| *s)
            .unwrap_or(1.0)
    }
}

impl fmt::Display for EliminationResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 1: speedup vs. instruction cache misses eliminated"
        )?;
        write!(f, "{:<18}", "workload")?;
        if let Some(first) = self.series.first() {
            for (frac, _) in &first.points {
                write!(f, "{:>8}", format!("{:.0}%", frac * 100.0))?;
            }
        }
        writeln!(f)?;
        for s in &self.series {
            write!(f, "{:<18}", s.workload)?;
            for (_, speedup) in &s.points {
                write!(f, "{speedup:>8.3}")?;
            }
            writeln!(f)?;
        }
        write!(f, "{:<18}", "Geo. Mean")?;
        for (_, speedup) in &self.geomean {
            write!(f, "{speedup:>8.3}")?;
        }
        writeln!(f)
    }
}

/// The planned (but not yet executed) Figure 1 sweep: the handles of every
/// run the figure needs, resolvable against any [`RunOutcomes`] produced by
/// the matrix the plan was declared into.
#[derive(Clone, Debug)]
pub struct EliminationPlan {
    workloads: Vec<String>,
    fractions: Vec<f64>,
    /// Per workload: the no-prefetch baseline handle plus one handle per
    /// nonzero fraction (`None` for the 0.0 point, which reuses the baseline).
    rows: Vec<(RunHandle, Vec<Option<RunHandle>>)>,
}

impl EliminationPlan {
    /// Plans the (workload × fraction) sweep into `matrix`.
    ///
    /// Each workload's baseline is planned once; the `0.0` fraction reuses it
    /// directly (speedup 1 by definition). Planning into a shared matrix lets
    /// other figures deduplicate against the same baselines.
    pub fn plan(
        matrix: &mut RunMatrix,
        workloads: &[WorkloadSpec],
        fractions: &[f64],
        cores: u16,
        scale: Scale,
        seed: u64,
    ) -> Self {
        assert!(!workloads.is_empty(), "need at least one workload");
        assert!(!fractions.is_empty(), "need at least one elimination point");
        let config = CmpConfig::micro13(cores, PrefetcherConfig::None);
        let rows = workloads
            .iter()
            .map(|workload| {
                let baseline =
                    matrix.standalone_with(config, workload, SimOptions::new(scale, seed));
                let runs: Vec<_> = fractions
                    .iter()
                    .map(|&frac| {
                        (frac > 0.0).then(|| {
                            matrix.standalone_with(
                                config,
                                workload,
                                SimOptions::new(scale, seed).with_miss_elimination(frac),
                            )
                        })
                    })
                    .collect();
                (baseline, runs)
            })
            .collect();
        EliminationPlan {
            workloads: workloads.iter().map(|w| w.name.clone()).collect(),
            fractions: fractions.to_vec(),
            rows,
        }
    }

    /// Derives the Figure 1 result from the executed matrix.
    pub fn collect(&self, outcomes: &RunOutcomes) -> EliminationResult {
        let series: Vec<EliminationSeries> = self
            .workloads
            .iter()
            .zip(&self.rows)
            .map(|(workload, (baseline, runs))| EliminationSeries {
                workload: workload.clone(),
                points: self
                    .fractions
                    .iter()
                    .zip(runs)
                    .map(|(&frac, run)| {
                        let speedup = match run {
                            Some(handle) => outcomes[*handle].speedup_over(&outcomes[*baseline]),
                            None => 1.0,
                        };
                        (frac, speedup)
                    })
                    .collect(),
            })
            .collect();
        let geomean = self
            .fractions
            .iter()
            .enumerate()
            .map(|(i, &frac)| {
                let speedups: Vec<f64> = series.iter().map(|s| s.points[i].1).collect();
                (frac, geometric_mean(&speedups))
            })
            .collect();
        EliminationResult { series, geomean }
    }
}

/// Runs the Figure 1 experiment over `fractions` (e.g. `[0.0, 0.1, …, 1.0]`).
///
/// The (workload × fraction) sweep is declared as one [`RunMatrix`] and
/// executed in parallel; each workload's baseline is simulated once and the
/// `0.0` fraction reuses it directly (speedup 1 by definition).
pub fn probabilistic_elimination(
    workloads: &[WorkloadSpec],
    fractions: &[f64],
    cores: u16,
    scale: Scale,
    seed: u64,
) -> EliminationResult {
    let mut matrix = RunMatrix::new();
    let plan = EliminationPlan::plan(&mut matrix, workloads, fractions, cores, scale, seed);
    plan.collect(&matrix.execute())
}

#[cfg(test)]
mod tests {
    use super::*;
    use shift_trace::presets;

    #[test]
    fn speedup_grows_with_elimination_fraction() {
        let workloads = vec![presets::tiny()];
        let result = probabilistic_elimination(&workloads, &[0.0, 0.5, 1.0], 2, Scale::Test, 11);
        let points = &result.series[0].points;
        assert_eq!(points.len(), 3);
        assert!((points[0].1 - 1.0).abs() < 1e-9);
        assert!(points[1].1 > 1.0, "half elimination must speed up");
        assert!(points[2].1 > points[1].1, "full elimination fastest");
        assert!(result.perfect_cache_speedup() > 1.0);
        assert!(!result.to_string().is_empty());
    }
}
