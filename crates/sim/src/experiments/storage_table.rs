//! §5.1: storage cost of each prefetcher design (the paper's configuration
//! discussion and the basis for the equal-cost PIF_2K design point).

use std::fmt;

use serde::{Deserialize, Serialize};
use shift_core::{InstructionPrefetcher, Pif, PifConfig, Shift, ShiftConfig, StorageCost};
use shift_metrics::AreaModel;
use shift_types::{BlockAddr, CoreId};

/// One design's storage and area summary.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StorageRow {
    /// Design label.
    pub design: String,
    /// Storage breakdown.
    pub storage: StorageCost,
    /// Added SRAM for a 16-core CMP, in KiB.
    pub added_sram_kib: f64,
    /// Added SRAM area for a 16-core CMP, in mm² (40 nm).
    pub added_area_mm2: f64,
}

/// The §5.1 storage table.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StorageTableResult {
    /// One row per design.
    pub rows: Vec<StorageRow>,
    /// Number of cores the costs are computed for.
    pub cores: u16,
}

impl StorageTableResult {
    /// Finds a row by design label.
    pub fn row(&self, design: &str) -> Option<&StorageRow> {
        self.rows.iter().find(|r| r.design == design)
    }

    /// Storage-cost ratio between two designs (added SRAM).
    pub fn sram_ratio(&self, a: &str, b: &str) -> Option<f64> {
        let ra = self.row(a)?;
        let rb = self.row(b)?;
        Some(ra.added_sram_kib / rb.added_sram_kib)
    }
}

impl fmt::Display for StorageTableResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "§5.1: storage cost for a {}-core CMP", self.cores)?;
        writeln!(
            f,
            "{:<16}{:>14}{:>14}{:>16}{:>14}{:>12}",
            "design", "per-core KiB", "LLC data KiB", "LLC tag KiB", "added KiB", "area mm²"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<16}{:>14.1}{:>14.1}{:>16.1}{:>14.1}{:>12.2}",
                r.design,
                r.storage.per_core_bytes as f64 / 1024.0,
                r.storage.llc_data_bytes as f64 / 1024.0,
                r.storage.llc_tag_bytes as f64 / 1024.0,
                r.added_sram_kib,
                r.added_area_mm2
            )?;
        }
        Ok(())
    }
}

/// Computes the storage table for the paper's designs on a `cores`-core CMP
/// with an LLC of `llc_capacity_blocks` tags.
///
/// Pure arithmetic — no `Simulation` runs, so there is no sweep to declare
/// as a [`RunMatrix`](crate::matrix::RunMatrix): the three rows cost
/// microseconds and are computed inline.
pub fn storage_table(cores: u16, llc_capacity_blocks: usize) -> StorageTableResult {
    let area = AreaModel::nm40();
    let mut rows = Vec::new();

    for config in [PifConfig::pif_2k(), PifConfig::pif_32k()] {
        let pif = Pif::new(config, cores);
        let storage = pif.storage(cores);
        rows.push(StorageRow {
            design: config.design_name(),
            added_sram_kib: storage.added_sram_kib(cores),
            added_area_mm2: area.prefetcher_mm2(&storage, cores),
            storage,
        });
    }

    let mut shift_cfg = ShiftConfig::virtualized_micro13(CoreId::new(0), BlockAddr::new(0));
    shift_cfg.llc_capacity_blocks = llc_capacity_blocks;
    let shift = Shift::new(shift_cfg, cores);
    let storage = shift.storage(cores);
    rows.push(StorageRow {
        design: "SHIFT".to_owned(),
        added_sram_kib: storage.added_sram_kib(cores),
        added_area_mm2: area.prefetcher_mm2(&storage, cores),
        storage,
    });

    StorageTableResult { rows, cores }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_table_reproduces_paper_ratios() {
        let table = storage_table(16, 8 * 1024 * 1024 / 64);
        let pif32 = table.row("PIF_32K").unwrap();
        let shift = table.row("SHIFT").unwrap();

        // PIF_32K: 213 KB per core → 3.4 MB aggregate; ~0.9 mm² per core.
        assert_eq!(pif32.storage.per_core_bytes / 1024, 213);
        assert!((pif32.added_area_mm2 / 16.0 - 0.9).abs() < 0.02);

        // SHIFT: 240 KB of tag extension + tiny per-core SABs.
        assert_eq!(shift.storage.llc_tag_bytes / 1024, 240);
        assert!(shift.added_sram_kib < 300.0);

        // The paper's headline: SHIFT costs ~14x less storage than PIF_32K.
        let ratio = table.sram_ratio("PIF_32K", "SHIFT").unwrap();
        assert!(
            ratio > 10.0 && ratio < 20.0,
            "storage ratio {ratio} outside the paper's ~14x claim"
        );
        assert!(!table.to_string().is_empty());
    }
}
