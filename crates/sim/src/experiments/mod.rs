//! Experiment drivers: one module per figure/table of the paper's evaluation.
//!
//! Every driver takes the workload list, a [`shift_trace::Scale`], and
//! a seed, runs the required simulations, and returns a serializable result
//! type whose `Display` implementation prints the same rows/series the paper
//! reports. The benchmark harness (`shift-bench`) wraps each driver in a
//! binary and a Criterion bench.

pub mod commonality;
pub mod consolidation;
pub mod coverage_breakdown;
pub mod coverage_vs_history;
pub mod llc_traffic;
pub mod performance_density;
pub mod power_overhead;
pub mod probabilistic_elimination;
pub mod speedup_comparison;
pub mod storage_table;

pub use commonality::{commonality, CommonalityResult};
pub use consolidation::{consolidation, ConsolidationResult};
pub use coverage_breakdown::{coverage_breakdown, CoverageBreakdownResult};
pub use coverage_vs_history::{coverage_vs_history, HistorySweepResult};
pub use llc_traffic::{llc_traffic, LlcTrafficResult};
pub use performance_density::{performance_density, PerformanceDensityResult};
pub use power_overhead::{power_overhead, PowerOverheadResult};
pub use probabilistic_elimination::{probabilistic_elimination, EliminationResult};
pub use speedup_comparison::{speedup_comparison, SpeedupComparisonResult};
pub use storage_table::{storage_table, StorageTableResult};

use shift_trace::{Scale, WorkloadSpec};

use crate::config::{CmpConfig, PrefetcherConfig, SimOptions};
use crate::results::RunResult;
use crate::system::Simulation;

/// Runs one standalone-workload simulation with the paper's 16-core CMP
/// (or `cores` cores) and the given prefetcher.
pub(crate) fn run_standalone(
    workload: &WorkloadSpec,
    prefetcher: PrefetcherConfig,
    cores: u16,
    scale: Scale,
    seed: u64,
) -> RunResult {
    let config = CmpConfig::micro13(cores, prefetcher);
    let options = SimOptions::new(scale, seed);
    Simulation::standalone(config, workload.clone(), options).run()
}

/// Formats a fraction as a percentage with one decimal.
pub(crate) fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}
