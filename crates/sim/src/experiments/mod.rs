//! Experiment drivers: one module per figure/table of the paper's evaluation.
//!
//! Every driver takes the workload list, a [`shift_trace::Scale`], and
//! a seed, runs the required simulations, and returns a serializable result
//! type whose `Display` implementation prints the same rows/series the paper
//! reports. The benchmark harness (`shift-bench`) wraps each driver in a
//! binary and a Criterion bench.
//!
//! Every simulation-backed driver is split into two phases around one
//! [`RunMatrix`](crate::matrix::RunMatrix):
//!
//! * **plan** — the driver's `*Plan::plan(&mut matrix, …)` declares every
//!   run the figure needs and keeps the returned handles. Because planning
//!   goes through the matrix's key-deduplication, runs shared *within* a
//!   figure (the no-prefetch baseline above all) and *across* figures (when
//!   several plans share one matrix, as the `reproduce` driver does)
//!   simulate exactly once.
//! * **collect** — after `matrix.execute()`, `plan.collect(&outcomes)`
//!   resolves the handles and derives the figure's serializable summary
//!   type.
//!
//! The plain `fn figure(…) -> Result` entry points wrap both phases around a
//! private matrix for callers that reproduce a single figure. The
//! commonality opportunity study — heavy per-workload work that is not
//! `Simulation` runs — fans out through
//! [`matrix::parallel_map`](crate::matrix::parallel_map) instead, and the
//! storage table (pure arithmetic) stays inline.

pub mod commonality;
pub mod consolidation;
pub mod coverage_breakdown;
pub mod coverage_vs_history;
pub mod hybrid_shootout;
pub mod llc_traffic;
pub mod performance_density;
pub mod power_overhead;
pub mod probabilistic_elimination;
pub mod speedup_comparison;
pub mod storage_table;

pub use commonality::{commonality, CommonalityResult};
pub use consolidation::{consolidation, ConsolidationPlan, ConsolidationResult};
pub use coverage_breakdown::{coverage_breakdown, CoverageBreakdownPlan, CoverageBreakdownResult};
pub use coverage_vs_history::{coverage_vs_history, HistorySweepPlan, HistorySweepResult};
pub use hybrid_shootout::{
    hybrid_shootout, DegradationPoint, HybridRow, HybridShootoutPlan, HybridShootoutResult,
};
pub use llc_traffic::{llc_traffic, LlcTrafficPlan, LlcTrafficResult};
pub use performance_density::{
    performance_density, PerformanceDensityPlan, PerformanceDensityResult,
};
pub use power_overhead::{power_overhead, PowerOverheadPlan, PowerOverheadResult};
pub use probabilistic_elimination::{
    probabilistic_elimination, EliminationPlan, EliminationResult,
};
pub use speedup_comparison::{
    speedup_comparison, speedup_comparison_with, SpeedupComparisonPlan, SpeedupComparisonResult,
};
pub use storage_table::{storage_table, StorageTableResult};

/// Formats a fraction as a percentage with one decimal.
pub(crate) fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}
