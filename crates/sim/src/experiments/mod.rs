//! Experiment drivers: one module per figure/table of the paper's evaluation.
//!
//! Every driver takes the workload list, a [`shift_trace::Scale`], and
//! a seed, runs the required simulations, and returns a serializable result
//! type whose `Display` implementation prints the same rows/series the paper
//! reports. The benchmark harness (`shift-bench`) wraps each driver in a
//! binary and a Criterion bench.
//!
//! Every driver declares its sweep as a [`RunMatrix`](crate::runner): plan
//! all runs up front (shared runs — above all the no-prefetch baseline —
//! deduplicate to a single simulation), execute the whole matrix in parallel
//! across the host's cores, then derive the figure's rows from the memoized
//! outcomes. The commonality opportunity study — heavy per-workload work
//! that is not `Simulation` runs — fans out through
//! [`runner::parallel_map`](crate::runner::parallel_map) instead, and the
//! storage table (pure arithmetic) stays inline.

pub mod commonality;
pub mod consolidation;
pub mod coverage_breakdown;
pub mod coverage_vs_history;
pub mod llc_traffic;
pub mod performance_density;
pub mod power_overhead;
pub mod probabilistic_elimination;
pub mod speedup_comparison;
pub mod storage_table;

pub use commonality::{commonality, CommonalityResult};
pub use consolidation::{consolidation, ConsolidationResult};
pub use coverage_breakdown::{coverage_breakdown, CoverageBreakdownResult};
pub use coverage_vs_history::{coverage_vs_history, HistorySweepResult};
pub use llc_traffic::{llc_traffic, LlcTrafficResult};
pub use performance_density::{performance_density, PerformanceDensityResult};
pub use power_overhead::{power_overhead, PowerOverheadResult};
pub use probabilistic_elimination::{probabilistic_elimination, EliminationResult};
pub use speedup_comparison::{speedup_comparison, SpeedupComparisonResult};
pub use storage_table::{storage_table, StorageTableResult};

/// Formats a fraction as a percentage with one decimal.
pub(crate) fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}
