//! Figure 9: extra LLC traffic introduced by SHIFT (history reads, history
//! writes, and discarded prefetches), normalized to the baseline LLC traffic.
//!
//! The paper's claim: virtualizing the history into the LLC costs little —
//! history reads + writes add ≈6 %, discarded prefetches ≈7 %, and
//! tag-array index updates ≈2.5 % of baseline LLC traffic on average. Each
//! [`LlcTrafficRow`] field is one of those traffic classes as a fraction of
//! the same run's baseline (demand) traffic.

use std::fmt;

use serde::{Deserialize, Serialize};
use shift_trace::{Scale, WorkloadSpec};
use shift_types::AccessClass;

use crate::config::PrefetcherConfig;
use crate::matrix::{RunHandle, RunMatrix};
use crate::store::RunOutcomes;

/// One workload's LLC traffic overhead.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct LlcTrafficRow {
    /// History-buffer reads ("LogRead") as a fraction of baseline traffic.
    pub log_read: f64,
    /// History-buffer writes ("LogWrite") as a fraction of baseline traffic.
    pub log_write: f64,
    /// Discarded prefetch reads as a fraction of baseline traffic.
    pub discard: f64,
    /// Index updates (tag array only) as a fraction of baseline traffic.
    pub index_update: f64,
}

impl LlcTrafficRow {
    /// Total data-array traffic overhead (index updates excluded, as in the
    /// paper's figure).
    pub fn total_data_overhead(&self) -> f64 {
        self.log_read + self.log_write + self.discard
    }
}

/// The Figure 9 result.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LlcTrafficResult {
    /// `(workload name, overhead breakdown)` per workload.
    pub rows: Vec<(String, LlcTrafficRow)>,
}

impl LlcTrafficResult {
    /// Average of a column across workloads.
    pub fn average<F: Fn(&LlcTrafficRow) -> f64>(&self, column: F) -> f64 {
        if self.rows.is_empty() {
            0.0
        } else {
            self.rows.iter().map(|(_, r)| column(r)).sum::<f64>() / self.rows.len() as f64
        }
    }
}

impl fmt::Display for LlcTrafficResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 9: LLC traffic increase (% of baseline LLC traffic)"
        )?;
        writeln!(
            f,
            "{:<18}{:>10}{:>10}{:>10}{:>14}",
            "workload", "LogRead", "LogWrite", "Discard", "IndexUpdate"
        )?;
        for (name, row) in &self.rows {
            writeln!(
                f,
                "{:<18}{:>9.1}%{:>9.1}%{:>9.1}%{:>13.1}%",
                name,
                row.log_read * 100.0,
                row.log_write * 100.0,
                row.discard * 100.0,
                row.index_update * 100.0
            )?;
        }
        writeln!(
            f,
            "{:<18}{:>9.1}%{:>9.1}%{:>9.1}%{:>13.1}%",
            "Average",
            self.average(|r| r.log_read) * 100.0,
            self.average(|r| r.log_write) * 100.0,
            self.average(|r| r.discard) * 100.0,
            self.average(|r| r.index_update) * 100.0
        )
    }
}

/// Runs the Figure 9 experiment (virtualized SHIFT on every workload).
///
/// The per-workload runs are declared as one [`RunMatrix`] and executed in
/// parallel.
pub fn llc_traffic(
    workloads: &[WorkloadSpec],
    cores: u16,
    scale: Scale,
    seed: u64,
) -> LlcTrafficResult {
    let mut matrix = RunMatrix::new();
    let plan = LlcTrafficPlan::plan(&mut matrix, workloads, cores, scale, seed);
    plan.collect(&matrix.execute())
}

/// The planned Figure 9 sweep: one virtualized-SHIFT run per workload.
///
/// These runs are shared by key with Figure 8's SHIFT column and the §5.7
/// power estimate when planned into the same [`RunMatrix`].
#[derive(Clone, Debug)]
pub struct LlcTrafficPlan {
    workloads: Vec<String>,
    handles: Vec<RunHandle>,
}

impl LlcTrafficPlan {
    /// Plans the per-workload virtualized-SHIFT runs into `matrix`.
    pub fn plan(
        matrix: &mut RunMatrix,
        workloads: &[WorkloadSpec],
        cores: u16,
        scale: Scale,
        seed: u64,
    ) -> Self {
        let handles = workloads
            .iter()
            .map(|w| {
                matrix.standalone(w, PrefetcherConfig::shift_virtualized(), cores, scale, seed)
            })
            .collect();
        LlcTrafficPlan {
            workloads: workloads.iter().map(|w| w.name.clone()).collect(),
            handles,
        }
    }

    /// Derives the Figure 9 result from the executed matrix.
    pub fn collect(&self, outcomes: &RunOutcomes) -> LlcTrafficResult {
        let rows = self
            .workloads
            .iter()
            .zip(&self.handles)
            .map(|(workload, &handle)| {
                let run = &outcomes[handle];
                (
                    workload.clone(),
                    LlcTrafficRow {
                        log_read: run.llc_overhead_ratio(AccessClass::HistoryRead),
                        log_write: run.llc_overhead_ratio(AccessClass::HistoryWrite),
                        discard: run.llc_overhead_ratio(AccessClass::Discard),
                        index_update: run.llc_overhead_ratio(AccessClass::IndexUpdate),
                    },
                )
            })
            .collect();
        LlcTrafficResult { rows }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shift_trace::presets;

    #[test]
    fn shift_traffic_overhead_is_modest() {
        let result = llc_traffic(&[presets::tiny()], 4, Scale::Test, 17);
        let (_, row) = &result.rows[0];
        assert!(
            row.log_read > 0.0,
            "history reads must appear in the LLC traffic"
        );
        assert!(
            row.total_data_overhead() < 0.8,
            "history traffic must remain a modest fraction of baseline traffic (got {})",
            row.total_data_overhead()
        );
        assert!(!result.to_string().is_empty());
        assert!(result.average(|r| r.log_read) > 0.0);
    }
}
